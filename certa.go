// Package certa is a Go implementation of CERTA — "Effective
// Explanations for Entity Resolution Models" (Teofili et al., ICDE
// 2022): post-hoc, model-agnostic saliency and counterfactual
// explanations for entity-resolution classifiers.
//
// CERTA explains a single prediction M(⟨u,v⟩) by building open
// triangles: support records from the two sources whose pairing with the
// pivot record is predicted oppositely. Copying attribute values from a
// support record into the free record perturbs the input; walking the
// power-set lattice of attribute subsets under a monotone-classifier
// assumption identifies the minimal attribute sets that flip the
// prediction. Flip frequencies yield the probability of necessity of
// each attribute (the saliency explanation) and the probability of
// sufficiency of each attribute set (ranking the counterfactual
// explanations).
//
// # Quick start
//
//	bench, _ := certa.GenerateBenchmark("AB", certa.BenchmarkOptions{Seed: 1})
//	model, _ := certa.TrainMatcher(certa.Ditto, bench, certa.MatcherConfig{Seed: 1})
//	explainer := certa.New(bench.Left, bench.Right, certa.Options{Triangles: 100})
//	res, _ := explainer.Explain(model, bench.Test[0].Pair)
//	fmt.Println(res.Saliency)          // probability of necessity per attribute
//	fmt.Println(res.Counterfactuals)   // perturbed pairs that flip the prediction
//
// Any classifier can be explained by wrapping a score function:
//
//	model := certa.MatcherFunc("mine", func(p certa.Pair) float64 { ... })
//
// # Batched and shared scoring
//
// Explanation cost is dominated by model calls, so the whole scoring
// path is batched: triangle search, lattice exploration and the baseline
// explainers' sampling all group their queries into batches, duplicate
// perturbations are answered by a score cache, and models that implement
// BatchModel (all built-in matchers do) featurize a batch at once.
//
// The cache is a shared, concurrency-safe scoring service that lives for
// a whole batch or serving run, not a per-explanation scratchpad:
// ExplainBatch scores every explanation through one service, so pair
// contents that recur across explanations — support candidates scanned
// against a shared pivot record, perturbations repeated between
// neighboring candidate pairs — reach the model once per run instead of
// once per explanation, and two concurrent explanations that miss on the
// same content trigger exactly one model call (in-flight deduplication).
// Long-lived servers create the service themselves, optionally bounding
// its memory, and inject it:
//
//	svc := certa.NewScoringService(model, certa.ScoringServiceOptions{
//		Parallelism: 8, Capacity: 1 << 20, // sharded LRU bound
//	})
//	results, _ := certa.ExplainBatch(model, bench.Left, bench.Right, pairs,
//		certa.Options{Triangles: 100, Parallelism: 8, Shared: svc})
//	fmt.Println(results[0].Diag.ModelCalls)     // unique calls a private cache would make
//	fmt.Println(results[0].Diag.CacheHitRate()) // per-explanation perturbation reuse
//	fmt.Println(svc.Stats().Misses)             // unique model calls of the whole run
//
// The determinism contract: results and per-explanation Diagnostics are
// byte-identical with or without a shared service, at any Parallelism.
// Diagnostics are computed against per-explanation views of the store
// and report what a private cache would have; only ServiceStats reveal
// the cross-explanation reuse.
//
// # The candidate retrieval layer
//
// Before any model call, an explanation must find support records: the
// triangle search streams each source table in deterministic candidate
// orders (a seeded shuffle, and an overlap ranking against the pivot
// record). That retrieval work runs off a prebuilt per-table token
// index — interned token sets, IDF-weighted postings, cached record
// texts — built once per Explainer, or once per deployment when shared
// explicitly:
//
//	idx := certa.NewCandidateIndex(bench.Left, bench.Right)
//	results, _ := certa.ExplainBatch(model, bench.Left, bench.Right, pairs,
//		certa.Options{Triangles: 100, Retrieval: idx})
//
// The serving subsystem builds one index per backend at startup and the
// token blocker consumes the same index, so tokenization exists exactly
// once in the system. Options.DisableIndex restores the unindexed scan
// (per-explanation tokenization + full sort) as an ablation; results
// are byte-identical either way.
//
// # Serving semantics: deadlines, budgets, cancellation
//
// Explain is an anytime algorithm. Serving-scale callers bound each
// explanation with Options.CallBudget (maximum unique model calls) or
// Options.Deadline (per-explanation wall-clock allowance); when a limit
// trips at one of the pipeline's batch checkpoints, the remaining stages
// are skipped and the best explanation obtainable within the limit is
// returned, flagged in Diagnostics.Truncated with the budget spent and a
// completeness fraction. Call-budget truncation is deterministic:
// byte-identical at any Parallelism, with or without a shared service.
//
// Hard cancellation is a context: ExplainContext and ExplainBatchContext
// abort at the next scoring checkpoint and return ctx.Err() — a
// cancelled batch never starts its remaining explanations.
//
//	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
//	defer cancel()
//	results, err := certa.ExplainBatchContext(ctx, model, bench.Left, bench.Right,
//	    pairs, certa.Options{Triangles: 100, CallBudget: 200})
//	if err != nil {
//	    return err // ctx.Err() when the 2s timeout cancelled the batch
//	}
//	if results[0].Diag.Truncated {
//	    fmt.Println(results[0].Diag.TruncatedBy, results[0].Diag.Completeness)
//	}
//
// Models that can abandon in-flight work (an RPC-backed matcher, say)
// implement ContextModel; everything else is adapted with a per-batch
// cancellation check.
//
// # The HTTP serving subsystem
//
// NewServer assembles all of the above into a JSON HTTP API (the
// cmd/certa-serve daemon is the ready-made wrapper): per-backend
// long-lived scoring services, admission control (bounded in-flight
// explanations, bounded fair FIFO queue, 429 + Retry-After on
// overload), request coalescing (identical in-flight requests share one
// computation and receive byte-identical bodies), client-disconnect
// cancellation, and per-request deadline_ms/call_budget/top_k knobs
// mapped onto the anytime options. The shared score cache persists
// across restarts via ScoringService.Snapshot/Restore — a server
// restarted from its snapshot answers repeat workloads without model
// calls.
//
// The package also ships the three DL-style ER systems the paper
// evaluates (DeepER, DeepMatcher, Ditto), the baseline explainers it
// compares against (Mojito, LandMark, SHAP, DiCE, LIME-C, SHAP-C), the
// twelve synthetic benchmark generators, and the paper's evaluation
// metrics — see the cmd/certa-bench tool for regenerating every table
// and figure of the paper.
package certa

import (
	"context"
	"fmt"

	"certa/internal/baselines"
	"certa/internal/blocking"
	"certa/internal/core"
	"certa/internal/dataset"
	"certa/internal/explain"
	"certa/internal/lattice"
	"certa/internal/lime"
	"certa/internal/matchers"
	"certa/internal/metrics"
	"certa/internal/neighborhood"
	"certa/internal/record"
	"certa/internal/scorecache"
	"certa/internal/server"
	"certa/internal/shap"
)

// Core data model (see internal/record).
type (
	// Record is a structured entity description.
	Record = record.Record
	// Schema names a source and its ordered attributes.
	Schema = record.Schema
	// Pair is the unit of ER prediction (left record, right record).
	Pair = record.Pair
	// LabeledPair is a pair with its ground-truth match label.
	LabeledPair = record.LabeledPair
	// Table is a collection of records sharing a schema.
	Table = record.Table
	// AttrRef is a side-qualified attribute reference (L_name, R_price).
	AttrRef = record.AttrRef
	// Side selects the left (U) or right (V) source.
	Side = record.Side
)

// Source sides.
const (
	// Left is the U source.
	Left = record.Left
	// Right is the V source.
	Right = record.Right
)

// Explanation types (see internal/explain).
type (
	// Model is the black-box classifier interface every explainer
	// accepts: Score returns the matching probability in [0,1].
	Model = explain.Model
	// BatchModel is the optional batch-scoring capability: models that
	// implement ScoreBatch([]Pair) []float64 serve the explainers'
	// grouped queries in one call. Plain Models are adapted
	// automatically.
	BatchModel = explain.BatchModel
	// ContextModel is the optional cancellation-aware capability: models
	// that implement ScoreBatchContext(ctx, []Pair) ([]float64, error)
	// can abandon in-flight scoring when the caller's context is
	// cancelled (an RPC-backed matcher forwards ctx to its transport).
	// Plain Models are adapted with a per-batch cancellation check.
	ContextModel = explain.ContextModel
	// Saliency maps each attribute to its importance for one prediction.
	Saliency = explain.Saliency
	// Counterfactual is a perturbed pair that flips the prediction.
	Counterfactual = explain.Counterfactual
	// SaliencyExplainer produces saliency explanations.
	SaliencyExplainer = explain.SaliencyExplainer
	// CounterfactualExplainer produces counterfactual examples.
	CounterfactualExplainer = explain.CounterfactualExplainer
)

// CERTA itself (see internal/core).
type (
	// Explainer computes CERTA explanations against two sources.
	Explainer = core.Explainer
	// Options tunes CERTA (τ, monotonicity, augmentation...).
	Options = core.Options
	// Result is a full CERTA explanation (saliency + counterfactuals +
	// diagnostics).
	Result = core.Result
	// AttrSet is a side-qualified set of attributes (a lattice node).
	AttrSet = core.AttrSet
	// Diagnostics reports the work one explanation performed.
	Diagnostics = core.Diagnostics
	// TokenScore is a token-level saliency entry (the paper's §6
	// future-work extension, implemented by Explainer.TokenSaliency).
	TokenScore = core.TokenScore
	// TokenOptions tunes the token-level refinement.
	TokenOptions = core.TokenOptions
	// PrunePolicy is the lattice-level pruning policy
	// (Options.LatticePrune): stop exploring a lattice once a completed
	// level's flip fraction reaches Threshold — under monotone
	// propagation the deeper questions of such a saturated lattice are
	// mostly already answered for free. Pruning decisions
	// depend only on each lattice's own oracle answers, so pruned
	// results stay byte-identical at any Parallelism; the zero policy is
	// exact exploration.
	PrunePolicy = lattice.PrunePolicy
)

// New creates a CERTA explainer over the two sources U and V.
func New(left, right *Table, opts Options) *Explainer {
	return core.New(left, right, opts)
}

// ExplainBatch explains many predictions against the sources U and V,
// fanning the pairs out over opts.Parallelism workers while every
// explanation batches its model calls through one shared scoring
// service (opts.Shared when set, a per-batch service otherwise), so
// pair contents recurring across explanations are scored once per run.
// Results are index-aligned with pairs and identical to a sequential
// loop of Explainer.Explain calls at any parallelism.
func ExplainBatch(m Model, left, right *Table, pairs []Pair, opts Options) ([]*Result, error) {
	return core.New(left, right, opts).ExplainBatch(m, pairs)
}

// ExplainBatchContext is ExplainBatch under a caller context: a
// cancelled ctx fail-fast-cancels the batch — explanations not yet
// started never run, in-flight ones abort at their next scoring call —
// and ctx.Err() is returned. Combine with Options.Deadline and
// Options.CallBudget for per-explanation anytime limits, which truncate
// (Diagnostics.Truncated) instead of erroring.
func ExplainBatchContext(ctx context.Context, m Model, left, right *Table, pairs []Pair, opts Options) ([]*Result, error) {
	return core.New(left, right, opts).ExplainBatchContext(ctx, m, pairs)
}

// Truncation reasons reported in Diagnostics.TruncatedBy.
const (
	// TruncatedByCallBudget marks explanations cut short by Options.CallBudget.
	TruncatedByCallBudget = core.TruncatedByCallBudget
	// TruncatedByDeadline marks explanations cut short by Options.Deadline.
	TruncatedByDeadline = core.TruncatedByDeadline
)

// Shared scoring service (see internal/scorecache).
type (
	// ScoringService is a shared, concurrency-safe score store: one
	// sharded cache with in-flight deduplication, meant to live for a
	// whole batch, harness or serving run. Inject it via Options.Shared
	// to make every explanation of a workload reuse each other's model
	// calls. It implements Model and BatchModel, so it can also be
	// handed directly to the baseline explainers.
	ScoringService = scorecache.Service
	// ScoringServiceOptions tunes the service: evaluation parallelism,
	// lock striping, and an optional capacity bound (sharded LRU) so
	// unbounded workloads cannot grow memory without limit.
	ScoringServiceOptions = scorecache.ServiceOptions
	// ScoringServiceStats reports a service's aggregate reuse: Misses
	// counts the unique model calls of the whole run.
	ScoringServiceStats = scorecache.ServiceStats
)

// NewScoringService wraps a model in a shared scoring service for use
// across many explanations (Options.Shared).
func NewScoringService(m Model, opts ScoringServiceOptions) *ScoringService {
	return scorecache.NewService(m, opts)
}

// The candidate retrieval layer (see internal/neighborhood): the
// per-table token index CERTA's triangle support search streams its
// candidates from. New builds one per Explainer automatically; build it
// once with NewCandidateIndex and inject it via Options.Retrieval to
// share it across ExplainBatch runs, an eval harness, or a server
// backend's lifetime — the retrieval work (tokenization, IDF postings,
// cached record texts) then happens at startup instead of on every
// request.
type (
	// CandidateIndex bundles the prebuilt retrieval indexes of a
	// benchmark's two sources (Options.Retrieval).
	CandidateIndex = neighborhood.Sources
	// CandidateSource streams one table's records in the deterministic
	// orders the triangle support search consumes (seeded shuffle,
	// overlap ranking).
	CandidateSource = neighborhood.CandidateSource
	// CandidateStream is a pull iterator over candidate records.
	CandidateStream = neighborhood.Stream
	// CandidateIndexStats reports an index's build-time footprint
	// (records, distinct tokens, build milliseconds).
	CandidateIndexStats = neighborhood.Stats
)

// NewCandidateIndex builds the immutable candidate retrieval indexes
// over the two sources. The same tables must be handed to New /
// ExplainBatch / the server backend alongside it.
func NewCandidateIndex(left, right *Table) *CandidateIndex {
	return neighborhood.NewSources(left, right)
}

// The explanation-serving subsystem (see internal/server): an HTTP JSON
// API over the engine with admission control (bounded in-flight
// explanations + bounded FIFO queue, 429 + Retry-After on overload),
// request coalescing (identical in-flight requests share one
// computation and receive byte-identical bodies), client-disconnect
// cancellation, and per-request anytime knobs (deadline_ms,
// call_budget, top_k). cmd/certa-serve is the ready-made daemon;
// embedders plug Server into any http.Server.
type (
	// Server is the HTTP explanation-serving subsystem (an http.Handler).
	Server = server.Server
	// ServerOptions tunes the serving layers (admission bounds, body
	// limits).
	ServerOptions = server.Options
	// ServerBackend configures one served (sources, model) pair with its
	// long-lived shared scoring service.
	ServerBackend = server.Backend
	// ServerStats is the GET /v1/stats document.
	ServerStats = server.StatsResponse

	// ExplainRequest is the POST /v1/explain wire request; certa-explain
	// -json emits the matching ExplainResponse so CLI and server share
	// one schema.
	ExplainRequest = server.ExplainRequest
	// ExplainResponse is the POST /v1/explain wire response (and one
	// element of a batch response).
	ExplainResponse = server.ExplainResponse
	// BatchRequest is the POST /v1/explain/batch wire request.
	BatchRequest = server.BatchRequest
	// BatchResponse is the POST /v1/explain/batch wire response.
	BatchResponse = server.BatchResponse
)

// NewServer builds the HTTP explanation-serving subsystem over the
// given backends. Backends may inject a ScoringService restored from a
// Snapshot so the server starts warm; Server.Snapshot writes one back
// out on shutdown.
func NewServer(backends []ServerBackend, opts ServerOptions) (*Server, error) {
	return server.New(backends, opts)
}

// ScoreBatch scores every pair with m, through its native batch entry
// point when it implements BatchModel and one Score call per pair
// otherwise.
func ScoreBatch(m Model, pairs []Pair) []float64 {
	return explain.ScoreBatch(m, pairs)
}

// ScoreBatchContext scores every pair with m under ctx, through the
// native context entry point when m implements ContextModel and a
// per-batch cancellation check otherwise.
func ScoreBatchContext(ctx context.Context, m Model, pairs []Pair) ([]float64, error) {
	return explain.ScoreBatchContext(ctx, m, pairs)
}

// NewSchema builds a schema, validating attribute names.
func NewSchema(name string, attrs ...string) (*Schema, error) {
	return record.NewSchema(name, attrs...)
}

// NewRecord builds a record for a schema.
func NewRecord(id string, schema *Schema, values ...string) (*Record, error) {
	return record.New(id, schema, values...)
}

// NewTable creates an empty table for a schema.
func NewTable(schema *Schema) *Table { return record.NewTable(schema) }

// matcherFunc adapts a plain scoring function to Model.
type matcherFunc struct {
	name string
	fn   func(Pair) float64
}

func (m matcherFunc) Name() string         { return m.name }
func (m matcherFunc) Score(p Pair) float64 { return m.fn(p) }

// MatcherFunc wraps a scoring function as a Model so arbitrary
// classifiers can be explained.
func MatcherFunc(name string, fn func(Pair) float64) Model {
	return matcherFunc{name: name, fn: fn}
}

// Benchmarks (see internal/dataset).
type (
	// Benchmark is a generated two-source ER dataset with splits.
	Benchmark = dataset.Benchmark
	// BenchmarkOptions scales generation.
	BenchmarkOptions = dataset.Options
	// BenchmarkSpec describes one of the twelve paper benchmarks.
	BenchmarkSpec = dataset.Spec
)

// BenchmarkCodes lists the twelve paper benchmarks (AB, AG, BA, DA, DS,
// FZ, IA, WA, DDA, DDS, DIA, DWA).
func BenchmarkCodes() []string { return dataset.Codes() }

// GenerateBenchmark synthesizes one of the twelve paper benchmarks.
func GenerateBenchmark(code string, opts BenchmarkOptions) (*Benchmark, error) {
	return dataset.Generate(code, opts)
}

// ER systems (see internal/matchers).
type (
	// Matcher is a trained ER model (implements Model).
	Matcher = matchers.Model
	// MatcherKind selects DeepER, DeepMatcher, Ditto or SVM.
	MatcherKind = matchers.Kind
	// MatcherConfig tunes training.
	MatcherConfig = matchers.Config
)

// The ER systems evaluated in the paper, plus a linear baseline.
const (
	// DeepER is the record-level LSTM-style system.
	DeepER = matchers.DeepER
	// DeepMatcher is the attribute-level Hybrid system.
	DeepMatcher = matchers.DeepMatcher
	// Ditto is the sequence-level transformer-style system.
	Ditto = matchers.Ditto
	// SVM is a classic linear baseline.
	SVM = matchers.SVM
)

// TrainMatcher fits one of the ER systems on a benchmark.
func TrainMatcher(kind MatcherKind, b *Benchmark, cfg MatcherConfig) (*Matcher, error) {
	return matchers.Train(kind, b, cfg)
}

// F1 computes a matcher's F1 on labeled pairs.
func F1(m Model, pairs []LabeledPair) float64 {
	return matchers.F1(modelAdapter{m}, pairs)
}

// modelAdapter bridges explain.Model to matchers.Matcher (identical
// method sets; Go needs the nominal hop).
type modelAdapter struct{ explain.Model }

// Baseline explainers (see internal/baselines).

// LIMEConfig tunes the LIME-based baselines (Mojito, LandMark, LIME-C).
type LIMEConfig = lime.Config

// SHAPConfig tunes the SHAP-based baselines (SHAP, SHAP-C).
type SHAPConfig = shap.Config

// DiCEConfig tunes the DiCE baseline.
type DiCEConfig = baselines.DiCEConfig

// NewMojito creates the Mojito saliency baseline (LIME with ER
// drop/copy operators).
func NewMojito(cfg LIMEConfig) SaliencyExplainer { return baselines.NewMojito(cfg) }

// NewLandMark creates the LandMark saliency baseline (double LIME with a
// landmark record).
func NewLandMark(cfg LIMEConfig) SaliencyExplainer { return baselines.NewLandMark(cfg) }

// NewSHAP creates the task-agnostic Kernel SHAP saliency baseline.
func NewSHAP(cfg SHAPConfig) SaliencyExplainer { return baselines.NewSHAP(cfg) }

// NewDiCE creates the DiCE counterfactual baseline over the two sources'
// value domains.
func NewDiCE(left, right *Table, cfg DiCEConfig) CounterfactualExplainer {
	return baselines.NewDiCE(left, right, cfg)
}

// NewLIMEC creates the LIME-C counterfactual baseline (k counterfactuals
// max; 0 = default).
func NewLIMEC(cfg LIMEConfig, k int) CounterfactualExplainer { return baselines.NewLIMEC(cfg, k) }

// NewSHAPC creates the SHAP-C counterfactual baseline.
func NewSHAPC(cfg SHAPConfig, k int) CounterfactualExplainer { return baselines.NewSHAPC(cfg, k) }

// Blocking (see internal/blocking).
type (
	// BlockingCandidate is one blocked pair with its retrieval score.
	BlockingCandidate = blocking.Candidate
	// BlockingConfig tunes the token blocker.
	BlockingConfig = blocking.Config
	// TokenBlocker generates candidate pairs by shared IDF-weighted
	// tokens, avoiding the quadratic cross product.
	TokenBlocker = blocking.TokenBlocker
	// BlockingQuality reports recall and reduction ratio of a candidate
	// set.
	BlockingQuality = blocking.Quality
)

// NewTokenBlocker indexes the right source for candidate generation.
func NewTokenBlocker(right *Table, cfg BlockingConfig) (*TokenBlocker, error) {
	return blocking.NewTokenBlocker(right, cfg)
}

// BlockedClusterPairs builds the k x k bipartite blocked candidate
// cluster around a pair: the top-k right candidates of its left record,
// the top-k left candidates of its right record, and every cross pair
// of the two sets. This is the serving-shaped explanation workload — an
// ER system resolving a candidate group explains all of its pairs — and
// its pairs share pivot records, so a shared scoring service
// (NewScoringService) amortizes their triangle scans across
// explanations where per-explanation caches cannot.
func BlockedClusterPairs(left, right *Table, seed Pair, k int) ([]Pair, error) {
	rightBlocker, err := blocking.NewTokenBlocker(right, blocking.Config{MaxPerRecord: k})
	if err != nil {
		return nil, err
	}
	leftBlocker, err := blocking.NewTokenBlocker(left, blocking.Config{MaxPerRecord: k})
	if err != nil {
		return nil, err
	}
	// CandidatesFor pairs the query on the left; the indexed table's
	// records sit on the right of each candidate pair.
	var lefts, rights []*Record
	for _, c := range leftBlocker.CandidatesFor(seed.Right) {
		lefts = append(lefts, c.Pair.Right)
	}
	for _, c := range rightBlocker.CandidatesFor(seed.Left) {
		rights = append(rights, c.Pair.Right)
	}
	if len(lefts) == 0 || len(rights) == 0 {
		return nil, fmt.Errorf("certa: blocked cluster around %s is empty", seed.Key())
	}
	pairs := make([]Pair, 0, len(lefts)*len(rights))
	for _, l := range lefts {
		for _, r := range rights {
			pairs = append(pairs, Pair{Left: l, Right: r})
		}
	}
	return pairs, nil
}

// EvaluateBlocking scores a candidate set against ground truth.
func EvaluateBlocking(cands []BlockingCandidate, leftN, rightN, totalMatches int, isMatch func(l, r string) bool) BlockingQuality {
	return blocking.Evaluate(cands, leftN, rightN, totalMatches, isMatch)
}

// Evaluation metrics (see internal/metrics).

// Faithfulness is the AUC of the threshold/F1 masking curve (lower =
// more faithful saliency).
func Faithfulness(m Model, pairs []LabeledPair, sals []*Saliency) (float64, error) {
	return metrics.Faithfulness(m, pairs, sals)
}

// ConfidenceIndication is the MAE of a logistic model predicting the
// classifier score from saliency vectors (lower is better).
func ConfidenceIndication(sals []*Saliency) (float64, error) {
	return metrics.ConfidenceIndication(sals)
}

// Proximity, Sparsity, Diversity and Validity evaluate counterfactual
// explanation sets (higher is better for the first three).
func Proximity(cfs []Counterfactual) float64 { return metrics.Proximity(cfs) }

// Sparsity is the mean fraction of unchanged attributes.
func Sparsity(cfs []Counterfactual) float64 { return metrics.Sparsity(cfs) }

// Diversity is the mean pairwise distance among a pair's counterfactuals.
func Diversity(cfs []Counterfactual) float64 { return metrics.Diversity(cfs) }

// Validity is the fraction of counterfactuals that actually flip.
func Validity(cfs []Counterfactual) float64 { return metrics.Validity(cfs) }

// SaliencyTopKAgreement is the Jaccard overlap of two saliencies' top-k
// attribute sets — the rank-agreement proxy the anytime experiments use
// to measure how close a budget-truncated explanation is to the
// unlimited run's.
func SaliencyTopKAgreement(a, b *Saliency, k int) float64 { return metrics.TopKAgreement(a, b, k) }

package certa_test

// One benchmark per table/figure of the paper's evaluation (§5), plus
// ablation and micro benchmarks. Each experiment benchmark runs the eval
// harness in its Quick profile so `go test -bench=.` finishes in
// minutes; `cmd/certa-bench` regenerates the same artifacts at full
// scale.

import (
	"io"
	"sync"
	"testing"

	"certa"
	"certa/internal/core"
	"certa/internal/dataset"
	"certa/internal/eval"
	"certa/internal/matchers"
)

// benchHarness is shared across experiment benchmarks so dataset
// generation and model training are paid once.
var (
	bhOnce sync.Once
	bh     *eval.Harness
)

func benchEvalHarness() *eval.Harness {
	bhOnce.Do(func() {
		bh = eval.NewHarness(eval.Config{Seed: 7, Quick: true})
	})
	return bh
}

func runExperiment(b *testing.B, id string) {
	h := benchEvalHarness()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := h.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tables {
			if err := t.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable1DatasetGen regenerates Table 1 (dataset statistics).
func BenchmarkTable1DatasetGen(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFigure2Predictions regenerates Figure 2 (system predictions
// on the Figure 1 pairs).
func BenchmarkFigure2Predictions(b *testing.B) { runExperiment(b, "figure2") }

// BenchmarkFigure3Saliency regenerates Figures 3-4 (wrong-prediction
// saliency comparison and the faithfulness probe).
func BenchmarkFigure3Saliency(b *testing.B) { runExperiment(b, "figure3") }

// BenchmarkFigure5Counterfactual regenerates Figure 5 (CERTA vs DiCE
// counterfactuals).
func BenchmarkFigure5Counterfactual(b *testing.B) { runExperiment(b, "figure5") }

// BenchmarkTable2Faithfulness regenerates Table 2.
func BenchmarkTable2Faithfulness(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3Confidence regenerates Table 3.
func BenchmarkTable3Confidence(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4Proximity regenerates Table 4.
func BenchmarkTable4Proximity(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5Sparsity regenerates Table 5.
func BenchmarkTable5Sparsity(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkTable6Diversity regenerates Table 6.
func BenchmarkTable6Diversity(b *testing.B) { runExperiment(b, "table6") }

// BenchmarkFigure10CFCount regenerates Figure 10 (average number of
// counterfactuals per method).
func BenchmarkFigure10CFCount(b *testing.B) { runExperiment(b, "figure10") }

// BenchmarkFigure11Triangles regenerates Figure 11 (the τ sweep).
func BenchmarkFigure11Triangles(b *testing.B) { runExperiment(b, "figure11") }

// BenchmarkTable7Monotonicity regenerates Table 7 (lattice savings vs
// error of the monotone-classifier assumption).
func BenchmarkTable7Monotonicity(b *testing.B) { runExperiment(b, "table7") }

// BenchmarkTable8Augmentation regenerates Table 8 (natural triangles
// without augmentation).
func BenchmarkTable8Augmentation(b *testing.B) { runExperiment(b, "table8") }

// BenchmarkTable9AugmentationEffect regenerates Tables 9-10 (metric
// deltas under forced augmentation).
func BenchmarkTable9AugmentationEffect(b *testing.B) { runExperiment(b, "table9") }

// BenchmarkFigure12CaseStudy regenerates Figure 12 (actual vs explained
// saliency on BA).
func BenchmarkFigure12CaseStudy(b *testing.B) { runExperiment(b, "figure12") }

// --- ablation benchmarks (DESIGN.md §5) --------------------------------

// benchCell builds one small trained cell outside the harness for the
// micro/ablation benchmarks.
type benchCell struct {
	bench *dataset.Benchmark
	model *matchers.Model
}

var (
	cellOnce sync.Once
	cellAB   benchCell
)

func abCell() benchCell {
	cellOnce.Do(func() {
		bench := dataset.MustGenerate("AB", dataset.Options{Seed: 9, MaxRecords: 120, MaxMatches: 60})
		model := matchers.MustTrain(matchers.DeepMatcher, bench, matchers.Config{Seed: 9})
		cellAB = benchCell{bench: bench, model: model}
	})
	return cellAB
}

// BenchmarkAblationMonotoneOn measures one CERTA explanation with the
// monotone-propagation optimization enabled (the default).
func BenchmarkAblationMonotoneOn(b *testing.B) {
	c := abCell()
	e := core.New(c.bench.Left, c.bench.Right, core.Options{Triangles: 20, Seed: 1})
	p := c.bench.Test[0].Pair
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Explain(c.model, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMonotoneOff measures the same explanation with exact
// lattice evaluation (every node tested), quantifying what Table 7's
// savings buy in wall-clock terms.
func BenchmarkAblationMonotoneOff(b *testing.B) {
	c := abCell()
	e := core.New(c.bench.Left, c.bench.Right, core.Options{Triangles: 20, Seed: 1, NoMonotone: true})
	p := c.bench.Test[0].Pair
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Explain(c.model, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTriangleBudget sweeps τ, the explanation's main cost
// knob (Figure 11's x-axis).
func BenchmarkAblationTriangleBudget(b *testing.B) {
	c := abCell()
	p := c.bench.Test[0].Pair
	for _, tau := range []int{10, 50, 100} {
		e := core.New(c.bench.Left, c.bench.Right, core.Options{Triangles: tau, Seed: 1})
		b.Run(sprintTau(tau), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.Explain(c.model, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sprintTau(tau int) string {
	switch tau {
	case 10:
		return "tau=10"
	case 50:
		return "tau=50"
	default:
		return "tau=100"
	}
}

// BenchmarkAblationTriangleSides compares the paper's symmetric
// left+right triangle design against a left-only ablation at the same
// total budget.
func BenchmarkAblationTriangleSides(b *testing.B) {
	c := abCell()
	p := c.bench.Test[0].Pair
	for _, leftOnly := range []bool{false, true} {
		e := core.New(c.bench.Left, c.bench.Right, core.Options{
			Triangles: 20, Seed: 1, LeftTrianglesOnly: leftOnly,
		})
		name := "both-sides"
		if leftOnly {
			name = "left-only"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.Explain(c.model, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationParallelism measures the effect of exploring triangle
// lattices concurrently.
func BenchmarkAblationParallelism(b *testing.B) {
	c := abCell()
	p := c.bench.Test[0].Pair
	for _, par := range []int{1, 4} {
		e := core.New(c.bench.Left, c.bench.Right, core.Options{Triangles: 40, Seed: 1, Parallelism: par})
		name := "serial"
		if par > 1 {
			name = "parallel4"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.Explain(c.model, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMatcherScore measures raw model-call throughput, the unit
// cost every explainer multiplies.
func BenchmarkMatcherScore(b *testing.B) {
	c := abCell()
	p := c.bench.Test[0].Pair
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.model.Score(p)
	}
}

// --- batched scoring pipeline benchmarks --------------------------------

// TestBatchedPipelineModelCallReduction is the acceptance gate of the
// batched scoring refactor: on the AB benchmark, the batched pipeline
// (score cache + guided support search) must reach the model at least
// 2x less often per explanation than the seed path — blind augmentation
// scan, point lookups, no memoization — did. Both runs explain the same
// pairs with the same τ and seed; the diagnostics expose the call
// counts.
func TestBatchedPipelineModelCallReduction(t *testing.T) {
	c := abCell()
	seedExp := certa.New(c.bench.Left, c.bench.Right, certa.Options{
		Triangles: 100, Seed: 1, DisableCache: true, SeedSearch: true,
	})
	newExp := certa.New(c.bench.Left, c.bench.Right, certa.Options{Triangles: 100, Seed: 1})
	var seedCalls, modelCalls int
	n := len(c.bench.Test)
	if n > 8 {
		n = 8
	}
	for _, lp := range c.bench.Test[:n] {
		seedRes, err := seedExp.Explain(c.model, lp.Pair)
		if err != nil {
			t.Fatal(err)
		}
		// SeedPathCalls of a SeedSearch+DisableCache run is exactly what
		// the sequential pre-refactor pipeline scored: the candidate scan
		// up to the last accepted support plus every lattice query.
		seedCalls += seedRes.Diag.SeedPathCalls

		newRes, err := newExp.Explain(c.model, lp.Pair)
		if err != nil {
			t.Fatal(err)
		}
		modelCalls += newRes.Diag.ModelCalls
	}
	t.Logf("AB: seed path %d calls, batched pipeline %d unique calls (%.2fx reduction) over %d explanations",
		seedCalls, modelCalls, float64(seedCalls)/float64(modelCalls), n)
	if modelCalls*2 > seedCalls {
		t.Errorf("batched pipeline made %d model calls; seed path made %d — want >=2x reduction",
			modelCalls, seedCalls)
	}
}

// TestSharedScorerCrossExplanationReduction is the acceptance gate of
// the shared scoring service: a batch of 16 AB explanations through one
// shared scorer must make strictly fewer total unique model calls than
// 16 private-cache explanations would. The per-explanation Diagnostics
// are private-cache-equivalent by construction (pinned by the core
// determinism tests), so one shared run yields both numbers: the sum of
// Diag.ModelCalls is the private cost, the service's Misses the shared
// cost.
func TestSharedScorerCrossExplanationReduction(t *testing.T) {
	c := abCell()
	// The 4x4 bipartite blocked cluster around the first test pair: the
	// serving-shaped workload whose pairs share pivot records.
	pairs, err := certa.BlockedClusterPairs(c.bench.Left, c.bench.Right, c.bench.Test[0].Pair, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) > 16 {
		pairs = pairs[:16]
	}
	svc := certa.NewScoringService(c.model, certa.ScoringServiceOptions{Parallelism: 2})
	results, err := certa.ExplainBatch(c.model, c.bench.Left, c.bench.Right, pairs, certa.Options{
		Triangles: 100, Seed: 1, Parallelism: 2, Shared: svc,
	})
	if err != nil {
		t.Fatal(err)
	}
	private := 0
	for _, res := range results {
		private += res.Diag.ModelCalls
	}
	shared := svc.Stats().Misses
	t.Logf("AB cluster: %d explanations, %d private-cache calls, %d shared unique calls (%.2fx cross-explanation reduction)",
		len(results), private, shared, float64(private)/float64(shared))
	if shared >= private {
		t.Errorf("shared scorer made %d unique model calls; private caches would make %d — want strictly fewer", shared, private)
	}
	if float64(private) < 1.5*float64(shared) {
		t.Errorf("cross-explanation reduction %.2fx below the 1.5x acceptance bar", float64(private)/float64(shared))
	}
}

// BenchmarkExplainModelCalls reports the per-explanation model-call
// economics of the batched pipeline as benchmark metrics.
func BenchmarkExplainModelCalls(b *testing.B) {
	c := abCell()
	e := certa.New(c.bench.Left, c.bench.Right, certa.Options{Triangles: 100, Seed: 1})
	p := c.bench.Test[0].Pair
	b.ReportAllocs()
	b.ResetTimer()
	var seedCalls, modelCalls, hits, lookups float64
	for i := 0; i < b.N; i++ {
		res, err := e.Explain(c.model, p)
		if err != nil {
			b.Fatal(err)
		}
		seedCalls += float64(res.Diag.SeedPathCalls)
		modelCalls += float64(res.Diag.ModelCalls)
		hits += float64(res.Diag.CacheHits)
		lookups += float64(res.Diag.CacheLookups)
	}
	b.ReportMetric(modelCalls/float64(b.N), "modelcalls/explanation")
	b.ReportMetric(seedCalls/float64(b.N), "seedcalls/explanation")
	b.ReportMetric(hits/lookups, "cachehitrate")
}

// BenchmarkExplainBatch measures cross-pair concurrency through the
// public batch API at several worker counts.
func BenchmarkExplainBatch(b *testing.B) {
	c := abCell()
	pairs := make([]certa.Pair, 0, len(c.bench.Test))
	for _, lp := range c.bench.Test {
		pairs = append(pairs, lp.Pair)
	}
	for _, par := range []int{1, 4} {
		name := "serial"
		if par > 1 {
			name = "parallel4"
		}
		b.Run(name, func(b *testing.B) {
			e := certa.New(c.bench.Left, c.bench.Right, certa.Options{Triangles: 20, Seed: 1, Parallelism: par})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.ExplainBatch(c.model, pairs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(pairs)), "explanations/op")
		})
	}
}

// BenchmarkPublicAPIExplain measures one end-to-end explanation through
// the public facade.
func BenchmarkPublicAPIExplain(b *testing.B) {
	c := abCell()
	e := certa.New(c.bench.Left, c.bench.Right, certa.Options{Triangles: 20, Seed: 1})
	p := c.bench.Test[0].Pair
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Explain(c.model, p); err != nil {
			b.Fatal(err)
		}
	}
}

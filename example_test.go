package certa_test

import (
	"fmt"
	"log"

	"certa"
	"certa/internal/strutil"
)

// Example explains a hand-written rule-based matcher: CERTA needs only a
// Score function and the two source tables.
func Example() {
	u, err := certa.NewSchema("U", "name", "city")
	if err != nil {
		log.Fatal(err)
	}
	v, err := certa.NewSchema("V", "name", "city")
	if err != nil {
		log.Fatal(err)
	}
	left, right := certa.NewTable(u), certa.NewTable(v)
	for i, name := range []string{"golden dragon", "casa luna", "blue harbor", "mama rosa"} {
		lr, _ := certa.NewRecord(fmt.Sprintf("l%d", i), u, name, "springfield")
		rr, _ := certa.NewRecord(fmt.Sprintf("r%d", i), v, name, "springfield")
		left.MustAdd(lr)
		right.MustAdd(rr)
	}

	// The "model": match iff the names overlap. It never reads the city.
	model := certa.MatcherFunc("rules", func(p certa.Pair) float64 {
		return strutil.Jaccard(p.Left.Value("name"), p.Right.Value("name"))
	})

	l0, _ := left.Get("l0")
	r1, _ := right.Get("r1") // golden dragon vs casa luna: non-match
	explainer := certa.New(left, right, certa.Options{Triangles: 4, Seed: 1, DisableAugmentation: true})
	res, err := explainer.Explain(model, certa.Pair{Left: l0, Right: r1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("top attribute: %s\n", res.Saliency.Ranked()[0].Attr)
	fmt.Printf("counterfactual set: %s (probability %.0f%%)\n", res.BestSet.Key(), 100*res.BestSufficiency)
	fmt.Printf("counterfactuals flip: %v\n", res.Counterfactuals[0].Flips())
	// Output:
	// top attribute: name
	// counterfactual set: L:{name} (probability 100%)
	// counterfactuals flip: true
}

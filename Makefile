GO ?= go

.PHONY: all vet lint build test bench servesmoke profile ci clean

all: build

vet:
	$(GO) vet ./...

# lint builds the certa-lint multichecker (five custom analyzers
# enforcing the determinism, diagnostics-purity, context-threading and
# wire-stability contracts; see internal/lint/CATALOG.md) and runs it
# over the whole module through go vet's -vettool protocol.
lint:
	$(GO) build -o bin/certa-lint ./cmd/certa-lint
	$(GO) vet -vettool=$(CURDIR)/bin/certa-lint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench runs a single iteration of every benchmark as a smoke pass.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# servesmoke boots cmd/certa-serve on an ephemeral port, exercises the
# HTTP API cold and warm, and restarts it from its cache snapshot.
servesmoke:
	$(GO) run ./scripts/servesmoke

# BENCH_explain.json records explanations/sec and cache hit rate so
# future PRs can track the perf trajectory of the explanation pipeline.
BENCH_explain.json: FORCE
	$(GO) run ./cmd/certa-bench -benchjson $@ -parallelism 4

# profile captures a CPU profile of the blocked-cluster perf workload
# (certa.pprof; inspect with `go tool pprof certa.pprof`). The run also
# serves live pprof endpoints on an ephemeral port for ad-hoc grabs.
profile:
	$(GO) run ./cmd/certa-bench -benchjson /dev/null -parallelism 4 \
		-cpuprofile certa.pprof -pprof-addr 127.0.0.1:0
	@echo "CPU profile written to certa.pprof"

ci: vet lint build test bench servesmoke BENCH_explain.json

clean:
	rm -f BENCH_explain.json certa.pprof
	rm -rf bin

FORCE:

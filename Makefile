GO ?= go

.PHONY: all vet build test bench servesmoke ci clean

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench runs a single iteration of every benchmark as a smoke pass.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# servesmoke boots cmd/certa-serve on an ephemeral port, exercises the
# HTTP API cold and warm, and restarts it from its cache snapshot.
servesmoke:
	$(GO) run ./scripts/servesmoke

# BENCH_explain.json records explanations/sec and cache hit rate so
# future PRs can track the perf trajectory of the explanation pipeline.
BENCH_explain.json: FORCE
	$(GO) run ./cmd/certa-bench -benchjson $@ -parallelism 4

ci: vet build test bench servesmoke BENCH_explain.json

clean:
	rm -f BENCH_explain.json

FORCE:

// Command certa-bench regenerates the tables and figures of the CERTA
// paper's evaluation (§5). Each experiment is addressed by its paper
// artifact id:
//
//	certa-bench -exp table2            # Faithfulness grid
//	certa-bench -exp figure11          # triangle-count sweep
//	certa-bench -exp all               # everything, in paper order
//	certa-bench -list                  # show available experiments
//
// The synthetic benchmarks are scaled down by default so the full grid
// runs in minutes; -records/-matches/-pairs control the scale and
// -triangles sets CERTA's τ.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"certa/internal/eval"
	"certa/internal/matchers"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment id (table1..table9, figure2..figure12) or \"all\"")
		list        = flag.Bool("list", false, "list available experiments and exit")
		seed        = flag.Int64("seed", 7, "global random seed")
		records     = flag.Int("records", 0, "max records per source (0 = default)")
		matches     = flag.Int("matches", 0, "max matching pairs (0 = default)")
		pairs       = flag.Int("pairs", 0, "explained test pairs per (dataset, model) cell (0 = default)")
		triangles   = flag.Int("triangles", 0, "CERTA triangle budget τ (0 = default 100)")
		datasets    = flag.String("datasets", "", "comma-separated dataset codes (default: all 12)")
		models      = flag.String("models", "", "comma-separated models: DeepER,DeepMatcher,Ditto")
		parallelism = flag.Int("parallelism", 1, "concurrent grid cells")
		quick       = flag.Bool("quick", false, "tiny profile (for smoke runs)")
		report      = flag.String("report", "", "write a markdown paper-vs-measured report (all experiments) to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range eval.Experiments() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := eval.Config{
		Seed:         *seed,
		MaxRecords:   *records,
		MaxMatches:   *matches,
		ExplainPairs: *pairs,
		Triangles:    *triangles,
		Parallelism:  *parallelism,
		Quick:        *quick,
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	if *models != "" {
		for _, m := range strings.Split(*models, ",") {
			cfg.Models = append(cfg.Models, matchers.Kind(m))
		}
	}

	h := eval.NewHarness(cfg)
	start := time.Now()

	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "certa-bench: %v\n", err)
			os.Exit(1)
		}
		if err := h.WriteReport(f); err != nil {
			fmt.Fprintf(os.Stderr, "certa-bench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "certa-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "certa-bench: report written to %s in %s\n", *report, time.Since(start).Round(time.Millisecond))
		return
	}

	var err error
	if *exp == "all" {
		err = h.RunAll(os.Stdout)
	} else {
		var tables []*eval.Table
		tables, err = h.Run(*exp)
		for _, t := range tables {
			if rerr := t.Render(os.Stdout); rerr != nil && err == nil {
				err = rerr
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "certa-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "certa-bench: done in %s\n", time.Since(start).Round(time.Millisecond))
}

// Command certa-bench regenerates the tables and figures of the CERTA
// paper's evaluation (§5). Each experiment is addressed by its paper
// artifact id:
//
//	certa-bench -exp table2            # Faithfulness grid
//	certa-bench -exp figure11          # triangle-count sweep
//	certa-bench -exp all               # everything, in paper order
//	certa-bench -list                  # show available experiments
//
// The synthetic benchmarks are scaled down by default so the full grid
// runs in minutes; -records/-matches/-pairs control the scale and
// -triangles sets CERTA's τ.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"reflect"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"certa"
	"certa/internal/cluster"
	"certa/internal/debugserve"
	"certa/internal/embedding"
	"certa/internal/eval"
	"certa/internal/matchers"
	"certa/internal/neighborhood"
	"certa/internal/scorecache"
	"certa/internal/telemetry"
	"certa/internal/workpool"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment id (table1..table9, figure2..figure12) or \"all\"")
		list        = flag.Bool("list", false, "list available experiments and exit")
		seed        = flag.Int64("seed", 7, "global random seed")
		records     = flag.Int("records", 0, "max records per source (0 = default)")
		matches     = flag.Int("matches", 0, "max matching pairs (0 = default)")
		pairs       = flag.Int("pairs", 0, "explained test pairs per (dataset, model) cell (0 = default)")
		triangles   = flag.Int("triangles", 0, "CERTA triangle budget τ (0 = default 100)")
		datasets    = flag.String("datasets", "", "comma-separated dataset codes (default: all 12)")
		models      = flag.String("models", "", "comma-separated models: DeepER,DeepMatcher,Ditto")
		parallelism = flag.Int("parallelism", 1, "concurrent grid cells")
		quick       = flag.Bool("quick", false, "tiny profile (for smoke runs)")
		report      = flag.String("report", "", "write a markdown paper-vs-measured report (all experiments) to this file")
		benchJSON   = flag.String("benchjson", "", "run the batched-pipeline perf probe on AB and write JSON metrics to this file")
		deadline    = flag.Duration("deadline", 0, "per-explanation soft deadline for the perf probe (Options.Deadline; 0 = none)")
		callBudget  = flag.String("call-budget", "", "comma-separated CallBudget sweep for the perf probe's anytime curve, e.g. 40,80,160 (0 = unlimited reference)")
		prune       = flag.Float64("lattice-prune", 0.25, "pruning threshold for the perf probe's pruned pass (the BENCH \"pruning\" section; 0 = skip the pruned pass)")
		serveReqs   = flag.Int("serve-requests", 96, "load-generator requests against the in-process HTTP server for the perf probe's serve section (0 = skip)")
		serveConc   = flag.Int("serve-conc", 8, "load-generator client concurrency")
		clusterN    = flag.Int("cluster-workers", 4, "ring size for the perf probe's cluster section — sharded ring vs single worker at equal per-worker cache capacity (0 = skip)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this auxiliary address while the run executes (empty = disabled)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (make profile uses it on the perf probe)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		bound, err := debugserve.Start(*pprofAddr, telemetry.Default.Handler())
		if err != nil {
			fmt.Fprintf(os.Stderr, "certa-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "certa-bench: pprof endpoints on http://%s/debug/pprof/ (metrics at /v1/metrics)\n", bound)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "certa-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "certa-bench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	if *benchJSON != "" {
		budgets, err := parseBudgets(*callBudget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "certa-bench: %v\n", err)
			os.Exit(1)
		}
		if err := writeBenchJSON(*benchJSON, *seed, *parallelism, *deadline, budgets, *prune, *serveReqs, *serveConc, *clusterN); err != nil {
			fmt.Fprintf(os.Stderr, "certa-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range eval.Experiments() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := eval.Config{
		Seed:         *seed,
		MaxRecords:   *records,
		MaxMatches:   *matches,
		ExplainPairs: *pairs,
		Triangles:    *triangles,
		Parallelism:  *parallelism,
		Quick:        *quick,
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	if *models != "" {
		for _, m := range strings.Split(*models, ",") {
			cfg.Models = append(cfg.Models, matchers.Kind(m))
		}
	}

	h := eval.NewHarness(cfg)
	start := time.Now()

	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "certa-bench: %v\n", err)
			os.Exit(1)
		}
		if err := h.WriteReport(f); err != nil {
			fmt.Fprintf(os.Stderr, "certa-bench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "certa-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "certa-bench: report written to %s in %s\n", *report, time.Since(start).Round(time.Millisecond))
		return
	}

	var err error
	if *exp == "all" {
		err = h.RunAll(os.Stdout)
	} else {
		var tables []*eval.Table
		tables, err = h.Run(*exp)
		for _, t := range tables {
			if rerr := t.Render(os.Stdout); rerr != nil && err == nil {
				err = rerr
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "certa-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "certa-bench: done in %s\n", time.Since(start).Round(time.Millisecond))
}

// benchMetrics is the schema of the -benchjson output, tracked across
// PRs to watch the explanation pipeline's perf trajectory.
type benchMetrics struct {
	Benchmark          string  `json:"benchmark"`
	Model              string  `json:"model"`
	Workload           string  `json:"workload"`
	Explanations       int     `json:"explanations"`
	Parallelism        int     `json:"parallelism"`
	WallSeconds        float64 `json:"wall_seconds"`
	ExplanationsPerSec float64 `json:"explanations_per_sec"`
	// ModelCallsPerExpl is the per-explanation unique-call count a
	// private cache would pay (the per-explanation view's misses).
	ModelCallsPerExpl float64 `json:"model_calls_per_explanation"`
	SeedCallsPerExpl  float64 `json:"seed_path_calls_per_explanation"`
	// CacheHitRate is the per-explanation (private-view) hit rate;
	// SharedCacheHitRate is the shared store's rate over the requests
	// the views forwarded to it — the cross-explanation reuse.
	CacheHitRate       float64 `json:"cache_hit_rate"`
	SharedCacheHitRate float64 `json:"shared_cache_hit_rate"`
	// PrivateModelCalls sums the per-explanation unique calls (what 16
	// private caches would pay); UniqueModelCalls is what the shared
	// service actually paid for the whole run.
	PrivateModelCalls int `json:"private_model_calls_per_run"`
	UniqueModelCalls  int `json:"unique_model_calls_per_run"`
	// CallReduction divides the seed path's cost (sequential, uncached
	// point lookups) by the unique model calls of the whole shared run.
	CallReduction float64 `json:"call_reduction_vs_uncached"`
	// DeadlineMS echoes the -deadline flag applied to the main run (0 =
	// none); TruncatedFraction is that run's share of truncated
	// explanations (non-zero only under a deadline or budget).
	DeadlineMS        float64 `json:"deadline_ms,omitempty"`
	TruncatedFraction float64 `json:"truncated_fraction"`
	// Index is the candidate-retrieval-layer probe: build cost of the
	// shared per-table index, the retrieval speedup over the unindexed
	// scan, and the end-to-end throughput delta.
	Index *indexMetrics `json:"index"`
	// Anytime is the -call-budget sweep: per budget, throughput plus
	// quality proxies against an unlimited reference run (the main run
	// itself unless -deadline truncated it, in which case the sweep runs
	// its own).
	Anytime []anytimePoint `json:"anytime,omitempty"`
	// Serve is the HTTP load-generator probe: the same blocked-cluster
	// workload served by an in-process certa-serve-shaped server
	// (internal/server) over real TCP, measuring end-to-end request
	// latency through admission control, coalescing and the shared
	// cache.
	Serve *serveMetrics `json:"serve,omitempty"`
	// Scoring is the scoring-engine probe: forward-pass kernel speedup,
	// embedding-store and flip-memo reuse, and the end-to-end trajectory
	// against the PR 5 baseline.
	Scoring *scoringMetrics `json:"scoring"`
	// Pruning is the lattice-pruning probe: the same workload re-explained
	// under Options.LatticePrune on a fresh scoring service, with quality
	// measured as saliency agreement against the exact main run, plus the
	// featurization before/after microbench.
	Pruning *pruningMetrics `json:"pruning"`
	// Telemetry is the observability probe: the serve probe's scrape
	// footprint and the cost of always-on span recording.
	Telemetry *telemetryMetrics `json:"telemetry"`
	// Cluster is the scale-out probe: the same blocked-cluster workload
	// routed through a consistent-hash ring of capacity-bounded workers
	// (internal/cluster) versus a single worker with the same per-worker
	// cache capacity.
	Cluster *clusterMetrics `json:"cluster,omitempty"`
}

// clusterMetrics is the "cluster" section of BENCH_explain.json: what
// consistent-hash sharding buys on a machine (or fleet) where no single
// worker's stores can hold the whole workload. Both configurations run
// the identical cycling workload through a real certa-router over real
// TCP with the same per-worker capacities — the score cache sized so
// the ring's largest shard working set just fits, the result memo so
// the ring's largest request slice just fits. The single worker
// therefore thrashes both LRUs (a cycling workload is eviction's worst
// case), while each ring worker's slice of the keyspace stays resident
// end to end; the speedup is cache locality through shard routing, not
// CPU parallelism (the client is sequential and the host may have one
// core).
type clusterMetrics struct {
	Workers      int `json:"workers"`
	VirtualNodes int `json:"virtual_nodes"`
	// UniqueScoreKeys is the workload's whole score keyspace (measured by
	// an enumeration pass); PerWorkerCacheCapacity the LRU bound every
	// worker gets in both configurations (largest ring shard + slack).
	UniqueScoreKeys        int `json:"unique_score_keys"`
	PerWorkerCacheCapacity int `json:"per_worker_cache_capacity"`
	// PerWorkerResultMemo is the serving-layer memo bound every worker
	// gets in both configurations: the largest number of distinct pairs
	// the ring routes to any one worker. A ring worker's slice fits; the
	// single worker cycles the full pair set through the same bound.
	PerWorkerResultMemo int `json:"per_worker_result_memo"`
	// WarmupRequests is the untimed cold cycle each configuration gets;
	// TimedRequests the measured cycling requests that follow it.
	WarmupRequests int `json:"warmup_requests"`
	TimedRequests  int `json:"timed_requests"`
	// The headline comparison: sequential-client request throughput of
	// the ring vs the single worker, both behind a router.
	SingleWorkerRPS float64 `json:"requests_per_sec_1_worker"`
	RingRPS         float64 `json:"requests_per_sec_ring"`
	Speedup         float64 `json:"speedup_ring_vs_1_worker"`
	// The mechanism: cumulative shared-cache hit rates and resident
	// entries. The ring's aggregate footprint covers the keyspace;
	// the single worker's cannot.
	SingleWorkerHitRate  float64 `json:"cache_hit_rate_1_worker"`
	RingHitRate          float64 `json:"cache_hit_rate_ring"`
	SingleWorkerEntries  int     `json:"cache_entries_1_worker"`
	RingAggregateEntries int     `json:"ring_aggregate_cache_entries"`
	// The serving-layer tier of the same mechanism: how often a repeat
	// request replayed its memoized body instead of recomputing. Ring
	// workers keep their slice resident; the single worker's memo
	// cycles and misses.
	SingleWorkerMemoHitRate float64 `json:"result_memo_hit_rate_1_worker"`
	RingMemoHitRate         float64 `json:"result_memo_hit_rate_ring"`
	// RoutedByteIdentical reports that every response body the ring and
	// the single-worker router returned was byte-identical to a direct
	// (router-less) certa-serve server's — the routing layer's
	// transparency contract, re-checked on every bench run.
	RoutedByteIdentical bool `json:"routed_byte_identical_to_direct"`
}

// telemetryMetrics is the "telemetry" section of BENCH_explain.json:
// what the internal/telemetry layer costs. SeriesCount/ScrapeBytes are
// read from the serve probe's GET /v1/metrics exposition (zero when
// -serve-requests=0 skips that probe). The overhead probe times the
// same workload with and without a telemetry.Trace riding the context
// — fresh scoring services per pass so both pay identical model calls
// — and the CI gate holds trace_overhead_pct under 2.
type telemetryMetrics struct {
	SeriesCount int `json:"series_count"`
	ScrapeBytes int `json:"scrape_bytes"`
	// PlainNSPerExpl/TracedNSPerExpl are best-of-reps ns per explanation
	// without and with a trace on the context; on a loaded machine their
	// difference carries percent-scale noise, so the overhead fields are
	// measured by decomposition instead (spans per explanation times
	// measured unit span cost — see traceOverheadProbe) and do not equal
	// that difference.
	PlainNSPerExpl         float64 `json:"plain_ns_per_explanation"`
	TracedNSPerExpl        float64 `json:"traced_ns_per_explanation"`
	TraceOverheadNSPerExpl float64 `json:"trace_overhead_ns_per_explanation"`
	TraceOverheadPct       float64 `json:"trace_overhead_pct"`
}

// pruningMetrics is the "pruning" section of BENCH_explain.json: what
// the estimator mode (Options.LatticePrune) saves on the blocked-cluster
// workload and what it costs in saliency fidelity, anchored against the
// PR 7 exact-mode baseline.
type pruningMetrics struct {
	// Threshold / MinLevels echo the policy of the pruned pass
	// (-lattice-prune; MinLevels 0 = the engine default of 2).
	Threshold float64 `json:"threshold"`
	MinLevels int     `json:"min_levels"`
	// WallSeconds / ExplanationsPerSec are the pruned pass end to end on
	// its own fresh scoring service (so the exact and pruned passes each
	// pay their own model calls); SpeedupVsExact divides the pruned
	// throughput by the headline exact run's.
	WallSeconds        float64 `json:"wall_seconds"`
	ExplanationsPerSec float64 `json:"explanations_per_sec"`
	SpeedupVsExact     float64 `json:"speedup_vs_exact"`
	// ModelCallsPerExpl is the pruned pass's per-explanation unique-call
	// count (the questions actually asked — the quantity pruning
	// attacks); QuestionReduction divides the exact run's count by it.
	// PrunedQueriesPerExpl is the ledger of questions the policy skipped.
	ModelCallsPerExpl    float64 `json:"model_calls_per_explanation"`
	QuestionReduction    float64 `json:"question_reduction_vs_exact"`
	PrunedQueriesPerExpl float64 `json:"pruned_queries_per_explanation"`
	// SaliencyTop2Agreement is the quality gate (mean Jaccard overlap of
	// the top-2 salient attributes with the exact run — the same measure
	// the anytime curve reports); CFValidity the pruned counterfactuals'
	// flip rate (-1 when none were emitted).
	SaliencyTop2Agreement float64 `json:"saliency_top2_agreement"`
	CFValidity            float64 `json:"cf_validity"`
	// The PR 7 anchors (its BENCH_explain.json exact-mode recordings) and
	// the trajectory against them.
	PR7BaselineExplPerSec   float64 `json:"pr7_baseline_explanations_per_sec"`
	PR7BaselineCallsPerExpl float64 `json:"pr7_baseline_model_calls_per_explanation"`
	SpeedupVsPR7Baseline    float64 `json:"speedup_vs_pr7_baseline"`
	QuestionReductionVsPR7  float64 `json:"question_reduction_vs_pr7_baseline"`
	// The featurization microbench: one DeepMatcher attribute block
	// through the tokenize-once path (matchers.AttrBlock) vs the
	// re-tokenizing reference (matchers.AttrBlockRef), embeddings
	// memoized as in production.
	FeaturizeNSPerOp          float64 `json:"featurize_ns_per_op"`
	FeaturizeReferenceNSPerOp float64 `json:"featurize_reference_ns_per_op"`
	FeaturizeSpeedup          float64 `json:"featurize_speedup"`
}

// scoringMetrics is the "scoring" section of BENCH_explain.json: what
// the three scoring-engine layers (batched forward pass, persistent
// embedding store, cross-explanation flip memo) contribute on the main
// blocked-cluster run.
type scoringMetrics struct {
	// ForwardBaselineNSPerRow / ForwardBatchNSPerRow time the trained
	// network's pre-batching per-row path against the batched arena
	// kernel on rows of the model's real feature dimension;
	// ForwardPassSpeedup is their ratio.
	ForwardBaselineNSPerRow float64 `json:"forward_baseline_ns_per_row"`
	ForwardBatchNSPerRow    float64 `json:"forward_batch_ns_per_row"`
	ForwardPassSpeedup      float64 `json:"forward_pass_speedup"`
	// EmbeddingStoreHitRate is the matcher-lifetime embedding store's
	// hit rate across the whole run: every hit is an attribute/record
	// text that did not re-embed.
	EmbeddingLookups      int     `json:"embedding_lookups"`
	EmbeddingStoreHitRate float64 `json:"embedding_store_hit_rate"`
	// FlipMemoHitRate is FlipHits/FlipLookups on the main run's shared
	// service: lattice oracle questions answered from another
	// explanation's settled outcome without a score fetch.
	FlipLookups     int     `json:"flip_lookups"`
	FlipHits        int     `json:"flip_hits"`
	FlipMemoHitRate float64 `json:"flip_memo_hit_rate"`
	// PR5BaselineExplPerSec is the blocked-cluster throughput recorded by
	// PR 5's BENCH_explain.json; SpeedupVsPR5 divides the headline
	// explanations_per_sec by it.
	PR5BaselineExplPerSec float64 `json:"pr5_baseline_explanations_per_sec"`
	SpeedupVsPR5          float64 `json:"speedup_vs_pr5_baseline"`
}

// serveMetrics is the "serve" section of BENCH_explain.json.
type serveMetrics struct {
	// Requests is the total load-generator requests issued (cycling over
	// the blocked-cluster pairs, so later passes hit a warm cache);
	// Concurrency the client workers issuing them.
	Requests    int `json:"requests"`
	Concurrency int `json:"concurrency"`
	// ServeThroughput is completed requests per wall-clock second; P50MS
	// and P99MS are end-to-end request latency percentiles.
	WallSeconds     float64 `json:"wall_seconds"`
	ServeThroughput float64 `json:"serve_throughput_rps"`
	P50MS           float64 `json:"p50_ms"`
	P99MS           float64 `json:"p99_ms"`
	// Coalesced counts requests that shared another request's in-flight
	// computation; Rejected counts admission 429s (the load is sized to
	// the queue, so normally 0). CoalesceStormRequests is the burst of
	// identical requests fired at the cold first pair before the timed
	// load specifically to exercise coalescing (identical requests only
	// coalesce while one is still computing, and the cycling load is too
	// fast past the cold pass for duplicates to overlap on their own) —
	// all but one of the burst must land as Coalesced, and CI gates on
	// the counter being non-zero.
	Coalesced             int64 `json:"coalesced"`
	Rejected              int64 `json:"rejected"`
	CoalesceStormRequests int   `json:"coalesce_storm_requests"`
	// SharedCacheHitRate is the server-side score cache's hit rate over
	// the whole load.
	SharedCacheHitRate float64 `json:"shared_cache_hit_rate"`
	// FlipLookups / FlipHits / FlipMemoHitRate are the service's
	// flip-outcome memo counters over the whole load. Within a single
	// cold explanation the memo structurally hits on only a few percent
	// of questions (each batch settles most of its questions locally
	// under the view lock; see the scoring section's one-pass rate) —
	// the memo's payoff is RE-explanation, which this load exercises by
	// cycling the pairs: every warm pass answers its lattice questions
	// from the memo without touching the model.
	FlipLookups     int     `json:"flip_lookups"`
	FlipHits        int     `json:"flip_hits"`
	FlipMemoHitRate float64 `json:"flip_memo_hit_rate"`
}

// indexMetrics is the "index" section of BENCH_explain.json: what the
// shared candidate retrieval layer costs to build and what it buys per
// explanation.
type indexMetrics struct {
	// Records / DistinctTokens / BuildMS are the index's build-time
	// footprint over both sources.
	Records        int     `json:"records"`
	DistinctTokens int     `json:"distinct_tokens"`
	BuildMS        float64 `json:"build_ms"`
	// RetrievalScanMS and RetrievalIndexMS time the same candidate
	// retrieval workload — the first 50 overlap-ranked candidates for
	// every cluster pivot, repeated — through the unindexed scan
	// (per-call tokenization + full sort) and the prebuilt index (lazy
	// heap over precomputed postings). RetrievalSpeedup is their ratio:
	// the per-explanation retrieval work that no longer scales with
	// table size.
	RetrievalScanMS  float64 `json:"retrieval_scan_ms"`
	RetrievalIndexMS float64 `json:"retrieval_index_ms"`
	RetrievalSpeedup float64 `json:"retrieval_speedup"`
	// ScanExplanationsPerSec is end-to-end throughput of the same
	// workload under Options.DisableIndex with a fresh scoring service —
	// the baseline the headline explanations_per_sec is measured
	// against. SpeedupVsScan divides the two.
	ScanExplanationsPerSec float64 `json:"scan_explanations_per_sec"`
	SpeedupVsScan          float64 `json:"speedup_vs_scan"`
}

// anytimePoint is one entry of the anytime quality-vs-budget curve.
type anytimePoint struct {
	// CallBudget is Options.CallBudget for this sweep point (0 =
	// unlimited reference).
	CallBudget         int     `json:"call_budget"`
	ExplanationsPerSec float64 `json:"explanations_per_sec"`
	// TruncatedFraction is the share of explanations cut at the budget;
	// MeanCompleteness averages Diagnostics.Completeness.
	TruncatedFraction float64 `json:"truncated_fraction"`
	MeanCompleteness  float64 `json:"mean_completeness"`
	// SaliencyTop2Agreement is the faithfulness proxy: mean Jaccard
	// overlap of the top-2 salient attributes with the unlimited run.
	SaliencyTop2Agreement float64 `json:"saliency_top2_agreement"`
	// CFValidity is the flip rate of emitted counterfactuals (1 under
	// the monotone-classifier assumption; tight budgets lean harder on
	// inferred flips, so non-monotone matchers can dip below it); -1
	// when none were emitted.
	CFValidity     float64 `json:"cf_validity"`
	MeanModelCalls float64 `json:"mean_model_calls_per_explanation"`
}

// pr5BaselineExplPerSec is the blocked-cluster explanations_per_sec PR 5
// recorded in BENCH_explain.json (-parallelism 4) — the anchor the
// scoring section's end-to-end speedup is measured against.
const pr5BaselineExplPerSec = 7.27

// The PR 7 exact-mode anchors from its BENCH_explain.json (-parallelism
// 4): the throughput and per-explanation question count the pruning
// section's trajectory is measured against.
const (
	pr7BaselineExplPerSec   = 30.79
	pr7BaselineCallsPerExpl = 4150.7
)

// parseBudgets parses the -call-budget sweep list.
func parseBudgets(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || b < 0 {
			return nil, fmt.Errorf("invalid -call-budget entry %q", part)
		}
		out = append(out, b)
	}
	return out, nil
}

// writeBenchJSON trains a matcher on a small AB benchmark, explains a
// blocked candidate cluster through ExplainBatch with a shared scoring
// service, and writes throughput plus private-vs-shared cache metrics
// as JSON. deadline applies Options.Deadline to the main run; budgets
// adds the anytime quality-vs-budget curve, each sweep point explaining
// the same workload under its own fresh scoring service (the serving
// scenario a budgeted deployment would run). prune > 0 adds the pruned
// pass (the "pruning" section), whose saliency agreement is measured
// against the main run — run it without -deadline so that reference is
// the exact exploration.
func writeBenchJSON(path string, seed int64, parallelism int, deadline time.Duration, budgets []int, prune float64, serveReqs, serveConc, clusterWorkers int) error {
	bench, err := certa.GenerateBenchmark("AB", certa.BenchmarkOptions{
		Seed: seed, MaxRecords: 120, MaxMatches: 60,
	})
	if err != nil {
		return err
	}
	model, err := certa.TrainMatcher(certa.DeepMatcher, bench, certa.MatcherConfig{Seed: seed})
	if err != nil {
		return err
	}
	// The serving-shaped workload: the bipartite blocked cluster around
	// the first test pair (how an ER system resolves a candidate group).
	// Its pairs share pivot records, so the shared scoring service can
	// amortize their triangle scans; per-explanation caches cannot.
	const clusterK = 4
	pairs, err := certa.BlockedClusterPairs(bench.Left, bench.Right, bench.Test[0].Pair, clusterK)
	if err != nil {
		return err
	}
	if parallelism <= 0 {
		parallelism = 1
	}
	// The shared candidate retrieval index: built once, used by the main
	// run, the anytime sweep and the serve probe — and measured against
	// the unindexed scan baseline below.
	idx := certa.NewCandidateIndex(bench.Left, bench.Right)
	idxStats, _ := idx.Stats()

	// The scan baseline runs first (the conventional baseline-first
	// order, which also hands any process warm-up benefit to neither
	// side in particular): the same workload end-to-end through the
	// unindexed retrieval path, on its own fresh scoring service so both
	// passes pay the same model calls.
	scanSvc := certa.NewScoringService(model, certa.ScoringServiceOptions{Parallelism: parallelism})
	scanStart := time.Now()
	scanResults, err := certa.ExplainBatch(model, bench.Left, bench.Right, pairs, certa.Options{
		Triangles: 100, Seed: seed, Parallelism: parallelism, Shared: scanSvc,
		Deadline: deadline, DisableIndex: true,
	})
	if err != nil {
		return err
	}
	scanWall := time.Since(scanStart).Seconds()

	svc := certa.NewScoringService(model, certa.ScoringServiceOptions{Parallelism: parallelism})
	start := time.Now()
	results, err := certa.ExplainBatch(model, bench.Left, bench.Right, pairs, certa.Options{
		Triangles: 100, Seed: seed, Parallelism: parallelism, Shared: svc,
		Deadline: deadline, Retrieval: idx,
	})
	if err != nil {
		return err
	}
	wall := time.Since(start).Seconds()
	if deadline == 0 {
		// With no wall-clock limit both passes are deterministic: the
		// indexed and the scan retrieval paths must agree byte for byte.
		for i := range results {
			if !reflect.DeepEqual(results[i], scanResults[i]) {
				return fmt.Errorf("index probe: indexed and scan results diverge on pair %d (%s)", i, pairs[i].Key())
			}
		}
	}

	var modelCalls, seedCalls, hits, lookups, truncated float64
	for _, res := range results {
		modelCalls += float64(res.Diag.ModelCalls)
		seedCalls += float64(res.Diag.SeedPathCalls)
		hits += float64(res.Diag.CacheHits)
		lookups += float64(res.Diag.CacheLookups)
		if res.Diag.Truncated {
			truncated++
		}
	}
	st := svc.Stats()
	n := float64(len(results))
	m := benchMetrics{
		Benchmark:          "AB",
		Model:              model.Name(),
		Workload:           fmt.Sprintf("blocked-cluster-k%d-%dpairs", clusterK, len(pairs)),
		Explanations:       len(results),
		Parallelism:        parallelism,
		WallSeconds:        wall,
		ExplanationsPerSec: n / wall,
		ModelCallsPerExpl:  modelCalls / n,
		SeedCallsPerExpl:   seedCalls / n,
		CacheHitRate:       hits / lookups,
		SharedCacheHitRate: st.HitRate(),
		PrivateModelCalls:  int(modelCalls),
		UniqueModelCalls:   st.Misses,
		CallReduction:      seedCalls / float64(st.Misses),
		DeadlineMS:         float64(deadline) / float64(time.Millisecond),
		TruncatedFraction:  truncated / n,
	}

	// The retrieval-only microbench isolates the index's contribution
	// from the model-call-dominated end-to-end walls above.
	retScanMS, retIndexMS := retrievalMicrobench(bench, pairs, idx, seed)
	m.Index = &indexMetrics{
		Records:                idxStats.Records,
		DistinctTokens:         idxStats.DistinctTokens,
		BuildMS:                idxStats.BuildMS,
		RetrievalScanMS:        retScanMS,
		RetrievalIndexMS:       retIndexMS,
		RetrievalSpeedup:       retScanMS / retIndexMS,
		ScanExplanationsPerSec: n / scanWall,
		SpeedupVsScan:          scanWall / wall,
	}

	// The anytime curve: each budget re-explains the workload under its
	// own fresh shared service, measured against an unlimited reference.
	// With no -deadline the main run IS that reference (and the budget-0
	// sweep point reuses it instead of paying a second full pass); a
	// deadline-truncated main run cannot anchor quality, so the sweep
	// then pays for one dedicated unlimited pass.
	if len(budgets) > 0 {
		reference, refWall := results, wall
		if deadline != 0 {
			svc := certa.NewScoringService(model, certa.ScoringServiceOptions{Parallelism: parallelism})
			refStart := time.Now()
			reference, err = certa.ExplainBatch(model, bench.Left, bench.Right, pairs, certa.Options{
				Triangles: 100, Seed: seed, Parallelism: parallelism, Shared: svc,
				Retrieval: idx,
			})
			if err != nil {
				return err
			}
			refWall = time.Since(refStart).Seconds()
		}
		for _, budget := range budgets {
			var point anytimePoint
			if budget == 0 {
				point = summarizeAnytime(0, refWall, reference, reference)
			} else {
				point, err = anytimeSweepPoint(model, bench.Left, bench.Right, pairs, idx, seed, parallelism, budget, reference)
				if err != nil {
					return err
				}
			}
			m.Anytime = append(m.Anytime, point)
		}
	}

	var seriesCount, scrapeBytes int
	if serveReqs > 0 {
		serve, series, bytes, err := runServeLoad(bench, model, pairs, idx, seed, parallelism, serveReqs, serveConc)
		if err != nil {
			return err
		}
		m.Serve = serve
		seriesCount, scrapeBytes = series, bytes
	}

	// The observability probe: scrape footprint from the serve pass
	// above, span-recording overhead from a dedicated alternating A/B
	// pass. The CI gate holds the overhead percentage under 2.
	plainNS, tracedNS, overheadNS, err := traceOverheadProbe(bench, model, pairs, idx, seed, parallelism)
	if err != nil {
		return err
	}
	if overheadNS < 0 {
		overheadNS = 0 // the paired estimate drowned in scheduler noise
	}
	m.Telemetry = &telemetryMetrics{
		SeriesCount:            seriesCount,
		ScrapeBytes:            scrapeBytes,
		PlainNSPerExpl:         plainNS,
		TracedNSPerExpl:        tracedNS,
		TraceOverheadNSPerExpl: overheadNS,
		TraceOverheadPct:       100 * overheadNS / plainNS,
	}

	// The scoring-engine probe: kernel microbench on the trained
	// network's own architecture, plus the reuse counters the main run
	// accumulated above.
	baselineNS, batchNS := model.ForwardBench(256, 20)
	est := model.EmbeddingStats()
	m.Scoring = &scoringMetrics{
		ForwardBaselineNSPerRow: baselineNS,
		ForwardBatchNSPerRow:    batchNS,
		ForwardPassSpeedup:      baselineNS / batchNS,
		EmbeddingLookups:        est.Lookups,
		EmbeddingStoreHitRate:   est.HitRate(),
		FlipLookups:             st.FlipLookups,
		FlipHits:                st.FlipHits,
		FlipMemoHitRate:         st.FlipHitRate(),
		PR5BaselineExplPerSec:   pr5BaselineExplPerSec,
		SpeedupVsPR5:            m.ExplanationsPerSec / pr5BaselineExplPerSec,
	}

	// The pruning probe: the same workload under Options.LatticePrune on
	// a fresh scoring service (both passes pay their own model calls),
	// with saliency fidelity measured against the exact main run.
	if prune > 0 {
		// MinLevels 1 lets the cut fire on narrow schemas: the AB
		// benchmark has 3 attributes, so its lattices only explore
		// levels 1..2 and the engine default (MinLevels 2) leaves no
		// level at which a cut could still skip anything.
		policy := certa.PrunePolicy{Threshold: prune, MinLevels: 1}
		psvc := certa.NewScoringService(model, certa.ScoringServiceOptions{Parallelism: parallelism})
		pstart := time.Now()
		prunedResults, err := certa.ExplainBatch(model, bench.Left, bench.Right, pairs, certa.Options{
			Triangles: 100, Seed: seed, Parallelism: parallelism, Shared: psvc,
			Retrieval: idx, LatticePrune: policy,
		})
		if err != nil {
			return err
		}
		pwall := time.Since(pstart).Seconds()
		var prunedCalls, prunedQueries float64
		for _, res := range prunedResults {
			prunedCalls += float64(res.Diag.ModelCalls)
			prunedQueries += float64(res.Diag.PrunedQueries)
		}
		ps := eval.SummarizeAnytime(prunedResults, results)
		featNS, featRefNS := featurizeMicrobench()
		m.Pruning = &pruningMetrics{
			Threshold:                 policy.Threshold,
			MinLevels:                 policy.MinLevels,
			WallSeconds:               pwall,
			ExplanationsPerSec:        n / pwall,
			SpeedupVsExact:            (n / pwall) / m.ExplanationsPerSec,
			ModelCallsPerExpl:         prunedCalls / n,
			QuestionReduction:         m.ModelCallsPerExpl / (prunedCalls / n),
			PrunedQueriesPerExpl:      prunedQueries / n,
			SaliencyTop2Agreement:     ps.Top2Agreement,
			CFValidity:                ps.CFValidity,
			PR7BaselineExplPerSec:     pr7BaselineExplPerSec,
			PR7BaselineCallsPerExpl:   pr7BaselineCallsPerExpl,
			SpeedupVsPR7Baseline:      (n / pwall) / pr7BaselineExplPerSec,
			QuestionReductionVsPR7:    pr7BaselineCallsPerExpl / (prunedCalls / n),
			FeaturizeNSPerOp:          featNS,
			FeaturizeReferenceNSPerOp: featRefNS,
			FeaturizeSpeedup:          featRefNS / featNS,
		}
	}

	// The scale-out probe: the same workload through a real router over
	// a sharded ring vs a single worker at equal per-worker capacity.
	if clusterWorkers > 0 {
		cm, err := runClusterProbe(bench, model, pairs, idx, seed, parallelism, clusterWorkers)
		if err != nil {
			return err
		}
		m.Cluster = cm
	}

	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "certa-bench: %.1f explanations/sec, %d unique model calls for %d private, %.2fx reduction vs uncached, %d anytime points -> %s\n",
		m.ExplanationsPerSec, m.UniqueModelCalls, m.PrivateModelCalls, m.CallReduction, len(m.Anytime), path)
	if m.Index != nil {
		fmt.Fprintf(os.Stderr, "certa-bench: index probe: %d records / %d tokens built in %.1fms, retrieval %.1fx faster than scan, end-to-end %.1f vs %.1f expl/s (%.2fx)\n",
			m.Index.Records, m.Index.DistinctTokens, m.Index.BuildMS,
			m.Index.RetrievalSpeedup, m.ExplanationsPerSec, m.Index.ScanExplanationsPerSec, m.Index.SpeedupVsScan)
	}
	if m.Serve != nil {
		fmt.Fprintf(os.Stderr, "certa-bench: serve probe: %.1f req/s over %d requests (conc %d), p50 %.1fms, p99 %.1fms, %d coalesced, cache hit rate %.1f%%, flip memo hit rate %.1f%%\n",
			m.Serve.ServeThroughput, m.Serve.Requests, m.Serve.Concurrency,
			m.Serve.P50MS, m.Serve.P99MS, m.Serve.Coalesced, 100*m.Serve.SharedCacheHitRate,
			100*m.Serve.FlipMemoHitRate)
	}
	if m.Scoring != nil {
		fmt.Fprintf(os.Stderr, "certa-bench: scoring probe: forward pass %.1fx (%.0f -> %.0f ns/row), embedding store hit rate %.1f%%, flip memo %d/%d hits, %.2fx vs PR 5 baseline %.2f expl/s\n",
			m.Scoring.ForwardPassSpeedup, m.Scoring.ForwardBaselineNSPerRow, m.Scoring.ForwardBatchNSPerRow,
			100*m.Scoring.EmbeddingStoreHitRate, m.Scoring.FlipHits, m.Scoring.FlipLookups,
			m.Scoring.SpeedupVsPR5, m.Scoring.PR5BaselineExplPerSec)
	}
	if m.Pruning != nil {
		fmt.Fprintf(os.Stderr, "certa-bench: pruning probe: threshold %.2f: %.1f expl/s (%.2fx exact, %.2fx vs PR 7 baseline %.2f), %.0f calls/expl (%.2fx fewer questions), top-2 agreement %.3f, featurize %.0f -> %.0f ns/block (%.2fx)\n",
			m.Pruning.Threshold, m.Pruning.ExplanationsPerSec, m.Pruning.SpeedupVsExact,
			m.Pruning.SpeedupVsPR7Baseline, m.Pruning.PR7BaselineExplPerSec,
			m.Pruning.ModelCallsPerExpl, m.Pruning.QuestionReduction, m.Pruning.SaliencyTop2Agreement,
			m.Pruning.FeaturizeReferenceNSPerOp, m.Pruning.FeaturizeNSPerOp, m.Pruning.FeaturizeSpeedup)
	}
	if m.Telemetry != nil {
		fmt.Fprintf(os.Stderr, "certa-bench: telemetry probe: %d series (%d scrape bytes), trace overhead %.0f ns/expl (%.3f%% of %.0f ns)\n",
			m.Telemetry.SeriesCount, m.Telemetry.ScrapeBytes,
			m.Telemetry.TraceOverheadNSPerExpl, m.Telemetry.TraceOverheadPct, m.Telemetry.PlainNSPerExpl)
	}
	if m.Cluster != nil {
		fmt.Fprintf(os.Stderr, "certa-bench: cluster probe: %d-worker ring %.1f req/s vs single worker %.1f req/s (%.2fx) at capacity %d over %d keys; cache hit rate %.1f%% vs %.1f%%, memo hit rate %.1f%% vs %.1f%% (cap %d), byte-identical: %v\n",
			m.Cluster.Workers, m.Cluster.RingRPS, m.Cluster.SingleWorkerRPS, m.Cluster.Speedup,
			m.Cluster.PerWorkerCacheCapacity, m.Cluster.UniqueScoreKeys,
			100*m.Cluster.RingHitRate, 100*m.Cluster.SingleWorkerHitRate,
			100*m.Cluster.RingMemoHitRate, 100*m.Cluster.SingleWorkerMemoHitRate,
			m.Cluster.PerWorkerResultMemo, m.Cluster.RoutedByteIdentical)
	}
	return nil
}

// featurizeMicrobench times one DeepMatcher attribute block — the
// featurization hot path at high embedding-store hit rates — through
// the tokenize-once production path (matchers.AttrBlock) and the
// re-tokenizing reference (matchers.AttrBlockRef) on a representative
// product-title pair, with embeddings memoized as the persistent store
// does in production.
func featurizeMicrobench() (nsPerOp, refNSPerOp float64) {
	emb := embedding.New(16)
	emb.Fit([]string{"sony dcr trv27 minidv handycam", "canon zr60 digital camcorder 3.99"})
	memo := make(map[string][]float64)
	text := func(s string) []float64 {
		if v, ok := memo[s]; ok {
			return v
		}
		v := emb.Text(s)
		memo[s] = v
		return v
	}
	lv := "Sony DCR-TRV27 MiniDV Handycam Camcorder w/ 2.5\" LCD"
	rv := "sony dcr trv27 minidv digital handycam camcorder 690 usd"
	const iters = 20000
	dst := make([]float64, 0, 8)
	timeBlock := func(block func([]float64, func(string) []float64, string, string) []float64) float64 {
		dst = block(dst[:0], text, lv, rv) // warm-up settles the embedding memo
		start := time.Now()
		for i := 0; i < iters; i++ {
			dst = block(dst[:0], text, lv, rv)
		}
		return float64(time.Since(start)) / float64(iters)
	}
	return timeBlock(matchers.AttrBlock), timeBlock(matchers.AttrBlockRef)
}

// runServeLoad is the load-generator mode: it stands the serving
// subsystem up on an ephemeral TCP port (exactly what cmd/certa-serve
// runs) over the already-trained matcher, fires requests for the
// blocked-cluster workload from conc client workers — cycling the
// pairs, so the first pass is cold and later passes exercise the warm
// shared cache and request coalescing — and distills end-to-end
// latency percentiles from the client-side telemetry histogram (the
// same Quantile estimate a Prometheus scrape of the series would
// compute). The server publishes into telemetry.Default, and the probe
// scrapes its GET /v1/metrics once after the load for the telemetry
// section's footprint numbers.
func runServeLoad(bench *certa.Benchmark, model *certa.Matcher, pairs []certa.Pair, idx *certa.CandidateIndex, seed int64, parallelism, requests, conc int) (*serveMetrics, int, int, error) {
	svc := certa.NewScoringService(model, certa.ScoringServiceOptions{Parallelism: parallelism})
	srv, err := certa.NewServer([]certa.ServerBackend{{
		Name: "AB", Left: bench.Left, Right: bench.Right, Model: model,
		Options: certa.Options{Triangles: 100, Seed: seed, Parallelism: parallelism, Retrieval: idx},
		Pairs:   pairs, Service: svc,
	}}, certa.ServerOptions{MaxInFlight: parallelism, MaxQueue: requests, Metrics: telemetry.Default})
	if err != nil {
		return nil, 0, 0, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, 0, 0, err
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	url := base + "/v1/explain"

	if conc <= 0 {
		conc = 1
	}
	lat := telemetry.Default.Histogram("certa_bench_client_request_duration_seconds",
		"End-to-end client-observed request latency of the serve probe.",
		nil, telemetry.LatencyBuckets)
	var failed atomic.Int64

	// The coalesce storm: identical requests coalesce only while one of
	// them is still computing, and past the cold first pass the cycling
	// load below answers too fast for duplicates to overlap — which left
	// the serve section's coalesced counter at 0 for entire runs, i.e.
	// the path was never exercised. A concurrent burst of identical
	// requests at the still-cold first pair pins it down: one request
	// computes, the rest attach to its in-flight computation (coalescing
	// runs before admission, so the burst cannot be rejected).
	const stormSize = 8
	workpool.Each(stormSize, stormSize, func(i int) error {
		resp, err := http.Post(url, "application/json", strings.NewReader(`{"pair_index":0}`))
		if err != nil {
			failed.Add(1)
			return nil
		}
		_, cerr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if cerr != nil || resp.StatusCode != http.StatusOK {
			failed.Add(1)
		}
		return nil
	})
	if st := srv.Stats(); st.Coalesced == 0 {
		return nil, 0, 0, fmt.Errorf("serve probe: coalesce storm (%d identical concurrent requests) produced no coalesced requests", stormSize)
	}

	start := time.Now()
	workpool.Each(requests, conc, func(i int) error {
		body := fmt.Sprintf(`{"pair_index":%d}`, i%len(pairs))
		t0 := time.Now()
		resp, err := http.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			failed.Add(1)
			return nil
		}
		_, cerr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if cerr != nil || resp.StatusCode != http.StatusOK {
			failed.Add(1)
			return nil
		}
		lat.Observe(time.Since(t0).Seconds())
		return nil
	})
	wall := time.Since(start).Seconds()
	if n := failed.Load(); n > 0 {
		return nil, 0, 0, fmt.Errorf("serve probe: %d/%d requests failed", n, requests)
	}

	// One scrape of the server's exposition for the telemetry section:
	// how many series the run produced and what one scrape weighs.
	scrapeBytes := 0
	if resp, err := http.Get(base + "/v1/metrics"); err == nil {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && resp.StatusCode == http.StatusOK {
			scrapeBytes = len(body)
		}
	}

	st := srv.Stats()
	return &serveMetrics{
		Requests:              requests,
		Concurrency:           conc,
		WallSeconds:           wall,
		ServeThroughput:       float64(requests) / wall,
		P50MS:                 lat.Quantile(0.50) * 1000,
		P99MS:                 lat.Quantile(0.99) * 1000,
		Coalesced:             st.Coalesced,
		Rejected:              st.Rejected,
		CoalesceStormRequests: stormSize,
		SharedCacheHitRate:    st.Backends["AB"].HitRate,
		FlipLookups:           st.Backends["AB"].FlipLookups,
		FlipHits:              st.Backends["AB"].FlipHits,
		FlipMemoHitRate:       st.Backends["AB"].FlipHitRate,
	}, telemetry.Default.SeriesCount(), scrapeBytes, nil
}

// clusterWorker is one in-process certa-serve-shaped worker of the
// cluster probe, listening on a real ephemeral TCP port.
type clusterWorker struct {
	svc   *certa.ScoringService
	srv   *certa.Server
	url   string
	close func()
}

// startClusterWorker stands up one worker over the shared fixture:
// its own capacity-bounded scoring service and result memo, the shared
// trained model and candidate index (identical engine options in every
// worker and in the direct reference, so bodies can be byte-compared).
func startClusterWorker(bench *certa.Benchmark, model *certa.Matcher, pairs []certa.Pair, idx *certa.CandidateIndex, seed int64, parallelism, capacity, memoCap int, name string) (*clusterWorker, error) {
	svc := certa.NewScoringService(model, certa.ScoringServiceOptions{Parallelism: parallelism, Capacity: capacity})
	srv, err := certa.NewServer([]certa.ServerBackend{{
		Name: "AB", Left: bench.Left, Right: bench.Right, Model: model,
		Options: certa.Options{Triangles: 100, Seed: seed, Parallelism: parallelism, Retrieval: idx},
		Pairs:   pairs, Service: svc,
	}}, certa.ServerOptions{Name: name, MaxInFlight: parallelism, MaxQueue: 256, ResultMemo: memoCap})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	return &clusterWorker{
		svc:   svc,
		srv:   srv,
		url:   "http://" + ln.Addr().String(),
		close: func() { httpSrv.Close(); srv.Close() },
	}, nil
}

// postExplain issues one pair_index request and returns the body.
func postExplain(base string, pairIdx int) ([]byte, error) {
	resp, err := http.Post(base+"/v1/explain", "application/json",
		strings.NewReader(fmt.Sprintf(`{"pair_index":%d}`, pairIdx)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return body, nil
}

// runClusterProbe measures what consistent-hash sharding buys when no
// single worker's stores can hold the whole workload. An enumeration
// pass sizes the score keyspace exactly; every worker in both
// configurations then gets the same per-worker bounds — score-cache
// capacity fitting the ring's largest shard working set, result-memo
// capacity fitting the ring's largest request slice — so each ring
// worker keeps its slice of the keyspace resident at both tiers while
// the single worker must evict. The cycling request stream is LRU's
// worst case (each key's reuse distance is the whole cycle), and the
// client is sequential, so the measured speedup is cache locality
// through shard routing, not CPU parallelism. Both configurations sit
// behind a real certa-router over real TCP; the warm-up cycle —
// computed fresh in every configuration, before any memo can hit — is
// byte-compared against a direct router-less server's bodies, and memo
// replays are byte-identical to those by construction (the memo stores
// the rendered bytes).
func runClusterProbe(bench *certa.Benchmark, model *certa.Matcher, pairs []certa.Pair, idx *certa.CandidateIndex, seed int64, parallelism, workers int) (*clusterMetrics, error) {
	if workers < 2 {
		return nil, fmt.Errorf("cluster probe: need at least 2 workers, got %d", workers)
	}
	enumSvc := certa.NewScoringService(model, certa.ScoringServiceOptions{Parallelism: parallelism})
	if _, err := certa.ExplainBatch(model, bench.Left, bench.Right, pairs, certa.Options{
		Triangles: 100, Seed: seed, Parallelism: parallelism, Shared: enumSvc, Retrieval: idx,
	}); err != nil {
		return nil, err
	}
	keys := enumSvc.Keys()

	placement := make([]cluster.Member, workers)
	for i := range placement {
		placement[i] = cluster.Member{Name: fmt.Sprintf("w%d", i), URL: "http://placement.invalid"}
	}
	ring, err := cluster.NewRing(placement, 0)
	if err != nil {
		return nil, err
	}
	// A worker's cache working set is NOT its key shard: routing
	// partitions requests by pair content, but each explanation then
	// touches thousands of perturbed-variant and triangle-candidate keys
	// from across the whole keyspace. Size the capacity bound from the
	// real thing — group the pairs by ring owner, replay each group on a
	// fresh service, and take the largest group's unique key count.
	memberIdx := make(map[string]int, workers)
	for i, m := range ring.Members() {
		memberIdx[m.Name] = i
	}
	groups := make([][]certa.Pair, workers)
	for _, p := range pairs {
		wi := memberIdx[ring.Owner(scorecache.ShardHash(scorecache.Key(p))).Name]
		groups[wi] = append(groups[wi], p)
	}
	maxWorkingSet := 0
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		gsvc := certa.NewScoringService(model, certa.ScoringServiceOptions{Parallelism: parallelism})
		if _, err := certa.ExplainBatch(model, bench.Left, bench.Right, g, certa.Options{
			Triangles: 100, Seed: seed, Parallelism: parallelism, Shared: gsvc, Retrieval: idx,
		}); err != nil {
			return nil, err
		}
		if n := gsvc.Len(); n > maxWorkingSet {
			maxWorkingSet = n
		}
	}
	// Largest per-worker working set plus headroom: the ring's workers
	// never need to evict. The single worker serves every pair, so the
	// same bound leaves it cycling a keyspace larger than its cache —
	// LRU's worst case.
	capacity := maxWorkingSet + maxWorkingSet/8
	// Same sizing rule one tier up: the result memo holds the largest
	// number of distinct pairs the ring routes to one worker, so a ring
	// worker's request slice fits exactly while the single worker cycles
	// the full pair set through it.
	memoCap := 0
	for _, g := range groups {
		if len(g) > memoCap {
			memoCap = len(g)
		}
	}

	// The direct reference: a router-less, unbounded server (no memo)
	// answers every pair once; all routed computed bodies below must
	// match these bytes.
	ref, err := startClusterWorker(bench, model, pairs, idx, seed, parallelism, 0, 0, "")
	if err != nil {
		return nil, err
	}
	refBodies := make([][]byte, len(pairs))
	for i := range pairs {
		if refBodies[i], err = postExplain(ref.url, i); err != nil {
			ref.close()
			return nil, fmt.Errorf("cluster probe reference: %w", err)
		}
	}
	ref.close()

	const cycles = 3
	timed := cycles * len(pairs)

	// runConfig measures one ring size end to end: cold warm-up cycle
	// (byte-compared against the reference), then the timed cycling load.
	runConfig := func(n int) (rps, hitRate, memoHitRate float64, entries int, identical bool, err error) {
		ws := make([]*clusterWorker, 0, n)
		defer func() {
			for _, w := range ws {
				w.close()
			}
		}()
		members := make([]cluster.Member, n)
		for i := 0; i < n; i++ {
			w, werr := startClusterWorker(bench, model, pairs, idx, seed, parallelism, capacity, memoCap, fmt.Sprintf("w%d", i))
			if werr != nil {
				return 0, 0, 0, 0, false, werr
			}
			ws = append(ws, w)
			members[i] = cluster.Member{Name: fmt.Sprintf("w%d", i), URL: w.url}
		}
		rt, rerr := cluster.NewRouter(members, cluster.Options{
			Keyspaces: []cluster.Keyspace{{Name: "AB", Left: bench.Left, Right: bench.Right, Pairs: pairs}},
		})
		if rerr != nil {
			return 0, 0, 0, 0, false, rerr
		}
		defer rt.Close()
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			return 0, 0, 0, 0, false, lerr
		}
		httpRt := &http.Server{Handler: rt}
		go httpRt.Serve(ln)
		defer httpRt.Close()
		base := "http://" + ln.Addr().String()

		identical = true
		for i := range pairs {
			body, perr := postExplain(base, i)
			if perr != nil {
				return 0, 0, 0, 0, false, fmt.Errorf("cluster probe warm-up (%d workers): %w", n, perr)
			}
			if !bytes.Equal(body, refBodies[i]) {
				identical = false
			}
		}
		start := time.Now()
		for r := 0; r < timed; r++ {
			body, perr := postExplain(base, r%len(pairs))
			if perr != nil {
				return 0, 0, 0, 0, false, fmt.Errorf("cluster probe load (%d workers): %w", n, perr)
			}
			if !bytes.Equal(body, refBodies[r%len(pairs)]) {
				identical = false
			}
		}
		wall := time.Since(start).Seconds()

		var lookups, hits int
		var memoLookups, memoHits int64
		for _, w := range ws {
			st := w.svc.Stats()
			lookups += st.Lookups
			hits += st.Hits
			entries += w.svc.Len()
			if ms := w.srv.Stats().Backends["AB"].ResultMemo; ms != nil {
				memoLookups += ms.Lookups
				memoHits += ms.Hits
			}
		}
		if lookups > 0 {
			hitRate = float64(hits) / float64(lookups)
		}
		if memoLookups > 0 {
			memoHitRate = float64(memoHits) / float64(memoLookups)
		}
		return float64(timed) / wall, hitRate, memoHitRate, entries, identical, nil
	}

	singleRPS, singleHit, singleMemoHit, singleEntries, singleIdentical, err := runConfig(1)
	if err != nil {
		return nil, err
	}
	ringRPS, ringHit, ringMemoHit, ringEntries, ringIdentical, err := runConfig(workers)
	if err != nil {
		return nil, err
	}
	return &clusterMetrics{
		Workers:                 workers,
		VirtualNodes:            ring.VirtualNodes(),
		UniqueScoreKeys:         len(keys),
		PerWorkerCacheCapacity:  capacity,
		PerWorkerResultMemo:     memoCap,
		WarmupRequests:          len(pairs),
		TimedRequests:           timed,
		SingleWorkerRPS:         singleRPS,
		RingRPS:                 ringRPS,
		Speedup:                 ringRPS / singleRPS,
		SingleWorkerHitRate:     singleHit,
		RingHitRate:             ringHit,
		SingleWorkerEntries:     singleEntries,
		RingAggregateEntries:    ringEntries,
		SingleWorkerMemoHitRate: singleMemoHit,
		RingMemoHitRate:         ringMemoHit,
		RoutedByteIdentical:     singleIdentical && ringIdentical,
	}, nil
}

// traceOverheadProbe measures what always-on span recording costs.
// The per-mode latency figures come from interleaved best-of-reps
// passes: the same workload explained with and without a
// telemetry.Trace on the context, twin fresh scoring services per rep
// so both modes pay identical model calls, each explanation with its
// own fresh Trace — the serving layer's shape (one trace per
// computation).
//
// The overhead estimate is DECOMPOSED, not subtracted: spans per
// explanation (counted from the traced pass's real span trees) times
// the measured unit cost of one span cycle, plus one extra unit for
// the per-explanation Trace setup. Subtracting the two end-to-end
// passes — the obvious estimator — was tried and rejected: on a
// loaded CI machine the difference of two ~20ms wall times swings by
// whole percents run to run (calibration runs with a synthetic
// injected overhead read back anywhere from a third to double the
// injected value), burying the microsecond-scale real cost the 2%
// gate watches. The decomposition is conservative where it
// simplifies: every span is priced at the dearer context-deriving
// StartSpan rate although most engine spans are the cheaper
// StartLeaf, and the unit loop appends every span to one parent, the
// worst case for the children slice. What it omits — tr.mu contention
// (a request records ~10 spans per millisecond against a
// microsecond-scale critical section) and GC pressure from span
// allocations (tens of KB against the explanation's MBs) — is orders
// of magnitude below the gate.
func traceOverheadProbe(bench *certa.Benchmark, model *certa.Matcher, pairs []certa.Pair, idx *certa.CandidateIndex, seed int64, parallelism int) (plainNS, tracedNS, overheadNS float64, err error) {
	// The two modes are interleaved at PAIR granularity, and which mode
	// runs first alternates per couple, so the warm-predictor edge the
	// second back-to-back run of a pair gets lands on each mode equally
	// often. Twin creation order alternates per rep for the same
	// reason: a service inherits its creation-time heap neighborhood,
	// and a measured ~1% run-speed difference tracks creation order on
	// loaded machines. Each pair keeps its fastest rep per mode — a GC
	// pause or load burst lands on one explanation, and the per-pair
	// minimum sheds it.
	const reps = 4
	bestPlain := make([]float64, len(pairs))
	bestTraced := make([]float64, len(pairs))
	var spanCount, tracedExpls int64
	for i := range pairs {
		bestPlain[i], bestTraced[i] = math.MaxFloat64, math.MaxFloat64
	}
	for r := 0; r < reps; r++ {
		var svcP, svcT *certa.ScoringService
		if r%2 == 0 {
			svcP = certa.NewScoringService(model, certa.ScoringServiceOptions{Parallelism: parallelism})
			svcT = certa.NewScoringService(model, certa.ScoringServiceOptions{Parallelism: parallelism})
		} else {
			svcT = certa.NewScoringService(model, certa.ScoringServiceOptions{Parallelism: parallelism})
			svcP = certa.NewScoringService(model, certa.ScoringServiceOptions{Parallelism: parallelism})
		}
		runOne := func(i int, traced bool) error {
			svc := svcP
			ctx := context.Background()
			var tr *telemetry.Trace
			if traced {
				svc = svcT
				tr = telemetry.New()
				ctx = telemetry.WithTrace(ctx, tr)
			}
			opts := certa.Options{
				Triangles: 100, Seed: seed, Parallelism: parallelism, Shared: svc, Retrieval: idx,
			}
			start := time.Now()
			if _, err := certa.ExplainBatchContext(ctx, model, bench.Left, bench.Right, pairs[i:i+1], opts); err != nil {
				return err
			}
			ns := float64(time.Since(start))
			if traced {
				bestTraced[i] = math.Min(bestTraced[i], ns)
				for _, st := range tr.Stages() {
					spanCount += st.Count
				}
				tracedExpls++
			} else {
				bestPlain[i] = math.Min(bestPlain[i], ns)
			}
			return nil
		}
		for i := range pairs {
			tracedFirst := (r+i)%2 == 1
			if err := runOne(i, tracedFirst); err != nil {
				return 0, 0, 0, err
			}
			if err := runOne(i, !tracedFirst); err != nil {
				return 0, 0, 0, err
			}
		}
	}
	for i := range pairs {
		plainNS += bestPlain[i]
		tracedNS += bestTraced[i]
	}
	plainNS /= float64(len(pairs))
	tracedNS /= float64(len(pairs))
	spansPerExpl := float64(spanCount) / float64(tracedExpls)
	overheadNS = (spansPerExpl + 1) * spanUnitCostNS()
	return plainNS, tracedNS, overheadNS, nil
}

// spanUnitCostNS times one full span cycle — context-deriving
// StartSpan, AddItems, End — under a live trace, returning ns per
// cycle. 200k cycles take a few tens of ms, so the loop itself
// averages away scheduler noise.
func spanUnitCostNS() float64 {
	tr := telemetry.New()
	ctx := telemetry.WithTrace(context.Background(), tr)
	parent, pctx := telemetry.StartSpan(ctx, "unitbench")
	defer parent.End()
	cycle := func(n int) float64 {
		start := time.Now()
		for j := 0; j < n; j++ {
			sp, _ := telemetry.StartSpan(pctx, "unit")
			sp.AddItems(1)
			sp.End()
		}
		return float64(time.Since(start)) / float64(n)
	}
	cycle(1000) // warmup
	return cycle(200_000)
}

// retrievalMicrobench times the candidate retrieval alone: for every
// cluster pivot, stream the first 50 overlap-ranked candidates — the
// left table ranked ascending against the right pivot and vice versa,
// exactly the guided augmented search's access pattern — through the
// unindexed scan and through the prebuilt index.
func retrievalMicrobench(bench *certa.Benchmark, pairs []certa.Pair, idx *certa.CandidateIndex, seed int64) (scanMS, indexMS float64) {
	scan := neighborhood.NewScanSources(bench.Left, bench.Right)
	const want = 50
	const rounds = 25
	timeSources := func(src *certa.CandidateIndex) float64 {
		start := time.Now()
		for r := 0; r < rounds; r++ {
			for _, p := range pairs {
				for _, q := range []struct {
					side certa.CandidateSource
					text string
					asc  bool
				}{
					{src.Left, p.Right.Text(), true},
					{src.Right, p.Left.Text(), false},
				} {
					stream := q.side.Ranked(seed, q.text, q.asc)
					for i := 0; i < want; i++ {
						if _, ok := stream.Next(); !ok {
							break
						}
					}
				}
			}
		}
		return float64(time.Since(start)) / float64(time.Millisecond)
	}
	return timeSources(scan), timeSources(idx)
}

// anytimeSweepPoint explains the workload once at the given CallBudget
// under a fresh scoring service and summarizes throughput and quality
// against the reference (unlimited) results.
func anytimeSweepPoint(model certa.Model, left, right *certa.Table, pairs []certa.Pair, idx *certa.CandidateIndex, seed int64, parallelism, budget int, reference []*certa.Result) (anytimePoint, error) {
	svc := certa.NewScoringService(model, certa.ScoringServiceOptions{Parallelism: parallelism})
	start := time.Now()
	results, err := certa.ExplainBatch(model, left, right, pairs, certa.Options{
		Triangles: 100, Seed: seed, Parallelism: parallelism, Shared: svc,
		CallBudget: budget, Retrieval: idx,
	})
	if err != nil {
		return anytimePoint{}, err
	}
	return summarizeAnytime(budget, time.Since(start).Seconds(), results, reference), nil
}

// summarizeAnytime folds one budget run into its curve entry. The
// quality quantities come from eval.SummarizeAnytime, so the JSON curve
// and the eval harness's anytime table measure exactly the same thing
// (certa.Result is an alias of core.Result).
func summarizeAnytime(budget int, wall float64, results, reference []*certa.Result) anytimePoint {
	s := eval.SummarizeAnytime(results, reference)
	return anytimePoint{
		CallBudget:            budget,
		ExplanationsPerSec:    float64(len(results)) / wall,
		TruncatedFraction:     s.TruncatedFraction,
		MeanCompleteness:      s.MeanCompleteness,
		SaliencyTop2Agreement: s.Top2Agreement,
		CFValidity:            s.CFValidity,
		MeanModelCalls:        s.MeanModelCalls,
	}
}

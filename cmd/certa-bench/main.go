// Command certa-bench regenerates the tables and figures of the CERTA
// paper's evaluation (§5). Each experiment is addressed by its paper
// artifact id:
//
//	certa-bench -exp table2            # Faithfulness grid
//	certa-bench -exp figure11          # triangle-count sweep
//	certa-bench -exp all               # everything, in paper order
//	certa-bench -list                  # show available experiments
//
// The synthetic benchmarks are scaled down by default so the full grid
// runs in minutes; -records/-matches/-pairs control the scale and
// -triangles sets CERTA's τ.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"certa"
	"certa/internal/eval"
	"certa/internal/matchers"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment id (table1..table9, figure2..figure12) or \"all\"")
		list        = flag.Bool("list", false, "list available experiments and exit")
		seed        = flag.Int64("seed", 7, "global random seed")
		records     = flag.Int("records", 0, "max records per source (0 = default)")
		matches     = flag.Int("matches", 0, "max matching pairs (0 = default)")
		pairs       = flag.Int("pairs", 0, "explained test pairs per (dataset, model) cell (0 = default)")
		triangles   = flag.Int("triangles", 0, "CERTA triangle budget τ (0 = default 100)")
		datasets    = flag.String("datasets", "", "comma-separated dataset codes (default: all 12)")
		models      = flag.String("models", "", "comma-separated models: DeepER,DeepMatcher,Ditto")
		parallelism = flag.Int("parallelism", 1, "concurrent grid cells")
		quick       = flag.Bool("quick", false, "tiny profile (for smoke runs)")
		report      = flag.String("report", "", "write a markdown paper-vs-measured report (all experiments) to this file")
		benchJSON   = flag.String("benchjson", "", "run the batched-pipeline perf probe on AB and write JSON metrics to this file")
	)
	flag.Parse()

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *seed, *parallelism); err != nil {
			fmt.Fprintf(os.Stderr, "certa-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range eval.Experiments() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := eval.Config{
		Seed:         *seed,
		MaxRecords:   *records,
		MaxMatches:   *matches,
		ExplainPairs: *pairs,
		Triangles:    *triangles,
		Parallelism:  *parallelism,
		Quick:        *quick,
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	if *models != "" {
		for _, m := range strings.Split(*models, ",") {
			cfg.Models = append(cfg.Models, matchers.Kind(m))
		}
	}

	h := eval.NewHarness(cfg)
	start := time.Now()

	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "certa-bench: %v\n", err)
			os.Exit(1)
		}
		if err := h.WriteReport(f); err != nil {
			fmt.Fprintf(os.Stderr, "certa-bench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "certa-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "certa-bench: report written to %s in %s\n", *report, time.Since(start).Round(time.Millisecond))
		return
	}

	var err error
	if *exp == "all" {
		err = h.RunAll(os.Stdout)
	} else {
		var tables []*eval.Table
		tables, err = h.Run(*exp)
		for _, t := range tables {
			if rerr := t.Render(os.Stdout); rerr != nil && err == nil {
				err = rerr
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "certa-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "certa-bench: done in %s\n", time.Since(start).Round(time.Millisecond))
}

// benchMetrics is the schema of the -benchjson output, tracked across
// PRs to watch the explanation pipeline's perf trajectory.
type benchMetrics struct {
	Benchmark          string  `json:"benchmark"`
	Model              string  `json:"model"`
	Workload           string  `json:"workload"`
	Explanations       int     `json:"explanations"`
	Parallelism        int     `json:"parallelism"`
	WallSeconds        float64 `json:"wall_seconds"`
	ExplanationsPerSec float64 `json:"explanations_per_sec"`
	// ModelCallsPerExpl is the per-explanation unique-call count a
	// private cache would pay (the per-explanation view's misses).
	ModelCallsPerExpl float64 `json:"model_calls_per_explanation"`
	SeedCallsPerExpl  float64 `json:"seed_path_calls_per_explanation"`
	// CacheHitRate is the per-explanation (private-view) hit rate;
	// SharedCacheHitRate is the shared store's rate over the requests
	// the views forwarded to it — the cross-explanation reuse.
	CacheHitRate       float64 `json:"cache_hit_rate"`
	SharedCacheHitRate float64 `json:"shared_cache_hit_rate"`
	// PrivateModelCalls sums the per-explanation unique calls (what 16
	// private caches would pay); UniqueModelCalls is what the shared
	// service actually paid for the whole run.
	PrivateModelCalls int `json:"private_model_calls_per_run"`
	UniqueModelCalls  int `json:"unique_model_calls_per_run"`
	// CallReduction divides the seed path's cost (sequential, uncached
	// point lookups) by the unique model calls of the whole shared run.
	CallReduction float64 `json:"call_reduction_vs_uncached"`
}

// writeBenchJSON trains a matcher on a small AB benchmark, explains a
// blocked candidate cluster through ExplainBatch with a shared scoring
// service, and writes throughput plus private-vs-shared cache metrics
// as JSON.
func writeBenchJSON(path string, seed int64, parallelism int) error {
	bench, err := certa.GenerateBenchmark("AB", certa.BenchmarkOptions{
		Seed: seed, MaxRecords: 120, MaxMatches: 60,
	})
	if err != nil {
		return err
	}
	model, err := certa.TrainMatcher(certa.DeepMatcher, bench, certa.MatcherConfig{Seed: seed})
	if err != nil {
		return err
	}
	// The serving-shaped workload: the bipartite blocked cluster around
	// the first test pair (how an ER system resolves a candidate group).
	// Its pairs share pivot records, so the shared scoring service can
	// amortize their triangle scans; per-explanation caches cannot.
	const clusterK = 4
	pairs, err := certa.BlockedClusterPairs(bench.Left, bench.Right, bench.Test[0].Pair, clusterK)
	if err != nil {
		return err
	}
	if parallelism <= 0 {
		parallelism = 1
	}
	svc := certa.NewScoringService(model, certa.ScoringServiceOptions{Parallelism: parallelism})

	start := time.Now()
	results, err := certa.ExplainBatch(model, bench.Left, bench.Right, pairs, certa.Options{
		Triangles: 100, Seed: seed, Parallelism: parallelism, Shared: svc,
	})
	if err != nil {
		return err
	}
	wall := time.Since(start).Seconds()

	var modelCalls, seedCalls, hits, lookups float64
	for _, res := range results {
		modelCalls += float64(res.Diag.ModelCalls)
		seedCalls += float64(res.Diag.SeedPathCalls)
		hits += float64(res.Diag.CacheHits)
		lookups += float64(res.Diag.CacheLookups)
	}
	st := svc.Stats()
	n := float64(len(results))
	m := benchMetrics{
		Benchmark:          "AB",
		Model:              model.Name(),
		Workload:           fmt.Sprintf("blocked-cluster-k%d-%dpairs", clusterK, len(pairs)),
		Explanations:       len(results),
		Parallelism:        parallelism,
		WallSeconds:        wall,
		ExplanationsPerSec: n / wall,
		ModelCallsPerExpl:  modelCalls / n,
		SeedCallsPerExpl:   seedCalls / n,
		CacheHitRate:       hits / lookups,
		SharedCacheHitRate: st.HitRate(),
		PrivateModelCalls:  int(modelCalls),
		UniqueModelCalls:   st.Misses,
		CallReduction:      seedCalls / float64(st.Misses),
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "certa-bench: %.1f explanations/sec, %d unique model calls for %d private, %.2fx reduction vs uncached -> %s\n",
		m.ExplanationsPerSec, m.UniqueModelCalls, m.PrivateModelCalls, m.CallReduction, path)
	return nil
}

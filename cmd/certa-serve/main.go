// Command certa-serve is the explanation-serving daemon: it trains (or
// loads) one of the paper's ER systems on a synthetic benchmark and
// serves CERTA explanations over the JSON HTTP API:
//
//	certa-serve -dataset AB -model DeepMatcher -addr 127.0.0.1:8080
//	curl -s -X POST localhost:8080/v1/explain -d '{"pair_index":0}'
//
// Serving layers (see internal/server): admission control bounds
// concurrent explanations (-max-inflight) and the wait queue
// (-max-queue), rejecting the rest with 429 + Retry-After; identical
// in-flight requests coalesce into one computation; client disconnects
// cancel the underlying explanation; per-request deadline_ms /
// call_budget / top_k knobs map onto the anytime engine options.
//
// With -cache-file the shared score cache is restored at startup and
// snapshotted on graceful shutdown (SIGINT/SIGTERM drains in-flight
// requests first), so restarts answer repeat workloads warm. A
// corrupted or truncated cache file is rejected and the server starts
// cold — it never panics and never loads half a snapshot.
//
// As a ring member behind certa-router (see internal/cluster), -name
// sets the worker identity reported in /v1/stats, and -warm-from pulls
// a running donor's GET /v1/snapshot at startup — optionally filtered
// by -warm-ring/-warm-vnodes so a joining worker installs exactly the
// shard the ring assigns it. Warm-join failures of any kind degrade to
// a cold start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"certa"
	"certa/internal/cluster"
	"certa/internal/debugserve"
	"certa/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address (use port 0 for an ephemeral port)")
		addrFile    = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
		ds          = flag.String("dataset", "AB", "benchmark code (AB, AG, BA, DA, DS, FZ, IA, WA, DDA, DDS, DIA, DWA)")
		model       = flag.String("model", "DeepMatcher", "ER system: DeepER, DeepMatcher, Ditto, SVM")
		records     = flag.Int("records", 300, "max records per source")
		matches     = flag.Int("matches", 150, "max matching pairs")
		seed        = flag.Int64("seed", 7, "random seed")
		triangles   = flag.Int("triangles", 100, "CERTA triangle budget τ")
		parallelism = flag.Int("parallelism", 4, "worker goroutines per explanation's scoring pipeline")
		maxInflight = flag.Int("max-inflight", 4, "admission: max concurrently computing explanations")
		maxQueue    = flag.Int("max-queue", 64, "admission: max queued explanations before 429")
		cacheFile   = flag.String("cache-file", "", "restore the score cache from this snapshot at startup and write it back on graceful shutdown")
		cacheCap    = flag.Int("cache-capacity", 0, "bound on cached scores (0 = unbounded; sharded LRU past it)")
		resultMemo  = flag.Int("result-memo", 0, "bound on memoized response bodies per backend (0 = disabled); repeats of deterministic requests replay their exact bytes without recomputing")
		name        = flag.String("name", "", "worker name reported in /v1/stats (ring members: must match the router's -workers entry)")
		warmFrom    = flag.String("warm-from", "", "pull a running worker's /v1/snapshot from this base URL at startup (warm join; any failure just means a cold start)")
		warmRing    = flag.String("warm-ring", "", "ring membership (router -workers syntax) to filter the warm join by: only keys the ring assigns to -name are installed")
		warmVnodes  = flag.Int("warm-vnodes", 0, "virtual nodes per member for -warm-ring placement (0 = default; must match the router's -vnodes)")
		loadModel   = flag.String("load-model", "", "load a previously saved model instead of training")
		augBudget   = flag.Int("augment-budget", 0, "default token-drop variants per missing augmented support (0 = engine default 200; requests may override via augment_budget)")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown allowance for in-flight requests")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof and /v1/metrics on this auxiliary address (empty = disabled)")
		logLevel    = flag.String("log-level", "info", "request log level: debug, info, warn, error")
	)
	flag.Parse()

	if *pprofAddr != "" {
		bound, err := debugserve.Start(*pprofAddr, telemetry.Default.Handler())
		if err != nil {
			fmt.Fprintf(os.Stderr, "certa-serve: %v\n", err)
			os.Exit(1)
		}
		log.Printf("pprof endpoints on http://%s/debug/pprof/ (metrics at /v1/metrics)", bound)
	}

	if err := run(*addr, *addrFile, *ds, *model, *records, *matches, *seed, *triangles,
		*parallelism, *maxInflight, *maxQueue, *cacheFile, *cacheCap, *resultMemo, *loadModel, *augBudget, *drain, *logLevel,
		*name, *warmFrom, *warmRing, *warmVnodes); err != nil {
		fmt.Fprintf(os.Stderr, "certa-serve: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, addrFile, ds, model string, records, matches int, seed int64, triangles,
	parallelism, maxInflight, maxQueue int, cacheFile string, cacheCap, resultMemo int, loadModel string, augBudget int,
	drain time.Duration, logLevel string, name, warmFrom, warmRing string, warmVnodes int) error {
	log.SetPrefix("certa-serve: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	// The structured request log goes to stderr beside the startup log;
	// one summary line per request with the per-stage time breakdown.
	var level slog.Level
	if err := level.UnmarshalText([]byte(logLevel)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", logLevel, err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	bench, err := certa.GenerateBenchmark(ds, certa.BenchmarkOptions{
		Seed: seed, MaxRecords: records, MaxMatches: matches,
	})
	if err != nil {
		return err
	}
	var m *certa.Matcher
	if loadModel != "" {
		data, err := os.ReadFile(loadModel)
		if err != nil {
			return err
		}
		m = new(certa.Matcher)
		if err := m.UnmarshalBinary(data); err != nil {
			return err
		}
		log.Printf("loaded %s from %s: F1 = %.3f on the test split", m.Name(), loadModel, certa.F1(m, bench.Test))
	} else {
		m, err = certa.TrainMatcher(certa.MatcherKind(model), bench, certa.MatcherConfig{Seed: seed})
		if err != nil {
			return err
		}
		log.Printf("trained %s on %s: F1 = %.3f on the test split", m.Name(), ds, certa.F1(m, bench.Test))
	}

	// The backend's long-lived shared scoring service, warmed from the
	// cache file when one is given and readable.
	svc := certa.NewScoringService(m, certa.ScoringServiceOptions{
		Parallelism: parallelism, Capacity: cacheCap,
	})
	restored := 0
	if cacheFile != "" {
		if f, err := os.Open(cacheFile); err == nil {
			n, rerr := svc.Restore(f)
			f.Close()
			if rerr != nil {
				log.Printf("cache file %s rejected (%v); starting cold", cacheFile, rerr)
			} else {
				restored = n
				log.Printf("restored %d cached scores from %s", n, cacheFile)
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("opening cache file: %w", err)
		}
	}

	// Warm join: pull a running donor's snapshot over HTTP, optionally
	// keeping only the shard a ring assigns this worker. Any failure —
	// unreachable donor, corrupted stream — just means a cold start; the
	// snapshot's CRC framing guarantees nothing partial is installed.
	if warmFrom != "" {
		var keep func(key string) bool
		if warmRing != "" {
			if name == "" {
				return fmt.Errorf("-warm-ring needs -name to know which shard is ours")
			}
			members, err := cluster.ParseMembers(warmRing)
			if err != nil {
				return fmt.Errorf("-warm-ring: %w", err)
			}
			ring, err := cluster.NewRing(members, warmVnodes)
			if err != nil {
				return err
			}
			keep = cluster.KeepOwned(ring, name)
		}
		n, err := cluster.FetchSnapshot(context.Background(), nil, warmFrom, ds, svc, keep)
		if err != nil {
			log.Printf("warm join from %s failed (%v); starting cold", warmFrom, err)
		} else {
			restored += n
			if keep != nil {
				log.Printf("warm join: restored %d cached scores (our shard) from %s", n, warmFrom)
			} else {
				log.Printf("warm join: restored %d cached scores from %s", n, warmFrom)
			}
		}
	}

	pairs := make([]certa.Pair, len(bench.Test))
	for i, lp := range bench.Test {
		pairs[i] = lp.Pair
	}
	// The backend's candidate retrieval index, built once at startup:
	// requests stream support candidates from its postings instead of
	// re-tokenizing the sources per explanation.
	idx := certa.NewCandidateIndex(bench.Left, bench.Right)
	if st, ok := idx.Stats(); ok {
		log.Printf("candidate index built: %d records, %d distinct tokens in %.1fms",
			st.Records, st.DistinctTokens, st.BuildMS)
	}
	srv, err := certa.NewServer([]certa.ServerBackend{{
		Name:  ds,
		Left:  bench.Left,
		Right: bench.Right,
		Model: m,
		Options: certa.Options{
			Triangles: triangles, Seed: seed, Parallelism: parallelism,
			AugmentBudget: augBudget, Retrieval: idx,
		},
		Pairs:           pairs,
		Service:         svc,
		RestoredEntries: restored,
	}}, certa.ServerOptions{
		Name:        name,
		MaxInFlight: maxInflight, MaxQueue: maxQueue,
		ResultMemo: resultMemo,
		Logger:     logger,
		// The process-wide registry, so the server's series share the
		// -pprof-addr scrape surface with any other instrumentation; the
		// public mux serves the same registry at GET /v1/metrics.
		Metrics: telemetry.Default,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing addr file: %w", err)
		}
	}
	log.Printf("serving %s/%s explanations on http://%s (test pairs addressable as pair_index 0..%d)",
		ds, m.Name(), bound, len(pairs)-1)

	httpSrv := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: drain in-flight requests, then persist the
	// cache so the next start serves warm.
	log.Printf("shutting down: draining in-flight requests (up to %s)", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	srv.Close()
	if cacheFile != "" {
		if err := writeSnapshot(svc, cacheFile); err != nil {
			return fmt.Errorf("writing cache snapshot: %w", err)
		}
		log.Printf("cache snapshot (%d entries) written to %s", svc.Len(), cacheFile)
	}
	return nil
}

// writeSnapshot persists the cache atomically: write aside, then rename,
// so a crash mid-write cannot corrupt the previous snapshot.
func writeSnapshot(svc *certa.ScoringService, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := svc.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Command certa-datagen emits the synthetic ER benchmarks as CSV files
// (one per source plus a ground-truth match list), so the data can be
// inspected or consumed by other tools:
//
//	certa-datagen -dataset AB -out ./data/ab
//	certa-datagen -dataset all -out ./data -records 500 -matches 300
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"certa"
)

func main() {
	var (
		ds      = flag.String("dataset", "all", "benchmark code or \"all\"")
		out     = flag.String("out", "data", "output directory")
		seed    = flag.Int64("seed", 7, "random seed")
		records = flag.Int("records", 300, "max records per source")
		matches = flag.Int("matches", 150, "max matching pairs")
		full    = flag.Bool("full-scale", false, "reproduce the paper's Table 1 record counts exactly")
	)
	flag.Parse()

	codes := []string{*ds}
	if *ds == "all" {
		codes = certa.BenchmarkCodes()
	}
	for _, code := range codes {
		if err := emit(code, *out, *seed, *records, *matches, *full); err != nil {
			fmt.Fprintf(os.Stderr, "certa-datagen: %v\n", err)
			os.Exit(1)
		}
	}
}

func emit(code, out string, seed int64, records, matches int, full bool) error {
	bench, err := certa.GenerateBenchmark(code, certa.BenchmarkOptions{
		Seed: seed, MaxRecords: records, MaxMatches: matches, FullScale: full,
	})
	if err != nil {
		return err
	}
	dir := filepath.Join(out, strings.ToLower(code))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	write := func(name string, fn func(f io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", name, err)
		}
		return f.Close()
	}

	if err := write("left.csv", bench.Left.WriteCSV); err != nil {
		return err
	}
	if err := write("right.csv", bench.Right.WriteCSV); err != nil {
		return err
	}
	if err := write("matches.csv", func(f io.Writer) error {
		if _, err := fmt.Fprintln(f, "left_id,right_id"); err != nil {
			return err
		}
		for _, m := range bench.Matches {
			if _, err := fmt.Fprintf(f, "%s,%s\n", m.Left.ID, m.Right.ID); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	s := bench.Stats()
	fmt.Printf("%s: %d + %d records, %d matches, %d + %d distinct values -> %s\n",
		code, s.LeftRecords, s.RightRecords, s.Matches, s.LeftDistinct, s.RightDistinct, dir)
	return nil
}

// Command certa-explain trains one of the paper's ER systems on a
// synthetic benchmark and prints the CERTA explanation (saliency +
// counterfactuals) of one test-pair prediction:
//
//	certa-explain -dataset AB -model Ditto -pair 0
//	certa-explain -dataset WA -model DeepER -wrong   # first misclassified pair
//	certa-explain -dataset AB -pair 0 -json          # machine-readable output
//
// With -json the explanation is emitted as the same ExplainResponse
// document the certa-serve HTTP API returns (one schema for CLI and
// server; progress lines go to stderr), and any failure — including a
// failed write to stdout — exits non-zero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"certa"
)

func main() {
	var (
		ds         = flag.String("dataset", "AB", "benchmark code (AB, AG, BA, DA, DS, FZ, IA, WA, DDA, DDS, DIA, DWA)")
		model      = flag.String("model", "Ditto", "ER system: DeepER, DeepMatcher, Ditto, SVM")
		pairIdx    = flag.Int("pair", 0, "index into the benchmark's test split")
		wrong      = flag.Bool("wrong", false, "explain the first misclassified test pair instead")
		triangles  = flag.Int("triangles", 100, "CERTA triangle budget τ")
		parallel   = flag.Int("parallelism", 1, "worker goroutines for batched scoring")
		seed       = flag.Int64("seed", 7, "random seed")
		records    = flag.Int("records", 300, "max records per source")
		matches    = flag.Int("matches", 150, "max matching pairs")
		tokens     = flag.Bool("tokens", false, "also print token-level saliency (the paper's future-work extension)")
		saveModel  = flag.String("save-model", "", "write the trained model to this file")
		loadModel  = flag.String("load-model", "", "load a previously saved model instead of training")
		callBudget = flag.Int("call-budget", 0, "anytime cap on unique model calls (0 = unlimited); a tripped budget returns the best-so-far explanation")
		deadline   = flag.Duration("deadline", 0, "anytime soft wall-clock allowance for the explanation (0 = none)")
		augBudget  = flag.Int("augment-budget", 0, "token-drop variants the augmented-support search may try per missing support (0 = default 200)")
		prune      = flag.Float64("lattice-prune", 0, "lattice pruning threshold: stop exploring a lattice once a completed level's flip fraction reaches this (0 = exact exploration)")
		pruneMin   = flag.Int("lattice-prune-min-levels", 0, "levels that must be fully explored before -lattice-prune may cut (0 = default 2; narrow schemas need 1: a 3-attribute lattice only has levels 1..2)")
		jsonOut    = flag.Bool("json", false, "emit the explanation as the server's ExplainResponse JSON document on stdout")
	)
	flag.Parse()

	if err := run(*ds, *model, *pairIdx, *wrong, *triangles, *parallel, *seed, *records, *matches, *tokens, *saveModel, *loadModel, *callBudget, *deadline, *augBudget, *prune, *pruneMin, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "certa-explain: %v\n", err)
		os.Exit(1)
	}
}

// checkedWriter remembers the first write error, so output written with
// unchecked fmt.Fprintf calls still fails the command: before the
// audit, a closed or full stdout printed a partial explanation and
// exited 0.
type checkedWriter struct {
	w   io.Writer
	err error
}

func (c *checkedWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return len(p), nil // swallow the rest; the first error is what matters
	}
	n, err := c.w.Write(p)
	if err != nil {
		c.err = err
		return len(p), nil
	}
	return n, nil
}

func run(ds, model string, pairIdx int, wrong bool, triangles, parallel int, seed int64, records, matches int, tokens bool, saveModel, loadModel string, callBudget int, deadline time.Duration, augBudget int, prune float64, pruneMin int, jsonOut bool) error {
	// Human-readable progress goes to stdout normally, to stderr in
	// -json mode (stdout then carries exactly one JSON document).
	cw := &checkedWriter{w: os.Stdout}
	var out io.Writer = cw
	if jsonOut {
		if tokens {
			// The wire document has no token-saliency section; silently
			// dropping -tokens would hand scripts incomplete output.
			return fmt.Errorf("-tokens has no JSON representation; use it without -json")
		}
		out = os.Stderr
	}

	bench, err := certa.GenerateBenchmark(ds, certa.BenchmarkOptions{
		Seed: seed, MaxRecords: records, MaxMatches: matches,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "benchmark %s: %d + %d records, %d matches, %d test pairs\n",
		ds, bench.Left.Len(), bench.Right.Len(), len(bench.Matches), len(bench.Test))

	var m *certa.Matcher
	if loadModel != "" {
		data, err := os.ReadFile(loadModel)
		if err != nil {
			return err
		}
		m = new(certa.Matcher)
		if err := m.UnmarshalBinary(data); err != nil {
			return err
		}
		fmt.Fprintf(out, "loaded %s from %s: F1 = %.3f on the test split\n\n", m.Name(), loadModel, certa.F1(m, bench.Test))
	} else {
		m, err = certa.TrainMatcher(certa.MatcherKind(model), bench, certa.MatcherConfig{Seed: seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "trained %s: F1 = %.3f on the test split\n\n", model, certa.F1(m, bench.Test))
	}
	if saveModel != "" {
		data, err := m.MarshalBinary()
		if err != nil {
			return err
		}
		if err := os.WriteFile(saveModel, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "model saved to %s (%d bytes)\n\n", saveModel, len(data))
	}

	var target certa.LabeledPair
	switch {
	case wrong:
		found := false
		for _, p := range bench.Test {
			if (m.Score(p.Pair) > 0.5) != p.Match {
				target = p
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("no misclassified pair in the test split; try another -seed")
		}
	case pairIdx >= 0 && pairIdx < len(bench.Test):
		target = bench.Test[pairIdx]
	default:
		return fmt.Errorf("pair index %d out of range [0,%d)", pairIdx, len(bench.Test))
	}

	score := m.Score(target.Pair)
	fmt.Fprintf(out, "pair <%s>: ground truth %v, %s score %.3f (%s)\n",
		target.Key(), label(target.Match), m.Name(), score, label(score > 0.5))
	fmt.Fprintf(out, "  left : %s\n  right: %s\n\n", target.Left, target.Right)

	explainer := certa.New(bench.Left, bench.Right, certa.Options{
		Triangles: triangles, Seed: seed, Parallelism: parallel,
		CallBudget: callBudget, Deadline: deadline, AugmentBudget: augBudget,
		LatticePrune: certa.PrunePolicy{Threshold: prune, MinLevels: pruneMin},
	})
	res, err := explainer.Explain(m, target.Pair)
	if err != nil {
		return err
	}

	if jsonOut {
		// The server's wire document, verbatim: one schema for the CLI
		// and the HTTP API, pinned by the golden-file round-trip test.
		doc := certa.ExplainResponse{
			Benchmark: ds,
			PairKey:   target.Pair.Key(),
			Result:    res,
		}
		enc := json.NewEncoder(cw)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return err
		}
		if cw.err != nil {
			return fmt.Errorf("writing to stdout: %w", cw.err)
		}
		return nil
	}

	if res.Diag.Truncated {
		fmt.Fprintf(out, "anytime: %s limit tripped — best-so-far explanation, completeness %.0f%%, %d calls spent\n\n",
			res.Diag.TruncatedBy, 100*res.Diag.Completeness, res.Diag.BudgetSpent)
	}

	fmt.Fprintln(out, "saliency (probability of necessity):")
	for _, ref := range res.Saliency.Ranked() {
		fmt.Fprintf(out, "  %-18s %.3f\n", ref, res.Saliency.Scores[ref])
	}
	fmt.Fprintf(out, "\ncounterfactuals (A★ = %s, χ = %.2f): %d examples\n",
		res.BestSet.Key(), res.BestSufficiency, len(res.Counterfactuals))
	for i, cf := range res.Counterfactuals {
		if i >= 3 {
			fmt.Fprintf(out, "  ... and %d more\n", len(res.Counterfactuals)-3)
			break
		}
		fmt.Fprintf(out, "  #%d score %.3f, changed %v\n", i+1, cf.Score, cf.ChangedAttrNames())
		for _, ref := range cf.Changed {
			fmt.Fprintf(out, "      %s: %q -> %q\n", ref, cf.Original.Value(ref), cf.Pair.Value(ref))
		}
	}
	if tokens {
		ts, err := explainer.TokenSaliency(m, target.Pair, res, certa.TokenOptions{Seed: seed})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "\ntoken-level saliency (top 10):")
		for i, t := range ts {
			if i >= 10 {
				break
			}
			fmt.Fprintf(out, "  %-18s #%d %-16q %.4f\n", t.Ref, t.Index, t.Token, t.Score)
		}
	}

	fmt.Fprintf(out, "\ndiagnostics: %d+%d triangles (%d augmented), %d lattice queries, %d unique lattice calls (%d saved)\n",
		res.Diag.LeftTriangles, res.Diag.RightTriangles,
		res.Diag.AugmentedLeft+res.Diag.AugmentedRight,
		res.Diag.LatticeQueries, res.Diag.LatticePredictions, res.Diag.SavedPredictions)
	fmt.Fprintf(out, "batched scoring: %d lookups in %d batches, %d unique model calls, cache hit rate %.1f%% (seed path: %d calls)\n",
		res.Diag.CacheLookups, res.Diag.BatchCalls, res.Diag.ModelCalls,
		100*res.Diag.CacheHitRate(), res.Diag.SeedPathCalls)
	if res.Diag.PrunedQueries > 0 {
		fmt.Fprintf(out, "lattice pruning: %d questions skipped across %d unexplored levels\n",
			res.Diag.PrunedQueries, res.Diag.PruneLevels)
	}
	if cw.err != nil {
		return fmt.Errorf("writing to stdout: %w", cw.err)
	}
	return nil
}

func label(match bool) string {
	if match {
		return "Match"
	}
	return "Non-Match"
}

// certa-lint is the repo's vettool: a multichecker bundling the five
// analyzers that enforce the determinism, diagnostics-purity and
// wire-stability contracts at the source level. Run it through the go
// command so every package unit is analyzed with full type
// information and results are build-cached:
//
//	make lint
//	# equivalently:
//	go build -o bin/certa-lint ./cmd/certa-lint
//	go vet -vettool=$PWD/bin/certa-lint ./...
//
// Individual analyzers can be selected like standard vet checks, e.g.
// `go vet -vettool=$PWD/bin/certa-lint -maporder ./...`. A finding is
// waived — with a mandatory justification — by a directive on or
// directly above the offending line:
//
//	start := time.Now() //lint:allow nodrift build-time telemetry only
//
// The invariant catalog mapping each analyzer to the contract it
// enforces and the PR that established it is internal/lint/CATALOG.md.
package main

import (
	"certa/internal/lint/ctxthread"
	"certa/internal/lint/diagpure"
	"certa/internal/lint/maporder"
	"certa/internal/lint/nodrift"
	"certa/internal/lint/unitchecker"
	"certa/internal/lint/wiretag"
)

func main() {
	unitchecker.Main(
		ctxthread.Analyzer,
		diagpure.Analyzer,
		maporder.Analyzer,
		nodrift.Analyzer,
		wiretag.Analyzer,
	)
}

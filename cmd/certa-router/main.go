// Command certa-router fronts a ring of certa-serve workers with a
// consistent-hash sharded routing layer (see internal/cluster):
//
//	certa-serve  -dataset AB -addr 127.0.0.1:8081 -name w0 &
//	certa-serve  -dataset AB -addr 127.0.0.1:8082 -name w1 &
//	certa-router -dataset AB -addr 127.0.0.1:8080 \
//	    -workers 'w0=http://127.0.0.1:8081,w1=http://127.0.0.1:8082'
//	curl -s -X POST localhost:8080/v1/explain -d '{"pair_index":0}'
//
// Each explanation request is resolved to its canonical pair content
// and forwarded to the worker the ring assigns that content to, so
// repeat and related traffic for a pair always lands on the same warm
// cache. Batches are partitioned by shard and fanned out concurrently.
// A dead worker's shard fails over to the next replica on the ring;
// responses otherwise pass through byte-for-byte, so a client cannot
// tell the router from a single certa-serve process.
//
// The router rebuilds the benchmark tables itself (same -dataset,
// -records, -matches, -seed as the workers — generation is
// deterministic) because placement needs the pair content, not just
// the request bytes. GET /v1/stats aggregates every worker's stats
// document into a ring view; GET /v1/metrics serves the router's own
// series (workers keep theirs).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"certa"
	"certa/internal/cluster"
	"certa/internal/debugserve"
	"certa/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address (use port 0 for an ephemeral port)")
		addrFile    = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
		workers     = flag.String("workers", "", "comma-separated ring members, each name=url or a bare url (named w0, w1, ... by position); names determine placement and must match the workers' -name flags")
		vnodes      = flag.Int("vnodes", 0, "virtual nodes per member on the placement ring (0 = default; must match any ring-filtered warm join)")
		ds          = flag.String("dataset", "AB", "comma-separated benchmark codes the ring serves (must match the workers' -dataset)")
		records     = flag.Int("records", 300, "max records per source (must match the workers)")
		matches     = flag.Int("matches", 150, "max matching pairs (must match the workers)")
		seed        = flag.Int64("seed", 7, "random seed (must match the workers)")
		healthEvery = flag.Duration("health-every", 5*time.Second, "active worker health-probe interval (0 = passive only)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown allowance for in-flight requests")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof and /v1/metrics on this auxiliary address (empty = disabled)")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()

	if *pprofAddr != "" {
		bound, err := debugserve.Start(*pprofAddr, telemetry.Default.Handler())
		if err != nil {
			fmt.Fprintf(os.Stderr, "certa-router: %v\n", err)
			os.Exit(1)
		}
		log.Printf("pprof endpoints on http://%s/debug/pprof/ (metrics at /v1/metrics)", bound)
	}

	if err := run(*addr, *addrFile, *workers, *vnodes, *ds, *records, *matches, *seed,
		*healthEvery, *drain, *logLevel); err != nil {
		fmt.Fprintf(os.Stderr, "certa-router: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, addrFile, workers string, vnodes int, ds string, records, matches int, seed int64,
	healthEvery, drain time.Duration, logLevel string) error {
	log.SetPrefix("certa-router: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	var level slog.Level
	if err := level.UnmarshalText([]byte(logLevel)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", logLevel, err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	members, err := cluster.ParseMembers(workers)
	if err != nil {
		return fmt.Errorf("-workers: %w", err)
	}

	// Rebuild each benchmark's tables: generation is deterministic in
	// (code, records, matches, seed), so the router resolves a request
	// to exactly the pair content the workers will score.
	var keyspaces []cluster.Keyspace
	for _, code := range strings.Split(ds, ",") {
		code = strings.TrimSpace(code)
		if code == "" {
			continue
		}
		bench, err := certa.GenerateBenchmark(code, certa.BenchmarkOptions{
			Seed: seed, MaxRecords: records, MaxMatches: matches,
		})
		if err != nil {
			return err
		}
		pairs := make([]certa.Pair, len(bench.Test))
		for i, lp := range bench.Test {
			pairs[i] = lp.Pair
		}
		keyspaces = append(keyspaces, cluster.Keyspace{
			Name: code, Left: bench.Left, Right: bench.Right, Pairs: pairs,
		})
	}

	rt, err := cluster.NewRouter(members, cluster.Options{
		VirtualNodes: vnodes,
		Keyspaces:    keyspaces,
		HealthEvery:  healthEvery,
		Logger:       logger,
		Metrics:      telemetry.Default,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	// One synchronous probe before accepting traffic, so the first
	// requests already know which members are reachable.
	rt.ProbeOnce(context.Background())

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing addr file: %w", err)
		}
	}
	log.Printf("routing %s across %d workers on http://%s (%d virtual nodes/member)",
		ds, len(members), bound, rt.Ring().VirtualNodes())

	httpSrv := &http.Server{Handler: rt}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	log.Printf("shutting down: draining in-flight requests (up to %s)", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	return nil
}

// Package shap implements Kernel SHAP (Lundberg & Lee, NeurIPS 2017):
// Shapley-value feature attributions estimated by a weighted linear
// regression over feature coalitions with the Shapley kernel.
//
// For small feature counts (≤ ExactLimit) all 2^n coalitions are
// enumerated, making the attribution exact; above that, coalitions are
// sampled. The empty and full coalitions are pinned with a large weight,
// enforcing the local-accuracy constraint softly.
package shap

import (
	"fmt"
	"math"
	"math/rand"

	"certa/internal/vector"
)

// ExactLimit is the feature count up to which all coalitions are
// enumerated.
const ExactLimit = 10

// Config tunes the estimator.
type Config struct {
	// Samples is the number of sampled coalitions when n > ExactLimit
	// (default 512).
	Samples int
	// Lambda is a small ridge regularizer for numerical stability
	// (default 1e-6; Kernel SHAP is ordinarily unregularized).
	Lambda float64
	// Seed drives coalition sampling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Samples <= 0 {
		c.Samples = 512
	}
	if c.Lambda <= 0 {
		c.Lambda = 1e-6
	}
	return c
}

// Explain computes SHAP values for n binary features. value is called
// with a coalition (true = feature present) and must return the model
// output with absent features masked out. Returns one signed attribution
// per feature; they approximately sum to value(full) - value(empty).
func Explain(n int, value func(coalition []bool) float64, cfg Config) ([]float64, error) {
	return ExplainBatch(n, func(coalitions [][]bool) []float64 {
		out := make([]float64, len(coalitions))
		for i, c := range coalitions {
			out[i] = value(c)
		}
		return out
	}, cfg)
}

// ExplainBatch is Explain with a batched value function: coalition
// sampling never depends on model outputs, so every coalition is drawn
// first and the whole set is evaluated in one call before the weighted
// least-squares fit. Attributions are bit-identical to Explain with an
// equivalent scalar value function.
func ExplainBatch(n int, valueBatch func(coalitions [][]bool) []float64, cfg Config) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shap: need at least one feature, got %d", n)
	}
	if n == 1 {
		vs := valueBatch([][]bool{{true}, {false}})
		return []float64{vs[0] - vs[1]}, nil
	}
	cfg = cfg.withDefaults()

	type row struct {
		coalition []bool
		weight    float64
	}
	var rows []row

	const pinned = 1e7 // soft constraint weight for empty/full
	empty := make([]bool, n)
	full := onesTemplate(n)
	rows = append(rows,
		row{coalition: empty, weight: pinned},
		row{coalition: full, weight: pinned},
	)

	if n <= ExactLimit {
		for m := 1; m < (1 << uint(n)); m++ {
			if m == (1<<uint(n))-1 {
				continue
			}
			c := make([]bool, n)
			size := 0
			for i := 0; i < n; i++ {
				if m&(1<<uint(i)) != 0 {
					c[i] = true
					size++
				}
			}
			rows = append(rows, row{coalition: c, weight: kernelWeight(n, size)})
		}
	} else {
		rng := rand.New(rand.NewSource(cfg.Seed))
		for s := 0; s < cfg.Samples; s++ {
			// Sample coalition size from the (normalized) Shapley kernel
			// distribution, then the members uniformly.
			size := sampleSize(n, rng)
			c := make([]bool, n)
			for _, idx := range rng.Perm(n)[:size] {
				c[idx] = true
			}
			rows = append(rows, row{coalition: c, weight: 1}) // weight folded into sampling
		}
	}

	// Weighted least squares: value(z) ≈ φ0 + Σ z_i φ_i.
	x := vector.NewMatrix(len(rows), n+1)
	w := make([]float64, len(rows))
	coalitions := make([][]bool, len(rows))
	for i, r := range rows {
		xr := x.Row(i)
		for j, on := range r.coalition {
			if on {
				xr[j] = 1
			}
		}
		xr[n] = 1 // intercept φ0
		coalitions[i] = r.coalition
		w[i] = r.weight
	}
	y := valueBatch(coalitions)
	if len(y) != len(rows) {
		return nil, fmt.Errorf("shap: batch value returned %d outputs for %d coalitions", len(y), len(rows))
	}
	beta, err := vector.WeightedRidge(x, y, w, cfg.Lambda)
	if err != nil {
		return nil, fmt.Errorf("shap: weighted least squares failed: %w", err)
	}
	return beta[:n], nil
}

// kernelWeight is the Shapley kernel: (n-1) / (C(n,s) * s * (n-s)).
func kernelWeight(n, size int) float64 {
	if size == 0 || size == n {
		return math.Inf(1)
	}
	return float64(n-1) / (binom(n, size) * float64(size) * float64(n-size))
}

// sampleSize draws a coalition size proportional to the kernel's
// size-marginal weight C(n,s)·kernel(n,s) = (n-1)/(s(n-s)).
func sampleSize(n int, rng *rand.Rand) int {
	weights := make([]float64, n-1)
	var total float64
	for s := 1; s < n; s++ {
		weights[s-1] = 1 / (float64(s) * float64(n-s))
		total += weights[s-1]
	}
	r := rng.Float64() * total
	for s := 1; s < n; s++ {
		r -= weights[s-1]
		if r <= 0 {
			return s
		}
	}
	return n - 1
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out = out * float64(n-i) / float64(i+1)
	}
	return out
}

func onesTemplate(n int) []bool {
	t := make([]bool, n)
	for i := range t {
		t[i] = true
	}
	return t
}

package shap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: for random additive models, exact Kernel SHAP recovers each
// feature's contribution and satisfies local accuracy.
func TestAdditiveRecoveryProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%5) // 2..6 features (exact regime)
		rng := rand.New(rand.NewSource(seed))
		contrib := make([]float64, n)
		for i := range contrib {
			contrib[i] = rng.Float64()*2 - 1
		}
		base := rng.Float64()
		value := func(c []bool) float64 {
			s := base
			for i, on := range c {
				if on {
					s += contrib[i]
				}
			}
			return s
		}
		phi, err := Explain(n, value, Config{})
		if err != nil {
			return false
		}
		for i := range contrib {
			if math.Abs(phi[i]-contrib[i]) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: a constant model yields all-zero attributions.
func TestConstantModelProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%8)
		c := float64(seed%100) / 100
		phi, err := Explain(n, func([]bool) float64 { return c }, Config{Seed: seed})
		if err != nil {
			return false
		}
		for _, p := range phi {
			if math.Abs(p) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

package shap

import (
	"math"
	"testing"
)

func TestExactAdditiveModel(t *testing.T) {
	// Additive model: SHAP values equal the per-feature contributions.
	contrib := []float64{0.5, 0.2, -0.1}
	value := func(c []bool) float64 {
		s := 0.1
		for i, on := range c {
			if on {
				s += contrib[i]
			}
		}
		return s
	}
	phi, err := Explain(3, value, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range contrib {
		if math.Abs(phi[i]-contrib[i]) > 1e-3 {
			t.Errorf("phi[%d] = %v, want %v", i, phi[i], contrib[i])
		}
	}
}

func TestLocalAccuracy(t *testing.T) {
	// Σ phi ≈ value(full) - value(empty) for an interacting model.
	value := func(c []bool) float64 {
		s := 0.0
		if c[0] && c[1] {
			s += 0.6 // interaction
		}
		if c[2] {
			s += 0.2
		}
		return s
	}
	phi, err := Explain(3, value, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sum := phi[0] + phi[1] + phi[2]
	if math.Abs(sum-0.8) > 1e-3 {
		t.Errorf("sum of phi = %v, want 0.8", sum)
	}
	// Symmetry: features 0 and 1 are exchangeable.
	if math.Abs(phi[0]-phi[1]) > 1e-3 {
		t.Errorf("symmetric features got %v vs %v", phi[0], phi[1])
	}
}

func TestNullFeatureGetsZero(t *testing.T) {
	value := func(c []bool) float64 {
		if c[0] {
			return 1
		}
		return 0
	}
	phi, err := Explain(4, value, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if math.Abs(phi[i]) > 1e-3 {
			t.Errorf("null feature %d phi = %v", i, phi[i])
		}
	}
	if math.Abs(phi[0]-1) > 1e-3 {
		t.Errorf("decisive feature phi = %v", phi[0])
	}
}

func TestSingleFeature(t *testing.T) {
	value := func(c []bool) float64 {
		if c[0] {
			return 0.9
		}
		return 0.2
	}
	phi, err := Explain(1, value, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi[0]-0.7) > 1e-9 {
		t.Errorf("phi = %v, want 0.7", phi[0])
	}
}

func TestSampledModeLargeN(t *testing.T) {
	// 12 features (> ExactLimit): sampled coalitions. The dominant
	// feature should still rank first and local accuracy roughly hold.
	value := func(c []bool) float64 {
		s := 0.0
		if c[0] {
			s += 0.5
		}
		for i := 1; i < len(c); i++ {
			if c[i] {
				s += 0.02
			}
		}
		return s
	}
	phi, err := Explain(12, value, Config{Samples: 600, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 12; i++ {
		if phi[0] <= phi[i] {
			t.Errorf("dominant feature should rank first: phi[0]=%v phi[%d]=%v", phi[0], i, phi[i])
		}
	}
	var sum float64
	for _, p := range phi {
		sum += p
	}
	if math.Abs(sum-(0.5+11*0.02)) > 0.05 {
		t.Errorf("local accuracy violated: sum=%v", sum)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	value := func(c []bool) float64 {
		s := 0.0
		for i, on := range c {
			if on {
				s += float64(i) * 0.01
			}
		}
		return s
	}
	a, _ := Explain(12, value, Config{Samples: 200, Seed: 7})
	b, _ := Explain(12, value, Config{Samples: 200, Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical SHAP values")
		}
	}
}

func TestExplainErrors(t *testing.T) {
	if _, err := Explain(0, nil, Config{}); err == nil {
		t.Error("n=0 should error")
	}
}

func TestBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{5, 2, 10}, {5, 0, 1}, {5, 5, 1}, {10, 3, 120}, {3, 5, 0}}
	for _, c := range cases {
		if got := binom(c.n, c.k); got != c.want {
			t.Errorf("binom(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func BenchmarkExplainExact8(b *testing.B) {
	value := func(c []bool) float64 {
		s := 0.0
		for i, on := range c {
			if on {
				s += float64(i) * 0.03
			}
		}
		return s
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Explain(8, value, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

package lime

import (
	"math"
	"testing"
)

func TestExplainRecoversAdditiveModel(t *testing.T) {
	// Model: score = 0.6*f0 + 0.3*f1 + 0.0*f2 (+0.05 base).
	predict := func(active []bool) float64 {
		s := 0.05
		if active[0] {
			s += 0.6
		}
		if active[1] {
			s += 0.3
		}
		return s
	}
	w, err := Explain(3, predict, Config{Samples: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !(w[0] > w[1] && w[1] > w[2]) {
		t.Errorf("weights not ordered: %v", w)
	}
	if math.Abs(w[0]-0.6) > 0.1 || math.Abs(w[1]-0.3) > 0.1 || math.Abs(w[2]) > 0.1 {
		t.Errorf("weights = %v, want ~[0.6 0.3 0]", w)
	}
}

func TestExplainNegativeContribution(t *testing.T) {
	// Feature 1 lowers the score when present.
	predict := func(active []bool) float64 {
		s := 0.5
		if active[0] {
			s += 0.3
		}
		if active[1] {
			s -= 0.4
		}
		return s
	}
	w, err := Explain(2, predict, Config{Samples: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w[0] <= 0 || w[1] >= 0 {
		t.Errorf("signs wrong: %v", w)
	}
}

func TestExplainDeterministic(t *testing.T) {
	predict := func(active []bool) float64 {
		s := 0.0
		for i, a := range active {
			if a {
				s += float64(i+1) * 0.1
			}
		}
		return s
	}
	a, err := Explain(4, predict, Config{Samples: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explain(4, predict, Config{Samples: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical explanations")
		}
	}
}

func TestExplainSingleFeature(t *testing.T) {
	predict := func(active []bool) float64 {
		if active[0] {
			return 0.9
		}
		return 0.1
	}
	w, err := Explain(1, predict, Config{Samples: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if w[0] < 0.5 {
		t.Errorf("single decisive feature weight = %v", w[0])
	}
}

func TestExplainErrors(t *testing.T) {
	if _, err := Explain(0, nil, Config{}); err == nil {
		t.Error("n=0 should error")
	}
}

func TestKernelFavorsLocalSamples(t *testing.T) {
	// A model with an interaction far from the instance: local fit should
	// mostly see near-complete coalitions.
	predict := func(active []bool) float64 {
		n := 0
		for _, a := range active {
			if a {
				n++
			}
		}
		if n >= 3 {
			return 0.2 * float64(n)
		}
		return 0 // far-away cliff
	}
	w, err := Explain(4, predict, Config{Samples: 500, KernelWidth: 0.3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range w {
		if v < 0 {
			t.Errorf("feature %d weight %v; near the instance all features help", i, v)
		}
	}
}

func BenchmarkExplain8Features(b *testing.B) {
	predict := func(active []bool) float64 {
		s := 0.0
		for i, a := range active {
			if a {
				s += float64(i) * 0.05
			}
		}
		return s
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Explain(8, predict, Config{Samples: 200, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// Package lime implements the LIME local-explanation algorithm (Ribeiro
// et al., KDD 2016): sample binary perturbations of an interpretable
// representation, query the black-box model on each, weight samples by an
// exponential locality kernel, and fit a weighted ridge regression whose
// coefficients are the feature importances.
//
// The package is the substrate for the ER-specific adaptations Mojito and
// LandMark and for the LIME-C counterfactual baseline (all in
// internal/baselines).
package lime

import (
	"fmt"
	"math"
	"math/rand"

	"certa/internal/vector"
)

// Config tunes the LIME sampling and regression.
type Config struct {
	// Samples is the number of perturbed inputs to draw (default 200).
	Samples int
	// KernelWidth is the σ of the exponential kernel
	// exp(-d² / σ²) over the Hamming-fraction distance d (default 0.75,
	// LIME's default for tabular data is sqrt(n)*0.75; on normalized
	// distances a constant works uniformly).
	KernelWidth float64
	// Lambda is the ridge regularizer (default 0.01).
	Lambda float64
	// Seed drives the sampler.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Samples <= 0 {
		c.Samples = 200
	}
	if c.KernelWidth <= 0 {
		c.KernelWidth = 0.75
	}
	if c.Lambda <= 0 {
		c.Lambda = 0.01
	}
	return c
}

// Explain runs LIME over n binary interpretable features. predict is
// called with an activation vector (true = feature present, i.e. the
// original state) and must return the model score for the corresponding
// perturbed input. It returns one signed weight per feature; positive
// weights push toward higher scores.
func Explain(n int, predict func(active []bool) float64, cfg Config) ([]float64, error) {
	return ExplainBatch(n, func(rows [][]bool) []float64 {
		out := make([]float64, len(rows))
		for i, active := range rows {
			out[i] = predict(active)
		}
		return out
	}, cfg)
}

// ExplainBatch is Explain with a batched predictor: the sampler draws
// every perturbed activation vector up front (sampling never depends on
// model outputs), the whole neighborhood is scored in one call — row 0
// is always the unperturbed instance — and the weighted ridge fit runs
// on the result. Weights are bit-identical to Explain with an equivalent
// scalar predictor.
func ExplainBatch(n int, predictBatch func(rows [][]bool) []float64, cfg Config) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("lime: need at least one feature, got %d", n)
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	rows := cfg.Samples + 1 // +1 for the unperturbed instance
	x := vector.NewMatrix(rows, n+1)
	w := make([]float64, rows)
	actives := make([][]bool, rows)

	// Row 0: the original instance (all features active, distance 0).
	actives[0] = onesTemplate(n)
	fill(x.Row(0), actives[0])
	w[0] = 1

	for s := 1; s < rows; s++ {
		// LIME's sampler: choose how many features to deactivate
		// uniformly in [1, n], then choose which.
		k := 1 + rng.Intn(n)
		active := onesTemplate(n)
		for _, idx := range rng.Perm(n)[:k] {
			active[idx] = false
		}
		actives[s] = active
		fill(x.Row(s), active)
		d := float64(k) / float64(n) // normalized Hamming distance
		w[s] = math.Exp(-d * d / (cfg.KernelWidth * cfg.KernelWidth))
	}

	y := predictBatch(actives)
	if len(y) != rows {
		return nil, fmt.Errorf("lime: batch predictor returned %d scores for %d rows", len(y), rows)
	}

	beta, err := vector.WeightedRidge(x, y, w, cfg.Lambda)
	if err != nil {
		return nil, fmt.Errorf("lime: ridge regression failed: %w", err)
	}
	return beta[:n], nil // drop the intercept
}

// fill writes a binary activation row plus the trailing intercept column.
func fill(row []float64, active []bool) {
	for i, a := range active {
		if a {
			row[i] = 1
		} else {
			row[i] = 0
		}
	}
	row[len(row)-1] = 1 // intercept
}

func onesTemplate(n int) []bool {
	t := make([]bool, n)
	for i := range t {
		t[i] = true
	}
	return t
}

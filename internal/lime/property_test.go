package lime

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: a constant model gets near-zero weights on every feature.
// The ridge regularizer shrinks the intercept slightly, leaking an
// amount proportional to |c| into the weights, so the tolerance scales
// with the constant's magnitude. The quick rand is pinned so failures
// reproduce.
func TestConstantModelProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%8)
		c := float64(seed%97) / 97
		w, err := Explain(n, func([]bool) float64 { return c }, Config{Samples: 100, Seed: seed})
		if err != nil {
			return false
		}
		for _, v := range w {
			if math.Abs(v) > 2e-3*(1+math.Abs(c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: for random additive models the weight ordering matches the
// contribution ordering whenever contributions are well separated.
func TestAdditiveOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		contrib := make([]float64, n)
		for i := range contrib {
			// Well-separated positive contributions.
			contrib[i] = 0.1 + 0.3*float64(i) + 0.02*rng.Float64()
		}
		rng.Shuffle(n, func(i, j int) { contrib[i], contrib[j] = contrib[j], contrib[i] })
		predict := func(active []bool) float64 {
			s := 0.0
			for i, on := range active {
				if on {
					s += contrib[i]
				}
			}
			return s
		}
		w, err := Explain(n, predict, Config{Samples: 500, Seed: seed})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if contrib[i] > contrib[j]+0.25 && w[i] <= w[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

package telemetry

import (
	"context"
	"sync"
	"testing"
	"time"
)

// newFakeTrace returns a trace whose clock advances 1ms per reading,
// so span durations are a pure function of the call sequence.
func newFakeTrace() *Trace {
	return NewWithClock(&fakeClock{now: time.Unix(0, 0), step: time.Millisecond})
}

func TestSpanTree(t *testing.T) {
	tr := newFakeTrace()
	ctx := WithTrace(context.Background(), tr)

	if FromContext(ctx) != tr {
		t.Fatal("FromContext lost the trace")
	}
	outer, ctx2 := StartSpan(ctx, "triangles")
	inner, _ := StartSpan(ctx2, "retrieval/natural")
	inner.AddItems(12)
	inner.End()
	outer.End()
	sibling, _ := StartSpan(ctx, "lattice/left")
	sibling.End()
	tr.SetRequestID("r000007")

	w := tr.Tree()
	if w.Name != "explain" || len(w.Children) != 2 {
		t.Fatalf("unexpected tree root: %+v", w)
	}
	tri := w.Children[0]
	if tri.Name != "triangles" || len(tri.Children) != 1 {
		t.Fatalf("unexpected first child: %+v", tri)
	}
	ret := tri.Children[0]
	if ret.Name != "retrieval/natural" || ret.Items != 12 {
		t.Fatalf("unexpected grandchild: %+v", ret)
	}
	if ret.DurationMS <= 0 || tri.DurationMS < ret.DurationMS {
		t.Fatalf("durations not nested: parent %v child %v", tri.DurationMS, ret.DurationMS)
	}
	if w.Children[1].Name != "lattice/left" {
		t.Fatalf("sibling did not attach to root: %+v", w.Children[1])
	}
	if tr.RequestID() != "r000007" {
		t.Fatalf("request id = %q", tr.RequestID())
	}
}

func TestStages(t *testing.T) {
	tr := newFakeTrace()
	ctx := WithTrace(context.Background(), tr)
	for i := 0; i < 3; i++ {
		sp, _ := StartSpan(ctx, "forward")
		sp.AddItems(10)
		sp.End()
	}
	sp, _ := StartSpan(ctx, "memo")
	sp.End()

	stages := tr.Stages()
	if len(stages) != 2 {
		t.Fatalf("stages = %v", stages)
	}
	f := stages["forward"]
	if f.Count != 3 || f.Items != 30 || f.Duration != 3*time.Millisecond {
		t.Fatalf("forward agg = %+v", f)
	}
	names := StageNames(stages)
	if len(names) != 2 || names[0] != "forward" || names[1] != "memo" {
		t.Fatalf("StageNames = %v", names)
	}
}

// TestStartLeaf: leaf spans attach to the context's current span like
// StartSpan children, but without deriving a context — the cheap call
// for batch-granularity stages that never nest further.
func TestStartLeaf(t *testing.T) {
	tr := newFakeTrace()
	ctx := WithTrace(context.Background(), tr)
	outer, ctx2 := StartSpan(ctx, "model")
	leaf := StartLeaf(ctx2, "forward")
	leaf.AddItems(9)
	leaf.End()
	outer.End()
	root := StartLeaf(ctx, "memo")
	root.End()

	w := tr.Tree()
	if len(w.Children) != 2 || w.Children[0].Name != "model" || w.Children[1].Name != "memo" {
		t.Fatalf("unexpected tree: %+v", w)
	}
	fwd := w.Children[0].Children
	if len(fwd) != 1 || fwd[0].Name != "forward" || fwd[0].Items != 9 || fwd[0].DurationMS <= 0 {
		t.Fatalf("leaf did not nest under the context span: %+v", fwd)
	}
	if st := tr.Stages(); st["forward"].Count != 1 || st["memo"].Count != 1 {
		t.Fatalf("stages = %+v", st)
	}
}

// TestNilSafety: with no trace on the context every operation is a
// no-op — this is the always-on instrumentation contract.
func TestNilSafety(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("trace from bare context")
	}
	sp, ctx2 := StartSpan(ctx, "anything")
	if sp != nil || ctx2 != ctx {
		t.Fatal("StartSpan on bare context must return (nil, same ctx)")
	}
	if StartLeaf(ctx, "anything") != nil {
		t.Fatal("StartLeaf on bare context must return nil")
	}
	StartLeaf(ctx, "anything").End()
	sp.AddItems(5)
	sp.End()

	var tr *Trace
	tr.SetRequestID("x")
	if tr.RequestID() != "" || tr.Tree() != nil || tr.Stages() != nil || tr.Root() != nil {
		t.Fatal("nil trace methods must no-op")
	}
	if WithTrace(ctx, nil) != ctx {
		t.Fatal("WithTrace(nil) must return ctx unchanged")
	}
}

// TestConcurrentSpans exercises parallel span recording under one
// trace — the workpool-sharded scoring shape — and belongs to the
// -race matrix.
func TestConcurrentSpans(t *testing.T) {
	tr := New() // real clock: fakeClock is not goroutine-safe
	ctx := WithTrace(context.Background(), tr)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp, sub := StartSpan(ctx, "model")
				leaf, _ := StartSpan(sub, "forward")
				leaf.AddItems(1)
				leaf.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	st := tr.Stages()
	if st["model"].Count != 1600 || st["forward"].Count != 1600 || st["forward"].Items != 1600 {
		t.Fatalf("lost spans: %+v", st)
	}
}

func TestUnendedSpanDuration(t *testing.T) {
	tr := newFakeTrace()
	ctx := WithTrace(context.Background(), tr)
	sp, _ := StartSpan(ctx, "open")
	_ = sp
	w := tr.Tree()
	if len(w.Children) != 1 || w.Children[0].DurationMS <= 0 {
		t.Fatalf("unended span should report elapsed time: %+v", w)
	}
	if st := tr.Stages(); st["open"].Duration != 0 || st["open"].Count != 1 {
		t.Fatalf("unended span must not contribute duration to stages: %+v", st["open"])
	}
}

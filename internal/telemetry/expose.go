package telemetry

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4). Output is deterministic:
// families sorted by name, series by their canonical label rendering,
// histogram buckets ascending with the cumulative `le` convention —
// which is what lets testdata/exposition_golden.txt pin the format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sers := make([]*series, 0, len(keys))
		for _, k := range keys {
			sers = append(sers, f.series[k])
		}
		f.mu.Unlock()

		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range sers {
			writeSeries(bw, f, s)
		}
	}
	return bw.Flush()
}

func writeSeries(bw *bufio.Writer, f *family, s *series) {
	if fn := s.readFn(); fn != nil && f.kind != kindHistogram {
		writeSample(bw, f.name, s.labels, fn())
		return
	}
	switch {
	case f.kind == kindHistogram && s.hist != nil:
		writeHistogram(bw, f.name, s)
	case s.counter != nil:
		writeSampleUint(bw, f.name, s.labels, s.counter.Value())
	case s.gauge != nil:
		writeSample(bw, f.name, s.labels, s.gauge.Value())
	}
}

func writeHistogram(bw *bufio.Writer, name string, s *series) {
	h := s.hist
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		writeSampleUint(bw, name+"_bucket", withLE(s.labels, formatValue(b)), cum)
	}
	cum += h.inf.Load()
	writeSampleUint(bw, name+"_bucket", withLE(s.labels, "+Inf"), cum)
	writeSample(bw, name+"_sum", s.labels, h.Sum())
	writeSampleUint(bw, name+"_count", s.labels, h.Count())
}

// withLE appends the `le` bucket label to an already-rendered label
// set. le always renders last, after the series' own (sorted) labels.
func withLE(labels, bound string) string {
	le := `le="` + bound + `"`
	if labels == "" {
		return "{" + le + "}"
	}
	return labels[:len(labels)-1] + "," + le + "}"
}

func writeSample(bw *bufio.Writer, name, labels string, v float64) {
	bw.WriteString(name)
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(formatValue(v))
	bw.WriteByte('\n')
}

// writeSampleUint renders integral samples (counter values, bucket
// cumulative counts, _count) in plain decimal: FormatFloat 'g' would
// switch to scientific notation at 1e6+, which scrapers parsing the
// count with %d (servesmoke does) would silently misread.
func writeSampleUint(bw *bufio.Writer, name, labels string, v uint64) {
	bw.WriteString(name)
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(v, 10))
	bw.WriteByte('\n')
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// Handler returns an http.Handler serving the exposition — the body
// behind GET /v1/metrics on certa-serve and the daemons' debug muxes.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

package telemetry

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/exposition_golden.txt from the current output")

// TestExpositionGolden pins the /v1/metrics wire format byte for byte:
// HELP/TYPE lines, sorted family and series order, sorted label keys,
// cumulative le buckets, value formatting. Regenerate deliberately
// with -update-golden after a format change.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("certa_test_requests_total", "Requests served.", nil).Add(42)
	r.Counter("certa_test_backend_requests_total", "Per-backend requests.",
		Labels{"model": "SVM", "backend": "AB"}).Add(7)
	r.Counter("certa_test_backend_requests_total", "Per-backend requests.",
		Labels{"backend": "BA", "model": "RF"}).Add(9)
	r.Gauge("certa_test_queue_depth", "Admission queue depth.", nil).Set(3)
	r.GaugeFunc("certa_test_uptime_seconds", "Seconds since boot.", nil, func() float64 { return 12.5 })
	r.CounterFunc("certa_test_cache_hits_total", "Score cache hits.",
		Labels{"backend": `q"uo\te`}, func() float64 { return 1300 })
	h := r.Histogram("certa_test_latency_seconds", "Explain latency.",
		Labels{"backend": "AB"}, []float64{0.005, 0.05, 0.5})
	for _, v := range []float64{0.001, 0.004, 0.07, 3} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition_golden.txt")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestExpositionDeterministic: two renders of the same registry are
// identical — the sorted-series contract the golden test relies on.
func TestExpositionDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, b := range []string{"zz", "aa", "mm", "bb"} {
		r.Counter("certa_test_total", "x", Labels{"backend": b}).Inc()
	}
	var a, b bytes.Buffer
	r.WritePrometheus(&a)
	r.WritePrometheus(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two renders differ:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
	lines := strings.Split(a.String(), "\n")
	var prev string
	for _, ln := range lines {
		if strings.HasPrefix(ln, "certa_test_total{") {
			if prev != "" && ln < prev {
				t.Fatalf("series out of order: %q after %q", ln, prev)
			}
			prev = ln
		}
	}
}

// TestConcurrentUpdates hammers one counter, gauge and histogram from
// 8 goroutines while a scraper renders concurrently; run under -race
// this is the data-race gate for the lock-free hot paths, and the
// final totals check that no increment was lost.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("certa_race_total", "c", nil)
	g := r.Gauge("certa_race_gauge", "g", nil)
	h := r.Histogram("certa_race_seconds", "h", nil, LatencyBuckets)

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%7) / 100)
				if i%500 == 0 {
					// concurrent registration of the same series and a
					// concurrent scrape must both be safe
					r.Counter("certa_race_total", "c", nil)
					r.WritePrometheus(io.Discard)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter lost updates: got %d want %d", got, workers*iters)
	}
	if got := g.Value(); got != workers*iters {
		t.Fatalf("gauge lost updates: got %v want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram lost observations: got %d want %d", got, workers*iters)
	}
}

// TestConcurrentFirstRegistration exercises the lazy first-creation
// path under -race: N goroutines race to register a fresh series (the
// stageHist request-path pattern) and must all receive the same handle,
// so no observation lands in an orphaned value.
func TestConcurrentFirstRegistration(t *testing.T) {
	const workers = 8
	t.Run("counter", func(t *testing.T) {
		r := NewRegistry()
		var wg sync.WaitGroup
		got := make([]*Counter, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c := r.Counter("certa_fresh_total", "c", Labels{"backend": "AB"})
				c.Inc()
				got[w] = c
			}(w)
		}
		wg.Wait()
		for w := 1; w < workers; w++ {
			if got[w] != got[0] {
				t.Fatalf("worker %d got a different *Counter for the same series", w)
			}
		}
		if n := got[0].Value(); n != workers {
			t.Fatalf("lost increments on racing registration: got %d want %d", n, workers)
		}
	})
	t.Run("histogram", func(t *testing.T) {
		r := NewRegistry()
		var wg sync.WaitGroup
		got := make([]*Histogram, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				h := r.Histogram("certa_fresh_seconds", "h", Labels{"backend": "AB", "stage": "forward"}, LatencyBuckets)
				h.Observe(0.01)
				got[w] = h
			}(w)
		}
		wg.Wait()
		for w := 1; w < workers; w++ {
			if got[w] != got[0] {
				t.Fatalf("worker %d got a different *Histogram for the same series", w)
			}
		}
		if n := got[0].Count(); n != workers {
			t.Fatalf("lost observations on racing registration: got %d want %d", n, workers)
		}
	})
}

// TestLargeCountsPlainDecimal: counter values and histogram counts at
// 1e6+ must render in plain decimal, not scientific notation — smoke
// checks parse the _count line with %d.
func TestLargeCountsPlainDecimal(t *testing.T) {
	r := NewRegistry()
	r.Counter("certa_big_total", "c", nil).Add(2_500_000)
	h := r.Histogram("certa_big_seconds", "h", nil, []float64{0.01})
	for i := 0; i < 3; i++ {
		h.Observe(0.005)
	}
	h.total.Add(1_999_997) // simulate 2M observations without the loop
	h.counts[0].Add(1_999_997)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"certa_big_total 2500000\n",
		"certa_big_seconds_count 2000000\n",
		`certa_big_seconds_bucket{le="0.01"} 2000000` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing plain-decimal line %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "e+") {
		t.Fatalf("scientific notation leaked into exposition:\n%s", out)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("certa_q_seconds", "q", nil, []float64{0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // third bucket
	}
	if p50 := h.Quantile(0.50); p50 <= 0 || p50 > 0.01 {
		t.Fatalf("p50 = %v, want within first bucket (0, 0.01]", p50)
	}
	if p99 := h.Quantile(0.99); p99 <= 0.1 || p99 > 1 {
		t.Fatalf("p99 = %v, want within third bucket (0.1, 1]", p99)
	}
	if h.Quantile(1) > 1 {
		t.Fatalf("p100 beyond last bound: %v", h.Quantile(1))
	}
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// Overflow beyond the last finite bound clamps to it.
	h2 := r.Histogram("certa_q2_seconds", "q", nil, []float64{0.01})
	h2.Observe(5)
	if got := h2.Quantile(0.5); got != 0.01 {
		t.Fatalf("overflow quantile = %v, want clamp to 0.01", got)
	}
}

func TestRegistryMisusePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("certa_kind_total", "x", nil)
	mustPanic(t, "kind clash", func() { r.Gauge("certa_kind_total", "x", nil) })
	mustPanic(t, "bad name", func() { r.Counter("0bad", "x", nil) })
	mustPanic(t, "bad label", func() { r.Counter("certa_ok_total", "x", Labels{"0bad": "v"}) })
	mustPanic(t, "empty buckets", func() { r.Histogram("certa_h_seconds", "x", nil, nil) })
	mustPanic(t, "unsorted buckets", func() { r.Histogram("certa_h2_seconds", "x", nil, []float64{1, 1}) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

// TestSeriesIdentity: same (name, labels) in any key order resolves to
// the same series; a func re-registration replaces the callback.
func TestSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("certa_id_total", "x", Labels{"a": "1", "b": "2"})
	b := r.Counter("certa_id_total", "x", Labels{"b": "2", "a": "1"})
	if a != b {
		t.Fatal("label key order split one series in two")
	}
	r.GaugeFunc("certa_fn_gauge", "x", nil, func() float64 { return 1 })
	r.GaugeFunc("certa_fn_gauge", "x", nil, func() float64 { return 2 })
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "certa_fn_gauge 2\n") {
		t.Fatalf("func re-registration did not replace callback:\n%s", buf.String())
	}
	if got := r.SeriesCount(); got != 2 {
		t.Fatalf("SeriesCount = %d, want 2", got)
	}
}

package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels names one series inside a metric family. A nil or empty map
// is the unlabeled series. Keys and values are copied at registration;
// the canonical rendering sorts keys, so series identity and
// exposition order never depend on map iteration order.
type Labels map[string]string

// Registry is a set of named metric families. All methods are safe
// for concurrent use; the returned Counter/Gauge/Histogram handles are
// lock-free on their hot paths.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// Default is the process-wide registry: the daemons mount it on their
// debug mux so ad-hoc instrumentation (certa-bench's client-side
// latency histogram, for one) is scrapeable without plumbing. Library
// code should take an explicit *Registry instead.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one metric name: its metadata plus every labeled series.
type family struct {
	name string
	help string
	kind metricKind

	mu     sync.Mutex
	series map[string]*series // key: canonical label rendering
}

// series is one (name, labels) sample stream. The value field matching
// the family kind is allocated at creation (under family.mu) and never
// reassigned, so scrapes may read it without the lock; fn, the only
// mutable field (re-registration replaces the callback), is atomic and
// takes precedence over counter/gauge for callback-backed series.
type series struct {
	labels  string // canonical `{k="v",...}` rendering, "" when unlabeled
	counter *Counter
	gauge   *Gauge
	fn      atomic.Value // func() float64, unset until a *Func registration
	hist    *Histogram
}

// readFn returns the callback for a func-backed series, or nil.
func (s *series) readFn() func() float64 {
	fn, _ := s.fn.Load().(func() float64)
	return fn
}

// Counter is a monotonically increasing sample. The zero value is
// ready to use, but counters should be obtained from a Registry so
// they are scrapeable.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a sample that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d (CAS loop; safe concurrently).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// LatencyBuckets is the default histogram layout for request and stage
// latencies in seconds: 0.5ms up to 10s, roughly log-spaced.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with cumulative `le` buckets in
// the exposition. Observe is lock-free: one atomic add into the
// bucket, one into the total count, one CAS loop on the float sum.
type Histogram struct {
	bounds []float64 // ascending finite upper bounds (le)
	counts []atomic.Uint64
	inf    atomic.Uint64 // the +Inf overflow bucket
	total  atomic.Uint64
	sum    Gauge // float accumulator; reuses the CAS Add
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= le
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.total.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket
// counts by linear interpolation inside the bucket the rank falls in —
// the histogram_quantile estimate. Samples beyond the last finite
// bound clamp to it. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	target := q * float64(total)
	var cum uint64
	for i, b := range h.bounds {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= target {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			frac := (target - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lower + (b-lower)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.register(name, help, kindCounter, labels, nil, nil).counter
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.register(name, help, kindGauge, labels, nil, nil).gauge
}

// CounterFunc registers a counter series whose value is read from fn
// at scrape time — the bridge for counters that already live elsewhere
// (server atomics, scorecache.ServiceStats). Re-registering the same
// (name, labels) replaces the callback.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, kindCounter, labels, fn, nil)
}

// GaugeFunc registers a callback-backed gauge series.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, kindGauge, labels, fn, nil)
}

// Histogram registers (or returns the existing) histogram series with
// the given ascending finite bucket upper bounds (a +Inf bucket is
// implicit). Buckets are fixed at registration.
func (r *Registry) Histogram(name, help string, labels Labels, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic("telemetry: histogram " + name + " needs at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("telemetry: histogram " + name + " buckets must be strictly ascending")
		}
	}
	return r.register(name, help, kindHistogram, labels, nil, buckets).hist
}

// SeriesCount returns the number of registered series (histograms
// count as one series each).
func (r *Registry) SeriesCount() int {
	n := 0
	for _, f := range r.snapshotFamilies() {
		f.mu.Lock()
		n += len(f.series)
		f.mu.Unlock()
	}
	return n
}

// snapshotFamilies returns the families sorted by name — the only way
// family order ever leaves the registry, so exposition is
// deterministic by construction.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// register resolves (creates if absent) the series for (name, labels),
// validating names and enforcing kind consistency per family. The
// kind-appropriate value (counter/gauge/hist) is allocated here, while
// f.mu is held, so concurrent first registrations of the same series
// all receive the same handle and no series field is ever written
// outside the lock. It panics on misuse: metric registration happens
// at construction time, so a bad name or a kind clash is a programmer
// error, not a runtime condition.
func (r *Registry) register(name, help string, kind metricKind, labels Labels, fn func() float64, buckets []float64) *series {
	if !validMetricName(name) {
		panic("telemetry: invalid metric name " + strconv.Quote(name))
	}
	r.mu.Lock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	}
	r.mu.Unlock()
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		switch kind {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			bounds := append([]float64(nil), buckets...)
			s.hist = &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
		}
		f.series[key] = s
	}
	if fn != nil {
		s.fn.Store(fn)
	}
	return s
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels produces the canonical `{k="v",...}` rendering with
// keys sorted, or "" for no labels. This string is both the series
// identity and its exposition form.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !validMetricName(k) {
			panic("telemetry: invalid label name " + strconv.Quote(k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

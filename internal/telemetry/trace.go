package telemetry

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Trace records the wall-time span tree of one explanation. It is
// carried by the context (WithTrace / StartSpan) and safe for
// concurrent span recording: parallel lattice levels, workpool scoring
// shards and coalesced batch items all append under one mutex.
//
// A Trace is an observability side channel in the exact sense of
// scorecache.ServiceStats: schedule-dependent, never part of
// core.Diagnostics or any Result, so byte-identity and
// parallelism-determinism contracts hold with tracing enabled.
type Trace struct {
	clock Clock
	start time.Time
	reqID atomic.Pointer[string]

	mu   sync.Mutex
	root *Span
}

// Span is one timed stage. All methods are nil-safe so instrumented
// code records unconditionally; when no Trace rides the context,
// StartSpan returns nil and every call on it is a no-op.
type Span struct {
	tr    *Trace
	name  string
	start time.Duration // offset from the trace start
	items atomic.Int64

	// guarded by tr.mu
	duration time.Duration
	ended    bool
	children []*Span
}

// New returns a Trace timed by the System clock.
func New() *Trace { return NewWithClock(System) }

// NewWithClock returns a Trace timed by c (tests pass a fake).
func NewWithClock(c Clock) *Trace {
	tr := &Trace{clock: c, start: c.Now()}
	tr.root = &Span{tr: tr, name: "explain"}
	return tr
}

// SetRequestID attaches the serving layer's request ID, so a span tree
// and the request log line that summarizes it can be joined.
func (tr *Trace) SetRequestID(id string) {
	if tr == nil {
		return
	}
	tr.reqID.Store(&id)
}

// RequestID returns the attached request ID, or "".
func (tr *Trace) RequestID() string {
	if tr == nil {
		return ""
	}
	if p := tr.reqID.Load(); p != nil {
		return *p
	}
	return ""
}

// Root returns the implicit root span ("explain").
func (tr *Trace) Root() *Span {
	if tr == nil {
		return nil
	}
	return tr.root
}

type spanKey struct{}

// WithTrace returns a context carrying tr; spans started from it nest
// under the root.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, tr.root)
}

// FromContext returns the Trace riding ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	if sp, ok := ctx.Value(spanKey{}).(*Span); ok {
		return sp.tr
	}
	return nil
}

// StartSpan opens a child of the context's current span and returns it
// with a derived context under which further spans nest. With no trace
// on the context it returns (nil, ctx) — one Value lookup, no
// allocation — which is the entire cost of instrumentation when
// tracing is off.
func StartSpan(ctx context.Context, name string) (*Span, context.Context) {
	parent, ok := ctx.Value(spanKey{}).(*Span)
	if !ok || parent == nil {
		return nil, ctx
	}
	tr := parent.tr
	sp := &Span{tr: tr, name: name, start: tr.clock.Now().Sub(tr.start)}
	tr.mu.Lock()
	parent.children = append(parent.children, sp)
	tr.mu.Unlock()
	return sp, context.WithValue(ctx, spanKey{}, sp)
}

// StartLeaf opens a child of the context's current span without
// deriving a context — the cheaper call for leaf stages (memo lookups,
// featurize/forward batches) that never nest further: it skips the
// context.WithValue allocation StartSpan pays, which matters on the
// batch-granularity hot path the bench's overhead gate watches.
func StartLeaf(ctx context.Context, name string) *Span {
	parent, ok := ctx.Value(spanKey{}).(*Span)
	if !ok || parent == nil {
		return nil
	}
	tr := parent.tr
	sp := &Span{tr: tr, name: name, start: tr.clock.Now().Sub(tr.start)}
	tr.mu.Lock()
	parent.children = append(parent.children, sp)
	tr.mu.Unlock()
	return sp
}

// End closes the span. Ending twice keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tr.clock.Now().Sub(s.tr.start)
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.duration = now - s.start
	}
	s.tr.mu.Unlock()
}

// AddItems notes n units of work (candidates scanned, lattice
// questions asked, pairs featurized) against the span.
func (s *Span) AddItems(n int) {
	if s == nil {
		return
	}
	s.items.Add(int64(n))
}

// WireSpan is the JSON form of a span tree, returned by the server's
// debug=trace knob inside ExplainResponse.
type WireSpan struct {
	Name       string      `json:"name"`
	StartMS    float64     `json:"start_ms"`
	DurationMS float64     `json:"duration_ms"`
	Items      int64       `json:"items,omitempty"`
	Children   []*WireSpan `json:"children,omitempty"`
}

// Tree snapshots the span tree. Unended spans (including the root)
// report the duration up to now.
func (tr *Trace) Tree() *WireSpan {
	if tr == nil {
		return nil
	}
	now := tr.clock.Now().Sub(tr.start)
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.root.wire(now)
}

// wire converts one span (caller holds tr.mu).
func (s *Span) wire(now time.Duration) *WireSpan {
	d := s.duration
	if !s.ended {
		d = now - s.start
	}
	w := &WireSpan{
		Name:       s.name,
		StartMS:    ms(s.start),
		DurationMS: ms(d),
		Items:      s.items.Load(),
	}
	for _, c := range s.children {
		w.Children = append(w.Children, c.wire(now))
	}
	return w
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// StageTotal aggregates every span of one name.
type StageTotal struct {
	Duration time.Duration
	Count    int64
	Items    int64
}

// Stages folds the span tree (root excluded) by span name — the form
// the serving layer feeds into its per-stage latency histograms and
// request log lines. Unended spans count as zero duration.
func (tr *Trace) Stages() map[string]StageTotal {
	if tr == nil {
		return nil
	}
	out := make(map[string]StageTotal)
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var walk func(s *Span)
	walk = func(s *Span) {
		for _, c := range s.children {
			agg := out[c.name]
			if c.ended {
				agg.Duration += c.duration
			}
			agg.Count++
			agg.Items += c.items.Load()
			out[c.name] = agg
			walk(c)
		}
	}
	walk(tr.root)
	return out
}

// StageNames returns the stage names of Stages() sorted, for
// deterministic log lines and histogram label iteration.
func StageNames(stages map[string]StageTotal) []string {
	names := make([]string, 0, len(stages))
	for name := range stages {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

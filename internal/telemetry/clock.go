package telemetry

import "time"

// Clock abstracts the time source for span timing. Exactly one
// implementation reads the real clock — System, below — so the
// repo-wide nodrift invariant ("the deterministic scoring path never
// reads wall time") keeps a single reasoned waiver instead of one per
// instrumented package. Tests substitute a fake Clock for
// deterministic durations.
type Clock interface {
	Now() time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time {
	//lint:allow nodrift the sanctioned observability clock seam: span timing is side-channel telemetry, never part of a Result (see CATALOG.md)
	return time.Now()
}

// System is the process wall clock, the default Clock of every Trace.
var System Clock = systemClock{}

// fakeClock is a deterministic test clock: every Now() advances it by
// step.
type fakeClock struct {
	now  time.Time
	step time.Duration
}

func (c *fakeClock) Now() time.Time {
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

// Package telemetry is the repo's zero-dependency instrumentation
// subsystem: a metrics registry with Prometheus text exposition, and a
// context-carried per-explanation trace of wall-time spans.
//
// # Registry
//
// A Registry holds named metric families — counters, gauges and
// fixed-bucket histograms, each optionally labeled — and renders them
// in the Prometheus text exposition format (version 0.0.4). The hot
// paths (Counter.Inc, Gauge.Set, Histogram.Observe) are lock-free
// atomics so instrumented request paths never contend on the registry
// lock; registration and exposition take locks but happen off the hot
// path. Exposition is deterministic: families sort by name, series by
// their canonical label rendering (label keys sorted), which is what
// lets a golden-file test pin the format byte for byte.
//
// Stats that already exist elsewhere (admission snapshots, score-cache
// counters, embedding-store hit rates) are exported through CounterFunc
// and GaugeFunc callbacks read at scrape time, so the serving layer
// does not maintain a second copy of any number.
//
// # Tracing
//
// A Trace records a tree of wall-time spans for one explanation:
// retrieval scans, per-level lattice exploration, featurization,
// forward passes, memo lookups. It rides the context —
// WithTrace/StartSpan — and every method is nil-safe, so instrumented
// packages call StartSpan unconditionally and pay one context lookup
// when tracing is off. Timing lives strictly outside core.Diagnostics:
// a trace is a side channel like scorecache.ServiceStats (the PR 6
// FlipHits precedent), so the byte-identity and
// parallelism-determinism contracts are untouched by instrumentation.
//
// # Clock
//
// All span timing flows through the Clock seam; the single sanctioned
// time.Now call in this repo's observability code lives behind it (see
// clock.go and internal/lint/CATALOG.md's nodrift entry). Tests inject
// a fake Clock for deterministic span durations.
package telemetry

// Package linmodel provides a small logistic regression fitted by
// gradient descent. It is used by the Confidence Indication metric
// (Atanasova et al., EMNLP 2020), which trains a logistic model from
// saliency scores to the classifier's confidence and reports the mean
// absolute error.
package linmodel

import (
	"fmt"
	"math"
)

// Logistic is a fitted logistic regression y = sigmoid(w·x + b). Labels
// may be soft (any value in [0,1]).
type Logistic struct {
	// W holds the feature weights; B is the bias.
	W []float64
	B float64
}

// FitConfig controls the gradient-descent fit.
type FitConfig struct {
	// Epochs is the number of full-batch gradient steps (default 300).
	Epochs int
	// LearningRate is the step size (default 0.5).
	LearningRate float64
	// L2 is the weight-decay coefficient (default 1e-4).
	L2 float64
}

func (c FitConfig) withDefaults() FitConfig {
	if c.Epochs <= 0 {
		c.Epochs = 300
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.5
	}
	if c.L2 <= 0 {
		c.L2 = 1e-4
	}
	return c
}

// Fit trains a logistic regression on rows x with (possibly soft) labels
// y in [0,1] by full-batch gradient descent on the cross-entropy loss.
func Fit(x [][]float64, y []float64, cfg FitConfig) (*Logistic, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("linmodel: no training data")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("linmodel: x/y length mismatch %d vs %d", len(x), len(y))
	}
	d := len(x[0])
	for i, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("linmodel: row %d has width %d, want %d", i, len(row), d)
		}
	}
	cfg = cfg.withDefaults()
	m := &Logistic{W: make([]float64, d)}
	n := float64(len(x))
	gw := make([]float64, d)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for i := range gw {
			gw[i] = 0
		}
		gb := 0.0
		for i, row := range x {
			p := m.Predict(row)
			diff := p - y[i]
			for j, v := range row {
				gw[j] += diff * v
			}
			gb += diff
		}
		for j := range m.W {
			m.W[j] -= cfg.LearningRate * (gw[j]/n + cfg.L2*m.W[j])
		}
		m.B -= cfg.LearningRate * gb / n
	}
	return m, nil
}

// Predict returns sigmoid(w·x + b).
func (m *Logistic) Predict(x []float64) float64 {
	z := m.B
	for i, v := range x {
		z += m.W[i] * v
	}
	if z >= 0 {
		e := math.Exp(-z)
		return 1 / (1 + e)
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// MAE computes the mean absolute error of the model on a labeled set.
func (m *Logistic) MAE(x [][]float64, y []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var total float64
	for i, row := range x {
		total += math.Abs(m.Predict(row) - y[i])
	}
	return total / float64(len(x))
}

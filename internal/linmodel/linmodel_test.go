package linmodel

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitSeparable(t *testing.T) {
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		v := float64(i)/50 - 1 // -1..1
		x = append(x, []float64{v})
		if v > 0 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	m, err := Fit(x, y, FitConfig{Epochs: 500})
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{0.8}) < 0.7 {
		t.Errorf("positive side prediction = %v", m.Predict([]float64{0.8}))
	}
	if m.Predict([]float64{-0.8}) > 0.3 {
		t.Errorf("negative side prediction = %v", m.Predict([]float64{-0.8}))
	}
}

func TestFitSoftLabels(t *testing.T) {
	// Regression to soft targets: y = sigmoid(2x).
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		v := rng.Float64()*4 - 2
		x = append(x, []float64{v})
		y = append(y, 1/(1+math.Exp(-2*v)))
	}
	m, err := Fit(x, y, FitConfig{Epochs: 800, LearningRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mae := m.MAE(x, y); mae > 0.05 {
		t.Errorf("MAE = %v, want < 0.05", mae)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, FitConfig{}); err == nil {
		t.Error("empty data should error")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, FitConfig{}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Fit([][]float64{{1}, {1, 2}}, []float64{1, 0}, FitConfig{}); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestMAEEmpty(t *testing.T) {
	m := &Logistic{W: []float64{1}}
	if m.MAE(nil, nil) != 0 {
		t.Error("MAE on empty set should be 0")
	}
}

func TestPredictStable(t *testing.T) {
	m := &Logistic{W: []float64{1000}, B: 0}
	if p := m.Predict([]float64{100}); p != 1 {
		if math.IsNaN(p) || p < 0.999 {
			t.Errorf("extreme logit prediction = %v", p)
		}
	}
	if p := m.Predict([]float64{-100}); math.IsNaN(p) || p > 0.001 {
		t.Errorf("extreme negative prediction = %v", p)
	}
}

func TestUninformativeFeatures(t *testing.T) {
	// Random labels: model should converge near the base rate.
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		x = append(x, []float64{rng.Float64()})
		y = append(y, 0.7) // constant soft label
	}
	m, err := Fit(x, y, FitConfig{Epochs: 500})
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{0.5}); math.Abs(p-0.7) > 0.05 {
		t.Errorf("base-rate prediction = %v, want ~0.7", p)
	}
}

// Package debugserve exposes the net/http/pprof endpoints on an
// auxiliary listener, kept off the serving mux so profiling traffic
// never competes with (or leaks into) the public API surface.
package debugserve

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Start listens on addr (use port 0 for an ephemeral port) and serves
// /debug/pprof/ — plus, when metrics is non-nil, GET /v1/metrics — from
// a dedicated goroutine for the life of the process. The daemons pass
// telemetry.Default.Handler() so their instrumentation is scrapeable on
// the auxiliary port even when the process has no public API surface
// (certa-bench). It returns the bound address so callers can log it.
func Start(addr string, metrics http.Handler) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if metrics != nil {
		mux.Handle("GET /v1/metrics", metrics)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("debugserve: %w", err)
	}
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}

// Package neighborhood is the retrieval layer for triangle support
// search: an immutable per-table candidate index built once — per
// Explainer, per eval-harness cell, per server backend — so that no
// explanation re-tokenizes or re-ranks a whole source table on the
// request path.
//
// CERTA's open-triangle construction scans a source table for support
// records in two deterministic orders: a seeded shuffle (natural
// supports, and the SeedSearch ablation of the augmented search) and an
// overlap ranking (the guided augmented search: records ordered by
// token-Jaccard overlap with the triangle's fixed record, with the
// seeded shuffle as tie-break). Before this layer, the guided ranking
// tokenized every record of the table and full-sorted it per
// explanation — O(|table|·|text|) tokenization plus O(|table| log
// |table|) sorting before a single model call.
//
// The layer exposes both orders behind one CandidateSource interface
// with two implementations:
//
//   - Index precomputes the per-record texts, interned token sets and an
//     IDF-weighted inverted index at build time. Ranking a query then
//     costs only the postings the query's tokens touch, and candidates
//     are streamed through a lazy heap — O(|table|) heapify plus
//     O(log |table|) per candidate actually consumed — instead of a
//     full sort the scan may abandon after a handful of pops.
//   - Scan recomputes everything per call: the historical path, kept as
//     the equivalence baseline and the core.Options.DisableIndex
//     ablation.
//
// Both implementations produce byte-identical candidate streams (the
// heap's comparator is exactly the stable sort's total order, and the
// Jaccard arithmetic is shared integer counting), so a single
// equivalence test gates the swap and every consumer — triangle search,
// blocking, benchmarks — can switch freely between them.
//
// The same inverted index doubles as the substrate of
// blocking.TokenBlocker (NewTokenBlockerFromIndex), deduplicating what
// used to be a private tokenization + IDF implementation.
package neighborhood

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"certa/internal/record"
	"certa/internal/strutil"
)

// CandidateSource streams one table's records in the deterministic
// orders the triangle support search consumes. Implementations must be
// safe for concurrent use; the streams they return are not (each scan
// pulls its own).
type CandidateSource interface {
	// Table returns the table the source draws candidates from.
	Table() *record.Table
	// Shuffled streams every record in seeded-shuffle order
	// (math/rand.Shuffle over the record ordinals).
	Shuffled(seed int64) *Stream
	// Ranked streams every record ordered by token-Jaccard overlap
	// between the record's text view and query — ascending when
	// ascending is true, descending otherwise — with the seeded shuffle
	// as tie-break.
	Ranked(seed int64, query string, ascending bool) *Stream
}

// Stream is a pull iterator over candidate records. Candidates are
// materialized lazily, so abandoning a stream early never pays for the
// order of the records it did not consume.
type Stream struct {
	next func() (*record.Record, bool)
}

// Next returns the next candidate, or false when the stream is
// exhausted.
func (s *Stream) Next() (*record.Record, bool) { return s.next() }

// Stats reports the build-time footprint of a prebuilt index.
type Stats struct {
	// Records is the number of indexed records.
	Records int `json:"records"`
	// DistinctTokens is the vocabulary size of the inverted index.
	DistinctTokens int `json:"distinct_tokens"`
	// BuildMS is the wall-clock index construction time in milliseconds.
	BuildMS float64 `json:"build_ms"`
}

// add folds another index's stats in (for reporting a two-table pair as
// one figure).
func (s Stats) add(o Stats) Stats {
	return Stats{
		Records:        s.Records + o.Records,
		DistinctTokens: s.DistinctTokens + o.DistinctTokens,
		BuildMS:        s.BuildMS + o.BuildMS,
	}
}

// Index is the immutable per-table candidate index: interned token
// sets (the inverted postings), per-record set sizes, and IDF weights
// over the records' distinct tokens. Build once, share everywhere —
// all methods are read-only after construction. The build derives its
// views through a record.Memo, which is released afterwards: request
// handling reads only setSize/vocab/postings/idf.
type Index struct {
	table    *record.Table
	setSize  []int32 // per record ordinal: |TokenSet(text)|
	vocab    map[string]int32
	postings [][]int32 // per token id: record ordinals, ascending
	idf      []float64 // per token id: log(1 + N/df)
	stats    Stats
}

// NewIndex builds the index over a table.
func NewIndex(t *record.Table) *Index {
	//lint:allow nodrift index build time feeds the BuildMS stat (/v1/stats, BENCH_explain.json); retrieval results never depend on it
	start := time.Now()
	n := t.Len()
	ix := &Index{
		table:   t,
		setSize: make([]int32, n),
		vocab:   make(map[string]int32),
	}
	memo := record.NewMemo(t) // build-time cache; not retained
	for i := 0; i < n; i++ {
		set := memo.TokenSet(i)
		toks := make([]string, 0, len(set))
		for tok := range set {
			toks = append(toks, tok)
		}
		sort.Strings(toks) // deterministic token-id interning order
		ix.setSize[i] = int32(len(toks))
		for _, tok := range toks {
			id, ok := ix.vocab[tok]
			if !ok {
				id = int32(len(ix.postings))
				ix.vocab[tok] = id
				ix.postings = append(ix.postings, nil)
			}
			ix.postings[id] = append(ix.postings[id], int32(i))
		}
	}
	ix.idf = make([]float64, len(ix.postings))
	nf := float64(n)
	for id, p := range ix.postings {
		ix.idf[id] = math.Log(1 + nf/float64(len(p)))
	}
	ix.stats = Stats{
		Records:        n,
		DistinctTokens: len(ix.postings),
		//lint:allow nodrift BuildMS is build-time telemetry; retrieval order is fixed by the interned vocabulary
		BuildMS: float64(time.Since(start)) / float64(time.Millisecond),
	}
	return ix
}

// Table implements CandidateSource.
func (ix *Index) Table() *record.Table { return ix.table }

// Stats reports the index's build statistics.
func (ix *Index) Stats() Stats { return ix.stats }

// Postings returns the ordinals (ascending) of the records containing
// token, or nil for an unknown token. The slice is shared — read-only.
func (ix *Index) Postings(tok string) []int32 {
	id, ok := ix.vocab[tok]
	if !ok {
		return nil
	}
	return ix.postings[id]
}

// IDF returns log(1 + N/df) for a token, or 0 for an unknown one.
func (ix *Index) IDF(tok string) float64 {
	id, ok := ix.vocab[tok]
	if !ok {
		return 0
	}
	return ix.idf[id]
}

// Shuffled implements CandidateSource.
func (ix *Index) Shuffled(seed int64) *Stream {
	return orderStream(ix.table, shuffleOrder(ix.table.Len(), seed))
}

// Ranked implements CandidateSource: overlaps are computed from the
// inverted index (only records sharing a token with the query do any
// intersection work) and the stream pops a lazy heap whose comparator
// is exactly the scan path's stable-sort order.
func (ix *Index) Ranked(seed int64, query string, ascending bool) *Stream {
	n := ix.table.Len()
	order := shuffleOrder(n, seed)
	// pos inverts the shuffle: the tie-break rank of each ordinal.
	pos := make([]int32, n)
	for i, ord := range order {
		pos[ord] = int32(i)
	}
	qtoks := strutil.DistinctTokens(query)
	inter := make([]int32, n)
	for _, tok := range qtoks {
		if id, ok := ix.vocab[tok]; ok {
			for _, ord := range ix.postings[id] {
				inter[ord]++
			}
		}
	}
	qlen := int32(len(qtoks))
	entries := make([]rankedEntry, n)
	for ord := range entries {
		entries[ord] = rankedEntry{
			overlap: jaccardFromCounts(inter[ord], ix.setSize[ord], qlen),
			pos:     pos[ord],
			ord:     int32(ord),
		}
	}
	h := &rankedHeap{entries: entries, ascending: ascending}
	h.init()
	return &Stream{next: func() (*record.Record, bool) {
		ord, ok := h.pop()
		if !ok {
			return nil, false
		}
		return ix.table.Records[ord], true
	}}
}

// jaccardFromCounts is Jaccard from set sizes and an intersection
// count. Both sets empty means "no token evidence either way" and is
// treated as full overlap, matching strutil.SetJaccard (and the
// historical tokenJaccard of the triangle search).
func jaccardFromCounts(inter, a, b int32) float64 {
	if a == 0 && b == 0 {
		return 1
	}
	return float64(inter) / float64(a+b-inter)
}

// Scan is the unindexed CandidateSource: it re-tokenizes and fully
// sorts the table per Ranked call. It is the historical behaviour of
// the triangle search, kept as the byte-identity baseline for the index
// and as the core.Options.DisableIndex ablation.
type Scan struct {
	table *record.Table
}

// NewScan wraps a table in the unindexed source.
func NewScan(t *record.Table) *Scan { return &Scan{table: t} }

// Table implements CandidateSource.
func (s *Scan) Table() *record.Table { return s.table }

// Shuffled implements CandidateSource.
func (s *Scan) Shuffled(seed int64) *Stream {
	return orderStream(s.table, shuffleOrder(s.table.Len(), seed))
}

// Ranked implements CandidateSource the pre-index way: compute every
// record's overlap with the query, then stable-sort the shuffled
// ordinals by it.
func (s *Scan) Ranked(seed int64, query string, ascending bool) *Stream {
	idx := shuffleOrder(s.table.Len(), seed)
	qset := strutil.TokenSet(query)
	overlap := make([]float64, s.table.Len())
	for i, w := range s.table.Records {
		overlap[i] = strutil.SetJaccard(w.TokenSet(), qset)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if ascending {
			return overlap[idx[a]] < overlap[idx[b]]
		}
		return overlap[idx[a]] > overlap[idx[b]]
	})
	return orderStream(s.table, idx)
}

// Sources bundles the candidate sources of a benchmark's two tables —
// the unit core.Options.Retrieval injects and servers share across
// requests.
type Sources struct {
	Left, Right CandidateSource
}

// NewSources builds prebuilt indexes over both tables.
func NewSources(left, right *record.Table) *Sources {
	return &Sources{Left: NewIndex(left), Right: NewIndex(right)}
}

// NewScanSources wraps both tables in unindexed scan sources.
func NewScanSources(left, right *record.Table) *Sources {
	return &Sources{Left: NewScan(left), Right: NewScan(right)}
}

// Side returns the source for one side.
func (s *Sources) Side(side record.Side) CandidateSource {
	if side == record.Right {
		return s.Right
	}
	return s.Left
}

// Stats reports the combined build statistics of the two sides, or
// false when either side is not a prebuilt Index (scan sources have no
// build-time footprint to report).
func (s *Sources) Stats() (Stats, bool) {
	li, ok := s.Left.(*Index)
	if !ok {
		return Stats{}, false
	}
	ri, ok := s.Right.(*Index)
	if !ok {
		return Stats{}, false
	}
	return li.Stats().add(ri.Stats()), true
}

// shuffleOrder is the triangle search's seeded shuffle of the record
// ordinals: math/rand with a fixed source, so the order is a pure
// function of (n, seed) and identical across implementations.
func shuffleOrder(n int, seed int64) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return idx
}

// orderStream streams table records in a fixed ordinal order.
func orderStream(t *record.Table, order []int) *Stream {
	i := 0
	return &Stream{next: func() (*record.Record, bool) {
		if i >= len(order) {
			return nil, false
		}
		r := t.Records[order[i]]
		i++
		return r, true
	}}
}

// rankedEntry is one heap element of the lazy ranked stream.
type rankedEntry struct {
	overlap float64
	pos     int32 // shuffle position: the stable tie-break
	ord     int32 // record ordinal
}

// rankedHeap is a binary min-heap under the ranked order: overlap
// (ascending or descending), then shuffle position. Popping it yields
// exactly the sequence sort.SliceStable produces on the shuffled
// ordinals compared by overlap alone — (overlap, shuffle position) is
// the total order a stable sort of a shuffled sequence realizes — so
// heap and sort paths are interchangeable byte for byte.
type rankedHeap struct {
	entries   []rankedEntry
	ascending bool
}

func (h *rankedHeap) less(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	if a.overlap != b.overlap {
		if h.ascending {
			return a.overlap < b.overlap
		}
		return a.overlap > b.overlap
	}
	return a.pos < b.pos
}

// init establishes the heap invariant in O(n).
func (h *rankedHeap) init() {
	for i := len(h.entries)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// pop removes and returns the ordinal of the best remaining entry.
func (h *rankedHeap) pop() (int32, bool) {
	n := len(h.entries)
	if n == 0 {
		return 0, false
	}
	top := h.entries[0].ord
	h.entries[0] = h.entries[n-1]
	h.entries = h.entries[:n-1]
	h.siftDown(0)
	return top, true
}

func (h *rankedHeap) siftDown(i int) {
	n := len(h.entries)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && h.less(r, l) {
			best = r
		}
		if !h.less(best, i) {
			return
		}
		h.entries[i], h.entries[best] = h.entries[best], h.entries[i]
		i = best
	}
}

package neighborhood

import (
	"context"

	"certa/internal/telemetry"
)

// RankedContext is Ranked with the eager ranking work — the postings
// intersections that compute every candidate's overlap and the lazy
// heap's initialization — recorded as a telemetry span when a trace
// rides ctx. The returned stream, its order and the records it yields
// are exactly those of src.Ranked: tracing is a wall-clock side
// channel and contributes nothing to candidate selection.
func RankedContext(ctx context.Context, src CandidateSource, seed int64, query string, ascending bool) *Stream {
	sp := telemetry.StartLeaf(ctx, "retrieval/rank")
	st := src.Ranked(seed, query, ascending)
	sp.End()
	return st
}

package neighborhood

import (
	"fmt"
	"testing"

	"certa/internal/dataset"
	"certa/internal/record"
)

// drain pulls every candidate ID from a stream.
func drain(s *Stream) []string {
	var out []string
	for {
		r, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, r.ID)
	}
}

func equalIDs(t *testing.T, got, want []string, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d candidates, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: candidate %d is %s, scan has %s", what, i, got[i], want[i])
		}
	}
}

// TestIndexStreamsMatchScan is the retrieval layer's core contract: the
// index's lazy-heap streams must reproduce the scan path's candidate
// order exactly — every record, every seed, both ranking directions —
// on a realistic benchmark table.
func TestIndexStreamsMatchScan(t *testing.T) {
	bench := dataset.MustGenerate("AB", dataset.Options{Seed: 9, MaxRecords: 120, MaxMatches: 60})
	for _, table := range []*record.Table{bench.Left, bench.Right} {
		ix := NewIndex(table)
		sc := NewScan(table)
		queries := []string{
			bench.Left.Records[0].Text(),
			bench.Right.Records[3].Text(),
			"", // empty query: every overlap ties, order falls back to the shuffle
			"zzz-token-not-in-any-record",
		}
		for _, seed := range []int64{0, 1, 7, 131} {
			equalIDs(t, drain(ix.Shuffled(seed)), drain(sc.Shuffled(seed)),
				fmt.Sprintf("%s shuffled seed=%d", table.Schema.Name, seed))
			for _, q := range queries {
				for _, asc := range []bool{true, false} {
					got := drain(ix.Ranked(seed, q, asc))
					want := drain(sc.Ranked(seed, q, asc))
					equalIDs(t, got, want,
						fmt.Sprintf("%s ranked seed=%d asc=%v query=%.20q", table.Schema.Name, seed, asc, q))
				}
			}
		}
	}
}

// TestRankedOrdersByOverlap pins the ranking semantics on a hand-built
// table: a query identical to one record must surface that record first
// in descending mode and last in ascending mode.
func TestRankedOrdersByOverlap(t *testing.T) {
	s := record.MustSchema("T", "name")
	table := record.NewTable(s)
	table.MustAdd(record.MustNew("exact", s, "alpha beta gamma"))
	table.MustAdd(record.MustNew("half", s, "alpha beta other"))
	table.MustAdd(record.MustNew("none", s, "unrelated words here"))
	ix := NewIndex(table)

	desc := drain(ix.Ranked(1, "alpha beta gamma", false))
	if desc[0] != "exact" || desc[2] != "none" {
		t.Errorf("descending order = %v, want exact..none", desc)
	}
	asc := drain(ix.Ranked(1, "alpha beta gamma", true))
	if asc[0] != "none" || asc[2] != "exact" {
		t.Errorf("ascending order = %v, want none..exact", asc)
	}
}

// TestRankedEmptyBothSidesIsFullOverlap pins the missing-value edge: a
// record with no token evidence against an empty query counts as full
// overlap (1), ranking above partially overlapping records in
// descending mode — on both implementations.
func TestRankedEmptyBothSidesIsFullOverlap(t *testing.T) {
	s := record.MustSchema("T", "name")
	table := record.NewTable(s)
	table.MustAdd(record.MustNew("blank", s, "NaN"))
	table.MustAdd(record.MustNew("words", s, "alpha beta"))
	for _, src := range []CandidateSource{NewIndex(table), NewScan(table)} {
		got := drain(src.Ranked(1, "", false))
		if got[0] != "blank" {
			t.Errorf("%T: descending with empty query = %v, want blank first", src, got)
		}
	}
}

// TestIndexPostingsAndIDF spot-checks the inverted index blocking
// consumes.
func TestIndexPostingsAndIDF(t *testing.T) {
	s := record.MustSchema("T", "name")
	table := record.NewTable(s)
	table.MustAdd(record.MustNew("a", s, "shared alpha"))
	table.MustAdd(record.MustNew("b", s, "shared beta"))
	ix := NewIndex(table)

	if got := ix.Postings("shared"); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("postings(shared) = %v, want [0 1]", got)
	}
	if got := ix.Postings("alpha"); len(got) != 1 || got[0] != 0 {
		t.Errorf("postings(alpha) = %v, want [0]", got)
	}
	if ix.Postings("absent") != nil {
		t.Error("unknown token should have nil postings")
	}
	if ix.IDF("absent") != 0 {
		t.Error("unknown token should have zero IDF")
	}
	// Rarer tokens weigh more.
	if !(ix.IDF("alpha") > ix.IDF("shared")) {
		t.Errorf("IDF(alpha)=%v should exceed IDF(shared)=%v", ix.IDF("alpha"), ix.IDF("shared"))
	}
}

// TestStats checks the build-time footprint accounting.
func TestStats(t *testing.T) {
	bench := dataset.MustGenerate("AB", dataset.Options{Seed: 9, MaxRecords: 60, MaxMatches: 30})
	src := NewSources(bench.Left, bench.Right)
	st, ok := src.Stats()
	if !ok {
		t.Fatal("index sources should report stats")
	}
	if st.Records != bench.Left.Len()+bench.Right.Len() {
		t.Errorf("records = %d, want %d", st.Records, bench.Left.Len()+bench.Right.Len())
	}
	if st.DistinctTokens <= 0 {
		t.Errorf("distinct tokens = %d, want > 0", st.DistinctTokens)
	}
	if st.BuildMS <= 0 {
		t.Errorf("build ms = %v, want > 0", st.BuildMS)
	}
	if _, ok := NewScanSources(bench.Left, bench.Right).Stats(); ok {
		t.Error("scan sources should not report index stats")
	}
}

// TestSourcesSide checks side addressing.
func TestSourcesSide(t *testing.T) {
	bench := dataset.MustGenerate("AB", dataset.Options{Seed: 9, MaxRecords: 40, MaxMatches: 20})
	src := NewSources(bench.Left, bench.Right)
	if src.Side(record.Left).Table() != bench.Left || src.Side(record.Right).Table() != bench.Right {
		t.Error("Side addresses the wrong table")
	}
}

// TestMemoMatchesRecords checks the cached views against the records'
// own accessors.
func TestMemoMatchesRecords(t *testing.T) {
	bench := dataset.MustGenerate("AB", dataset.Options{Seed: 9, MaxRecords: 40, MaxMatches: 20})
	m := record.NewMemo(bench.Left)
	for i, r := range bench.Left.Records {
		if m.Text(i) != r.Text() {
			t.Fatalf("record %d: memo text %q != %q", i, m.Text(i), r.Text())
		}
		set := m.TokenSet(i)
		fresh := r.TokenSet()
		if len(set) != len(fresh) {
			t.Fatalf("record %d: memo set size %d != %d", i, len(set), len(fresh))
		}
		for tok := range fresh {
			if _, ok := set[tok]; !ok {
				t.Fatalf("record %d: memo set missing token %q", i, tok)
			}
		}
	}
}

// BenchmarkSupportSearch compares the old scan retrieval against the
// prebuilt index on the triangle search's real access pattern: stream
// the first 50 overlap-ranked candidates for a pivot record, as the
// guided augmented-support search does per explanation.
func BenchmarkSupportSearch(b *testing.B) {
	bench := dataset.MustGenerate("AB", dataset.Options{Seed: 9, MaxRecords: 300, MaxMatches: 150})
	pivot := bench.Right.Records[0].Text()
	const want = 50
	pull := func(src CandidateSource, asc bool) {
		stream := src.Ranked(7, pivot, asc)
		for i := 0; i < want; i++ {
			if _, ok := stream.Next(); !ok {
				break
			}
		}
	}
	b.Run("scan", func(b *testing.B) {
		src := NewScan(bench.Left)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pull(src, i%2 == 0)
		}
	})
	b.Run("index", func(b *testing.B) {
		src := NewIndex(bench.Left)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pull(src, i%2 == 0)
		}
	})
}

// Package explain defines the shared vocabulary of the explanation
// subsystem: the black-box Model interface, saliency explanations
// (attribute → importance score), counterfactual explanations (perturbed
// pairs that flip the prediction), the explainer interfaces implemented
// by CERTA and every baseline, and attribute-masking utilities used by
// the evaluation metrics.
package explain

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"certa/internal/record"
	"certa/internal/strutil"
)

// Model is the black-box ER classifier every explainer works against.
// Score returns the matching probability in [0,1]; above 0.5 means
// Match. Implementations must be deterministic and safe for concurrent
// use.
type Model interface {
	Name() string
	Score(p record.Pair) float64
}

// Predicted applies the decision threshold of the paper.
func Predicted(m Model, p record.Pair) bool { return m.Score(p) > 0.5 }

// BatchModel is an optional capability of Model implementations that can
// score many pairs in one call — DL-style matchers featurize a whole
// batch at once and amortize embedding work across pairs that share a
// record. Explainers never require it: ScoreBatch adapts any plain
// Model. ScoreBatch must return one score per input pair, index-aligned,
// and must agree with Score on every pair.
type BatchModel interface {
	Model
	ScoreBatch(pairs []record.Pair) []float64
}

// ScoreBatch scores every pair with m, through the native batch entry
// point when m implements BatchModel and by one Score call per pair
// otherwise. The result is index-aligned with pairs.
func ScoreBatch(m Model, pairs []record.Pair) []float64 {
	return AsBatch(m).ScoreBatch(pairs)
}

// batchAdapter upgrades a plain Model with the fallback batch loop.
type batchAdapter struct{ Model }

func (a batchAdapter) ScoreBatch(pairs []record.Pair) []float64 {
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		out[i] = a.Score(p)
	}
	return out
}

// AsBatch returns m itself when it already implements BatchModel, and
// otherwise wraps it so callers can rely on the batch entry point
// unconditionally.
func AsBatch(m Model) BatchModel {
	if bm, ok := m.(BatchModel); ok {
		return bm
	}
	return batchAdapter{m}
}

// ContextModel is the optional cancellation-aware capability of Model
// implementations: ScoreBatchContext behaves like BatchModel.ScoreBatch
// but observes ctx, returning ctx's error instead of scores when the
// caller no longer wants the answer (an RPC-backed matcher would forward
// the context to its transport). On success the result is index-aligned
// with pairs and must agree with Score on every pair. Plain Models and
// BatchModels are adapted automatically by AsContext: the adapter checks
// the context once per batch, which is exactly the granularity the
// explanation pipeline's cooperative checkpoints need.
//
// A model that can fail for reasons other than cancellation (transport
// errors, say) must be driven through the context entry points
// (ExplainContext, ScoreBatchContext): the legacy error-less surfaces
// (Score, ScoreBatch) have no way to report its failure and panic on
// one. Such models should retry transient faults internally and reserve
// returned errors for ctx.Err() and genuinely fatal conditions.
type ContextModel interface {
	Model
	ScoreBatchContext(ctx context.Context, pairs []record.Pair) ([]float64, error)
}

// ScoreBatchContext scores every pair with m under ctx, through the
// native context entry point when m implements ContextModel and through
// a per-batch cancellation check otherwise.
func ScoreBatchContext(ctx context.Context, m Model, pairs []record.Pair) ([]float64, error) {
	return AsContext(m).ScoreBatchContext(ctx, pairs)
}

// contextAdapter upgrades a BatchModel with a per-batch context check.
type contextAdapter struct{ BatchModel }

func (a contextAdapter) ScoreBatchContext(ctx context.Context, pairs []record.Pair) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.ScoreBatch(pairs), nil
}

// AsContext returns m itself when it already implements ContextModel,
// and otherwise wraps it so callers can rely on the context entry point
// unconditionally.
func AsContext(m Model) ContextModel {
	if cm, ok := m.(ContextModel); ok {
		return cm
	}
	return contextAdapter{AsBatch(m)}
}

// Saliency is an attribute-level saliency explanation for one
// prediction: each side-qualified attribute gets an importance score
// (for CERTA, the probability of necessity).
type Saliency struct {
	// Pair is the explained input.
	Pair record.Pair `json:"pair"`
	// Prediction is the model score on the original pair.
	Prediction float64 `json:"prediction"`
	// Scores maps each attribute to its saliency. AttrRef marshals as
	// its "L_Name" text form, so the map serializes as a flat, sorted
	// JSON object.
	Scores map[record.AttrRef]float64 `json:"scores"`
}

// NewSaliency initializes an explanation with zero scores for every
// attribute of the pair.
func NewSaliency(p record.Pair, prediction float64) *Saliency {
	s := &Saliency{Pair: p, Prediction: prediction, Scores: make(map[record.AttrRef]float64)}
	for _, ref := range p.AttrRefs() {
		s.Scores[ref] = 0
	}
	return s
}

// Ranked returns the attributes sorted by descending saliency; ties are
// broken by the deterministic attribute order so explanations are stable.
func (s *Saliency) Ranked() []record.AttrRef {
	refs := make([]record.AttrRef, 0, len(s.Scores))
	for ref := range s.Scores {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		si, sj := s.Scores[refs[i]], s.Scores[refs[j]]
		if si != sj {
			return si > sj
		}
		if refs[i].Side != refs[j].Side {
			return refs[i].Side < refs[j].Side
		}
		return refs[i].Attr < refs[j].Attr
	})
	return refs
}

// TopK returns the k most salient attributes.
func (s *Saliency) TopK(k int) []record.AttrRef {
	ranked := s.Ranked()
	if k > len(ranked) {
		k = len(ranked)
	}
	if k < 0 {
		k = 0
	}
	return ranked[:k]
}

// String renders the explanation compactly for logs and CLIs.
func (s *Saliency) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "saliency(%s, score=%.3f):", s.Pair.Key(), s.Prediction)
	for _, ref := range s.Ranked() {
		fmt.Fprintf(&b, " %s=%.3f", ref, s.Scores[ref])
	}
	return b.String()
}

// Counterfactual is one counterfactual example: a copy of the original
// pair, changed in the listed attributes, that flips the prediction.
type Counterfactual struct {
	// Original is the explained pair.
	Original record.Pair `json:"original"`
	// Pair is the perturbed copy.
	Pair record.Pair `json:"pair"`
	// Changed lists the attributes whose values differ from Original.
	Changed []record.AttrRef `json:"changed,omitempty"`
	// Score is the model score on the perturbed pair.
	Score float64 `json:"score"`
	// Probability is the method's confidence that changing these
	// attributes flips the prediction (CERTA: the probability of
	// sufficiency χ of the changed attribute set). Methods without such
	// a notion report 1 for actual flips.
	Probability float64 `json:"probability"`

	originalScore float64
}

// MarshalJSON includes the unexported original score (as
// "original_score") so a counterfactual round-trips through the wire
// format with Flips() intact.
func (c Counterfactual) MarshalJSON() ([]byte, error) {
	type alias Counterfactual
	return json.Marshal(struct {
		alias
		OriginalScore float64 `json:"original_score"`
	}{alias(c), c.originalScore})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (c *Counterfactual) UnmarshalJSON(data []byte) error {
	type alias Counterfactual
	aux := struct {
		*alias
		OriginalScore float64 `json:"original_score"`
	}{alias: (*alias)(c)}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	c.originalScore = aux.OriginalScore
	return nil
}

// Flips reports whether the counterfactual actually crosses the decision
// boundary relative to the original prediction (set the original score
// with WithOriginalScore).
func (c Counterfactual) Flips() bool {
	return (c.Score > 0.5) != (c.originalScore > 0.5)
}

// WithOriginalScore returns a copy annotated with the original score.
func (c Counterfactual) WithOriginalScore(s float64) Counterfactual {
	c.originalScore = s
	return c
}

// OriginalScore returns the model score on the original pair.
func (c Counterfactual) OriginalScore() float64 { return c.originalScore }

// ChangedAttrNames renders the changed attribute list.
func (c Counterfactual) ChangedAttrNames() []string {
	out := make([]string, len(c.Changed))
	for i, r := range c.Changed {
		out[i] = r.String()
	}
	return out
}

// SaliencyExplainer produces attribute-level saliency explanations.
type SaliencyExplainer interface {
	Name() string
	ExplainSaliency(m Model, p record.Pair) (*Saliency, error)
}

// CounterfactualExplainer produces counterfactual examples.
type CounterfactualExplainer interface {
	Name() string
	ExplainCounterfactuals(m Model, p record.Pair) ([]Counterfactual, error)
}

// MaskAttr returns a copy of the pair with one attribute masked (set to
// the missing value). Masking is how the Faithfulness metric and the
// Figure 12 case study make the model "ignore" an attribute.
func MaskAttr(p record.Pair, ref record.AttrRef) record.Pair {
	return p.WithValue(ref, strutil.NaN)
}

// MaskAttrs masks several attributes at once.
func MaskAttrs(p record.Pair, refs []record.AttrRef) record.Pair {
	out := p
	for _, r := range refs {
		out = MaskAttr(out, r)
	}
	return out
}

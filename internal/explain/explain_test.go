package explain

import (
	"strings"
	"testing"

	"certa/internal/record"
	"certa/internal/strutil"
)

func testPair() record.Pair {
	abt := record.MustSchema("Abt", "name", "description", "price")
	buy := record.MustSchema("Buy", "name", "description", "price")
	return record.Pair{
		Left:  record.MustNew("u1", abt, "sony bravia", "theater system", "100"),
		Right: record.MustNew("v1", buy, "sony bravia is50", "home theater", "120"),
	}
}

type constModel float64

func (c constModel) Name() string              { return "const" }
func (c constModel) Score(record.Pair) float64 { return float64(c) }

func TestPredicted(t *testing.T) {
	if !Predicted(constModel(0.9), testPair()) {
		t.Error("0.9 should be a match")
	}
	if Predicted(constModel(0.1), testPair()) {
		t.Error("0.1 should not be a match")
	}
	if Predicted(constModel(0.5), testPair()) {
		t.Error("exactly 0.5 is non-match (strict >)")
	}
}

func TestNewSaliencyInitializesAllAttrs(t *testing.T) {
	s := NewSaliency(testPair(), 0.8)
	if len(s.Scores) != 6 {
		t.Fatalf("scores len = %d, want 6", len(s.Scores))
	}
	for ref, v := range s.Scores {
		if v != 0 {
			t.Errorf("initial score for %v = %v", ref, v)
		}
	}
}

func TestRankedAndTopK(t *testing.T) {
	s := NewSaliency(testPair(), 0.8)
	s.Scores[record.AttrRef{Side: record.Left, Attr: "name"}] = 0.9
	s.Scores[record.AttrRef{Side: record.Right, Attr: "description"}] = 0.7
	s.Scores[record.AttrRef{Side: record.Left, Attr: "price"}] = 0.4

	ranked := s.Ranked()
	if ranked[0].String() != "L_name" || ranked[1].String() != "R_description" || ranked[2].String() != "L_price" {
		t.Errorf("ranked = %v", ranked)
	}
	top2 := s.TopK(2)
	if len(top2) != 2 || top2[0].String() != "L_name" {
		t.Errorf("top2 = %v", top2)
	}
	if len(s.TopK(100)) != 6 {
		t.Error("TopK should clamp to attr count")
	}
	if len(s.TopK(-1)) != 0 {
		t.Error("TopK(-1) should be empty")
	}
}

func TestRankedDeterministicTies(t *testing.T) {
	s := NewSaliency(testPair(), 0.5)
	// All zeros: order must be deterministic (left side first, by name).
	r1 := s.Ranked()
	r2 := s.Ranked()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("tie order not deterministic")
		}
	}
	if r1[0].Side != record.Left {
		t.Error("ties should order left side first")
	}
}

func TestSaliencyString(t *testing.T) {
	s := NewSaliency(testPair(), 0.25)
	str := s.String()
	if !strings.Contains(str, "u1|v1") || !strings.Contains(str, "0.250") {
		t.Errorf("String = %q", str)
	}
}

func TestCounterfactualFlips(t *testing.T) {
	p := testPair()
	cf := Counterfactual{Original: p, Pair: p, Score: 0.8}.WithOriginalScore(0.2)
	if !cf.Flips() {
		t.Error("0.2 -> 0.8 should flip")
	}
	same := Counterfactual{Original: p, Pair: p, Score: 0.3}.WithOriginalScore(0.2)
	if same.Flips() {
		t.Error("0.2 -> 0.3 should not flip")
	}
	if cf.OriginalScore() != 0.2 {
		t.Error("OriginalScore lost")
	}
}

func TestChangedAttrNames(t *testing.T) {
	cf := Counterfactual{Changed: []record.AttrRef{
		{Side: record.Left, Attr: "name"},
		{Side: record.Right, Attr: "price"},
	}}
	names := cf.ChangedAttrNames()
	if len(names) != 2 || names[0] != "L_name" || names[1] != "R_price" {
		t.Errorf("names = %v", names)
	}
}

func TestMaskAttr(t *testing.T) {
	p := testPair()
	masked := MaskAttr(p, record.AttrRef{Side: record.Left, Attr: "name"})
	if masked.Left.Value("name") != strutil.NaN {
		t.Error("mask did not apply")
	}
	if p.Left.Value("name") == strutil.NaN {
		t.Error("mask mutated original")
	}
	// Other attributes untouched.
	if masked.Left.Value("description") != p.Left.Value("description") {
		t.Error("mask touched other attribute")
	}
}

func TestMaskAttrs(t *testing.T) {
	p := testPair()
	refs := []record.AttrRef{
		{Side: record.Left, Attr: "name"},
		{Side: record.Right, Attr: "description"},
	}
	masked := MaskAttrs(p, refs)
	if masked.Left.Value("name") != strutil.NaN || masked.Right.Value("description") != strutil.NaN {
		t.Error("masks did not apply")
	}
	if masked.Right.Value("name") != p.Right.Value("name") {
		t.Error("unrelated attribute changed")
	}
}

package explain

import (
	"testing"

	"certa/internal/record"
)

type scalarModel struct{ calls *int }

func (scalarModel) Name() string { return "scalar" }
func (m scalarModel) Score(p record.Pair) float64 {
	*m.calls++
	return float64(len(p.Left.Value("a"))) / 10
}

type nativeBatchModel struct {
	scalarModel
	batches *int
}

func (m nativeBatchModel) ScoreBatch(pairs []record.Pair) []float64 {
	*m.batches++
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		out[i] = m.Score(p)
	}
	return out
}

func batchTestPairs(t *testing.T) []record.Pair {
	t.Helper()
	s := record.MustSchema("S", "a")
	vals := []string{"x", "xy", "xyz", "xyzw"}
	out := make([]record.Pair, len(vals))
	for i, v := range vals {
		r := record.MustNew("r", s, v)
		out[i] = record.Pair{Left: r, Right: r}
	}
	return out
}

func TestScoreBatchFallback(t *testing.T) {
	pairs := batchTestPairs(t)
	calls := 0
	m := scalarModel{calls: &calls}
	scores := ScoreBatch(m, pairs)
	if len(scores) != len(pairs) {
		t.Fatalf("got %d scores for %d pairs", len(scores), len(pairs))
	}
	if calls != len(pairs) {
		t.Fatalf("fallback made %d Score calls, want %d", calls, len(pairs))
	}
	for i, p := range pairs {
		if scores[i] != m.Score(p) {
			t.Errorf("score %d disagrees with Score", i)
		}
	}
}

func TestScoreBatchUsesNativePath(t *testing.T) {
	pairs := batchTestPairs(t)
	calls, batches := 0, 0
	m := nativeBatchModel{scalarModel{calls: &calls}, &batches}
	ScoreBatch(m, pairs)
	if batches != 1 {
		t.Fatalf("native batch path used %d times, want 1", batches)
	}
}

func TestAsBatch(t *testing.T) {
	calls, batches := 0, 0
	native := nativeBatchModel{scalarModel{calls: &calls}, &batches}
	if got := AsBatch(native); got != BatchModel(native) {
		t.Error("AsBatch should return a native BatchModel unchanged")
	}
	plain := scalarModel{calls: &calls}
	wrapped := AsBatch(plain)
	pairs := batchTestPairs(t)
	scores := wrapped.ScoreBatch(pairs)
	if len(scores) != len(pairs) {
		t.Fatalf("wrapped batch returned %d scores", len(scores))
	}
	if wrapped.Name() != "scalar" {
		t.Error("adapter must preserve Name")
	}
}

func TestScoreBatchEmpty(t *testing.T) {
	calls := 0
	if got := ScoreBatch(scalarModel{calls: &calls}, nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d scores", len(got))
	}
}

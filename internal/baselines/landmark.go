package baselines

import (
	"fmt"

	"certa/internal/explain"
	"certa/internal/lime"
	"certa/internal/record"
)

// LandMark adapts LIME to ER by generating two explanations per pair:
// one perturbing only the left record's tokens while the right record
// acts as an unchanged landmark, and one with the roles swapped. The two
// token-level attributions are aggregated into a single attribute-level
// saliency map over A_U ∪ A_V.
type LandMark struct {
	cfg lime.Config
}

// NewLandMark creates the explainer; zero config gives LIME defaults.
func NewLandMark(cfg lime.Config) *LandMark { return &LandMark{cfg: cfg} }

// Name implements explain.SaliencyExplainer.
func (lm *LandMark) Name() string { return "LandMark" }

// ExplainSaliency implements explain.SaliencyExplainer.
func (lm *LandMark) ExplainSaliency(m explain.Model, p record.Pair) (*explain.Saliency, error) {
	score := m.Score(p)
	sal := explain.NewSaliency(p, score)

	for _, side := range []record.Side{record.Left, record.Right} {
		feats := tokenFeatures(p, []record.Side{side})
		if len(feats) == 0 {
			continue
		}
		cfg := lm.cfg
		cfg.Seed = lm.cfg.Seed*2 + int64(side)
		predictBatch := func(rows [][]bool) []float64 {
			pairs := make([]record.Pair, len(rows))
			for i, active := range rows {
				pairs[i] = applyTokenDrop(p, feats, active)
			}
			return explain.ScoreBatch(m, pairs)
		}
		weights, err := lime.ExplainBatch(len(feats), predictBatch, cfg)
		if err != nil {
			return nil, fmt.Errorf("baselines: LandMark LIME on side %v failed: %w", side, err)
		}
		aggregateTokenWeights(sal, feats, weights)
	}
	return sal, nil
}

package baselines

import (
	"fmt"

	"certa/internal/explain"
	"certa/internal/lime"
	"certa/internal/record"
	"certa/internal/shap"
)

// sedcSearch implements the SEDC-style greedy counterfactual search
// shared by LIME-C and SHAP-C (Ramon et al., ADAC 2020): rank features
// by a saliency explanation, then apply the perturbation operator to
// growing prefixes of the ranking until the prediction flips. Every
// flipping prefix (up to k results) becomes a counterfactual.
//
// The perturbation operator mirrors the underlying saliency method:
// evidence *removal* (masking). Removing evidence rarely turns a
// non-match into a match, which is why these methods often return no
// counterfactual at all — the behaviour Figure 10 of the paper reports.
// The perturbed inputs never depend on earlier scores — only the stop
// condition does — so both passes score their candidates in small
// batches and stop scanning the answers once enough flips are found.
func sedcSearch(m explain.Model, p record.Pair, ranked []record.AttrRef, maxResults int, perturb func(record.Pair, record.AttrRef) record.Pair) []explain.Counterfactual {
	origScore := m.Score(p)
	origPred := origScore > 0.5

	// sedcChunk balances batching against scoring past the stop point.
	const sedcChunk = 8

	var out []explain.Counterfactual
	// First pass: growing prefixes of the ranking.
	prefixes := make([]record.Pair, 0, len(ranked))
	current := p
	for _, ref := range ranked {
		current = perturb(current, ref)
		prefixes = append(prefixes, current)
	}
scanPrefixes:
	for lo := 0; lo < len(prefixes); lo += sedcChunk {
		hi := lo + sedcChunk
		if hi > len(prefixes) {
			hi = len(prefixes)
		}
		scores := explain.ScoreBatch(m, prefixes[lo:hi])
		for i, score := range scores {
			if (score > 0.5) != origPred {
				out = append(out, explain.Counterfactual{
					Original:    p,
					Pair:        prefixes[lo+i],
					Changed:     append([]record.AttrRef(nil), ranked[:lo+i+1]...),
					Score:       score,
					Probability: 1,
				}.WithOriginalScore(origScore))
				if len(out) >= maxResults {
					break scanPrefixes
				}
			}
		}
	}
	// Second pass: single-attribute perturbations beyond the greedy
	// prefix, for additional (sparser) counterfactuals.
	if len(out) < maxResults {
		singles := make([]record.Pair, len(ranked))
		for i, ref := range ranked {
			singles[i] = perturb(p, ref)
		}
	scanSingles:
		for lo := 0; lo < len(singles); lo += sedcChunk {
			hi := lo + sedcChunk
			if hi > len(singles) {
				hi = len(singles)
			}
			scores := explain.ScoreBatch(m, singles[lo:hi])
			for i, score := range scores {
				ref := ranked[lo+i]
				if (score > 0.5) != origPred {
					dup := false
					for _, prev := range out {
						if len(prev.Changed) == 1 && prev.Changed[0] == ref {
							dup = true
							break
						}
					}
					if !dup {
						out = append(out, explain.Counterfactual{
							Original:    p,
							Pair:        singles[lo+i],
							Changed:     []record.AttrRef{ref},
							Score:       score,
							Probability: 1,
						}.WithOriginalScore(origScore))
						if len(out) >= maxResults {
							break scanSingles
						}
					}
				}
			}
		}
	}
	return out
}

// LIMEC is the counterfactual version of LIME adapted to ER: per §5.2 of
// the paper it uses Mojito (rather than plain LIME) for the saliency
// ranking, then runs the SEDC greedy search with Mojito's perturbation
// operator (drop for matches, copy for non-matches).
type LIMEC struct {
	mojito *Mojito
	// K caps the number of returned counterfactuals (default 4).
	K int
}

// NewLIMEC creates the explainer.
func NewLIMEC(cfg lime.Config, k int) *LIMEC {
	if k <= 0 {
		k = 4
	}
	return &LIMEC{mojito: NewMojito(cfg), K: k}
}

// Name implements explain.CounterfactualExplainer.
func (l *LIMEC) Name() string { return "LIME-C" }

// ExplainCounterfactuals implements explain.CounterfactualExplainer.
func (l *LIMEC) ExplainCounterfactuals(m explain.Model, p record.Pair) ([]explain.Counterfactual, error) {
	sal, err := l.mojito.ExplainSaliency(m, p)
	if err != nil {
		return nil, fmt.Errorf("baselines: LIME-C saliency failed: %w", err)
	}
	isMatch := sal.Prediction > 0.5
	perturb := func(pair record.Pair, ref record.AttrRef) record.Pair {
		if isMatch {
			return explain.MaskAttr(pair, ref)
		}
		opposite := record.AttrRef{Side: ref.Side.Opposite(), Attr: ref.Attr}
		return pair.WithValue(ref, p.Value(opposite))
	}
	return sedcSearch(m, p, sal.Ranked(), l.K, perturb), nil
}

// SHAPC is the counterfactual version of SHAP: Kernel SHAP ranking
// followed by the SEDC greedy search with the task-agnostic masking
// operator (evidence removal only).
type SHAPC struct {
	shap *SHAPER
	// K caps the number of returned counterfactuals (default 4).
	K int
}

// NewSHAPC creates the explainer.
func NewSHAPC(cfg shap.Config, k int) *SHAPC {
	if k <= 0 {
		k = 4
	}
	return &SHAPC{shap: NewSHAP(cfg), K: k}
}

// Name implements explain.CounterfactualExplainer.
func (s *SHAPC) Name() string { return "SHAP-C" }

// ExplainCounterfactuals implements explain.CounterfactualExplainer.
func (s *SHAPC) ExplainCounterfactuals(m explain.Model, p record.Pair) ([]explain.Counterfactual, error) {
	sal, err := s.shap.ExplainSaliency(m, p)
	if err != nil {
		return nil, fmt.Errorf("baselines: SHAP-C saliency failed: %w", err)
	}
	perturb := func(pair record.Pair, ref record.AttrRef) record.Pair {
		return explain.MaskAttr(pair, ref)
	}
	return sedcSearch(m, p, sal.Ranked(), s.K, perturb), nil
}

package baselines

import (
	"fmt"

	"certa/internal/explain"
	"certa/internal/record"
	"certa/internal/shap"
)

// SHAPER is the task-agnostic Kernel SHAP baseline: the record pair is
// treated as text whose tokens are the features; a token absent from a
// coalition is removed from its attribute value. Attribute saliency is
// the aggregated absolute attribution of the attribute's tokens. It
// knows nothing about the ER semantics — exactly the property the paper
// contrasts CERTA against.
type SHAPER struct {
	cfg shap.Config
}

// NewSHAP creates the explainer; zero config gives Kernel SHAP defaults.
func NewSHAP(cfg shap.Config) *SHAPER { return &SHAPER{cfg: cfg} }

// Name implements explain.SaliencyExplainer.
func (s *SHAPER) Name() string { return "SHAP" }

// ExplainSaliency implements explain.SaliencyExplainer.
func (s *SHAPER) ExplainSaliency(m explain.Model, p record.Pair) (*explain.Saliency, error) {
	score := m.Score(p)
	feats := tokenFeatures(p, []record.Side{record.Left, record.Right})
	sal := explain.NewSaliency(p, score)
	if len(feats) == 0 {
		return sal, nil
	}
	valueBatch := func(coalitions [][]bool) []float64 {
		pairs := make([]record.Pair, len(coalitions))
		for i, coalition := range coalitions {
			pairs[i] = applyTokenDrop(p, feats, coalition)
		}
		return explain.ScoreBatch(m, pairs)
	}
	phi, err := shap.ExplainBatch(len(feats), valueBatch, s.cfg)
	if err != nil {
		return nil, fmt.Errorf("baselines: SHAP failed: %w", err)
	}
	aggregateTokenWeights(sal, feats, phi)
	return sal, nil
}

package baselines

import (
	"fmt"
	"testing"

	"certa/internal/explain"
	"certa/internal/lime"
	"certa/internal/record"
	"certa/internal/shap"
	"certa/internal/strutil"
)

// nameModel matches iff the name attributes overlap by more than half;
// transparent ground truth for saliency assertions.
type nameModel struct{}

func (nameModel) Name() string { return "name-oracle" }
func (nameModel) Score(p record.Pair) float64 {
	// Two missing names are no evidence of a match (unlike raw Jaccard,
	// which scores NaN-vs-NaN as 1).
	if strutil.IsMissing(p.Left.Value("name")) || strutil.IsMissing(p.Right.Value("name")) {
		return 0.1
	}
	if strutil.Jaccard(p.Left.Value("name"), p.Right.Value("name")) > 0.5 {
		return 0.9
	}
	return 0.1
}

func buildTables() (*record.Table, *record.Table) {
	ls := record.MustSchema("U", "name", "desc", "price")
	rs := record.MustSchema("V", "name", "desc", "price")
	left := record.NewTable(ls)
	right := record.NewTable(rs)
	names := []string{"alpha beta", "gamma delta", "epsilon zeta", "eta theta",
		"iota kappa", "lambda mu", "nu xi", "omicron pi"}
	for i, n := range names {
		left.MustAdd(record.MustNew(fmt.Sprintf("l%d", i), ls, n, "desc "+n, fmt.Sprintf("%d", 10+i)))
		right.MustAdd(record.MustNew(fmt.Sprintf("r%d", i), rs, n, "desc "+n, fmt.Sprintf("%d", 10+i)))
	}
	return left, right
}

func matchPair(left, right *record.Table) record.Pair {
	u, _ := left.Get("l0")
	v, _ := right.Get("r0")
	return record.Pair{Left: u, Right: v}
}

func nonMatchPair(left, right *record.Table) record.Pair {
	u, _ := left.Get("l0")
	v, _ := right.Get("r1")
	return record.Pair{Left: u, Right: v}
}

func nameRefs() (l, r record.AttrRef) {
	return record.AttrRef{Side: record.Left, Attr: "name"},
		record.AttrRef{Side: record.Right, Attr: "name"}
}

// countingNameModel wraps nameModel with a call counter.
type countingNameModel struct {
	inner nameModel
	calls int
}

func (m *countingNameModel) Name() string { return m.inner.Name() }
func (m *countingNameModel) Score(p record.Pair) float64 {
	m.calls++
	return m.inner.Score(p)
}

// TestDiCECallBudgetAnytime pins the DiCE anytime knob: a small budget
// stops the genetic search at a generation boundary (far fewer model
// calls), equal budgets produce identical counterfactuals, and a budget
// above the unlimited cost changes nothing.
func TestDiCECallBudgetAnytime(t *testing.T) {
	left, right := buildTables()
	p := nonMatchPair(left, right)

	unlimited := &countingNameModel{}
	d := NewDiCE(left, right, DiCEConfig{Seed: 7})
	fullCFs, err := d.ExplainCounterfactuals(unlimited, p)
	if err != nil {
		t.Fatal(err)
	}

	// Budget that only covers the initial population: the search must
	// stop at the first generation boundary.
	tight := &countingNameModel{}
	dTight := NewDiCE(left, right, DiCEConfig{Seed: 7, CallBudget: 2})
	tightCFs, err := dTight.ExplainCounterfactuals(tight, p)
	if err != nil {
		t.Fatal(err)
	}
	if tight.calls >= unlimited.calls {
		t.Fatalf("budgeted run made %d calls, unlimited %d", tight.calls, unlimited.calls)
	}
	// 1 original + at most Population initial proposals.
	if tight.calls > 1+24 {
		t.Fatalf("budget 2 still made %d calls, want initial population only", tight.calls)
	}

	// Determinism at equal budgets.
	again, err := NewDiCE(left, right, DiCEConfig{Seed: 7, CallBudget: 2}).
		ExplainCounterfactuals(&countingNameModel{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(tightCFs) {
		t.Fatalf("equal budgets: %d vs %d counterfactuals", len(again), len(tightCFs))
	}
	for i := range again {
		if again[i].Pair.Key() != tightCFs[i].Pair.Key() || again[i].Score != tightCFs[i].Score {
			t.Fatalf("equal budgets diverge at counterfactual %d", i)
		}
	}

	// A budget above the unlimited cost is a no-op.
	loose, err := NewDiCE(left, right, DiCEConfig{Seed: 7, CallBudget: unlimited.calls + 1}).
		ExplainCounterfactuals(&countingNameModel{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(loose) != len(fullCFs) {
		t.Fatalf("loose budget: %d vs %d counterfactuals", len(loose), len(fullCFs))
	}
	for i := range loose {
		if loose[i].Pair.Key() != fullCFs[i].Pair.Key() {
			t.Fatalf("loose budget diverges at counterfactual %d", i)
		}
	}
}

func assertNameDominates(t *testing.T, sal *explain.Saliency, method string) {
	t.Helper()
	lName, rName := nameRefs()
	nameScore := sal.Scores[lName] + sal.Scores[rName]
	var otherMax float64
	for ref, v := range sal.Scores {
		if ref.Attr != "name" && v > otherMax {
			otherMax = v
		}
	}
	if nameScore <= otherMax {
		t.Errorf("%s: name saliency %v should dominate other attrs (max %v); full: %v",
			method, nameScore, otherMax, sal)
	}
}

func TestMojitoMatchPrediction(t *testing.T) {
	left, right := buildTables()
	mj := NewMojito(lime.Config{Samples: 150, Seed: 1})
	sal, err := mj.ExplainSaliency(nameModel{}, matchPair(left, right))
	if err != nil {
		t.Fatal(err)
	}
	assertNameDominates(t, sal, "Mojito(drop)")
}

func TestMojitoNonMatchUsesCopy(t *testing.T) {
	left, right := buildTables()
	mj := NewMojito(lime.Config{Samples: 150, Seed: 2})
	sal, err := mj.ExplainSaliency(nameModel{}, nonMatchPair(left, right))
	if err != nil {
		t.Fatal(err)
	}
	// With copy semantics, deactivating name copies the other record's
	// name and flips the prediction — name must carry the weight.
	assertNameDominates(t, sal, "Mojito(copy)")
}

func TestLandMark(t *testing.T) {
	left, right := buildTables()
	lm := NewLandMark(lime.Config{Samples: 150, Seed: 3})
	sal, err := lm.ExplainSaliency(nameModel{}, matchPair(left, right))
	if err != nil {
		t.Fatal(err)
	}
	assertNameDominates(t, sal, "LandMark")
	// Both sides must be populated (two separate LIME runs).
	lName, rName := nameRefs()
	if sal.Scores[lName] == 0 || sal.Scores[rName] == 0 {
		t.Errorf("LandMark should populate both sides: L=%v R=%v", sal.Scores[lName], sal.Scores[rName])
	}
}

func TestSHAP(t *testing.T) {
	left, right := buildTables()
	sh := NewSHAP(shap.Config{Samples: 400, Seed: 4})
	sal, err := sh.ExplainSaliency(nameModel{}, matchPair(left, right))
	if err != nil {
		t.Fatal(err)
	}
	assertNameDominates(t, sal, "SHAP")
	// Token-level attributions are sampled; null attributes must stay
	// small relative to the decisive one.
	nameScore := sal.Scores[record.AttrRef{Side: record.Left, Attr: "name"}] +
		sal.Scores[record.AttrRef{Side: record.Right, Attr: "name"}]
	for ref, v := range sal.Scores {
		if ref.Attr != "name" && v > nameScore/2 {
			t.Errorf("SHAP: null attribute %v got %v vs name %v", ref, v, nameScore)
		}
	}
}

func TestSaliencyDeterminism(t *testing.T) {
	left, right := buildTables()
	p := matchPair(left, right)
	for _, mk := range []func() explain.SaliencyExplainer{
		func() explain.SaliencyExplainer { return NewMojito(lime.Config{Samples: 80, Seed: 5}) },
		func() explain.SaliencyExplainer { return NewLandMark(lime.Config{Samples: 80, Seed: 5}) },
		func() explain.SaliencyExplainer { return NewSHAP(shap.Config{Seed: 5}) },
	} {
		a, err := mk().ExplainSaliency(nameModel{}, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := mk().ExplainSaliency(nameModel{}, p)
		if err != nil {
			t.Fatal(err)
		}
		for ref, v := range a.Scores {
			if b.Scores[ref] != v {
				t.Errorf("%T: non-deterministic for %v", mk(), ref)
			}
		}
	}
}

func TestDiCEFindsFlippingCounterfactuals(t *testing.T) {
	left, right := buildTables()
	d := NewDiCE(left, right, DiCEConfig{Seed: 6})
	p := nonMatchPair(left, right)
	cfs, err := d.ExplainCounterfactuals(nameModel{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfs) == 0 {
		t.Fatal("DiCE returned no counterfactuals")
	}
	flipped := 0
	for _, cf := range cfs {
		if len(cf.Changed) == 0 {
			t.Error("counterfactual with no changes")
		}
		if cf.Flips() {
			flipped++
		}
	}
	// The name-only model flips whenever a matching name is copied from
	// the domain; the genetic search must find at least one.
	if flipped == 0 {
		t.Error("DiCE found no flipping counterfactual on an easy model")
	}
}

func TestDiCEDiversity(t *testing.T) {
	left, right := buildTables()
	d := NewDiCE(left, right, DiCEConfig{Seed: 7, K: 4})
	cfs, err := d.ExplainCounterfactuals(nameModel{}, nonMatchPair(left, right))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfs) < 2 {
		t.Skip("need 2+ counterfactuals to check diversity")
	}
	for i := 0; i < len(cfs); i++ {
		for j := i + 1; j < len(cfs); j++ {
			if pairProximity(cfs[i].Pair, cfs[j].Pair) > 0.99 {
				t.Errorf("counterfactuals %d and %d are near-identical", i, j)
			}
		}
	}
}

func TestLIMECOnMatch(t *testing.T) {
	left, right := buildTables()
	lc := NewLIMEC(lime.Config{Samples: 150, Seed: 8}, 4)
	p := matchPair(left, right)
	cfs, err := lc.ExplainCounterfactuals(nameModel{}, p)
	if err != nil {
		t.Fatal(err)
	}
	// Dropping the salient name must flip a match to non-match.
	if len(cfs) == 0 {
		t.Fatal("LIME-C found no counterfactual for a match prediction")
	}
	for _, cf := range cfs {
		if !cf.Flips() {
			t.Error("LIME-C returned a non-flipping counterfactual")
		}
	}
}

func TestLIMECOnNonMatchUsesCopy(t *testing.T) {
	left, right := buildTables()
	lc := NewLIMEC(lime.Config{Samples: 150, Seed: 9}, 4)
	cfs, err := lc.ExplainCounterfactuals(nameModel{}, nonMatchPair(left, right))
	if err != nil {
		t.Fatal(err)
	}
	// Copy semantics lets LIME-C flip non-matches too (name copied from
	// the other side).
	if len(cfs) == 0 {
		t.Error("LIME-C with copy operator should flip the non-match")
	}
}

func TestSHAPCMaskingCannotFlipNonMatch(t *testing.T) {
	left, right := buildTables()
	sc := NewSHAPC(shap.Config{Seed: 10}, 4)
	cfs, err := sc.ExplainCounterfactuals(nameModel{}, nonMatchPair(left, right))
	if err != nil {
		t.Fatal(err)
	}
	// Pure evidence removal cannot make the names overlap: SHAP-C finds
	// nothing — the asymmetry Figure 10 of the paper reports.
	if len(cfs) != 0 {
		t.Errorf("SHAP-C flipped a non-match by masking alone: %d cfs", len(cfs))
	}
}

func TestSHAPCOnMatch(t *testing.T) {
	left, right := buildTables()
	sc := NewSHAPC(shap.Config{Seed: 11}, 4)
	cfs, err := sc.ExplainCounterfactuals(nameModel{}, matchPair(left, right))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfs) == 0 {
		t.Error("SHAP-C should flip a match by masking the name")
	}
}

func TestExplainersImplementInterfaces(t *testing.T) {
	left, right := buildTables()
	var _ explain.SaliencyExplainer = NewMojito(lime.Config{})
	var _ explain.SaliencyExplainer = NewLandMark(lime.Config{})
	var _ explain.SaliencyExplainer = NewSHAP(shap.Config{})
	var _ explain.CounterfactualExplainer = NewDiCE(left, right, DiCEConfig{})
	var _ explain.CounterfactualExplainer = NewLIMEC(lime.Config{}, 0)
	var _ explain.CounterfactualExplainer = NewSHAPC(shap.Config{}, 0)
}

func TestNames(t *testing.T) {
	left, right := buildTables()
	for want, got := range map[string]string{
		"Mojito":   NewMojito(lime.Config{}).Name(),
		"LandMark": NewLandMark(lime.Config{}).Name(),
		"SHAP":     NewSHAP(shap.Config{}).Name(),
		"DiCE":     NewDiCE(left, right, DiCEConfig{}).Name(),
		"LIME-C":   NewLIMEC(lime.Config{}, 0).Name(),
		"SHAP-C":   NewSHAPC(shap.Config{}, 0).Name(),
	} {
		if want != got {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

package baselines

import (
	"math/rand"
	"sort"

	"certa/internal/explain"
	"certa/internal/record"
	"certa/internal/strutil"
)

// DiCE is the model-agnostic diverse-counterfactual baseline (Mothilal
// et al., FAT* 2020) adapted to ER: candidate counterfactuals replace
// attribute values with values drawn from the corresponding source
// column's domain, and a genetic search optimizes a combination of
// validity (crossing the decision boundary), proximity to the original
// pair and diversity among the returned set. Like the original, DiCE may
// return candidates that do not actually flip the prediction (the paper
// drops the Validity metric for this reason, footnote 6).
type DiCE struct {
	domains map[record.AttrRef][]string

	// K is the number of counterfactuals to return (default 4, DiCE's
	// default).
	K int
	// Population and Generations size the genetic search (defaults 24/12).
	Population, Generations int
	// CallBudget caps model calls per explanation (0 = unlimited),
	// checked at generation boundaries — the same anytime contract as
	// core.Options.CallBudget, so budget sweeps can compare CERTA and
	// DiCE under one knob.
	CallBudget int
	// Seed drives the search.
	Seed int64
}

// DiCEConfig tunes the search.
type DiCEConfig struct {
	K, Population, Generations int
	Seed                       int64
	// DomainCap bounds per-attribute value pools (default 150).
	DomainCap int
	// CallBudget caps model calls per explanation (0 = unlimited): the
	// genetic search stops at the first generation boundary at or past
	// the budget and returns its best-so-far selection. The initial
	// population is always evaluated (it is the minimum viable search),
	// so tiny budgets cost origin + population calls. Deterministic:
	// equal budgets select identical counterfactuals.
	CallBudget int
}

// NewDiCE builds the explainer, harvesting attribute value domains from
// the two sources.
func NewDiCE(left, right *record.Table, cfg DiCEConfig) *DiCE {
	if cfg.K <= 0 {
		cfg.K = 4
	}
	if cfg.Population <= 0 {
		cfg.Population = 24
	}
	if cfg.Generations <= 0 {
		cfg.Generations = 12
	}
	if cfg.DomainCap <= 0 {
		cfg.DomainCap = 150
	}
	d := &DiCE{
		domains:     make(map[record.AttrRef][]string),
		K:           cfg.K,
		Population:  cfg.Population,
		Generations: cfg.Generations,
		CallBudget:  cfg.CallBudget,
		Seed:        cfg.Seed,
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 77))
	harvest := func(t *record.Table, side record.Side) {
		for _, a := range t.Schema.Attrs {
			ref := record.AttrRef{Side: side, Attr: a}
			seen := make(map[string]struct{})
			var pool []string
			for _, r := range t.Records {
				v := r.Value(a)
				if strutil.IsMissing(v) {
					continue
				}
				if _, dup := seen[v]; dup {
					continue
				}
				seen[v] = struct{}{}
				pool = append(pool, v)
			}
			rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
			if len(pool) > cfg.DomainCap {
				pool = pool[:cfg.DomainCap]
			}
			d.domains[ref] = pool
		}
	}
	harvest(left, record.Left)
	harvest(right, record.Right)
	return d
}

// Name implements explain.CounterfactualExplainer.
func (d *DiCE) Name() string { return "DiCE" }

// candidate is one individual of the genetic search.
type candidate struct {
	pair    record.Pair
	changed []record.AttrRef
	score   float64
	fitness float64
}

// ExplainCounterfactuals implements explain.CounterfactualExplainer.
// Mutation proposals draw from the RNG in the exact order the
// one-at-a-time search did, but each generation's offspring are scored
// in one batched model call — scores never feed back into sampling, so
// the search trajectory is identical.
func (d *DiCE) ExplainCounterfactuals(m explain.Model, p record.Pair) ([]explain.Counterfactual, error) {
	origScore := m.Score(p)
	wantMatch := origScore <= 0.5 // the flipped target outcome
	rng := rand.New(rand.NewSource(d.Seed*13 + int64(len(p.Key()))))
	refs := p.AttrRefs()

	build := func(pair record.Pair, changed []record.AttrRef, score float64) candidate {
		// Validity term: distance of the score past the boundary in the
		// desired direction.
		var validity float64
		if wantMatch {
			validity = score
		} else {
			validity = 1 - score
		}
		// Proximity term: attribute-wise similarity to the original.
		prox := pairProximity(p, pair)
		// Sparsity pressure: fewer changes are better.
		sparse := 1 - float64(len(changed))/float64(len(refs))
		return candidate{
			pair:    pair,
			changed: changed,
			score:   score,
			fitness: 2*validity + 0.5*prox + 0.3*sparse,
		}
	}

	// proposal is one drawn mutation awaiting its batched evaluation;
	// an unmutated proposal (empty value pool) passes the parent through.
	type proposal struct {
		pair    record.Pair
		parent  candidate
		mutated bool
	}
	propose := func(parent candidate) proposal {
		ref := refs[rng.Intn(len(refs))]
		pool := d.domains[ref]
		if len(pool) == 0 {
			return proposal{parent: parent}
		}
		v := pool[rng.Intn(len(pool))]
		return proposal{pair: parent.pair.WithValue(ref, v), parent: parent, mutated: true}
	}
	calls := 1 // the original score
	evalAll := func(props []proposal) []candidate {
		pairs := make([]record.Pair, 0, len(props))
		for _, pr := range props {
			if pr.mutated {
				pairs = append(pairs, pr.pair)
			}
		}
		calls += len(pairs)
		scores := explain.ScoreBatch(m, pairs)
		out := make([]candidate, len(props))
		si := 0
		for i, pr := range props {
			if pr.mutated {
				out[i] = build(pr.pair, diffRefs(p, pr.pair), scores[si])
				si++
			} else {
				out[i] = pr.parent
			}
		}
		return out
	}

	// Initial population: single-attribute replacements of the original.
	origCand := build(p, nil, origScore)
	props := make([]proposal, 0, d.Population)
	for len(props) < d.Population {
		props = append(props, propose(origCand))
	}
	pop := evalAll(props)

	for g := 0; g < d.Generations; g++ {
		// Anytime checkpoint, mirroring core's call-budget contract: a
		// spent budget ends the search at the generation boundary with
		// the best-so-far population.
		if d.CallBudget > 0 && calls >= d.CallBudget {
			break
		}
		sort.SliceStable(pop, func(i, j int) bool { return pop[i].fitness > pop[j].fitness })
		elite := pop[:d.Population/2]
		props = props[:0]
		for len(elite)+len(props) < d.Population {
			parent := elite[rng.Intn(len(elite))]
			props = append(props, propose(parent))
		}
		pop = append(append([]candidate(nil), elite...), evalAll(props)...)
	}
	sort.SliceStable(pop, func(i, j int) bool { return pop[i].fitness > pop[j].fitness })

	// Greedy diverse selection of K results.
	var out []explain.Counterfactual
	var chosen []candidate
	for _, c := range pop {
		if len(chosen) >= d.K {
			break
		}
		if len(c.changed) == 0 {
			continue
		}
		tooClose := false
		for _, prev := range chosen {
			if pairProximity(prev.pair, c.pair) > 0.95 {
				tooClose = true
				break
			}
		}
		if tooClose {
			continue
		}
		chosen = append(chosen, c)
		prob := 0.0
		if (c.score > 0.5) == wantMatch {
			prob = 1
		}
		out = append(out, explain.Counterfactual{
			Original:    p,
			Pair:        c.pair,
			Changed:     c.changed,
			Score:       c.score,
			Probability: prob,
		}.WithOriginalScore(origScore))
	}
	return out, nil
}

// pairProximity is the mean attribute-wise token similarity between two
// pairs (1 = identical).
func pairProximity(a, b record.Pair) float64 {
	refs := a.AttrRefs()
	if len(refs) == 0 {
		return 1
	}
	var total float64
	for _, ref := range refs {
		total += strutil.Jaccard(a.Value(ref), b.Value(ref))
	}
	return total / float64(len(refs))
}

// diffRefs lists the attributes where the two pairs differ.
func diffRefs(orig, perturbed record.Pair) []record.AttrRef {
	var out []record.AttrRef
	for _, ref := range orig.AttrRefs() {
		if orig.Value(ref) != perturbed.Value(ref) {
			out = append(out, ref)
		}
	}
	return out
}

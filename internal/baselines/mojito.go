// Package baselines implements the explanation methods the paper
// compares CERTA against (§5.2):
//
//   - Mojito — the LIME adaptation for ER of Di Cicco et al.: LIME over
//     the words of the record pair, with the mojito-drop operator for
//     Match predictions and mojito-copy for Non-Match predictions;
//   - LandMark — the double-LIME adaptation of Baraldi et al., which
//     explains each record's tokens separately while the other record
//     acts as a fixed landmark;
//   - SHAP — task-agnostic Kernel SHAP treating the pair as text;
//   - DiCE — model-agnostic diverse counterfactual search;
//   - LIME-C and SHAP-C — the SEDC-style counterfactual versions of the
//     saliency methods (Ramon et al.), adapted to ER per §5.2.
//
// The saliency baselines attribute at token level and aggregate to
// attributes, exactly as the original methods do — the paper's central
// contrast is between this text-level, task-agnostic view and CERTA's
// attribute-level, ER-aware perturbations.
//
// Every baseline scores its sampled neighborhoods through the model's
// batch entry point (explain.ScoreBatch) and never keeps model state of
// its own, so whole-workload runs can hand them a shared scoring
// service (scorecache.Service implements explain.Model) instead of the
// raw matcher: perturbations resampled across pairs, methods and
// experiments then reach the model once per run. The eval harness wires
// this up for the paper grids.
package baselines

import (
	"fmt"

	"certa/internal/explain"
	"certa/internal/lime"
	"certa/internal/record"
)

// Mojito adapts LIME to ER. Interpretable features are the tokens of
// both records. For a Match prediction the DROP operator removes
// deactivated tokens; for a Non-Match prediction the COPY operator
// copies deactivated tokens into the aligned attribute of the opposite
// record, making the records more similar.
type Mojito struct {
	cfg lime.Config
}

// NewMojito creates the explainer; zero config gives LIME defaults.
func NewMojito(cfg lime.Config) *Mojito { return &Mojito{cfg: cfg} }

// Name implements explain.SaliencyExplainer.
func (mj *Mojito) Name() string { return "Mojito" }

// ExplainSaliency implements explain.SaliencyExplainer. The whole LIME
// neighborhood is materialized first and scored through the model's
// batch entry point.
func (mj *Mojito) ExplainSaliency(m explain.Model, p record.Pair) (*explain.Saliency, error) {
	score := m.Score(p)
	isMatch := score > 0.5
	feats := tokenFeatures(p, []record.Side{record.Left, record.Right})
	sal := explain.NewSaliency(p, score)
	if len(feats) == 0 {
		return sal, nil
	}

	predictBatch := func(rows [][]bool) []float64 {
		pairs := make([]record.Pair, len(rows))
		for i, active := range rows {
			if isMatch {
				pairs[i] = applyTokenDrop(p, feats, active)
			} else {
				pairs[i] = applyTokenCopy(p, feats, active)
			}
		}
		return explain.ScoreBatch(m, pairs)
	}
	weights, err := lime.ExplainBatch(len(feats), predictBatch, mj.cfg)
	if err != nil {
		return nil, fmt.Errorf("baselines: Mojito LIME failed: %w", err)
	}
	aggregateTokenWeights(sal, feats, weights)
	return sal, nil
}

package baselines

import (
	"certa/internal/explain"
	"certa/internal/record"
	"certa/internal/strutil"
)

// The paper's saliency baselines are text-level methods: Mojito runs
// LIME over the *words* of the record pair, LandMark over the words of
// one record at a time, and SHAP treats the pair as text. Their
// attribute-level scores are aggregates of token-level attributions.
// This file provides the shared token-feature representation.

// tokenFeature is one interpretable feature: a token at a position
// inside one side-qualified attribute.
type tokenFeature struct {
	ref   record.AttrRef
	index int // token position within the attribute value
	token string
}

// maxTokensPerAttr caps the interpretable representation per attribute;
// tokens beyond the cap stay fixed (LIME's max-features practice bounds
// the regression size on very long values).
const maxTokensPerAttr = 16

// tokenFeatures enumerates the perturbable tokens of the selected sides
// in deterministic order.
func tokenFeatures(p record.Pair, sides []record.Side) []tokenFeature {
	var out []tokenFeature
	for _, side := range sides {
		rec := p.Record(side)
		for _, a := range rec.Schema.Attrs {
			toks := strutil.Tokenize(rec.Value(a))
			if len(toks) > maxTokensPerAttr {
				toks = toks[:maxTokensPerAttr]
			}
			for i, t := range toks {
				out = append(out, tokenFeature{
					ref:   record.AttrRef{Side: side, Attr: a},
					index: i,
					token: t,
				})
			}
		}
	}
	return out
}

// applyTokenDrop rebuilds the pair with every deactivated feature's
// token removed from its attribute value (the DROP operator).
func applyTokenDrop(p record.Pair, feats []tokenFeature, active []bool) record.Pair {
	dropped := make(map[record.AttrRef]map[int]bool)
	for i, f := range feats {
		if active[i] {
			continue
		}
		if dropped[f.ref] == nil {
			dropped[f.ref] = make(map[int]bool)
		}
		dropped[f.ref][f.index] = true
	}
	out := p
	for ref, idxs := range dropped {
		toks := strutil.Tokenize(p.Value(ref))
		kept := toks[:0]
		for i, t := range toks {
			if !idxs[i] {
				kept = append(kept, t)
			}
		}
		out = out.WithValue(ref, strutil.JoinTokens(kept))
	}
	return out
}

// applyTokenCopy rebuilds the pair with every deactivated feature's
// token appended to the *aligned attribute of the opposite record* (the
// Mojito COPY operator for non-match predictions: copying tokens across
// makes the records more similar).
func applyTokenCopy(p record.Pair, feats []tokenFeature, active []bool) record.Pair {
	appended := make(map[record.AttrRef][]string)
	for i, f := range feats {
		if active[i] {
			continue
		}
		opposite := record.AttrRef{Side: f.ref.Side.Opposite(), Attr: f.ref.Attr}
		appended[opposite] = append(appended[opposite], f.token)
	}
	out := p
	for ref, toks := range appended {
		base := strutil.Tokenize(p.Value(ref))
		out = out.WithValue(ref, strutil.JoinTokens(append(base, toks...)))
	}
	return out
}

// aggregateTokenWeights folds absolute token-level attributions into
// per-attribute saliency scores (total attribution mass per attribute).
func aggregateTokenWeights(sal *explain.Saliency, feats []tokenFeature, weights []float64) {
	for i, f := range feats {
		w := weights[i]
		if w < 0 {
			w = -w
		}
		sal.Scores[f.ref] += w
	}
}

package record

// Memo is the per-table cache of derived record views: the normalized
// text (Record.Text) and distinct token set (Record.TokenSet) of every
// record, computed once at construction. Read-heavy scans — the
// candidate retrieval index, blocking, benchmarks — address records by
// their table ordinal and skip the per-access tokenization cost.
//
// The cache is not stored on Record itself: records are plain values
// whose every field takes part in equality, and explanation results
// embedding them are compared with reflect.DeepEqual by the
// determinism tests. A Memo is immutable after construction and safe
// for concurrent reads; it reflects the table at build time (tables
// are append-once by convention).
type Memo struct {
	table *Table
	texts []string
	sets  []map[string]struct{}
}

// NewMemo precomputes the derived views of every record of t.
func NewMemo(t *Table) *Memo {
	m := &Memo{
		table: t,
		texts: make([]string, t.Len()),
		sets:  make([]map[string]struct{}, t.Len()),
	}
	for i, r := range t.Records {
		m.texts[i] = r.Text()
		m.sets[i] = r.TokenSet()
	}
	return m
}

// Table returns the memoized table.
func (m *Memo) Table() *Table { return m.table }

// Text returns the cached Record.Text() of the record at ordinal i.
func (m *Memo) Text(i int) string { return m.texts[i] }

// TokenSet returns the cached Record.TokenSet() of the record at
// ordinal i. The map is shared — callers must treat it as read-only.
func (m *Memo) TokenSet(i int) map[string]struct{} { return m.sets[i] }

// Package record defines the relational data model used throughout the
// project: schemas, records, two-source tables, and record pairs — the
// unit of prediction in entity resolution.
//
// In the paper's notation a benchmark has two sources U and V, possibly
// with different schemas A_U and A_V. Explanations are expressed over the
// union of the two attribute sets, so the package also provides AttrRef,
// a side-qualified attribute reference rendered as "L_Name"/"R_Name"
// following Figure 12 of the paper.
package record

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"

	"certa/internal/strutil"
)

// Side identifies which source of a benchmark a record (or attribute)
// belongs to.
type Side int

const (
	// Left is the U source (e.g. the Abt table of Abt-Buy).
	Left Side = iota
	// Right is the V source (e.g. the Buy table of Abt-Buy).
	Right
)

// String returns "L" or "R".
func (s Side) String() string {
	if s == Left {
		return "L"
	}
	return "R"
}

// Opposite returns the other side.
func (s Side) Opposite() Side {
	if s == Left {
		return Right
	}
	return Left
}

// MarshalText renders the side as "L"/"R", making JSON documents that
// embed a Side readable and stable across releases.
func (s Side) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses "L"/"R".
func (s *Side) UnmarshalText(b []byte) error {
	switch string(b) {
	case "L":
		*s = Left
	case "R":
		*s = Right
	default:
		return fmt.Errorf("record: cannot parse side %q (want L or R)", b)
	}
	return nil
}

// Schema describes one source: its name and ordered attribute list.
type Schema struct {
	Name  string   `json:"name"`
	Attrs []string `json:"attrs"`

	index map[string]int
}

// NewSchema builds a schema, validating that attribute names are
// non-empty and unique.
func NewSchema(name string, attrs ...string) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("record: schema %q has no attributes", name)
	}
	idx := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("record: schema %q has empty attribute name at position %d", name, i)
		}
		if _, dup := idx[a]; dup {
			return nil, fmt.Errorf("record: schema %q has duplicate attribute %q", name, a)
		}
		idx[a] = i
	}
	return &Schema{Name: name, Attrs: append([]string(nil), attrs...), index: idx}, nil
}

// MustSchema is NewSchema that panics on error; for tests and static
// dataset definitions.
func MustSchema(name string, attrs ...string) *Schema {
	s, err := NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// AttrIndex returns the position of attribute a, or -1 if absent.
func (s *Schema) AttrIndex(a string) int {
	if s.index == nil {
		s.index = make(map[string]int, len(s.Attrs))
		for i, n := range s.Attrs {
			s.index[n] = i
		}
	}
	if i, ok := s.index[a]; ok {
		return i
	}
	return -1
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.Attrs) }

// Record is a single structured entity description.
//
// Records are plain values: every field takes part in equality
// (reflect.DeepEqual on explanation results is part of the
// determinism contract), so derived views are not memoized on the
// record itself — read-heavy scans cache them per table with Memo.
type Record struct {
	ID     string   `json:"id"`
	Schema *Schema  `json:"schema"`
	Values []string `json:"values"` // parallel to Schema.Attrs
}

// New creates a record, checking that the value count matches the schema.
func New(id string, schema *Schema, values ...string) (*Record, error) {
	if schema == nil {
		return nil, fmt.Errorf("record: nil schema for record %q", id)
	}
	if len(values) != schema.Len() {
		return nil, fmt.Errorf("record: record %q has %d values for schema %q with %d attributes",
			id, len(values), schema.Name, schema.Len())
	}
	return &Record{ID: id, Schema: schema, Values: append([]string(nil), values...)}, nil
}

// MustNew is New that panics on error.
func MustNew(id string, schema *Schema, values ...string) *Record {
	r, err := New(id, schema, values...)
	if err != nil {
		panic(err)
	}
	return r
}

// Value returns the value of attribute a, or NaN if the attribute does
// not exist in the schema.
func (r *Record) Value(a string) string {
	i := r.Schema.AttrIndex(a)
	if i < 0 {
		return strutil.NaN
	}
	return r.Values[i]
}

// Missing reports whether attribute a is absent or has a missing value.
func (r *Record) Missing(a string) bool {
	return strutil.IsMissing(r.Value(a))
}

// Clone returns a deep copy (the schema is shared; it is immutable by
// convention).
func (r *Record) Clone() *Record {
	return &Record{ID: r.ID, Schema: r.Schema, Values: append([]string(nil), r.Values...)}
}

// WithValue returns a copy of r with attribute a set to v. Unknown
// attributes are ignored (a copy is still returned) so perturbation code
// can be schema-agnostic.
func (r *Record) WithValue(a, v string) *Record {
	c := r.Clone()
	if i := c.Schema.AttrIndex(a); i >= 0 {
		c.Values[i] = v
	}
	return c
}

// WithValues returns a copy of r with every attribute in vals replaced.
func (r *Record) WithValues(vals map[string]string) *Record {
	c := r.Clone()
	for a, v := range vals {
		if i := c.Schema.AttrIndex(a); i >= 0 {
			c.Values[i] = v
		}
	}
	return c
}

// Equal reports whether two records have the same schema name, ID and
// values.
func (r *Record) Equal(o *Record) bool {
	if r == nil || o == nil {
		return r == o
	}
	if r.ID != o.ID || r.Schema.Name != o.Schema.Name || len(r.Values) != len(o.Values) {
		return false
	}
	for i, v := range r.Values {
		if v != o.Values[i] {
			return false
		}
	}
	return true
}

// ChangedAttrs lists attributes whose values differ between r and o
// (which must share a schema).
func (r *Record) ChangedAttrs(o *Record) []string {
	var out []string
	for i, a := range r.Schema.Attrs {
		if i < len(o.Values) && r.Values[i] != o.Values[i] {
			out = append(out, a)
		}
	}
	return out
}

// Text returns all attribute values joined into one normalized string,
// the "record as text" view used by sequence-level matchers and by
// text-mode baselines.
func (r *Record) Text() string {
	var parts []string
	for _, v := range r.Values {
		if !strutil.IsMissing(v) {
			parts = append(parts, strutil.Normalize(v))
		}
	}
	return strings.Join(parts, " ")
}

// TokenSet returns the distinct tokens of the record's text view — the
// shared tokenization every token-level consumer (blocking, the
// retrieval index, the guided triangle search) derives its candidate
// structure from.
func (r *Record) TokenSet() map[string]struct{} {
	return strutil.TokenSet(r.Text())
}

// String renders the record for logs and error messages.
func (r *Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%s]{", r.Schema.Name, r.ID)
	for i, a := range r.Schema.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%q", a, r.Values[i])
	}
	b.WriteByte('}')
	return b.String()
}

// Pair is the unit of ER prediction: a left record from U and a right
// record from V.
type Pair struct {
	Left  *Record `json:"left"`
	Right *Record `json:"right"`
}

// LabeledPair is a pair with its ground-truth match label, used for
// training and evaluation.
type LabeledPair struct {
	Pair
	Match bool
}

// Clone deep-copies the pair.
func (p Pair) Clone() Pair {
	return Pair{Left: p.Left.Clone(), Right: p.Right.Clone()}
}

// Record returns the record on the requested side.
func (p Pair) Record(s Side) *Record {
	if s == Left {
		return p.Left
	}
	return p.Right
}

// WithRecord returns a copy of p with the record on side s replaced.
func (p Pair) WithRecord(s Side, r *Record) Pair {
	if s == Left {
		return Pair{Left: r, Right: p.Right}
	}
	return Pair{Left: p.Left, Right: r}
}

// Value resolves a side-qualified attribute.
func (p Pair) Value(ref AttrRef) string {
	return p.Record(ref.Side).Value(ref.Attr)
}

// WithValue returns a copy of p with the referenced attribute replaced.
func (p Pair) WithValue(ref AttrRef, v string) Pair {
	side := ref.Side
	return p.WithRecord(side, p.Record(side).WithValue(ref.Attr, v))
}

// Key returns a stable identity string for the pair.
func (p Pair) Key() string {
	return p.Left.ID + "|" + p.Right.ID
}

// AttrRefs enumerates the side-qualified attributes of both records, left
// side first, in schema order — the A_U ∪ A_V of the paper.
func (p Pair) AttrRefs() []AttrRef {
	out := make([]AttrRef, 0, p.Left.Schema.Len()+p.Right.Schema.Len())
	for _, a := range p.Left.Schema.Attrs {
		out = append(out, AttrRef{Side: Left, Attr: a})
	}
	for _, a := range p.Right.Schema.Attrs {
		out = append(out, AttrRef{Side: Right, Attr: a})
	}
	return out
}

// AttrRef is a side-qualified attribute reference such as L_Name.
type AttrRef struct {
	Side Side
	Attr string
}

// String renders the reference with the paper's L_/R_ prefixes.
func (a AttrRef) String() string { return a.Side.String() + "_" + a.Attr }

// MarshalText renders the reference as its "L_Name" form, so AttrRef
// works both as a JSON value and as a JSON map key (encoding/json sorts
// text-marshaled keys, keeping documents deterministic).
func (a AttrRef) MarshalText() ([]byte, error) { return []byte(a.String()), nil }

// UnmarshalText parses the "L_Name"/"R_Price" form.
func (a *AttrRef) UnmarshalText(b []byte) error {
	ref, err := ParseAttrRef(string(b))
	if err != nil {
		return err
	}
	*a = ref
	return nil
}

// ParseAttrRef parses "L_Name" / "R_Price" back into an AttrRef.
func ParseAttrRef(s string) (AttrRef, error) {
	switch {
	case strings.HasPrefix(s, "L_"):
		return AttrRef{Side: Left, Attr: s[2:]}, nil
	case strings.HasPrefix(s, "R_"):
		return AttrRef{Side: Right, Attr: s[2:]}, nil
	}
	return AttrRef{}, fmt.Errorf("record: cannot parse attribute reference %q (want L_/R_ prefix)", s)
}

// SortAttrRefs orders references deterministically: left before right,
// then by attribute name.
func SortAttrRefs(refs []AttrRef) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Side != refs[j].Side {
			return refs[i].Side < refs[j].Side
		}
		return refs[i].Attr < refs[j].Attr
	})
}

// Table is a collection of records sharing a schema, with an ID index.
type Table struct {
	Schema  *Schema
	Records []*Record

	byID map[string]*Record
}

// NewTable creates an empty table for the schema.
func NewTable(schema *Schema) *Table {
	return &Table{Schema: schema, byID: make(map[string]*Record)}
}

// Add appends a record, rejecting schema mismatches and duplicate IDs.
func (t *Table) Add(r *Record) error {
	if r.Schema != t.Schema && r.Schema.Name != t.Schema.Name {
		return fmt.Errorf("record: record %q has schema %q, table expects %q", r.ID, r.Schema.Name, t.Schema.Name)
	}
	if _, dup := t.byID[r.ID]; dup {
		return fmt.Errorf("record: duplicate record ID %q in table %q", r.ID, t.Schema.Name)
	}
	t.Records = append(t.Records, r)
	t.byID[r.ID] = r
	return nil
}

// MustAdd is Add that panics on error.
func (t *Table) MustAdd(r *Record) {
	if err := t.Add(r); err != nil {
		panic(err)
	}
}

// Get looks a record up by ID.
func (t *Table) Get(id string) (*Record, bool) {
	r, ok := t.byID[id]
	return r, ok
}

// Len returns the number of records.
func (t *Table) Len() int { return len(t.Records) }

// DistinctValues counts distinct non-missing attribute values across the
// table (the "Values" column of Table 1 in the paper).
func (t *Table) DistinctValues() int {
	set := make(map[string]struct{})
	for _, r := range t.Records {
		for _, v := range r.Values {
			if !strutil.IsMissing(v) {
				set[strutil.Normalize(v)] = struct{}{}
			}
		}
	}
	return len(set)
}

// WriteCSV writes the table with an "id" column followed by the schema
// attributes.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"id"}, t.Schema.Attrs...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("record: writing CSV header: %w", err)
	}
	row := make([]string, 0, len(header))
	for _, r := range t.Records {
		row = row[:0]
		row = append(row, r.ID)
		row = append(row, r.Values...)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("record: writing CSV row for %q: %w", r.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a table written by WriteCSV. The schema is derived from
// the header; name is the schema name to assign.
func ReadCSV(r io.Reader, name string) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("record: reading CSV header: %w", err)
	}
	if len(header) < 2 || header[0] != "id" {
		return nil, fmt.Errorf("record: CSV header must start with \"id\", got %v", header)
	}
	schema, err := NewSchema(name, header[1:]...)
	if err != nil {
		return nil, err
	}
	t := NewTable(schema)
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("record: reading CSV line %d: %w", line, err)
		}
		rec, err := New(row[0], schema, row[1:]...)
		if err != nil {
			return nil, fmt.Errorf("record: CSV line %d: %w", line, err)
		}
		if err := t.Add(rec); err != nil {
			return nil, fmt.Errorf("record: CSV line %d: %w", line, err)
		}
	}
	return t, nil
}

package record

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"certa/internal/strutil"
)

func abtSchema() *Schema { return MustSchema("Abt", "Name", "Description", "Price") }

func sampleRecord() *Record {
	return MustNew("u1", abtSchema(), "sony bravia theater", "sony bravia theater black micro", strutil.NaN)
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema("X"); err == nil {
		t.Error("empty schema should fail")
	}
	if _, err := NewSchema("X", "a", "a"); err == nil {
		t.Error("duplicate attribute should fail")
	}
	if _, err := NewSchema("X", "a", ""); err == nil {
		t.Error("empty attribute name should fail")
	}
	s, err := NewSchema("X", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if s.AttrIndex("b") != 1 || s.AttrIndex("zz") != -1 {
		t.Error("AttrIndex wrong")
	}
	if s.Len() != 2 {
		t.Error("Len wrong")
	}
}

func TestNewRecordValidation(t *testing.T) {
	s := abtSchema()
	if _, err := New("u1", s, "only two", "values"); err == nil {
		t.Error("value count mismatch should fail")
	}
	if _, err := New("u1", nil, "v"); err == nil {
		t.Error("nil schema should fail")
	}
}

func TestRecordValueAndMissing(t *testing.T) {
	r := sampleRecord()
	if got := r.Value("Name"); got != "sony bravia theater" {
		t.Errorf("Value(Name) = %q", got)
	}
	if got := r.Value("Nope"); got != strutil.NaN {
		t.Errorf("Value(unknown) = %q, want NaN", got)
	}
	if !r.Missing("Price") {
		t.Error("Price should be missing")
	}
	if r.Missing("Name") {
		t.Error("Name should not be missing")
	}
}

func TestCloneAndWithValue(t *testing.T) {
	r := sampleRecord()
	c := r.WithValue("Name", "changed")
	if r.Value("Name") == "changed" {
		t.Error("WithValue mutated the original")
	}
	if c.Value("Name") != "changed" {
		t.Error("WithValue did not apply")
	}
	if !r.Equal(r.Clone()) {
		t.Error("Clone should be Equal")
	}
	c2 := r.WithValues(map[string]string{"Name": "x", "Price": "9"})
	if c2.Value("Name") != "x" || c2.Value("Price") != "9" {
		t.Error("WithValues did not apply")
	}
	// Unknown attribute is ignored, not an error.
	c3 := r.WithValue("Ghost", "v")
	if !c3.Equal(r) {
		t.Error("unknown attribute should leave record unchanged")
	}
}

func TestChangedAttrs(t *testing.T) {
	r := sampleRecord()
	c := r.WithValues(map[string]string{"Name": "x", "Price": "9"})
	ch := r.ChangedAttrs(c)
	if len(ch) != 2 || ch[0] != "Name" || ch[1] != "Price" {
		t.Errorf("ChangedAttrs = %v", ch)
	}
	if got := r.ChangedAttrs(r.Clone()); len(got) != 0 {
		t.Errorf("no changes expected, got %v", got)
	}
}

func TestRecordText(t *testing.T) {
	r := sampleRecord()
	text := r.Text()
	if strings.Contains(text, strutil.NaN) {
		t.Error("Text should omit missing values")
	}
	if !strings.Contains(text, "sony bravia theater") {
		t.Errorf("Text = %q", text)
	}
}

func TestPairBasics(t *testing.T) {
	buy := MustSchema("Buy", "Name", "Description", "Price")
	p := Pair{
		Left:  sampleRecord(),
		Right: MustNew("v1", buy, "sony bravia dav-is50", "dvd player", "379.72"),
	}
	if p.Record(Left).ID != "u1" || p.Record(Right).ID != "v1" {
		t.Error("Record(side) wrong")
	}
	if p.Key() != "u1|v1" {
		t.Errorf("Key = %q", p.Key())
	}
	refs := p.AttrRefs()
	if len(refs) != 6 {
		t.Fatalf("AttrRefs len = %d", len(refs))
	}
	if refs[0].String() != "L_Name" || refs[5].String() != "R_Price" {
		t.Errorf("refs = %v", refs)
	}
	if got := p.Value(AttrRef{Right, "Price"}); got != "379.72" {
		t.Errorf("Value = %q", got)
	}
	q := p.WithValue(AttrRef{Left, "Name"}, "new name")
	if p.Left.Value("Name") == "new name" {
		t.Error("WithValue mutated original pair")
	}
	if q.Left.Value("Name") != "new name" {
		t.Error("WithValue did not apply")
	}
}

func TestAttrRefParseRoundtrip(t *testing.T) {
	for _, s := range []string{"L_Name", "R_Description", "L_Beer_Name"} {
		ref, err := ParseAttrRef(s)
		if err != nil {
			t.Fatal(err)
		}
		if ref.String() != s {
			t.Errorf("roundtrip %q -> %q", s, ref.String())
		}
	}
	if _, err := ParseAttrRef("Name"); err == nil {
		t.Error("unprefixed ref should fail")
	}
}

func TestSideOpposite(t *testing.T) {
	if Left.Opposite() != Right || Right.Opposite() != Left {
		t.Error("Opposite wrong")
	}
	if Left.String() != "L" || Right.String() != "R" {
		t.Error("String wrong")
	}
}

func TestSortAttrRefs(t *testing.T) {
	refs := []AttrRef{{Right, "b"}, {Left, "z"}, {Right, "a"}, {Left, "a"}}
	SortAttrRefs(refs)
	want := []string{"L_a", "L_z", "R_a", "R_b"}
	for i, w := range want {
		if refs[i].String() != w {
			t.Errorf("refs[%d] = %v, want %v", i, refs[i], w)
		}
	}
}

func TestTableAddGet(t *testing.T) {
	tab := NewTable(abtSchema())
	r := sampleRecord()
	if err := tab.Add(r); err != nil {
		t.Fatal(err)
	}
	if err := tab.Add(r); err == nil {
		t.Error("duplicate ID should fail")
	}
	other := MustNew("x", MustSchema("Other", "A"), "v")
	if err := tab.Add(other); err == nil {
		t.Error("schema mismatch should fail")
	}
	got, ok := tab.Get("u1")
	if !ok || got.ID != "u1" {
		t.Error("Get failed")
	}
	if _, ok := tab.Get("missing"); ok {
		t.Error("Get(missing) should be false")
	}
	if tab.Len() != 1 {
		t.Error("Len wrong")
	}
}

func TestDistinctValues(t *testing.T) {
	tab := NewTable(abtSchema())
	tab.MustAdd(MustNew("a", tab.Schema, "x", "y", strutil.NaN))
	tab.MustAdd(MustNew("b", tab.Schema, "x", "z", strutil.NaN))
	// Distinct non-missing normalized values: x, y, z.
	if got := tab.DistinctValues(); got != 3 {
		t.Errorf("DistinctValues = %d, want 3", got)
	}
}

func TestCSVRoundtrip(t *testing.T) {
	tab := NewTable(abtSchema())
	tab.MustAdd(sampleRecord())
	tab.MustAdd(MustNew("u2", tab.Schema, "altec lansing", "inmotion portable", "49.99"))
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "Abt")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("roundtrip len = %d", back.Len())
	}
	r, _ := back.Get("u2")
	if r.Value("Price") != "49.99" {
		t.Errorf("roundtrip value = %q", r.Value("Price"))
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("nope,header\n"), "X"); err == nil {
		t.Error("missing id column should fail")
	}
	if _, err := ReadCSV(strings.NewReader(""), "X"); err == nil {
		t.Error("empty input should fail")
	}
	// Duplicate IDs.
	csv := "id,a\n1,x\n1,y\n"
	if _, err := ReadCSV(strings.NewReader(csv), "X"); err == nil {
		t.Error("duplicate IDs should fail")
	}
}

func TestPairCloneIndependence(t *testing.T) {
	p := Pair{Left: sampleRecord(), Right: sampleRecord()}
	c := p.Clone()
	c.Left.Values[0] = "mutated"
	if p.Left.Values[0] == "mutated" {
		t.Error("Clone shares storage with original")
	}
}

func TestWithValueProperty(t *testing.T) {
	// WithValue never affects other attributes and always sets the target.
	r := sampleRecord()
	f := func(v string) bool {
		c := r.WithValue("Description", v)
		return c.Value("Description") == v &&
			c.Value("Name") == r.Value("Name") &&
			c.Value("Price") == r.Value("Price")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecordTokenSet(t *testing.T) {
	r := MustNew("x", MustSchema("S", "a", "b"), "Alpha beta", "beta GAMMA")
	set := r.TokenSet()
	for _, tok := range []string{"alpha", "beta", "gamma"} {
		if _, ok := set[tok]; !ok {
			t.Errorf("TokenSet missing %q: %v", tok, set)
		}
	}
	if len(set) != 3 {
		t.Errorf("TokenSet has %d entries, want 3: %v", len(set), set)
	}
}

func TestMemoReflectsTableAtBuild(t *testing.T) {
	s := MustSchema("S", "a")
	tab := NewTable(s)
	tab.MustAdd(MustNew("1", s, "hello world"))
	tab.MustAdd(MustNew("2", s, "NaN"))
	m := NewMemo(tab)
	if m.Table() != tab {
		t.Error("Memo.Table mismatch")
	}
	if m.Text(0) != "hello world" || m.Text(1) != "" {
		t.Errorf("memo texts = %q, %q", m.Text(0), m.Text(1))
	}
	if len(m.TokenSet(0)) != 2 || len(m.TokenSet(1)) != 0 {
		t.Errorf("memo token sets = %v, %v", m.TokenSet(0), m.TokenSet(1))
	}
}

package scorecache

import (
	"sync"
	"testing"

	"certa/internal/record"
)

// countingModel counts true model invocations, distinguishing batch
// entry-point usage.
type countingModel struct {
	mu      sync.Mutex
	calls   int
	batches int
}

func (m *countingModel) Name() string { return "counting" }

func (m *countingModel) Score(p record.Pair) float64 {
	m.mu.Lock()
	m.calls++
	m.mu.Unlock()
	return float64(len(p.Left.Value("a"))+len(p.Right.Value("a"))) / 100
}

func (m *countingModel) ScoreBatch(pairs []record.Pair) []float64 {
	m.mu.Lock()
	m.batches++
	m.mu.Unlock()
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		out[i] = m.Score(p)
	}
	return out
}

var testSchema = record.MustSchema("S", "a", "b")

func pairOf(a, b string) record.Pair {
	l := record.MustNew("l", testSchema, a, b)
	r := record.MustNew("r", testSchema, a, b)
	return record.Pair{Left: l, Right: r}
}

func TestIdenticalPairsScoredOnce(t *testing.T) {
	m := &countingModel{}
	s := New(m, Options{})
	p := pairOf("x", "y")
	first := s.Score(p)
	for i := 0; i < 9; i++ {
		// Same content, different record IDs: still one model call.
		clone := record.Pair{
			Left:  record.MustNew("other", testSchema, "x", "y"),
			Right: record.MustNew("other2", testSchema, "x", "y"),
		}
		if got := s.Score(clone); got != first {
			t.Fatalf("cached score %v != %v", got, first)
		}
	}
	if m.calls != 1 {
		t.Fatalf("model invoked %d times for identical content, want 1", m.calls)
	}
	st := s.Stats()
	if st.Lookups != 10 || st.Hits != 9 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 10 lookups / 9 hits / 1 miss", st)
	}
}

func TestBatchDeduplicatesWithinBatch(t *testing.T) {
	m := &countingModel{}
	s := New(m, Options{})
	batch := []record.Pair{
		pairOf("x", "y"), pairOf("u", "v"), pairOf("x", "y"), pairOf("u", "v"), pairOf("x", "y"),
	}
	scores := s.ScoreBatch(batch)
	if m.calls != 2 {
		t.Fatalf("model invoked %d times, want 2 unique", m.calls)
	}
	if scores[0] != scores[2] || scores[0] != scores[4] || scores[1] != scores[3] {
		t.Fatal("duplicate slots must receive the shared score")
	}
	if st := s.Stats(); st.Batches != 1 {
		t.Fatalf("batches = %d, want 1 logical batch", st.Batches)
	}
}

func TestDisabledCacheCallsModelEveryTime(t *testing.T) {
	m := &countingModel{}
	s := New(m, Options{Disabled: true})
	p := pairOf("x", "y")
	s.ScoreBatch([]record.Pair{p, p, p})
	s.Score(p)
	if m.calls != 4 {
		t.Fatalf("disabled cache made %d model calls, want 4", m.calls)
	}
	if st := s.Stats(); st.Hits != 0 || st.Misses != 4 {
		t.Fatalf("stats = %+v, want 0 hits / 4 misses", st)
	}
}

func TestParallelShardsMatchSequential(t *testing.T) {
	mkBatch := func() []record.Pair {
		out := make([]record.Pair, 0, 64)
		vals := []string{"a", "bb", "ccc", "dddd", "eeeee", "ffffff", "g", "hh"}
		for _, a := range vals {
			for _, b := range vals {
				out = append(out, pairOf(a, b))
			}
		}
		return out
	}
	seq := New(&countingModel{}, Options{Parallelism: 1}).ScoreBatch(mkBatch())
	par := New(&countingModel{}, Options{Parallelism: 8}).ScoreBatch(mkBatch())
	if len(seq) != len(par) {
		t.Fatal("length mismatch")
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("slot %d differs: %v vs %v", i, seq[i], par[i])
		}
	}
}

func TestStatsDeterministicAcrossParallelism(t *testing.T) {
	batch := []record.Pair{
		pairOf("x", "y"), pairOf("x", "y"), pairOf("u", "v"), pairOf("w", "z"),
	}
	a := New(&countingModel{}, Options{Parallelism: 1})
	a.ScoreBatch(batch)
	b := New(&countingModel{}, Options{Parallelism: 8})
	b.ScoreBatch(batch)
	if a.Stats() != b.Stats() {
		t.Fatalf("stats differ across parallelism: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestKeyDistinguishesContent(t *testing.T) {
	// Value boundaries must not be ambiguous: ("ab","c") vs ("a","bc").
	p1 := record.Pair{
		Left:  record.MustNew("l", testSchema, "ab", "c"),
		Right: record.MustNew("r", testSchema, "", ""),
	}
	p2 := record.Pair{
		Left:  record.MustNew("l", testSchema, "a", "bc"),
		Right: record.MustNew("r", testSchema, "", ""),
	}
	if Key(p1) == Key(p2) {
		t.Fatal("keys collide for different value splits")
	}
	if Key(p1) != Key(p1.Clone()) {
		t.Fatal("key must be content-stable")
	}
}

func TestHitRate(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty stats hit rate should be 0")
	}
	if got := (Stats{Lookups: 4, Hits: 3}).HitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", got)
	}
}

// lyingModel violates the BatchModel contract by dropping a score.
type lyingModel struct{ countingModel }

func (m *lyingModel) ScoreBatch(pairs []record.Pair) []float64 {
	return make([]float64, len(pairs)-1)
}

func TestBatchLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short batch result")
		}
	}()
	s := New(&lyingModel{}, Options{})
	s.ScoreBatch([]record.Pair{pairOf("x", "y"), pairOf("u", "v")})
}

func TestConcurrentUse(t *testing.T) {
	m := &countingModel{}
	s := New(m, Options{Parallelism: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Score(pairOf("x", "y"))
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Lookups != 400 {
		t.Fatalf("lookups = %d, want 400", st.Lookups)
	}
}

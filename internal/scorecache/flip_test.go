package scorecache

import (
	"context"
	"strings"
	"testing"

	"certa/internal/record"
)

// flipPairs builds pairs straddling the decision threshold: countingModel
// scores 2*len(a)/100, so a long "a" value predicts the positive class
// and a short one the negative class.
func flipPairs() []record.Pair {
	long := strings.Repeat("x", 30) // score 0.6 -> class true
	return []record.Pair{
		pairOf(long, "b1"),
		pairOf("x", "b2"), // score 0.02 -> class false
		pairOf(long+"y", "b3"),
		pairOf("xy", "b4"),
	}
}

func wantFlips(s *Service, pairs []record.Pair, y bool) []bool {
	scores := s.Underlying().ScoreBatch(pairs)
	out := make([]bool, len(scores))
	for i, v := range scores {
		out[i] = (v > 0.5) != y
	}
	return out
}

// TestFlipMemoAnswersAcrossViews is the memo's core contract: once one
// view settles a pair content's class, a second view's flip query is
// answered from the memo — no score-store lookup, no model call — while
// the second view's own Stats still read exactly like a private cache's.
func TestFlipMemoAnswersAcrossViews(t *testing.T) {
	m := &countingModel{}
	svc := NewService(m, ServiceOptions{})
	pairs := flipPairs()
	y := false
	want := wantFlips(svc, pairs, y)

	a := svc.NewScorer(Options{})
	gotA, err := a.ScoreFlipsContext(context.Background(), pairs, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if gotA[i] != want[i] {
			t.Fatalf("view A flip %d = %v, want %v", i, gotA[i], want[i])
		}
	}
	if st := svc.Stats(); st.FlipLookups != len(pairs) || st.FlipHits != 0 {
		t.Fatalf("first view: flip stats %d/%d, want %d lookups, 0 hits",
			st.FlipHits, st.FlipLookups, len(pairs))
	}
	afterA := svc.Stats()
	callsAfterA := m.calls

	b := svc.NewScorer(Options{})
	gotB, err := b.ScoreFlipsContext(context.Background(), pairs, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if gotB[i] != want[i] {
			t.Fatalf("view B flip %d = %v, want %v", i, gotB[i], want[i])
		}
	}
	if m.calls != callsAfterA {
		t.Fatalf("memo-answered view reached the model: %d calls, want %d", m.calls, callsAfterA)
	}
	st := svc.Stats()
	if st.FlipHits != len(pairs) {
		t.Fatalf("second view: %d flip hits, want %d", st.FlipHits, len(pairs))
	}
	if st.Lookups != afterA.Lookups || st.Misses != afterA.Misses {
		t.Fatalf("memo-answered view touched the score store: lookups %d->%d, misses %d->%d",
			afterA.Lookups, st.Lookups, afterA.Misses, st.Misses)
	}
	// Private-equivalent accounting: view B requested unique evaluations
	// it had never seen, so its Stats must read like a private cache's
	// regardless of who answered.
	vb := b.Stats()
	if vb.Lookups != len(pairs) || vb.Hits != 0 || vb.Misses != len(pairs) || vb.Batches != 1 {
		t.Fatalf("view B stats = %+v, want %d lookups / 0 hits / %d misses / 1 batch",
			vb, len(pairs), len(pairs))
	}
}

// TestFlipMemoizedKeyLaterScored covers the sentinel path: a view that
// learned a key's class from the memo (score never fetched) must treat a
// later score request as a view hit and silently fetch the score from
// the shared store without a new model call.
func TestFlipMemoizedKeyLaterScored(t *testing.T) {
	m := &countingModel{}
	svc := NewService(m, ServiceOptions{})
	pairs := flipPairs()
	wantScores := svc.Underlying().ScoreBatch(pairs)

	a := svc.NewScorer(Options{})
	if _, err := a.ScoreFlipsContext(context.Background(), pairs, false); err != nil {
		t.Fatal(err)
	}
	b := svc.NewScorer(Options{})
	if _, err := b.ScoreFlipsContext(context.Background(), pairs, true); err != nil {
		t.Fatal(err)
	}
	callsBefore := m.calls
	preB := b.Stats()

	scores, err := b.ScoreBatchContext(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantScores {
		if scores[i] != wantScores[i] {
			t.Fatalf("memoized key %d rescored to %v, want %v", i, scores[i], wantScores[i])
		}
	}
	if m.calls != callsBefore {
		t.Fatalf("scoring memoized keys reached the model: %d calls, want %d", m.calls, callsBefore)
	}
	vb := b.Stats()
	if vb.Hits != preB.Hits+len(pairs) {
		t.Fatalf("memoized keys must resolve as view hits: hits %d -> %d, want +%d",
			preB.Hits, vb.Hits, len(pairs))
	}
	if vb.Misses != preB.Misses || vb.Batches != preB.Batches {
		t.Fatalf("silent fetch charged the view: misses %d->%d, batches %d->%d",
			preB.Misses, vb.Misses, preB.Batches, vb.Batches)
	}

	// Once fetched, the keys live in the view's score map; a repeat batch
	// is answered locally without touching the shared store at all.
	svcBefore := svc.Stats()
	if _, err := b.ScoreBatchContext(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Lookups != svcBefore.Lookups {
		t.Fatalf("repeat batch leaked to the store: %d -> %d lookups", svcBefore.Lookups, st.Lookups)
	}
}

// TestFlipMemoDisabled pins the ablation path: with DisableFlipMemo the
// oracle call degrades to score-plus-threshold and records no flip
// statistics, and answers are unchanged.
func TestFlipMemoDisabled(t *testing.T) {
	m := &countingModel{}
	svc := NewService(m, ServiceOptions{DisableFlipMemo: true})
	pairs := flipPairs()
	for _, y := range []bool{false, true} {
		want := wantFlips(svc, pairs, y)
		s := svc.NewScorer(Options{})
		got, err := s.ScoreFlipsContext(context.Background(), pairs, y)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("y=%v: flip %d = %v, want %v", y, i, got[i], want[i])
			}
		}
	}
	if st := svc.Stats(); st.FlipLookups != 0 || st.FlipHits != 0 {
		t.Fatalf("disabled memo recorded flip stats: %+v", st)
	}
}

// TestFlipBatchDuplicates checks in-batch duplicate handling on the flip
// path mirrors the score path: one unique miss, duplicates as view hits.
func TestFlipBatchDuplicates(t *testing.T) {
	m := &countingModel{}
	svc := NewService(m, ServiceOptions{})
	s := svc.NewScorer(Options{})
	long := strings.Repeat("z", 40)
	batch := []record.Pair{pairOf(long, "b"), pairOf(long, "b"), pairOf(long, "b")}
	got, err := s.ScoreFlipsContext(context.Background(), batch, true)
	if err != nil {
		t.Fatal(err)
	}
	// Score 0.8 -> class true, y=true -> no flip.
	for i, f := range got {
		if f {
			t.Fatalf("flip %d = true for matching class", i)
		}
	}
	if m.calls != 1 {
		t.Fatalf("model invoked %d times for one unique content, want 1", m.calls)
	}
	st := s.Stats()
	if st.Lookups != 3 || st.Hits != 2 || st.Misses != 1 || st.Batches != 1 {
		t.Fatalf("stats = %+v, want 3 lookups / 2 hits / 1 miss / 1 batch", st)
	}
}

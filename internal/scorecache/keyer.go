package scorecache

import (
	"strconv"
	"strings"

	"certa/internal/record"
)

// PerturbKeyer assembles the canonical cache Key of a mask-perturbed
// pair without materializing the perturbed record. CERTA's lattice
// oracle asks thousands of subset questions per explanation, and before
// this existed every question paid for a full record clone plus a map of
// copied values just to discover the answer was already memoized.
//
// The keyer precomputes, once per (pair, side, support record):
//
//   - the serialized bytes before and after the perturbed record's value
//     fragments (the other side's whole record and the schema header),
//   - two ";len:value" fragments per attribute — the free record's value
//     and the support record's value.
//
// Key(mask) then concatenates head + the mask-selected fragment per
// attribute + tail, byte-for-byte identical to
// Key(perturb(pair, side, support, attrs, mask)) — the property test
// TestPerturbKeyerMatchesMaterializedKey gates this. The mask is a plain
// uint32 in lattice bit order (bit i selects the support's value for
// Schema.Attrs[i]), kept untyped here so the cache layer stays
// independent of the lattice package.
type PerturbKeyer struct {
	head  string
	tail  string
	frags [][2]string // per attr: [0] free value fragment, [1] support value fragment
}

// NewPerturbKeyer prepares mask→key assembly for perturbations of the
// given side's record with values copied from support w. The free record
// on that side must be non-nil (a nil fixed record is tolerated, exactly
// like Key).
func NewPerturbKeyer(p record.Pair, side record.Side, w *record.Record) *PerturbKeyer {
	free := p.Record(side)
	var head strings.Builder
	if side == record.Right {
		writeRecord(&head, p.Left)
		head.WriteByte('|')
	}
	head.WriteString(strconv.Itoa(len(free.Schema.Name)))
	head.WriteByte('#')
	head.WriteString(free.Schema.Name)

	var tail strings.Builder
	if side == record.Left {
		tail.WriteByte('|')
		writeRecord(&tail, p.Right)
	}

	frags := make([][2]string, len(free.Schema.Attrs))
	for i, a := range free.Schema.Attrs {
		fv := free.Values[i]
		wv := w.Value(a)
		frags[i][0] = ";" + strconv.Itoa(len(fv)) + ":" + fv
		frags[i][1] = ";" + strconv.Itoa(len(wv)) + ":" + wv
	}
	return &PerturbKeyer{head: head.String(), tail: tail.String(), frags: frags}
}

// Key assembles the canonical key for the subset mask: bit i selects the
// support record's value for attribute i, a zero bit keeps the free
// record's own value.
func (k *PerturbKeyer) Key(mask uint32) string {
	n := len(k.head) + len(k.tail)
	for i := range k.frags {
		n += len(k.frags[i][(mask>>uint(i))&1])
	}
	var b strings.Builder
	b.Grow(n)
	b.WriteString(k.head)
	for i := range k.frags {
		b.WriteString(k.frags[i][(mask>>uint(i))&1])
	}
	b.WriteString(k.tail)
	return b.String()
}

package scorecache

import (
	"encoding/binary"
	"hash/fnv"
	"testing"

	"certa/internal/record"
)

// TestShardHashPinned pins ShardHash to literal values. The hash is a
// wire contract (router placement and worker-side snapshot filtering
// must agree across processes and versions), so these constants may
// only change together with a deliberate, ring-wide migration — if
// this test fails, the placement of every key in every deployed ring
// just moved.
func TestShardHashPinned(t *testing.T) {
	cases := []struct {
		key  string
		want uint64
	}{
		{"", 0xcbf29ce484222325}, // the FNV-1a 64-bit offset basis
		{"a", 0xaf63dc4c8601ec8c},
		{"shard", 0x6e308f493acb8a0b},
		// A key in the canonical pair-content shape Key produces.
		{"1#S;3:foo|1#S;3:bar", 0x9025d10f66b08b5e},
		// Virtual-node labels as the ring hashes them (name + "#" + index).
		{"w0#0", 0xf736edf71419f7a9},
		{"w3#63", 0x79b344cec6ff07af},
	}
	for _, c := range cases {
		if got := ShardHash(c.key); got != c.want {
			t.Errorf("ShardHash(%q) = %#016x, want %#016x", c.key, got, c.want)
		}
	}
}

// TestShardHashMatchesReferenceFNV cross-checks the inlined constants
// against the standard library's FNV-1a implementation, so a typo in
// the pinned table above cannot hide a divergence from the reference
// function.
func TestShardHashMatchesReferenceFNV(t *testing.T) {
	keys := []string{"", "x", "certa", "1#S;1:a;1:b|1#S;1:a;1:c"}
	p := record.Pair{
		Left:  record.MustNew("l0", record.MustSchema("S", "name"), "alpha beta"),
		Right: record.MustNew("r0", record.MustSchema("S", "name"), "alpha gamma"),
	}
	keys = append(keys, Key(p))
	for _, k := range keys {
		h := fnv.New64a()
		h.Write([]byte(k))
		if got, want := ShardHash(k), h.Sum64(); got != want {
			t.Errorf("ShardHash(%q) = %#016x, reference FNV-1a = %#016x", k, got, want)
		}
	}
}

// TestShardHashSpreads is a coarse distribution check: hashing many
// distinct keys through a small modulus should not collapse onto a few
// residues (which would defeat ring balance however many virtual nodes
// members get).
func TestShardHashSpreads(t *testing.T) {
	const buckets = 8
	counts := make([]int, buckets)
	var b [8]byte
	for i := 0; i < 4096; i++ {
		binary.LittleEndian.PutUint64(b[:], uint64(i)*2654435761)
		counts[ShardHash(string(b[:]))%buckets]++
	}
	for i, c := range counts {
		if c < 4096/buckets/2 || c > 4096/buckets*2 {
			t.Fatalf("bucket %d holds %d of 4096 keys (want roughly %d)", i, c, 4096/buckets)
		}
	}
}

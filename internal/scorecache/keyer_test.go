package scorecache

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"certa/internal/record"
)

// perturbMirror is the reference implementation the keyer must match:
// materialize the perturbed record exactly like core's perturb (copy the
// mask-selected attribute values from the support record into the free
// record) and take the canonical Key of the resulting pair.
func perturbMirror(p record.Pair, side record.Side, w *record.Record, mask uint32) record.Pair {
	free := p.Record(side)
	vals := make(map[string]string)
	for i, a := range free.Schema.Attrs {
		if (mask>>uint(i))&1 == 1 {
			vals[a] = w.Value(a)
		}
	}
	return p.WithRecord(side, free.WithValues(vals))
}

// TestPerturbKeyerMatchesMaterializedKey is the byte-identity gate
// promised by PerturbKeyer's doc comment: for random schemas, values
// (empty, unicode, and delimiter-colliding strings included), sides,
// support schemas with missing attributes and every mask, Key(mask)
// equals Key(perturb(...)) of the materialized record.
func TestPerturbKeyerMatchesMaterializedKey(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := []string{
		"", "x", "value with spaces", "é", "日本語",
		";", ":", "|", "<nil>", "3#S", ";1:x", strings.Repeat("z", 50),
	}
	pick := func() string { return alphabet[rng.Intn(len(alphabet))] }

	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		attrs := make([]string, n)
		for i := range attrs {
			attrs[i] = string(rune('a' + i))
		}
		schema, err := record.NewSchema("S", attrs...)
		if err != nil {
			t.Fatal(err)
		}

		// The support record's schema may miss some of the free record's
		// attributes; Value then reports the NaN token, which the keyer
		// must frame exactly like any other value.
		var wAttrs []string
		for _, a := range attrs {
			if rng.Intn(4) > 0 {
				wAttrs = append(wAttrs, a)
			}
		}
		if len(wAttrs) == 0 {
			wAttrs = attrs[:1]
		}
		wSchema, err := record.NewSchema("W", wAttrs...)
		if err != nil {
			t.Fatal(err)
		}

		vals := func(k int) []string {
			out := make([]string, k)
			for i := range out {
				out[i] = pick()
			}
			return out
		}
		p := record.Pair{
			Left:  record.MustNew("L", schema, vals(n)...),
			Right: record.MustNew("R", schema, vals(n)...),
		}
		side := record.Left
		if rng.Intn(2) == 1 {
			side = record.Right
		}
		// A nil fixed record must be tolerated exactly like Key.
		if rng.Intn(5) == 0 {
			if side == record.Right {
				p.Left = nil
			} else {
				p.Right = nil
			}
		}
		w := record.MustNew("w", wSchema, vals(len(wAttrs))...)

		keyer := NewPerturbKeyer(p, side, w)
		for mask := uint32(0); mask < 1<<uint(n); mask++ {
			got := keyer.Key(mask)
			want := Key(perturbMirror(p, side, w, mask))
			if got != want {
				t.Fatalf("trial %d side %v mask %b:\nkeyer %q\nwant  %q", trial, side, mask, got, want)
			}
		}
	}
}

// TestFlipKeyedSkipsMaterialization pins the streaming win: once a pair
// content's class is memo-resident, a keyed flip query must be answered
// without ever materializing the pair — the materialize callback is the
// proof, wired to fail the test if invoked.
func TestFlipKeyedSkipsMaterialization(t *testing.T) {
	m := &countingModel{}
	svc := NewService(m, ServiceOptions{})
	pairs := flipPairs()
	y := false
	want := wantFlips(svc, pairs, y)
	keys := make([]string, len(pairs))
	for i, p := range pairs {
		keys[i] = Key(p)
	}

	a := svc.NewScorer(Options{})
	if _, err := a.ScoreFlipsContext(context.Background(), pairs, y); err != nil {
		t.Fatal(err)
	}
	callsAfterA := m.calls

	b := svc.NewScorer(Options{})
	got, err := b.ScoreFlipsKeyedContext(context.Background(), keys, y, func(i int) record.Pair {
		t.Fatalf("memo-resident key %d materialized", i)
		return record.Pair{}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keyed flip %d = %v, want %v", i, got[i], want[i])
		}
	}
	if m.calls != callsAfterA {
		t.Fatalf("memo-answered keyed query reached the model: %d calls, want %d", m.calls, callsAfterA)
	}
	// The view's own accounting still reads like a private cache's.
	vb := b.Stats()
	if vb.Lookups != len(pairs) || vb.Hits != 0 || vb.Misses != len(pairs) || vb.Batches != 1 {
		t.Fatalf("view stats = %+v, want %d lookups / 0 hits / %d misses / 1 batch",
			vb, len(pairs), len(pairs))
	}
}

// TestFlipMemoPopulatedByScoring checks that plain score traffic seeds
// the flip memo: every freshly scored key's class is published, so a
// later flip query from any view is a memo hit with no new store lookup.
func TestFlipMemoPopulatedByScoring(t *testing.T) {
	m := &countingModel{}
	svc := NewService(m, ServiceOptions{})
	pairs := flipPairs()
	want := wantFlips(svc, pairs, true)

	a := svc.NewScorer(Options{})
	if _, err := a.ScoreBatchContext(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	afterScore := svc.Stats()
	if afterScore.FlipLookups != 0 {
		t.Fatalf("plain scoring charged flip lookups: %+v", afterScore)
	}

	b := svc.NewScorer(Options{})
	got, err := b.ScoreFlipsContext(context.Background(), pairs, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flip %d = %v, want %v", i, got[i], want[i])
		}
	}
	st := svc.Stats()
	if st.FlipHits != len(pairs) {
		t.Fatalf("scored keys not memo-resident: %d flip hits, want %d", st.FlipHits, len(pairs))
	}
	if st.Lookups != afterScore.Lookups || st.Misses != afterScore.Misses {
		t.Fatalf("memo-answered view touched the score store: lookups %d->%d, misses %d->%d",
			afterScore.Lookups, st.Lookups, afterScore.Misses, st.Misses)
	}
}

// TestFlipKeyedMaterializesOnlyMisses exercises the mixed case: a batch
// holding memo-resident keys, in-batch duplicates and true misses must
// materialize exactly the unique misses.
func TestFlipKeyedMaterializesOnlyMisses(t *testing.T) {
	m := &countingModel{}
	svc := NewService(m, ServiceOptions{})
	long := strings.Repeat("x", 30)
	known := pairOf(long, "warm")
	miss := pairOf("x", "cold")

	warm := svc.NewScorer(Options{})
	if _, err := warm.ScoreBatchContext(context.Background(), []record.Pair{known}); err != nil {
		t.Fatal(err)
	}

	batch := []record.Pair{known, miss, miss}
	keys := make([]string, len(batch))
	for i, p := range batch {
		keys[i] = Key(p)
	}
	materialized := make(map[int]int)
	s := svc.NewScorer(Options{})
	got, err := s.ScoreFlipsKeyedContext(context.Background(), keys, false, func(i int) record.Pair {
		materialized[i]++
		return batch[i]
	})
	if err != nil {
		t.Fatal(err)
	}
	want := wantFlips(svc, batch, false)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flip %d = %v, want %v", i, got[i], want[i])
		}
	}
	if len(materialized) != 1 || materialized[1] != 1 {
		t.Fatalf("materialized %v, want exactly index 1 once", materialized)
	}
	vs := s.Stats()
	if vs.Lookups != 3 || vs.Hits != 1 || vs.Misses != 2 || vs.Batches != 1 {
		t.Fatalf("view stats = %+v, want 3 lookups / 1 hit / 2 misses / 1 batch", vs)
	}
}

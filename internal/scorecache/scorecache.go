// Package scorecache provides the memoizing, batching scoring layer
// wrapped around a black-box ER model. CERTA's cost is dominated by
// model calls, and the perturbations it scores repeat heavily: triangles
// that share support records (or supports that agree on the copied
// values) generate identical perturbed pairs, the counterfactual
// materialization re-scores pairs the lattice exploration already asked
// about, and — across explanations — pairs that share a pivot record
// re-score the very same support candidates.
//
// The layer is split in two:
//
//   - Service is the shared, concurrency-safe store: one sharded score
//     cache (striped locks keyed by Key) with in-flight deduplication,
//     meant to live for a whole ExplainBatch or harness run. Every
//     distinct pair content is scored exactly once per run, and two
//     concurrent explanations that miss on the same content trigger
//     exactly one model call.
//   - Scorer is a per-explanation view over a Service. Its statistics
//     are computed against the view's own key set, so an explanation's
//     Diagnostics are exactly what a private cache would have reported —
//     deterministic at any parallelism and independent of what other
//     explanations already cached — while the actual scoring is
//     deduplicated globally.
//
// Unique misses are pushed through the model's batch entry point
// (explain.BatchModel) in parallel shards.
//
// Both layers are cancellation-aware (explain.ContextModel): waits on
// another explanation's in-flight computation return ctx.Err() as soon
// as the caller's context is cancelled, and a cancelled evaluation never
// installs a partial batch into the shared store — surviving waiters
// re-claim the keys under their own contexts, so one caller's deadline
// cannot poison results for everyone else.
package scorecache

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"sync"

	"certa/internal/explain"
	"certa/internal/record"
	"certa/internal/telemetry"
)

// Options tunes a Scorer view.
type Options struct {
	// Parallelism bounds the worker goroutines that evaluate one batch's
	// cache misses (default 1). Results are index-aligned and therefore
	// identical at any setting.
	Parallelism int
	// Disabled turns memoization off: every lookup reaches the model,
	// bypassing both the view and the shared store. Batching still
	// applies. Used by the core ablation that measures the cache against
	// the seed scoring path.
	Disabled bool
}

// Stats reports the work one Scorer view performed. The counters are
// view-local: Hits and Misses are computed against the keys this view
// has seen, exactly as a private cache would report them, so they are
// deterministic even when the underlying store is shared.
type Stats struct {
	// Lookups counts score requests served (batch elements included).
	Lookups int
	// Hits counts requests answered from the view's key set, including
	// duplicates resolved within a single batch.
	Hits int
	// Misses counts unique evaluations the view requested — the model
	// calls a private cache would have made. When the view layers over a
	// shared Service, some of them are answered by the store without
	// reaching the model; ServiceStats counts the true invocations.
	Misses int
	// Batches counts logical batch evaluations forwarded to the store
	// (independent of how many parallel shards executed them).
	Batches int
}

// HitRate returns Hits/Lookups, or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Scorer is a per-explanation memoizing view over a shared Service. It
// implements explain.Model and explain.BatchModel and is safe for
// concurrent use, though the intended pattern is one Scorer per
// explanation so cache statistics stay deterministic.
type Scorer struct {
	svc  *Service
	opts Options

	mu    sync.Mutex
	local map[string]float64
	// memoized holds keys whose flip outcome was answered by the shared
	// flip memo (predicted class known, score never fetched). The view
	// counts them as seen — a private cache would hold their scores — so
	// a later score request for one is a view hit whose score is fetched
	// from the shared store without recounting the work.
	memoized map[string]bool
	stats    Stats
}

// New wraps a model in a private scoring view: a fresh single-view
// Service plus the Scorer over it. The model's batch entry point is used
// when it has one; plain models fall back to per-pair Score calls.
func New(m explain.Model, opts Options) *Scorer {
	if opts.Parallelism <= 0 {
		opts.Parallelism = 1
	}
	// A single-view store has no cross-view contention; one stripe
	// avoids allocating 32 maps per explanation.
	svc := NewService(m, ServiceOptions{Parallelism: opts.Parallelism, Shards: 1})
	return svc.NewScorer(opts)
}

// Name implements explain.Model.
func (s *Scorer) Name() string { return s.svc.Name() }

// Underlying returns the wrapped model, bypassing the cache and its
// statistics — for instrumentation queries that must not count as
// algorithm cost.
func (s *Scorer) Underlying() explain.BatchModel { return s.svc.Underlying() }

// Service returns the shared store this view scores through.
func (s *Scorer) Service() *Service { return s.svc }

// Stats returns a snapshot of the view's counters.
func (s *Scorer) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Score implements explain.Model through the cache.
func (s *Scorer) Score(p record.Pair) float64 {
	return s.ScoreBatch([]record.Pair{p})[0]
}

// ScoreBatch implements explain.BatchModel: duplicates inside the batch
// and pairs seen by earlier calls are answered from the view, and only
// the remaining unique pairs are forwarded to the shared store — in one
// logical batch, answered from the store when another explanation
// already paid for them and scored by the model otherwise.
//
// The error-less BatchModel surface cannot report a model failure: a
// native explain.ContextModel that errors under this uncancellable
// context panics (see the ContextModel contract — drive fallible models
// through ScoreBatchContext instead).
func (s *Scorer) ScoreBatch(pairs []record.Pair) []float64 {
	out, err := s.ScoreBatchContext(context.Background(), pairs)
	if err != nil {
		// Unreachable for plain and batch models.
		panic(fmt.Sprintf("scorecache: model %q failed outside cancellation: %v", s.Name(), err))
	}
	return out
}

// ScoreBatchContext implements explain.ContextModel: ScoreBatch under a
// caller context. Cancellation aborts store waits and model calls with
// ctx.Err(); the view's counters still record the batch's lookups and
// misses (they were requested), but no score from an aborted batch is
// installed in the view or the shared store.
func (s *Scorer) ScoreBatchContext(ctx context.Context, pairs []record.Pair) ([]float64, error) {
	out := make([]float64, len(pairs))
	if len(pairs) == 0 {
		return out, ctx.Err()
	}

	keys := make([]string, len(pairs))
	for i, p := range pairs {
		keys[i] = Key(p)
	}

	// Resolve view hits and collect unique misses in first-occurrence
	// order. Keys the flip memo answered earlier (sentinel) also need a
	// fetch — the view never saw their scores — but count as view hits,
	// not misses: a private cache would be answering from its own store.
	type miss struct {
		key      string
		pair     record.Pair
		sentinel bool
	}
	var misses []miss
	missAt := make(map[string]int) // key -> index into misses
	pending := make([][]int, 0)    // miss index -> output slots
	counted := 0                   // misses charged to the view (non-sentinel)

	s.mu.Lock()
	s.stats.Lookups += len(pairs)
	for i, k := range keys {
		if !s.opts.Disabled {
			if v, ok := s.local[k]; ok {
				out[i] = v
				s.stats.Hits++
				continue
			}
			if mi, ok := missAt[k]; ok {
				// Duplicate within this batch: scored once, fanned out.
				pending[mi] = append(pending[mi], i)
				s.stats.Hits++
				continue
			}
			if _, ok := s.memoized[k]; ok {
				s.stats.Hits++
				missAt[k] = len(misses)
				misses = append(misses, miss{key: k, pair: pairs[i], sentinel: true})
				pending = append(pending, []int{i})
				continue
			}
		}
		missAt[k] = len(misses)
		misses = append(misses, miss{key: k, pair: pairs[i]})
		pending = append(pending, []int{i})
		counted++
	}
	if counted > 0 {
		s.stats.Misses += counted
		s.stats.Batches++
	}
	s.mu.Unlock()

	if len(misses) == 0 {
		return out, nil
	}

	var scores []float64
	var err error
	if s.opts.Disabled {
		missPairs := make([]record.Pair, len(misses))
		for i, m := range misses {
			missPairs[i] = m.pair
		}
		scores, err = s.svc.direct(ctx, missPairs, s.opts.Parallelism)
	} else {
		missKeys := make([]string, len(misses))
		missPairs := make([]record.Pair, len(misses))
		for i, m := range misses {
			missKeys[i] = m.key
			missPairs[i] = m.pair
		}
		scores, err = s.svc.fetch(ctx, missKeys, missPairs)
	}
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	for mi, m := range misses {
		if !s.opts.Disabled {
			s.local[m.key] = scores[mi]
			if m.sentinel {
				delete(s.memoized, m.key)
			}
		}
		for _, slot := range pending[mi] {
			out[slot] = scores[mi]
		}
	}
	s.mu.Unlock()
	return out, nil
}

// ScoreFlipsContext answers the lattice oracle's real question — does
// this perturbed pair's predicted class differ from y? — through the
// shared cross-explanation flip memo. It is ScoreFlipsKeyedContext with
// the keys derived from the materialized pairs; callers that can compute
// keys without building the pairs (the lattice oracle, via PerturbKeyer)
// should use the keyed entry point directly so memo- and view-resident
// questions skip pair materialization entirely.
func (s *Scorer) ScoreFlipsContext(ctx context.Context, pairs []record.Pair, y bool) ([]bool, error) {
	if s.opts.Disabled || !s.svc.flipEnabled() {
		return s.flipsViaScores(ctx, pairs, y)
	}
	keys := make([]string, len(pairs))
	for i, p := range pairs {
		keys[i] = Key(p)
	}
	return s.ScoreFlipsKeyedContext(ctx, keys, y, func(i int) record.Pair { return pairs[i] })
}

// flipsViaScores is the memo-less fallback: score everything, threshold.
func (s *Scorer) flipsViaScores(ctx context.Context, pairs []record.Pair, y bool) ([]bool, error) {
	scores, err := s.ScoreBatchContext(ctx, pairs)
	if err != nil {
		return nil, err
	}
	flips := make([]bool, len(scores))
	for i, v := range scores {
		flips[i] = (v > 0.5) != y
	}
	return flips, nil
}

// ScoreFlipsKeyedContext is the streaming form of ScoreFlipsContext: the
// caller supplies canonical keys (see Key and PerturbKeyer) up front and
// a materialize callback invoked only for the questions that truly need
// a record.Pair — the ones no memo layer can answer. keys[i] must equal
// Key(materialize(i)); materialize may be called at most once per index.
//
// Resolution order per question: the view classifies every key against
// its private key set exactly as ScoreBatchContext would — local scores,
// previously memo-answered keys and in-batch duplicates are view hits,
// unique unseen keys are view misses — and only the misses are put to
// the shared flip memo (one FlipLookup each; a hit means some other
// explanation already scored this exact pair content and its class
// answers the question with no score fetch, no model call and no pair
// materialization). The two layers never disagree — a predicted class is
// a pure function of pair content — so Stats, and therefore Diagnostics
// and the anytime budgets they feed, are bit-identical to the unkeyed
// path and independent of what the memo happens to hold. Only the view
// misses the memo cannot answer are materialized and fetched through the
// shared store.
func (s *Scorer) ScoreFlipsKeyedContext(ctx context.Context, keys []string, y bool, materialize func(i int) record.Pair) ([]bool, error) {
	if s.opts.Disabled || !s.svc.flipEnabled() {
		pairs := make([]record.Pair, len(keys))
		for i := range keys {
			pairs[i] = materialize(i)
		}
		return s.flipsViaScores(ctx, pairs, y)
	}

	out := make([]bool, len(keys))
	if len(keys) == 0 {
		return out, ctx.Err()
	}

	var misses []int // key index of each unique unseen key
	missAt := make(map[string]int)
	pending := make([][]int, 0)

	s.mu.Lock()
	s.stats.Lookups += len(keys)
	for i, k := range keys {
		if v, ok := s.local[k]; ok {
			out[i] = (v > 0.5) != y
			s.stats.Hits++
			continue
		}
		if cls, ok := s.memoized[k]; ok {
			out[i] = cls != y
			s.stats.Hits++
			continue
		}
		if mi, ok := missAt[k]; ok {
			pending[mi] = append(pending[mi], i)
			s.stats.Hits++
			continue
		}
		missAt[k] = len(misses)
		misses = append(misses, i)
		pending = append(pending, []int{i})
	}
	if len(misses) > 0 {
		// Memo-answered misses count like any other: the view requested a
		// unique evaluation it had never seen, exactly what a private
		// cache would charge — which keeps Diagnostics (and the anytime
		// budget they feed) deterministic however the misses get answered.
		s.stats.Misses += len(misses)
		s.stats.Batches++
	}
	s.mu.Unlock()

	if len(misses) == 0 {
		return out, nil
	}

	// Put only the questions the view could not answer itself to the
	// shared memo — FlipHitRate then measures cross-explanation reuse,
	// undiluted by questions this explanation had already settled.
	missKeys := make([]string, len(misses))
	for j, ki := range misses {
		missKeys[j] = keys[ki]
	}
	// Memo-lookup span: how long the shared flip memo took to answer
	// (or decline) this batch of unique unseen questions.
	sp := telemetry.StartLeaf(ctx, "memo")
	classes, known := s.svc.flipGet(missKeys)
	sp.AddItems(len(missKeys))
	sp.End()

	// Resolve memo-answered misses without materializing anything; the
	// sentinel keeps a later score request for the same key honest (the
	// view holds a class, not a score — the score still needs a fetch,
	// charged as a view hit).
	var fidx []int // miss indexes the memo could not answer
	s.mu.Lock()
	for mi, ki := range misses {
		if known[mi] {
			s.memoized[keys[ki]] = classes[mi]
			flip := classes[mi] != y
			for _, slot := range pending[mi] {
				out[slot] = flip
			}
			continue
		}
		fidx = append(fidx, mi)
	}
	s.mu.Unlock()

	if len(fidx) == 0 {
		return out, nil
	}

	fkeys := make([]string, len(fidx))
	fpairs := make([]record.Pair, len(fidx))
	for j, mi := range fidx {
		fkeys[j] = keys[misses[mi]]
		fpairs[j] = materialize(misses[mi])
	}
	scores, err := s.svc.fetch(ctx, fkeys, fpairs)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	for j, mi := range fidx {
		v := scores[j]
		s.local[fkeys[j]] = v
		flip := (v > 0.5) != y
		for _, slot := range pending[mi] {
			out[slot] = flip
		}
	}
	s.mu.Unlock()
	return out, nil
}

// Key renders the canonical content of a pair: schema names and every
// attribute value, length-framed so distinct contents cannot collide.
// Record IDs are deliberately excluded — augmentation mints synthetic
// IDs for otherwise identical perturbations, and models score values,
// not identifiers.
func Key(p record.Pair) string {
	var b strings.Builder
	writeRecord(&b, p.Left)
	b.WriteByte('|')
	writeRecord(&b, p.Right)
	return b.String()
}

func writeRecord(b *strings.Builder, r *record.Record) {
	if r == nil {
		b.WriteString("<nil>")
		return
	}
	// The schema name is length-framed like the values: written bare, a
	// schema named "S;1:x" would collide with a schema "S" holding the
	// value "x".
	b.WriteString(strconv.Itoa(len(r.Schema.Name)))
	b.WriteByte('#')
	b.WriteString(r.Schema.Name)
	for _, v := range r.Values {
		b.WriteByte(';')
		b.WriteString(strconv.Itoa(len(v)))
		b.WriteByte(':')
		b.WriteString(v)
	}
}

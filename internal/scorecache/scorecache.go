// Package scorecache provides a memoizing, batching scorer wrapped
// around a black-box ER model. CERTA's cost is dominated by model calls,
// and the perturbations it scores repeat heavily: triangles that share
// support records (or supports that agree on the copied values) generate
// identical perturbed pairs, and the counterfactual materialization
// re-scores pairs the lattice exploration already asked about. The
// Scorer deduplicates all of that — every distinct pair content is
// scored exactly once — and pushes the remaining unique pairs through
// the model's batch entry point (explain.BatchModel) in parallel shards.
package scorecache

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"certa/internal/explain"
	"certa/internal/record"
	"certa/internal/workpool"
)

// Options tunes a Scorer.
type Options struct {
	// Parallelism bounds the worker goroutines that evaluate one batch's
	// cache misses (default 1). Results are index-aligned and therefore
	// identical at any setting.
	Parallelism int
	// Disabled turns memoization off: every lookup reaches the model.
	// Batching still applies. Used by the core ablation that measures the
	// cache against the seed scoring path.
	Disabled bool
}

// Stats reports the work a Scorer performed.
type Stats struct {
	// Lookups counts score requests served (batch elements included).
	Lookups int
	// Hits counts requests answered from the cache, including duplicates
	// resolved within a single batch.
	Hits int
	// Misses counts unique model invocations.
	Misses int
	// Batches counts logical batch evaluations that reached the model
	// (independent of how many parallel shards executed them).
	Batches int
}

// HitRate returns Hits/Lookups, or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Scorer memoizes scores by canonical pair content. It implements
// explain.Model and explain.BatchModel and is safe for concurrent use,
// though the intended pattern is one Scorer per explanation so cache
// statistics stay deterministic.
type Scorer struct {
	model explain.BatchModel
	opts  Options

	mu    sync.Mutex
	cache map[string]float64
	stats Stats
}

// New wraps a model. The model's batch entry point is used when it has
// one; plain models fall back to per-pair Score calls.
func New(m explain.Model, opts Options) *Scorer {
	if opts.Parallelism <= 0 {
		opts.Parallelism = 1
	}
	return &Scorer{
		model: explain.AsBatch(m),
		opts:  opts,
		cache: make(map[string]float64),
	}
}

// Name implements explain.Model.
func (s *Scorer) Name() string { return s.model.Name() }

// Underlying returns the wrapped model, bypassing the cache and its
// statistics — for instrumentation queries that must not count as
// algorithm cost.
func (s *Scorer) Underlying() explain.BatchModel { return s.model }

// Stats returns a snapshot of the cache counters.
func (s *Scorer) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Score implements explain.Model through the cache.
func (s *Scorer) Score(p record.Pair) float64 {
	return s.ScoreBatch([]record.Pair{p})[0]
}

// ScoreBatch implements explain.BatchModel: duplicates inside the batch
// and pairs seen by earlier calls are answered from the cache, and only
// the remaining unique pairs reach the model — in one logical batch,
// sharded across Options.Parallelism workers.
func (s *Scorer) ScoreBatch(pairs []record.Pair) []float64 {
	out := make([]float64, len(pairs))
	if len(pairs) == 0 {
		return out
	}

	keys := make([]string, len(pairs))
	for i, p := range pairs {
		keys[i] = Key(p)
	}

	// Resolve hits and collect unique misses in first-occurrence order.
	type miss struct {
		key  string
		pair record.Pair
	}
	var misses []miss
	missAt := make(map[string]int) // key -> index into misses
	pending := make([][]int, 0)    // miss index -> output slots

	s.mu.Lock()
	s.stats.Lookups += len(pairs)
	for i, k := range keys {
		if !s.opts.Disabled {
			if v, ok := s.cache[k]; ok {
				out[i] = v
				s.stats.Hits++
				continue
			}
			if mi, ok := missAt[k]; ok {
				// Duplicate within this batch: scored once, fanned out.
				pending[mi] = append(pending[mi], i)
				s.stats.Hits++
				continue
			}
		}
		missAt[k] = len(misses)
		misses = append(misses, miss{key: k, pair: pairs[i]})
		pending = append(pending, []int{i})
	}
	if len(misses) > 0 {
		s.stats.Misses += len(misses)
		s.stats.Batches++
	}
	s.mu.Unlock()

	if len(misses) == 0 {
		return out
	}

	// Evaluate unique misses: one logical batch, sharded for parallelism.
	scores := make([]float64, len(misses))
	shards := s.opts.Parallelism
	if shards > len(misses) {
		shards = len(misses)
	}
	per := (len(misses) + shards - 1) / shards
	workpool.Each(shards, shards, func(w int) error {
		lo := w * per
		hi := lo + per
		if hi > len(misses) {
			hi = len(misses)
		}
		if lo >= hi {
			return nil
		}
		chunk := make([]record.Pair, hi-lo)
		for i := lo; i < hi; i++ {
			chunk[i-lo] = misses[i].pair
		}
		got := s.model.ScoreBatch(chunk)
		if len(got) != len(chunk) {
			// A silent mismatch would cache zeros; fail loudly instead.
			panic(fmt.Sprintf("scorecache: model %q returned %d scores for %d pairs",
				s.model.Name(), len(got), len(chunk)))
		}
		copy(scores[lo:hi], got)
		return nil
	})

	s.mu.Lock()
	for mi, m := range misses {
		if !s.opts.Disabled {
			s.cache[m.key] = scores[mi]
		}
		for _, slot := range pending[mi] {
			out[slot] = scores[mi]
		}
	}
	s.mu.Unlock()
	return out
}

// Key renders the canonical content of a pair: schema names and every
// attribute value, length-framed so distinct contents cannot collide.
// Record IDs are deliberately excluded — augmentation mints synthetic
// IDs for otherwise identical perturbations, and models score values,
// not identifiers.
func Key(p record.Pair) string {
	var b strings.Builder
	writeRecord(&b, p.Left)
	b.WriteByte('|')
	writeRecord(&b, p.Right)
	return b.String()
}

func writeRecord(b *strings.Builder, r *record.Record) {
	if r == nil {
		b.WriteString("<nil>")
		return
	}
	b.WriteString(r.Schema.Name)
	for _, v := range r.Values {
		b.WriteByte(';')
		b.WriteString(strconv.Itoa(len(v)))
		b.WriteByte(':')
		b.WriteString(v)
	}
}

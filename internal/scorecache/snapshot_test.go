package scorecache

import (
	"bytes"
	"fmt"
	"testing"

	"certa/internal/record"
)

// warmService scores n distinct pairs through a fresh service and
// returns it with its model.
func warmService(t *testing.T, n int) (*Service, *countingModel) {
	t.Helper()
	m := &countingModel{}
	svc := NewService(m, ServiceOptions{})
	pairs := make([]record.Pair, n)
	for i := range pairs {
		pairs[i] = pairOf(fmt.Sprintf("val-%03d", i), "x")
	}
	svc.ScoreBatch(pairs)
	return svc, m
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	svc, _ := warmService(t, 25)
	if got := svc.Len(); got != 25 {
		t.Fatalf("Len() = %d, want 25", got)
	}

	var buf bytes.Buffer
	n, err := svc.Snapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Fatalf("Snapshot wrote %d entries, want 25", n)
	}

	// A second snapshot of the same store is byte-identical (sorted keys).
	var buf2 bytes.Buffer
	if _, err := svc.Snapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("snapshots of an unchanged store differ")
	}

	// Restore into a fresh service: every stored pair is answered without
	// a model invocation.
	m2 := &countingModel{}
	restored := NewService(m2, ServiceOptions{})
	got, err := restored.Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got != 25 {
		t.Fatalf("Restore installed %d entries, want 25", got)
	}
	for i := 0; i < 25; i++ {
		p := pairOf(fmt.Sprintf("val-%03d", i), "x")
		if want, g := svc.Score(p), restored.Score(p); g != want {
			t.Fatalf("restored score %v != original %v for pair %d", g, want, i)
		}
	}
	if m2.calls != 0 {
		t.Fatalf("restored service invoked the model %d times for snapshotted pairs", m2.calls)
	}
	st := restored.Stats()
	if st.Hits != 25 || st.Misses != 0 {
		t.Fatalf("restored service stats = %+v, want 25 hits, 0 misses", st)
	}
}

func TestRestoreKeepsExistingEntries(t *testing.T) {
	svc, _ := warmService(t, 5)
	var buf bytes.Buffer
	if _, err := svc.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	m := &countingModel{}
	target := NewService(m, ServiceOptions{})
	p := pairOf("val-000", "x")
	live := target.Score(p) // scored before the restore arrives
	if n, err := target.Restore(bytes.NewReader(buf.Bytes())); err != nil || n != 4 {
		t.Fatalf("Restore = (%d, %v), want (4, nil): existing key must be kept", n, err)
	}
	if got := target.Score(p); got != live {
		t.Fatalf("restore overwrote a live entry: %v != %v", got, live)
	}
}

func TestRestoreRespectsCapacity(t *testing.T) {
	svc, _ := warmService(t, 40)
	var buf bytes.Buffer
	if _, err := svc.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	bounded := NewService(&countingModel{}, ServiceOptions{Capacity: 8, Shards: 1})
	if _, err := bounded.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := bounded.Len(); got > 8 {
		t.Fatalf("bounded service holds %d entries after restore, capacity 8", got)
	}
	if bounded.Stats().Evictions == 0 {
		t.Fatal("restore past the capacity bound recorded no evictions")
	}
}

// TestRestoreRejectsCorruption is the snapshot fuzz seed: a snapshot
// with any single byte flipped — magic, count, length frames, keys,
// scores or the checksum itself — must be rejected with an error and
// leave the service cold and usable. It must never panic and never
// install a partial snapshot.
func TestRestoreRejectsCorruption(t *testing.T) {
	svc, _ := warmService(t, 10)
	var buf bytes.Buffer
	if _, err := svc.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	for i := range snap {
		corrupted := append([]byte(nil), snap...)
		corrupted[i] ^= 0xFF
		m := &countingModel{}
		target := NewService(m, ServiceOptions{})
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Restore panicked on byte %d flipped: %v", i, r)
				}
			}()
			n, err := target.Restore(bytes.NewReader(corrupted))
			if err == nil {
				t.Fatalf("Restore accepted snapshot with byte %d flipped", i)
			}
			if n != 0 {
				t.Fatalf("Restore reported %d installed entries alongside error %v", n, err)
			}
		}()
		// Cold start: the rejected restore left nothing behind and the
		// service still scores.
		if got := target.Len(); got != 0 {
			t.Fatalf("byte %d: %d entries installed from a corrupted snapshot", i, got)
		}
		target.Score(pairOf("after-corruption", "x"))
		if m.calls != 1 {
			t.Fatalf("byte %d: service unusable after rejected restore (%d model calls)", i, m.calls)
		}
	}
}

func TestRestoreRejectsTruncation(t *testing.T) {
	svc, _ := warmService(t, 10)
	var buf bytes.Buffer
	if _, err := svc.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	for n := 0; n < len(snap); n++ {
		target := NewService(&countingModel{}, ServiceOptions{})
		if _, err := target.Restore(bytes.NewReader(snap[:n])); err == nil {
			t.Fatalf("Restore accepted snapshot truncated to %d/%d bytes", n, len(snap))
		}
		if got := target.Len(); got != 0 {
			t.Fatalf("truncation at %d: %d entries installed", n, got)
		}
	}
}

// TestRestoreFuncKeepsOnlyFilteredKeys covers the shard-filtered
// restore path a ring joiner uses: consume a donor's full snapshot,
// install only the keys a placement predicate accepts, and answer
// exactly those without model calls afterwards.
func TestRestoreFuncKeepsOnlyFilteredKeys(t *testing.T) {
	svc, _ := warmService(t, 20)
	var buf bytes.Buffer
	if _, err := svc.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Split on a high hash bit: the low bit of FNV-1a is linear in the
	// input bytes, and these fixture keys repeat their varying bytes on
	// both pair sides, which would make a %2 split degenerate.
	keep := func(key string) bool { return ShardHash(key)>>33&1 == 0 }
	want := 0
	for _, k := range svc.Keys() {
		if keep(k) {
			want++
		}
	}
	if want == 0 || want == 20 {
		t.Fatalf("degenerate filter split %d/20; pick different fixture keys", want)
	}

	m := &countingModel{}
	target := NewService(m, ServiceOptions{})
	n, err := target.RestoreFunc(bytes.NewReader(buf.Bytes()), keep)
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("RestoreFunc installed %d entries, filter accepts %d", n, want)
	}
	if got := target.Len(); got != want {
		t.Fatalf("Len() = %d after filtered restore, want %d", got, want)
	}
	for _, k := range target.Keys() {
		if !keep(k) {
			t.Fatalf("filtered restore installed rejected key %q", k)
		}
	}
	// Kept keys answer without the model; dropped keys still cost a call.
	for i := 0; i < 20; i++ {
		p := pairOf(fmt.Sprintf("val-%03d", i), "x")
		before := m.calls
		target.Score(p)
		paid := m.calls - before
		if kept := keep(Key(p)); kept && paid != 0 {
			t.Fatalf("pair %d: kept key paid %d model calls", i, paid)
		} else if !kept && paid == 0 {
			t.Fatalf("pair %d: dropped key was answered without the model", i)
		}
	}
}

// TestRestoreFuncRejectsCorruptionBeforeFiltering: a corrupt stream is
// rejected identically with a filter attached, and the keep predicate
// is never consulted — filtering happens strictly after verification.
func TestRestoreFuncRejectsCorruptionBeforeFiltering(t *testing.T) {
	svc, _ := warmService(t, 6)
	var buf bytes.Buffer
	if _, err := svc.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	for _, i := range []int{0, len(snap) / 2, len(snap) - 1} {
		corrupted := append([]byte(nil), snap...)
		corrupted[i] ^= 0xFF
		target := NewService(&countingModel{}, ServiceOptions{})
		kept := 0
		n, err := target.RestoreFunc(bytes.NewReader(corrupted), func(string) bool { kept++; return true })
		if err == nil || n != 0 {
			t.Fatalf("byte %d: filtered restore accepted corruption (n=%d err=%v)", i, n, err)
		}
		if kept != 0 {
			t.Fatalf("byte %d: keep ran %d times on an unverified stream", i, kept)
		}
		if target.Len() != 0 {
			t.Fatalf("byte %d: corrupt filtered restore installed entries", i)
		}
	}
}

// TestKeysMatchesSnapshotContents: Keys reports exactly the ready
// entries, sorted — the enumeration cluster capacity planning leans on.
func TestKeysMatchesSnapshotContents(t *testing.T) {
	svc, _ := warmService(t, 9)
	keys := svc.Keys()
	if len(keys) != 9 {
		t.Fatalf("Keys() returned %d keys, want 9", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("Keys() not strictly sorted at %d: %q >= %q", i, keys[i-1], keys[i])
		}
	}
	want := make(map[string]bool, 9)
	for i := 0; i < 9; i++ {
		want[Key(pairOf(fmt.Sprintf("val-%03d", i), "x"))] = true
	}
	for _, k := range keys {
		if !want[k] {
			t.Fatalf("Keys() returned unexpected key %q", k)
		}
	}
}

func TestRestoreRejectsHugeKeyLength(t *testing.T) {
	// A handcrafted header claiming one entry with a multi-gigabyte key
	// must fail on the length sanity bound, not attempt the allocation.
	var buf bytes.Buffer
	buf.Write(snapshotMagic[:])
	buf.Write([]byte{1, 0, 0, 0, 0, 0, 0, 0}) // count = 1
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // keyLen = 4 GiB
	target := NewService(&countingModel{}, ServiceOptions{})
	if _, err := target.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("Restore accepted a 4 GiB key length frame")
	}
}

package scorecache

import (
	"fmt"
	"sync"

	"certa/internal/explain"
	"certa/internal/record"
	"certa/internal/workpool"
)

// ServiceOptions tunes a shared scoring Service.
type ServiceOptions struct {
	// Parallelism bounds the worker goroutines that evaluate one fetch's
	// store misses (default 1). Results are index-aligned and therefore
	// identical at any setting.
	Parallelism int
	// Capacity bounds the number of cached scores (0 = unbounded). When
	// set, each lock stripe keeps an LRU list and evicts its coldest
	// entries, so million-pair workloads cannot grow memory without
	// limit. Eviction never changes results — an evicted key is simply
	// re-scored on its next request.
	Capacity int
	// Shards is the number of lock stripes (default 32). More stripes
	// reduce contention between concurrent explanations.
	Shards int
}

func (o ServiceOptions) withDefaults() ServiceOptions {
	if o.Parallelism <= 0 {
		o.Parallelism = 1
	}
	if o.Shards <= 0 {
		o.Shards = 32
	}
	return o
}

// ServiceStats reports the aggregate work a shared Service performed
// across every explanation that scored through it.
type ServiceStats struct {
	// Lookups counts key requests that reached the shared store.
	Lookups int
	// Hits counts requests answered without a new model invocation:
	// either the score was already stored, or another explanation was
	// computing it in flight and the result was shared.
	Hits int
	// Misses counts unique model invocations — the true cost of the
	// whole run.
	Misses int
	// Batches counts logical batch evaluations that reached the model.
	Batches int
	// Evictions counts entries dropped by the capacity bound.
	Evictions int
}

// HitRate returns Hits/Lookups, or 0 before any lookup.
func (s ServiceStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// entry is one key's slot in the store. A pending entry (ready not yet
// closed) marks an in-flight computation: concurrent requesters wait on
// ready instead of invoking the model again (singleflight). Waiters hold
// the entry pointer directly, so eviction from the map never invalidates
// a result someone is still waiting for.
type entry struct {
	key   string
	score float64
	ready chan struct{} // closed once score is valid (or failed is set)
	// failed marks entries whose publisher panicked mid-batch; waiters
	// propagate the failure instead of reading a zero score.
	failed bool

	// LRU links; only ready entries are linked.
	prev, next *entry
}

// serviceShard is one lock stripe of the store.
type serviceShard struct {
	mu      sync.Mutex
	entries map[string]*entry
	// Doubly-linked LRU list of ready entries, most recent at head.
	// Only maintained when cap > 0.
	head, tail *entry
	linked     int
	cap        int
}

// Service is a shared, concurrency-safe scoring service: one store of
// memoized scores (striped locks keyed by Key) with in-flight
// deduplication, intended to live for a whole ExplainBatch or harness
// run. Two concurrent explanations that miss on the same pair content
// trigger exactly one model call; everything else is answered from the
// store.
//
// Service implements explain.Model and explain.BatchModel, so it can be
// handed directly to the baseline explainers. CERTA explanations layer a
// per-explanation Scorer view over it (NewScorer) so their Diagnostics
// stay deterministic regardless of what other explanations already
// cached.
type Service struct {
	model  explain.BatchModel
	opts   ServiceOptions
	shards []serviceShard

	statmu sync.Mutex
	stats  ServiceStats
}

// NewService wraps a model in a shared scoring service. The model's
// batch entry point is used when it has one; plain models fall back to
// per-pair Score calls.
func NewService(m explain.Model, opts ServiceOptions) *Service {
	opts = opts.withDefaults()
	s := &Service{
		model:  explain.AsBatch(m),
		opts:   opts,
		shards: make([]serviceShard, opts.Shards),
	}
	perShard := 0
	if opts.Capacity > 0 {
		perShard = (opts.Capacity + opts.Shards - 1) / opts.Shards
		if perShard < 1 {
			perShard = 1
		}
	}
	for i := range s.shards {
		s.shards[i] = serviceShard{entries: make(map[string]*entry), cap: perShard}
	}
	return s
}

// Name implements explain.Model.
func (s *Service) Name() string { return s.model.Name() }

// Underlying returns the wrapped model, bypassing the store and its
// statistics — for instrumentation queries that must not count as
// algorithm cost.
func (s *Service) Underlying() explain.BatchModel { return s.model }

// Stats returns a snapshot of the shared counters.
func (s *Service) Stats() ServiceStats {
	s.statmu.Lock()
	defer s.statmu.Unlock()
	return s.stats
}

// NewScorer opens a per-explanation view over the shared store. The
// view's Stats are computed against its own private key set, so they are
// exactly what a private cache would have reported — deterministic and
// independent of concurrent explanations — while the underlying scoring
// is deduplicated across every view of the Service.
func (s *Service) NewScorer(opts Options) *Scorer {
	if opts.Parallelism <= 0 {
		opts.Parallelism = 1
	}
	return &Scorer{svc: s, opts: opts, local: make(map[string]float64)}
}

// Score implements explain.Model through the shared store.
func (s *Service) Score(p record.Pair) float64 {
	return s.ScoreBatch([]record.Pair{p})[0]
}

// ScoreBatch implements explain.BatchModel: duplicates inside the batch
// and pairs any earlier request stored are answered from the store, and
// only the remaining unique pairs reach the model.
func (s *Service) ScoreBatch(pairs []record.Pair) []float64 {
	out := make([]float64, len(pairs))
	if len(pairs) == 0 {
		return out
	}
	var keys []string
	var unique []record.Pair
	slots := make(map[string][]int, len(pairs))
	for i, p := range pairs {
		k := Key(p)
		if _, ok := slots[k]; !ok {
			keys = append(keys, k)
			unique = append(unique, p)
		}
		slots[k] = append(slots[k], i)
	}
	if dupes := len(pairs) - len(keys); dupes > 0 {
		s.statmu.Lock()
		s.stats.Lookups += dupes
		s.stats.Hits += dupes
		s.statmu.Unlock()
	}
	scores := s.fetch(keys, unique)
	for i, k := range keys {
		for _, slot := range slots[k] {
			out[slot] = scores[i]
		}
	}
	return out
}

// shardFor stripes a key across the locks (FNV-1a).
func (s *Service) shardFor(key string) *serviceShard {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &s.shards[h%uint32(len(s.shards))]
}

// waiter records an output slot blocked on another goroutine's in-flight
// computation.
type waiter struct {
	slot int
	e    *entry
}

// fetch resolves unique keys against the store: stored scores are
// returned immediately, keys being computed by another goroutine are
// waited on, and the remaining misses are claimed, scored in one logical
// batch (sharded across ServiceOptions.Parallelism workers) and
// published. Keys must be unique within one call.
func (s *Service) fetch(keys []string, pairs []record.Pair) []float64 {
	out := make([]float64, len(keys))
	var claimed []int    // indexes this call must score
	var claims []*entry  // their store entries, index-aligned with claimed
	var waiters []waiter // indexes computed by concurrent callers
	hits := 0

	for i, k := range keys {
		sh := s.shardFor(k)
		sh.mu.Lock()
		if e, ok := sh.entries[k]; ok {
			select {
			case <-e.ready:
				out[i] = e.score
				sh.touch(e)
				hits++
			default:
				waiters = append(waiters, waiter{slot: i, e: e})
				hits++ // in-flight dedup: answered without a new model call
			}
			sh.mu.Unlock()
			continue
		}
		e := &entry{key: k, ready: make(chan struct{})}
		sh.entries[k] = e
		sh.mu.Unlock()
		claimed = append(claimed, i)
		claims = append(claims, e)
	}

	s.statmu.Lock()
	s.stats.Lookups += len(keys)
	s.stats.Hits += hits
	s.stats.Misses += len(claimed)
	if len(claimed) > 0 {
		s.stats.Batches++
	}
	s.statmu.Unlock()

	if len(claimed) > 0 {
		s.scoreClaims(keys, pairs, out, claimed, claims)
	}

	// Wait on concurrent computations only after publishing our own
	// claims, so two calls with overlapping key sets cannot deadlock.
	for _, w := range waiters {
		<-w.e.ready
		if w.e.failed {
			panic(fmt.Sprintf("scorecache: concurrent scoring of %q failed", s.model.Name()))
		}
		out[w.slot] = w.e.score
	}
	return out
}

// scoreClaims evaluates this call's store misses in one logical batch
// and publishes the results. If the model panics (for example on a
// batch-length contract violation), every claimed entry is unpublished
// and marked failed before the panic propagates, so waiters are never
// left blocked.
func (s *Service) scoreClaims(keys []string, pairs []record.Pair, out []float64, claimed []int, claims []*entry) {
	published := false
	defer func() {
		if published {
			return
		}
		for _, e := range claims {
			sh := s.shardFor(e.key)
			sh.mu.Lock()
			delete(sh.entries, e.key)
			e.failed = true
			close(e.ready)
			sh.mu.Unlock()
		}
	}()

	scores := make([]float64, len(claimed))
	shards := s.opts.Parallelism
	if shards > len(claimed) {
		shards = len(claimed)
	}
	per := (len(claimed) + shards - 1) / shards
	workpool.Each(shards, shards, func(w int) error {
		lo := w * per
		hi := lo + per
		if hi > len(claimed) {
			hi = len(claimed)
		}
		if lo >= hi {
			return nil
		}
		chunk := make([]record.Pair, hi-lo)
		for i := lo; i < hi; i++ {
			chunk[i-lo] = pairs[claimed[i]]
		}
		got := s.model.ScoreBatch(chunk)
		if len(got) != len(chunk) {
			// A silent mismatch would cache zeros; fail loudly instead.
			panic(fmt.Sprintf("scorecache: model %q returned %d scores for %d pairs",
				s.model.Name(), len(got), len(chunk)))
		}
		copy(scores[lo:hi], got)
		return nil
	})

	evictions := 0
	for i, e := range claims {
		out[claimed[i]] = scores[i]
		sh := s.shardFor(e.key)
		sh.mu.Lock()
		e.score = scores[i]
		close(e.ready)
		evictions += sh.link(e)
		sh.mu.Unlock()
	}
	published = true
	if evictions > 0 {
		s.statmu.Lock()
		s.stats.Evictions += evictions
		s.statmu.Unlock()
	}
}

// direct evaluates pairs against the model without touching the store —
// the cache-disabled ablation path. The calls still count as shared
// lookups and misses so run-level cost accounting stays truthful.
func (s *Service) direct(pairs []record.Pair, parallelism int) []float64 {
	if len(pairs) == 0 {
		return nil
	}
	s.statmu.Lock()
	s.stats.Lookups += len(pairs)
	s.stats.Misses += len(pairs)
	s.stats.Batches++
	s.statmu.Unlock()

	scores := make([]float64, len(pairs))
	shards := parallelism
	if shards <= 0 {
		shards = 1
	}
	if shards > len(pairs) {
		shards = len(pairs)
	}
	per := (len(pairs) + shards - 1) / shards
	workpool.Each(shards, shards, func(w int) error {
		lo := w * per
		hi := lo + per
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			return nil
		}
		got := s.model.ScoreBatch(pairs[lo:hi])
		if len(got) != len(pairs[lo:hi]) {
			panic(fmt.Sprintf("scorecache: model %q returned %d scores for %d pairs",
				s.model.Name(), len(got), hi-lo))
		}
		copy(scores[lo:hi], got)
		return nil
	})
	return scores
}

// touch moves a ready entry to the LRU head. No-op for unbounded shards.
func (sh *serviceShard) touch(e *entry) {
	if sh.cap <= 0 || sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// link inserts a newly-ready entry at the LRU head and evicts past the
// capacity bound, returning the number of evictions. No-op (returning 0)
// for unbounded shards.
func (sh *serviceShard) link(e *entry) int {
	if sh.cap <= 0 {
		return 0
	}
	sh.pushFront(e)
	evicted := 0
	for sh.linked > sh.cap {
		cold := sh.tail
		sh.unlink(cold)
		delete(sh.entries, cold.key)
		evicted++
	}
	return evicted
}

func (sh *serviceShard) pushFront(e *entry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
	sh.linked++
}

func (sh *serviceShard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
	sh.linked--
}

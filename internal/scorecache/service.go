package scorecache

import (
	"context"
	"fmt"
	"sync"

	"certa/internal/explain"
	"certa/internal/record"
	"certa/internal/telemetry"
	"certa/internal/workpool"
)

// ServiceOptions tunes a shared scoring Service.
type ServiceOptions struct {
	// Parallelism bounds the worker goroutines that evaluate one fetch's
	// store misses (default 1). Results are index-aligned and therefore
	// identical at any setting.
	Parallelism int
	// Capacity bounds the number of cached scores (0 = unbounded). When
	// set, each lock stripe keeps an LRU list and evicts its coldest
	// entries, so million-pair workloads cannot grow memory without
	// limit. Eviction never changes results — an evicted key is simply
	// re-scored on its next request.
	Capacity int
	// Shards is the number of lock stripes (default 32). More stripes
	// reduce contention between concurrent explanations.
	Shards int
	// DisableFlipMemo turns off the cross-explanation flip-outcome memo
	// (see Scorer.ScoreFlipsContext): every lattice oracle answer is then
	// derived from a score lookup, as before the memo existed. Scores and
	// explanation results are identical either way; the memo only changes
	// how much shared work is spent producing them.
	DisableFlipMemo bool
}

func (o ServiceOptions) withDefaults() ServiceOptions {
	if o.Parallelism <= 0 {
		o.Parallelism = 1
	}
	if o.Shards <= 0 {
		o.Shards = 32
	}
	return o
}

// ServiceStats reports the aggregate work a shared Service performed
// across every explanation that scored through it.
type ServiceStats struct {
	// Lookups counts key requests that reached the shared store.
	Lookups int
	// Hits counts requests answered without a new model invocation:
	// either the score was already stored, or another explanation was
	// computing it in flight and the result was shared.
	Hits int
	// Misses counts unique model invocations — the true cost of the
	// whole run.
	Misses int
	// Batches counts logical batch evaluations that reached the model.
	Batches int
	// Evictions counts entries dropped by the capacity bound.
	Evictions int
	// FlipLookups counts lattice flip questions the per-explanation views
	// put to the flip-outcome memo: one per unique question the view
	// could not answer from its own key set (duplicates and
	// locally-settled questions never reach the memo); FlipHits counts
	// the ones the memo answered — pair contents some explanation already
	// scored, whose published class settles the question without a new
	// score fetch, model call or even pair materialization (see
	// Scorer.ScoreFlipsKeyedContext). FlipHitRate is therefore the
	// cross-explanation reuse rate over the questions that needed an
	// answer. The memo
	// is populated from every batch the service scores, so triangle-search
	// candidates — which dominate the store and recur across explanations
	// that share a pivot — answer the lattice questions whose perturbed
	// content coincides with them. Both counters are 0 when the memo is
	// disabled. Hit attribution depends on scheduling (which explanation
	// publishes a class first), so these two counters — unlike explanation
	// Diagnostics — are not parallelism-deterministic.
	FlipLookups int
	FlipHits    int
}

// FlipHitRate returns FlipHits/FlipLookups, or 0 before any flip lookup.
func (s ServiceStats) FlipHitRate() float64 {
	if s.FlipLookups == 0 {
		return 0
	}
	return float64(s.FlipHits) / float64(s.FlipLookups)
}

// HitRate returns Hits/Lookups, or 0 before any lookup.
func (s ServiceStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// entry is one key's slot in the store. A pending entry (ready not yet
// closed) marks an in-flight computation: concurrent requesters wait on
// ready instead of invoking the model again (singleflight). Waiters hold
// the entry pointer directly, so eviction from the map never invalidates
// a result someone is still waiting for.
type entry struct {
	key   string
	score float64
	ready chan struct{} // closed once score is valid (or failed is set)
	// failed marks entries whose publisher was cancelled or panicked
	// mid-batch; the publisher removed them from the map before closing
	// ready, so waiters re-claim the key themselves instead of reading a
	// zero score or inheriting the leader's cancellation.
	failed bool

	// LRU links; only ready entries are linked.
	prev, next *entry
}

// serviceShard is one lock stripe of the store.
type serviceShard struct {
	mu      sync.Mutex
	entries map[string]*entry
	// Doubly-linked LRU list of ready entries, most recent at head.
	// Only maintained when cap > 0.
	head, tail *entry
	linked     int
	cap        int
}

// Service is a shared, concurrency-safe scoring service: one store of
// memoized scores (striped locks keyed by Key) with in-flight
// deduplication, intended to live for a whole ExplainBatch or harness
// run. Two concurrent explanations that miss on the same pair content
// trigger exactly one model call; everything else is answered from the
// store.
//
// Service implements explain.Model and explain.BatchModel, so it can be
// handed directly to the baseline explainers. CERTA explanations layer a
// per-explanation Scorer view over it (NewScorer) so their Diagnostics
// stay deterministic regardless of what other explanations already
// cached.
type Service struct {
	model  explain.BatchModel
	cmodel explain.ContextModel
	opts   ServiceOptions
	shards []serviceShard
	flips  []flipShard // cross-explanation flip-outcome memo; nil when disabled

	statmu sync.Mutex
	stats  ServiceStats
}

// flipShard is one lock stripe of the flip-outcome memo: pair content →
// predicted class (score > 0.5). The class is a pure function of the
// content (scoring is deterministic), so whichever explanation publishes
// it first, every later reader derives the same flip answer its own
// scoring would have produced. Entries are one bool per key, so the memo
// is left unbounded even when the score store has a capacity limit.
type flipShard struct {
	mu sync.RWMutex
	m  map[string]bool
}

// NewService wraps a model in a shared scoring service. The model's
// batch and context entry points are used when it has them; plain
// models fall back to per-pair Score calls with a per-batch
// cancellation check.
func NewService(m explain.Model, opts ServiceOptions) *Service {
	opts = opts.withDefaults()
	s := &Service{
		model:  explain.AsBatch(m),
		cmodel: explain.AsContext(m),
		opts:   opts,
		shards: make([]serviceShard, opts.Shards),
	}
	perShard := 0
	if opts.Capacity > 0 {
		perShard = (opts.Capacity + opts.Shards - 1) / opts.Shards
		if perShard < 1 {
			perShard = 1
		}
	}
	for i := range s.shards {
		s.shards[i] = serviceShard{entries: make(map[string]*entry), cap: perShard}
	}
	if !opts.DisableFlipMemo {
		s.flips = make([]flipShard, opts.Shards)
		for i := range s.flips {
			s.flips[i].m = make(map[string]bool)
		}
	}
	return s
}

// flipEnabled reports whether the flip-outcome memo is active.
func (s *Service) flipEnabled() bool { return s.flips != nil }

// flipGet consults the flip memo for each key, returning the known
// classes and a parallel known-mask, and records the lookup statistics.
func (s *Service) flipGet(keys []string) (classes, known []bool) {
	classes = make([]bool, len(keys))
	known = make([]bool, len(keys))
	hits := 0
	for i, k := range keys {
		fs := &s.flips[flipHash(k)%uint32(len(s.flips))]
		fs.mu.RLock()
		cls, ok := fs.m[k]
		fs.mu.RUnlock()
		if ok {
			classes[i], known[i] = cls, true
			hits++
		}
	}
	s.statmu.Lock()
	s.stats.FlipLookups += len(keys)
	s.stats.FlipHits += hits
	s.statmu.Unlock()
	return classes, known
}

// flipPut publishes predicted classes for freshly scored keys. Classes
// are deterministic per key, so concurrent publishes agree and
// last-writer-wins is benign.
func (s *Service) flipPut(keys []string, classes []bool) {
	for i, k := range keys {
		fs := &s.flips[flipHash(k)%uint32(len(s.flips))]
		fs.mu.Lock()
		fs.m[k] = classes[i]
		fs.mu.Unlock()
	}
}

func flipHash(key string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// Name implements explain.Model.
func (s *Service) Name() string { return s.model.Name() }

// Underlying returns the wrapped model, bypassing the store and its
// statistics — for instrumentation queries that must not count as
// algorithm cost.
func (s *Service) Underlying() explain.BatchModel { return s.model }

// Stats returns a snapshot of the shared counters.
func (s *Service) Stats() ServiceStats {
	s.statmu.Lock()
	defer s.statmu.Unlock()
	return s.stats
}

// NewScorer opens a per-explanation view over the shared store. The
// view's Stats are computed against its own private key set, so they are
// exactly what a private cache would have reported — deterministic and
// independent of concurrent explanations — while the underlying scoring
// is deduplicated across every view of the Service.
func (s *Service) NewScorer(opts Options) *Scorer {
	if opts.Parallelism <= 0 {
		opts.Parallelism = 1
	}
	return &Scorer{svc: s, opts: opts, local: make(map[string]float64), memoized: make(map[string]bool)}
}

// Score implements explain.Model through the shared store.
func (s *Service) Score(p record.Pair) float64 {
	return s.ScoreBatch([]record.Pair{p})[0]
}

// ScoreBatch implements explain.BatchModel: duplicates inside the batch
// and pairs any earlier request stored are answered from the store, and
// only the remaining unique pairs reach the model.
//
// The error-less BatchModel surface cannot report a model failure: a
// native explain.ContextModel that errors under this uncancellable
// context panics (see the ContextModel contract — drive fallible models
// through ScoreBatchContext instead).
func (s *Service) ScoreBatch(pairs []record.Pair) []float64 {
	out, err := s.ScoreBatchContext(context.Background(), pairs)
	if err != nil {
		// Unreachable for plain and batch models.
		panic(fmt.Sprintf("scorecache: model %q failed outside cancellation: %v", s.model.Name(), err))
	}
	return out
}

// ScoreBatchContext implements explain.ContextModel: like ScoreBatch,
// but the caller's context governs the whole resolution — waiting on
// another caller's in-flight computation returns ctx.Err() as soon as
// ctx is cancelled, and a cancelled batch evaluation never installs a
// partial result set into the shared store.
func (s *Service) ScoreBatchContext(ctx context.Context, pairs []record.Pair) ([]float64, error) {
	out := make([]float64, len(pairs))
	if len(pairs) == 0 {
		return out, ctx.Err()
	}
	var keys []string
	var unique []record.Pair
	slots := make(map[string][]int, len(pairs))
	for i, p := range pairs {
		k := Key(p)
		if _, ok := slots[k]; !ok {
			keys = append(keys, k)
			unique = append(unique, p)
		}
		slots[k] = append(slots[k], i)
	}
	if dupes := len(pairs) - len(keys); dupes > 0 {
		s.statmu.Lock()
		s.stats.Lookups += dupes
		s.stats.Hits += dupes
		s.statmu.Unlock()
	}
	scores, err := s.fetch(ctx, keys, unique)
	if err != nil {
		return nil, err
	}
	for i, k := range keys {
		for _, slot := range slots[k] {
			out[slot] = scores[i]
		}
	}
	return out, nil
}

// shardFor stripes a key across the locks (FNV-1a).
func (s *Service) shardFor(key string) *serviceShard {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &s.shards[h%uint32(len(s.shards))]
}

// waiter records an output slot blocked on another goroutine's in-flight
// computation.
type waiter struct {
	slot int
	e    *entry
}

// fetch resolves unique keys against the store: stored scores are
// returned immediately, keys being computed by another goroutine are
// waited on, and the remaining misses are claimed, scored in one logical
// batch (sharded across ServiceOptions.Parallelism workers) and
// published. Keys must be unique within one call.
//
// ctx governs the waits: a caller whose context is cancelled while
// another caller computes its keys returns ctx.Err() immediately instead
// of blocking on work it no longer wants. A leader that fails mid-batch
// (cancellation or model panic) unpublishes its claims, so surviving
// waiters re-claim the keys and score them under their own contexts.
func (s *Service) fetch(ctx context.Context, keys []string, pairs []record.Pair) ([]float64, error) {
	out := make([]float64, len(keys))
	var claimed []int    // indexes this call must score
	var claims []*entry  // their store entries, index-aligned with claimed
	var waiters []waiter // indexes computed by concurrent callers
	hits := 0

	for i, k := range keys {
		sh := s.shardFor(k)
		sh.mu.Lock()
		if e, ok := sh.entries[k]; ok {
			select {
			case <-e.ready:
				out[i] = e.score
				sh.touch(e)
				hits++
			default:
				waiters = append(waiters, waiter{slot: i, e: e})
				hits++ // in-flight dedup: answered without a new model call
			}
			sh.mu.Unlock()
			continue
		}
		e := &entry{key: k, ready: make(chan struct{})}
		sh.entries[k] = e
		sh.mu.Unlock()
		claimed = append(claimed, i)
		claims = append(claims, e)
	}

	s.statmu.Lock()
	s.stats.Lookups += len(keys)
	s.stats.Hits += hits
	s.stats.Misses += len(claimed)
	if len(claimed) > 0 {
		s.stats.Batches++
	}
	s.statmu.Unlock()

	if len(claimed) > 0 {
		if err := s.scoreClaims(ctx, keys, pairs, out, claimed, claims); err != nil {
			return nil, err
		}
	}

	// Wait on concurrent computations only after publishing our own
	// claims, so two calls with overlapping key sets cannot deadlock.
	var retry []waiter
	for _, w := range waiters {
		select {
		case <-w.e.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if w.e.failed {
			// The leader was cancelled or crashed after we enlisted; its
			// defer removed the entry from the map, so the key is ours to
			// claim on a second pass.
			retry = append(retry, w)
			continue
		}
		out[w.slot] = w.e.score
	}
	if len(retry) > 0 {
		// The enlistment was counted as a lookup answered in flight
		// (a hit), but the leader failed and no answer ever arrived;
		// take the phantom hit back before the recursive re-claim
		// re-records the request as whatever it actually turns out to be.
		s.statmu.Lock()
		s.stats.Lookups -= len(retry)
		s.stats.Hits -= len(retry)
		s.statmu.Unlock()

		rkeys := make([]string, len(retry))
		rpairs := make([]record.Pair, len(retry))
		for i, w := range retry {
			rkeys[i] = keys[w.slot]
			rpairs[i] = pairs[w.slot]
		}
		scores, err := s.fetch(ctx, rkeys, rpairs)
		if err != nil {
			return nil, err
		}
		for i, w := range retry {
			out[w.slot] = scores[i]
		}
	}
	return out, nil
}

// scoreClaims evaluates this call's store misses in one logical batch
// and publishes the results. Publication is all-or-nothing: if the
// context is cancelled mid-batch or the model panics (for example on a
// batch-length contract violation), every claimed entry is unpublished
// and marked failed before the error or panic propagates — the shared
// store never holds a partial batch, and waiters are never left blocked
// on a leader that gave up.
func (s *Service) scoreClaims(ctx context.Context, keys []string, pairs []record.Pair, out []float64, claimed []int, claims []*entry) (err error) {
	published := false
	defer func() {
		if published {
			return
		}
		for _, e := range claims {
			sh := s.shardFor(e.key)
			sh.mu.Lock()
			delete(sh.entries, e.key)
			e.failed = true
			close(e.ready)
			sh.mu.Unlock()
		}
	}()

	scores := make([]float64, len(claimed))
	shards := s.opts.Parallelism
	if shards > len(claimed) {
		shards = len(claimed)
	}
	// Span for the model evaluation of this batch's true misses; the
	// matcher's featurize/forward spans nest under it (per shard).
	// Telemetry is a side channel — scoring and publication are
	// untouched by it.
	sp, ctx := telemetry.StartSpan(ctx, "model")
	sp.AddItems(len(claimed))
	err = workpool.EachContext(ctx, shards, shards, func(ctx context.Context, w int) error {
		per := (len(claimed) + shards - 1) / shards
		lo := w * per
		hi := lo + per
		if hi > len(claimed) {
			hi = len(claimed)
		}
		if lo >= hi {
			return nil
		}
		chunk := make([]record.Pair, hi-lo)
		for i := lo; i < hi; i++ {
			chunk[i-lo] = pairs[claimed[i]]
		}
		got, err := s.cmodel.ScoreBatchContext(ctx, chunk)
		if err != nil {
			return err
		}
		if len(got) != len(chunk) {
			// A silent mismatch would cache zeros; fail loudly instead.
			panic(fmt.Sprintf("scorecache: model %q returned %d scores for %d pairs",
				s.model.Name(), len(got), len(chunk)))
		}
		copy(scores[lo:hi], got)
		return nil
	})
	sp.End()
	if err != nil {
		return err
	}

	evictions := 0
	for i, e := range claims {
		out[claimed[i]] = scores[i]
		sh := s.shardFor(e.key)
		sh.mu.Lock()
		e.score = scores[i]
		close(e.ready)
		evictions += sh.link(e)
		sh.mu.Unlock()
	}
	published = true
	if s.flipEnabled() {
		// Publish every freshly scored key's predicted class to the flip
		// memo. Classes are one bool per content and never evicted, so the
		// memo can answer lattice flip questions about any content the
		// service ever scored — support candidates included — long after
		// the score itself may have been evicted.
		fkeys := make([]string, len(claims))
		fclasses := make([]bool, len(claims))
		for i, e := range claims {
			fkeys[i] = e.key
			fclasses[i] = scores[i] > 0.5
		}
		s.flipPut(fkeys, fclasses)
	}
	if evictions > 0 {
		s.statmu.Lock()
		s.stats.Evictions += evictions
		s.statmu.Unlock()
	}
	return nil
}

// direct evaluates pairs against the model without touching the store —
// the cache-disabled ablation path. The calls still count as shared
// lookups and misses so run-level cost accounting stays truthful.
func (s *Service) direct(ctx context.Context, pairs []record.Pair, parallelism int) ([]float64, error) {
	if len(pairs) == 0 {
		return nil, ctx.Err()
	}
	s.statmu.Lock()
	s.stats.Lookups += len(pairs)
	s.stats.Misses += len(pairs)
	s.stats.Batches++
	s.statmu.Unlock()

	scores := make([]float64, len(pairs))
	shards := parallelism
	if shards <= 0 {
		shards = 1
	}
	if shards > len(pairs) {
		shards = len(pairs)
	}
	err := workpool.EachContext(ctx, shards, shards, func(ctx context.Context, w int) error {
		per := (len(pairs) + shards - 1) / shards
		lo := w * per
		hi := lo + per
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			return nil
		}
		got, err := s.cmodel.ScoreBatchContext(ctx, pairs[lo:hi])
		if err != nil {
			return err
		}
		if len(got) != len(pairs[lo:hi]) {
			panic(fmt.Sprintf("scorecache: model %q returned %d scores for %d pairs",
				s.model.Name(), len(got), hi-lo))
		}
		copy(scores[lo:hi], got)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return scores, nil
}

// touch moves a ready entry to the LRU head. No-op for unbounded shards.
func (sh *serviceShard) touch(e *entry) {
	if sh.cap <= 0 || sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// link inserts a newly-ready entry at the LRU head and evicts past the
// capacity bound, returning the number of evictions. No-op (returning 0)
// for unbounded shards.
func (sh *serviceShard) link(e *entry) int {
	if sh.cap <= 0 {
		return 0
	}
	sh.pushFront(e)
	evicted := 0
	for sh.linked > sh.cap {
		cold := sh.tail
		sh.unlink(cold)
		delete(sh.entries, cold.key)
		evicted++
	}
	return evicted
}

func (sh *serviceShard) pushFront(e *entry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
	sh.linked++
}

func (sh *serviceShard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
	sh.linked--
}

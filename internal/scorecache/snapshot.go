package scorecache

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// The snapshot wire format, version 1:
//
//	magic   "CERTASC\x01"                      (8 bytes; version in the last byte)
//	count   uint64 LE
//	entry*  keyLen uint32 LE | key bytes | score float64 bits uint64 LE
//	crc     uint32 LE (IEEE CRC-32 of count + entries)
//
// Keys are the canonical pair-content strings of Key, so a snapshot
// written by one process warms any service wrapping a model with the
// same scoring behavior — record IDs, shard counts and capacity bounds
// do not participate. Entries are sorted by key, making snapshots of
// identical stores byte-identical.
var snapshotMagic = [8]byte{'C', 'E', 'R', 'T', 'A', 'S', 'C', 1}

// maxSnapshotKeyLen bounds a single key's length so a corrupted length
// frame cannot drive a multi-gigabyte allocation before the checksum
// gets a chance to reject the file.
const maxSnapshotKeyLen = 1 << 24

// Keys returns the canonical pair-content keys of every ready entry,
// sorted. It exists for cluster placement: a router (or a capacity
// planner) maps each key through ShardHash onto the ring to see how
// the store's working set distributes across workers. Like Snapshot it
// skips in-flight computations and may run concurrently with scoring.
func (s *Service) Keys() []string {
	var keys []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			select {
			case <-e.ready:
				if !e.failed {
					keys = append(keys, e.key)
				}
			default:
			}
		}
		sh.mu.Unlock()
	}
	sort.Strings(keys)
	return keys
}

// Len reports the number of ready entries currently stored.
func (s *Service) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			select {
			case <-e.ready:
				if !e.failed {
					n++
				}
			default:
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Snapshot writes every ready score to w in the versioned, length-framed
// binary format above and returns the number of entries written.
// In-flight (pending) computations are skipped; concurrent scoring may
// proceed while the snapshot is taken, shard by shard. A server writes
// the snapshot on graceful shutdown so its replacement restarts warm
// (Restore).
func (s *Service) Snapshot(w io.Writer) (int, error) {
	type snap struct {
		key   string
		score float64
	}
	var entries []snap
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			select {
			case <-e.ready:
				if !e.failed {
					entries = append(entries, snap{key: e.key, score: e.score})
				}
			default: // pending: another caller is still computing it
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return 0, fmt.Errorf("scorecache: writing snapshot magic: %w", err)
	}
	crc := crc32.NewIEEE()
	body := io.MultiWriter(bw, crc)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(entries)))
	if _, err := body.Write(buf[:]); err != nil {
		return 0, fmt.Errorf("scorecache: writing snapshot count: %w", err)
	}
	for _, e := range entries {
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(e.key)))
		if _, err := body.Write(buf[:4]); err != nil {
			return 0, fmt.Errorf("scorecache: writing snapshot entry: %w", err)
		}
		if _, err := io.WriteString(body, e.key); err != nil {
			return 0, fmt.Errorf("scorecache: writing snapshot entry: %w", err)
		}
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(e.score))
		if _, err := body.Write(buf[:]); err != nil {
			return 0, fmt.Errorf("scorecache: writing snapshot entry: %w", err)
		}
	}
	binary.LittleEndian.PutUint32(buf[:4], crc.Sum32())
	if _, err := bw.Write(buf[:4]); err != nil {
		return 0, fmt.Errorf("scorecache: writing snapshot checksum: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return 0, fmt.Errorf("scorecache: flushing snapshot: %w", err)
	}
	return len(entries), nil
}

// Restore reads a Snapshot back into the store and returns the number of
// entries installed. The whole file is parsed and checksum-verified
// before anything is installed, so a corrupted or truncated snapshot is
// rejected with an error and leaves the service exactly as it was — a
// server whose cache file fails to restore simply starts cold, never
// with half a snapshot and never by panicking. Keys already present
// (including in-flight computations) are kept over the snapshot's value;
// restored entries obey the capacity bound like any other insertion.
func (s *Service) Restore(r io.Reader) (int, error) {
	return s.RestoreFunc(r, nil)
}

// RestoreFunc is Restore with a placement filter: when keep is non-nil
// only entries whose canonical key satisfies it are installed, so a
// worker joining a ring can consume a donor's full snapshot and keep
// just the shard the ring assigns it (cluster.KeepOwned). The filter
// runs only after the whole stream has been parsed and
// checksum-verified — a corrupt snapshot is rejected identically with
// and without a filter, and never consults keep.
func (s *Service) RestoreFunc(r io.Reader, keep func(key string) bool) (int, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return 0, fmt.Errorf("scorecache: reading snapshot magic: %w", err)
	}
	if magic != snapshotMagic {
		return 0, fmt.Errorf("scorecache: bad snapshot magic %q (want %q)", magic[:], snapshotMagic[:])
	}
	crc := crc32.NewIEEE()
	body := io.TeeReader(br, crc)
	var buf [8]byte
	if _, err := io.ReadFull(body, buf[:]); err != nil {
		return 0, fmt.Errorf("scorecache: reading snapshot count: %w", err)
	}
	count := binary.LittleEndian.Uint64(buf[:])

	type snap struct {
		key   string
		score float64
	}
	var entries []snap
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(body, buf[:4]); err != nil {
			return 0, fmt.Errorf("scorecache: snapshot truncated at entry %d: %w", i, err)
		}
		keyLen := binary.LittleEndian.Uint32(buf[:4])
		if keyLen > maxSnapshotKeyLen {
			return 0, fmt.Errorf("scorecache: snapshot entry %d claims %d-byte key (corrupt)", i, keyLen)
		}
		key := make([]byte, keyLen)
		if _, err := io.ReadFull(body, key); err != nil {
			return 0, fmt.Errorf("scorecache: snapshot truncated at entry %d: %w", i, err)
		}
		if _, err := io.ReadFull(body, buf[:]); err != nil {
			return 0, fmt.Errorf("scorecache: snapshot truncated at entry %d: %w", i, err)
		}
		entries = append(entries, snap{
			key:   string(key),
			score: math.Float64frombits(binary.LittleEndian.Uint64(buf[:])),
		})
	}
	sum := crc.Sum32()
	if _, err := io.ReadFull(br, buf[:4]); err != nil {
		return 0, fmt.Errorf("scorecache: reading snapshot checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(buf[:4]); got != sum {
		return 0, fmt.Errorf("scorecache: snapshot checksum mismatch (file %08x, computed %08x)", got, sum)
	}

	installed := 0
	evictions := 0
	for _, en := range entries {
		if keep != nil && !keep(en.key) {
			continue
		}
		sh := s.shardFor(en.key)
		sh.mu.Lock()
		if _, ok := sh.entries[en.key]; ok {
			sh.mu.Unlock()
			continue
		}
		e := &entry{key: en.key, score: en.score, ready: make(chan struct{})}
		close(e.ready)
		sh.entries[en.key] = e
		evictions += sh.link(e)
		sh.mu.Unlock()
		installed++
		if s.flipEnabled() {
			// A restored score determines its class; seed the flip memo so
			// warm restarts answer lattice questions as well as scores.
			s.flipPut([]string{en.key}, []bool{en.score > 0.5})
		}
	}
	if evictions > 0 {
		s.statmu.Lock()
		s.stats.Evictions += evictions
		s.statmu.Unlock()
	}
	return installed, nil
}

package scorecache

// ShardHash is the stable placement hash of a canonical pair-content
// key (Key): FNV-1a over the key bytes, 64-bit. It exists so cluster
// routing and worker-side caching can never disagree about where a
// key lives — the router places requests on the ring by
// ShardHash(Key(pair)), and a worker filters a shipped snapshot down
// to its shard with the same function over the same canonical keys.
//
// The function is part of the wire contract, like the snapshot format:
// a ring of old-hash routers and new-hash workers would scatter every
// key to the wrong shard, so the constants below must never change.
// TestShardHashPinned pins known values; changing the hash fails that
// test until the change is acknowledged as a breaking one.
func ShardHash(key string) uint64 {
	// FNV-1a, 64-bit (offset basis and prime per the FNV reference).
	// Inlined rather than hash/fnv so the placement hash is visibly
	// frozen here and allocation-free on the router's hot path.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

package scorecache

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"certa/internal/record"
)

// blockingModel parks every Score call on release, signalling entered
// first, so tests can hold a singleflight leader in flight.
type blockingModel struct {
	entered chan struct{}
	release chan struct{}
}

func (blockingModel) Name() string { return "blocking" }

func (m blockingModel) Score(record.Pair) float64 {
	m.entered <- struct{}{}
	<-m.release
	return 0.7
}

// A caller whose context is cancelled while another explanation's
// in-flight call computes its key must return ctx.Err() immediately,
// not block until the leader finishes.
func TestWaiterCancelledWhileLeaderInFlight(t *testing.T) {
	m := blockingModel{entered: make(chan struct{}), release: make(chan struct{})}
	svc := NewService(m, ServiceOptions{})
	p := pairOf("x", "y")

	leaderDone := make(chan error, 1)
	go func() {
		_, err := svc.ScoreBatchContext(context.Background(), []record.Pair{p})
		leaderDone <- err
	}()
	<-m.entered // the leader has claimed the key and sits in the model

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := svc.ScoreBatchContext(ctx, []record.Pair{p})
		waiterDone <- err
	}()
	// Let the waiter enlist on the pending entry, then abandon it. The
	// leader is still parked, so only the ctx.Done branch can unblock it.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter still blocked on the leader's in-flight call")
	}

	close(m.release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader err = %v", err)
	}
}

// ctxModel is a native ContextModel: while armed, calls containing the
// poisoned content block until their context is cancelled and fail;
// everything else scores immediately. invocations counts
// ScoreBatchContext entries.
type ctxModel struct {
	poison      string
	armed       atomic.Bool // disarms after the first poisoned batch
	invocations atomic.Int64
	blocked     chan struct{} // signalled when a poisoned batch parks
}

func (m *ctxModel) Name() string { return "ctxmodel" }

func (m *ctxModel) Score(p record.Pair) float64 {
	return float64(len(p.Left.Value("a"))) / 10
}

func (m *ctxModel) ScoreBatchContext(ctx context.Context, pairs []record.Pair) ([]float64, error) {
	m.invocations.Add(1)
	for _, p := range pairs {
		if p.Left.Value("a") == m.poison && m.armed.CompareAndSwap(true, false) {
			if m.blocked != nil {
				m.blocked <- struct{}{}
			}
			<-ctx.Done()
			return nil, ctx.Err()
		}
	}
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		out[i] = m.Score(p)
	}
	return out, nil
}

// A leader cancelled mid-batch must not install any of the batch into
// the shared store — not even the shards that scored successfully.
func TestCancelledLeaderInstallsNothing(t *testing.T) {
	m := &ctxModel{poison: "bad"}
	m.armed.Store(true)
	// Parallelism 2 splits the two claimed keys into two model shards:
	// the "ok" shard succeeds, the poisoned shard fails on cancellation.
	svc := NewService(m, ServiceOptions{Parallelism: 2})
	pairs := []record.Pair{pairOf("ok", "1"), pairOf("bad", "1")}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := svc.ScoreBatchContext(ctx, pairs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Re-scoring the successful shard's pair must reach the model again:
	// had the partial batch been installed, this would be a store hit.
	before := m.invocations.Load()
	if _, err := svc.ScoreBatchContext(context.Background(), pairs[:1]); err != nil {
		t.Fatalf("re-score: %v", err)
	}
	if m.invocations.Load() == before {
		t.Fatal("cancelled leader installed a partial batch: re-score was answered from the store")
	}
}

// A waiter whose leader is cancelled re-claims the key under its own
// context and succeeds, instead of inheriting the leader's failure.
func TestWaiterSurvivesCancelledLeader(t *testing.T) {
	m := &ctxModel{poison: "bad", blocked: make(chan struct{}, 2)}
	m.armed.Store(true)
	svc := NewService(m, ServiceOptions{})
	p := pairOf("bad", "1")

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := svc.ScoreBatchContext(leaderCtx, []record.Pair{p})
		leaderDone <- err
	}()
	<-m.blocked // leader parked in the model

	// The waiter wants the same content under a healthy context. After
	// the leader is cancelled it must re-claim the key itself; the model
	// disarms after the first poisoned batch, so the waiter's own call
	// scores normally.
	waiterDone := make(chan error, 1)
	waiterScore := make(chan float64, 1)
	go func() {
		got, err := svc.ScoreBatchContext(context.Background(), []record.Pair{p})
		if err == nil {
			waiterScore <- got[0]
		}
		waiterDone <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter enlist
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}

	select {
	case err := <-waiterDone:
		if err != nil {
			t.Fatalf("waiter err = %v, want success after re-claiming", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter still blocked after its leader was cancelled")
	}
	if got, want := <-waiterScore, m.Score(p); got != want {
		t.Fatalf("waiter score = %v, want %v", got, want)
	}
}

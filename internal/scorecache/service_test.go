package scorecache

import (
	"sync"
	"testing"
	"time"

	"certa/internal/record"
)

// TestKeySchemaNameFramed is the collision regression for the key
// encoding: with the schema name written unframed, a record of schema
// "S;1:x" with an empty first value rendered identically to a record of
// schema "S" whose first value is "x" and second is empty.
func TestKeySchemaNameFramed(t *testing.T) {
	trickSchema := record.MustSchema("S;1:x", "a")
	plainSchema := record.MustSchema("S", "a", "b")
	right := record.MustNew("r", plainSchema, "", "")

	p1 := record.Pair{Left: record.MustNew("l", trickSchema, ""), Right: right}
	p2 := record.Pair{Left: record.MustNew("l", plainSchema, "x", ""), Right: right}
	if Key(p1) == Key(p2) {
		t.Fatalf("keys collide across schema-name/value boundary: %q", Key(p1))
	}
}

// slowModel delays every invocation so concurrent requests for the same
// key genuinely overlap in flight.
type slowModel struct {
	mu    sync.Mutex
	calls int
	delay time.Duration
}

func (m *slowModel) Name() string { return "slow" }

func (m *slowModel) Score(p record.Pair) float64 {
	m.mu.Lock()
	m.calls++
	m.mu.Unlock()
	if m.delay > 0 {
		time.Sleep(m.delay)
	}
	return float64(len(p.Left.Value("a"))+len(p.Right.Value("a"))) / 100
}

func (m *slowModel) Calls() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.calls
}

// TestSingleflightDeduplicatesInFlight is the singleflight contract: two
// explanations racing on the same key must produce exactly one model
// call and identical scores. Run under -race in CI.
func TestSingleflightDeduplicatesInFlight(t *testing.T) {
	m := &slowModel{delay: 20 * time.Millisecond}
	svc := NewService(m, ServiceOptions{})
	p := pairOf("x", "y")

	const racers = 8
	scores := make([]float64, racers)
	var start, done sync.WaitGroup
	start.Add(racers)
	done.Add(racers)
	for g := 0; g < racers; g++ {
		go func(g int) {
			defer done.Done()
			view := svc.NewScorer(Options{})
			start.Done()
			start.Wait() // all views release together
			scores[g] = view.Score(p)
		}(g)
	}
	done.Wait()

	if got := m.Calls(); got != 1 {
		t.Fatalf("%d racing views made %d model calls, want 1", racers, got)
	}
	for g := 1; g < racers; g++ {
		if scores[g] != scores[0] {
			t.Fatalf("racer %d got %v, racer 0 got %v", g, scores[g], scores[0])
		}
	}
	st := svc.Stats()
	if st.Misses != 1 || st.Lookups != racers || st.Hits != racers-1 {
		t.Fatalf("service stats = %+v, want 1 miss / %d lookups / %d hits", st, racers, racers-1)
	}
}

// TestViewStatsArePrivateEquivalent pins the determinism contract of the
// view split: a view layered over a warm shared store reports exactly
// the stats a private cache would, while the store answers its misses
// without reaching the model.
func TestViewStatsArePrivateEquivalent(t *testing.T) {
	m := &countingModel{}
	svc := NewService(m, ServiceOptions{})
	batch := []record.Pair{pairOf("x", "y"), pairOf("u", "v"), pairOf("x", "y")}

	a := svc.NewScorer(Options{})
	a.ScoreBatch(batch)
	callsAfterA := m.calls

	b := svc.NewScorer(Options{})
	b.ScoreBatch(batch)

	if m.calls != callsAfterA {
		t.Fatalf("second view reached the model: %d calls, want %d", m.calls, callsAfterA)
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("view stats differ with a warm store: %+v vs %+v", a.Stats(), b.Stats())
	}
	want := Stats{Lookups: 3, Hits: 1, Misses: 2, Batches: 1}
	if b.Stats() != want {
		t.Fatalf("view stats = %+v, want %+v", b.Stats(), want)
	}
	// Each view forwards only its 2 view-level misses to the store (the
	// in-batch duplicate never leaves the view), so the store sees 4
	// lookups: view A's 2 misses, then view B's 2 answered as hits.
	st := svc.Stats()
	if st.Lookups != 4 || st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("service stats = %+v, want 4 lookups / 2 hits / 2 misses", st)
	}
}

// TestCapacityBoundEvicts exercises the sharded LRU: the store never
// holds more than its capacity, evicted keys are re-scored on demand,
// and the returned scores are unaffected.
func TestCapacityBoundEvicts(t *testing.T) {
	m := &countingModel{}
	svc := NewService(m, ServiceOptions{Capacity: 8, Shards: 1})

	var pairs []record.Pair
	vals := []string{"a", "bb", "ccc", "dddd", "eeeee", "ffffff"}
	for _, a := range vals {
		for _, b := range vals {
			pairs = append(pairs, pairOf(a, b))
		}
	}
	first := svc.ScoreBatch(pairs)
	if svc.shards[0].linked > 8 {
		t.Fatalf("store holds %d entries, capacity 8", svc.shards[0].linked)
	}
	if svc.Stats().Evictions == 0 {
		t.Fatal("expected evictions past the capacity bound")
	}
	callsAfterFirst := m.calls
	second := svc.ScoreBatch(pairs)
	if m.calls <= callsAfterFirst {
		t.Fatal("evicted keys should be re-scored")
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("slot %d differs after eviction: %v vs %v", i, first[i], second[i])
		}
	}
}

// TestCapacityZeroIsUnbounded pins the default: no evictions, every key
// scored once ever.
func TestCapacityZeroIsUnbounded(t *testing.T) {
	m := &countingModel{}
	svc := NewService(m, ServiceOptions{Shards: 2})
	for round := 0; round < 3; round++ {
		for i := 0; i < 50; i++ {
			svc.Score(pairOf(string(rune('a'+i%26)), string(rune('a'+i/26))))
		}
	}
	if m.calls != 50 {
		t.Fatalf("unbounded store made %d model calls for 50 keys", m.calls)
	}
	if svc.Stats().Evictions != 0 {
		t.Fatalf("unbounded store evicted %d entries", svc.Stats().Evictions)
	}
}

// TestConcurrentViewsOverlappingKeys hammers the striped store from many
// views with overlapping key sets (run under -race in CI): the model
// must be reached exactly once per unique key, and every view must see
// identical scores.
func TestConcurrentViewsOverlappingKeys(t *testing.T) {
	m := &countingModel{}
	svc := NewService(m, ServiceOptions{Parallelism: 2, Shards: 4})

	vals := []string{"a", "bb", "ccc", "dddd", "eeeee", "ffffff", "g", "hh"}
	mkBatch := func(offset int) []record.Pair {
		var out []record.Pair
		for i, a := range vals {
			for j, b := range vals {
				if (i+j+offset)%3 == 0 { // overlapping subsets per view
					out = append(out, pairOf(a, b))
				}
			}
		}
		return out
	}

	const goroutines = 12
	results := make([][]float64, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			view := svc.NewScorer(Options{Parallelism: 2})
			for round := 0; round < 5; round++ {
				results[g] = view.ScoreBatch(mkBatch(g % 3))
			}
		}(g)
	}
	wg.Wait()

	unique := make(map[string]bool)
	for g := 0; g < goroutines; g++ {
		for _, p := range mkBatch(g % 3) {
			unique[Key(p)] = true
		}
	}
	if m.calls != len(unique) {
		t.Fatalf("model reached %d times for %d unique keys", m.calls, len(unique))
	}
	for g := 0; g < goroutines; g++ {
		ref := results[g%3]
		for i := range results[g] {
			if results[g][i] != ref[i] {
				t.Fatalf("view %d slot %d: %v != %v", g, i, results[g][i], ref[i])
			}
		}
	}
}

// TestServiceScoreBatchDeduplicates covers the Service used directly as
// a model (the baselines path): in-batch duplicates are resolved without
// extra model calls.
func TestServiceScoreBatchDeduplicates(t *testing.T) {
	m := &countingModel{}
	svc := NewService(m, ServiceOptions{})
	batch := []record.Pair{
		pairOf("x", "y"), pairOf("u", "v"), pairOf("x", "y"), pairOf("u", "v"),
	}
	scores := svc.ScoreBatch(batch)
	if m.calls != 2 {
		t.Fatalf("model invoked %d times, want 2 unique", m.calls)
	}
	if scores[0] != scores[2] || scores[1] != scores[3] {
		t.Fatal("duplicate slots must receive the shared score")
	}
	st := svc.Stats()
	if st.Lookups != 4 || st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("service stats = %+v, want 4 lookups / 2 hits / 2 misses", st)
	}
}

// TestDisabledViewBypassesStore pins the ablation semantics: a disabled
// view reaches the model on every lookup and never warms the store.
func TestDisabledViewBypassesStore(t *testing.T) {
	m := &countingModel{}
	svc := NewService(m, ServiceOptions{})
	off := svc.NewScorer(Options{Disabled: true})
	p := pairOf("x", "y")
	off.ScoreBatch([]record.Pair{p, p, p})
	off.Score(p)
	if m.calls != 4 {
		t.Fatalf("disabled view made %d model calls, want 4", m.calls)
	}
	on := svc.NewScorer(Options{})
	on.Score(p)
	if m.calls != 5 {
		t.Fatalf("store was warmed by the disabled view: %d calls, want 5", m.calls)
	}
}

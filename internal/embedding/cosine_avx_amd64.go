//go:build amd64

package embedding

// cosineAccumAVX accumulates out[0] = Σ a[i]·b[i], out[1] = Σ a[i]²,
// out[2] = Σ b[i]² over the first n elements. The three sums are
// independent accumulator lanes that walk i strictly in order — each
// addition is the same IEEE operation, in the same sequence, as the
// scalar loop's, so every result is bit-identical to cosineAccumGeneric
// (no FMA, no lane reassociation). Requires n > 0 and both slices at
// least n long. Implemented in cosine_avx_amd64.s.
//
// The kernel is correct but NOT dispatched: a reduction whose additions
// must stay in scalar order is latency-bound at one dependent add per
// element per lane, the very bound the compiler's scalar loop already
// sits on, and the lane-packing shuffles only add overhead (measured
// ~60 vs ~40 ns at dim 64, and ~2x slower at dims 32–512; see
// BenchmarkCosine). It is kept, gated and bit-identity-tested as the
// record of that measurement; the dispatched SIMD win lives in the
// element-wise featurization kernel (absdiffmul_avx_amd64.s), where no
// ordering constraint applies.
//
//go:noescape
func cosineAccumAVX(a, b *float64, n int, out *float64)

func cosineAccum(a, b []float64) (dot, na, nb float64) {
	return cosineAccumGeneric(a, b)
}

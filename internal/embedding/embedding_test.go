package embedding

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTokenDeterministicAndUnit(t *testing.T) {
	e := New(32)
	a := e.Token("bravia")
	b := e.Token("bravia")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Token embedding not deterministic")
		}
	}
	var norm float64
	for _, v := range a {
		norm += v * v
	}
	if math.Abs(math.Sqrt(norm)-1) > 1e-9 {
		t.Errorf("Token embedding norm = %v, want 1", math.Sqrt(norm))
	}
}

func TestDifferentTokensDiffer(t *testing.T) {
	e := New(32)
	if Cosine(e.Token("sony"), e.Token("panasonic")) > 0.9 {
		t.Error("unrelated tokens should not be near-identical")
	}
}

func TestTypoTokensAreClose(t *testing.T) {
	e := New(48)
	// Trigram blending should make typo variants closer than unrelated
	// tokens.
	typoSim := Cosine(e.Token("television"), e.Token("televsion"))
	unrelSim := Cosine(e.Token("television"), e.Token("keyboard"))
	if typoSim <= unrelSim {
		t.Errorf("typo sim %v should exceed unrelated sim %v", typoSim, unrelSim)
	}
	if typoSim < 0.3 {
		t.Errorf("typo sim %v too low for fastText-like behaviour", typoSim)
	}
}

func TestTextEmbedding(t *testing.T) {
	e := New(32)
	v := e.Text("sony bravia theater")
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if math.Abs(math.Sqrt(norm)-1) > 1e-9 {
		t.Errorf("Text norm = %v", norm)
	}
	// Missing text embeds to zero.
	z := e.Text("NaN")
	for _, x := range z {
		if x != 0 {
			t.Fatal("missing text should embed to zero vector")
		}
	}
	if Cosine(v, z) != 0 {
		t.Error("cosine with zero vector should be 0")
	}
}

func TestSharedTokensRaiseSimilarity(t *testing.T) {
	e := New(32)
	a := e.Text("sony bravia theater system")
	b := e.Text("sony bravia home theater")
	c := e.Text("canon pixma printer ink")
	if Cosine(a, b) <= Cosine(a, c) {
		t.Errorf("overlapping texts %v should beat disjoint %v", Cosine(a, b), Cosine(a, c))
	}
}

func TestIDFFit(t *testing.T) {
	e := New(16)
	corpus := []string{
		"sony bravia with hdmi", "panasonic viera with hdmi",
		"canon camera with zoom", "nikon camera with flash",
	}
	e.Fit(corpus)
	// "with" occurs in all docs, "bravia" in one: IDF(bravia) > IDF(with).
	if e.IDF("bravia") <= e.IDF("with") {
		t.Errorf("IDF(bravia)=%v should exceed IDF(with)=%v", e.IDF("bravia"), e.IDF("with"))
	}
	// Unknown tokens get the maximum weight.
	if e.IDF("zzz-unknown") < e.IDF("bravia") {
		t.Error("unknown tokens should be treated as rare")
	}
}

func TestIDFUnfitted(t *testing.T) {
	e := New(8)
	if e.IDF("anything") != 1 {
		t.Error("unfit embedder should return neutral IDF")
	}
}

func TestFitEmptyCorpus(t *testing.T) {
	e := New(8)
	e.Fit(nil)
	if e.IDF("x") != 1 {
		t.Error("empty corpus fit should leave IDF neutral")
	}
}

func TestNewPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}

func TestCosineProperties(t *testing.T) {
	e := New(24)
	f := func(a, b string) bool {
		va, vb := e.Text(a), e.Text(b)
		c := Cosine(va, vb)
		return c >= -1.0000001 && c <= 1.0000001 &&
			math.Abs(Cosine(va, vb)-Cosine(vb, va)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	g := func(a string) bool {
		v := e.Text(a)
		c := Cosine(v, v)
		// Self-similarity is 1 unless the vector is zero.
		var n float64
		for _, x := range v {
			n += x * x
		}
		if n == 0 {
			return c == 0
		}
		return math.Abs(c-1) < 1e-9
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTextEmbedding(b *testing.B) {
	e := New(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Text("sony bravia theater black micro system davis50b 5.1-channel surround")
	}
}

//go:build amd64

#include "textflag.h"

// func cosineAccumAVX(a, b *float64, n int, out *float64)
//
// Three accumulator lanes walk the input index strictly in order:
// X2 = [na, nb] (one VMULPD/VADDPD pair covers both squares of the
// iteration) and X0 = [dot] scalar. Separate multiply and add — never
// FMA — so each lane's sequence of IEEE operations is exactly the
// scalar loop's and the results are bit-identical to cosineAccumGeneric.
// The loop is unrolled two elements deep with disjoint scratch
// registers; the unroll does not reorder any lane's additions.
//
// Register plan:
//   DI = a cursor   SI = b cursor   CX = remaining count   DX = out
//   X8/X10 = [a, b] per element     X9/X11 = [b, a] shuffles
//   X12..X15 = products scratch
TEXT ·cosineAccumAVX(SB), NOSPLIT, $0-32
	MOVQ	a+0(FP), DI
	MOVQ	b+8(FP), SI
	MOVQ	n+16(FP), CX
	MOVQ	out+24(FP), DX
	VXORPD	X0, X0, X0	// [dot, -]
	VXORPD	X2, X2, X2	// [na, nb]

pair:
	CMPQ	CX, $2
	JLT	tail
	VMOVSD	(DI), X8
	VMOVHPD	(SI), X8, X8	// [a0, b0]
	VMOVSD	8(DI), X10
	VMOVHPD	8(SI), X10, X10	// [a1, b1]
	VMULPD	X8, X8, X12	// [a0², b0²]
	VADDPD	X12, X2, X2
	VPERMILPD	$1, X8, X9	// [b0, a0]
	VMULSD	X9, X8, X13	// a0·b0
	VADDSD	X13, X0, X0
	VMULPD	X10, X10, X14	// [a1², b1²]
	VADDPD	X14, X2, X2
	VPERMILPD	$1, X10, X11	// [b1, a1]
	VMULSD	X11, X10, X15	// a1·b1
	VADDSD	X15, X0, X0
	ADDQ	$16, DI
	ADDQ	$16, SI
	SUBQ	$2, CX
	JMP	pair

tail:
	TESTQ	CX, CX
	JZ	store
	VMOVSD	(DI), X8
	VMOVHPD	(SI), X8, X8	// [a, b]
	VMULPD	X8, X8, X12	// [a², b²]
	VADDPD	X12, X2, X2
	VPERMILPD	$1, X8, X9	// [b, a]
	VMULSD	X9, X8, X13	// a·b
	VADDSD	X13, X0, X0

store:
	VMOVSD	X0, 0(DX)	// dot
	VMOVUPD	X2, 8(DX)	// na, nb
	VZEROUPPER
	RET

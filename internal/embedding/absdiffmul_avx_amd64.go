//go:build amd64

package embedding

import "certa/internal/cpufeat"

// useAVX gates the assembly kernels at process start.
var useAVX = cpufeat.AVX

// absDiffMulAVX computes diff[i] = |a[i]-b[i]| and prod[i] = a[i]*b[i]
// for the first n elements, four per YMM iteration. n must be a positive
// multiple of 4; the caller finishes any remainder in Go. The absolute
// value replicates the scalar branch exactly — negate only where
// (a-b) < 0 — via compare-and-blend rather than clearing the sign bit,
// so -0 and NaN results carry the same bits as the scalar path.
// Implemented in absdiffmul_avx_amd64.s.
//
//go:noescape
func absDiffMulAVX(a, b, diff, prod *float64, n int)

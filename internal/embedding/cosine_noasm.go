//go:build !amd64

package embedding

func cosineAccum(a, b []float64) (dot, na, nb float64) {
	return cosineAccumGeneric(a, b)
}

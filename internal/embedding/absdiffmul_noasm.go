//go:build !amd64

package embedding

// useAVX is always false off amd64; AbsDiffMul runs the scalar path.
const useAVX = false

func absDiffMulAVX(a, b, diff, prod *float64, n int) {
	panic("embedding: absDiffMulAVX called without amd64 kernel")
}

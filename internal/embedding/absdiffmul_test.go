package embedding

import (
	"math"
	"math/rand"
	"testing"
)

// TestAbsDiffMulKernelBitIdentical gates the element-wise kernel: for
// random inputs — including ±0, NaN, infinities and subnormals — the
// vectorized path must produce the same bits as the scalar reference in
// every position, on every length (remainder handling included).
func TestAbsDiffMulKernelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	specials := []float64{0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1), 5e-324, -5e-324}
	for trial := 0; trial < 400; trial++ {
		n := rng.Intn(70)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			if rng.Intn(6) == 0 {
				a[i] = specials[rng.Intn(len(specials))]
			} else {
				a[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(13)-6))
			}
			if rng.Intn(6) == 0 {
				b[i] = specials[rng.Intn(len(specials))]
			} else {
				b[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(13)-6))
			}
		}
		wd := make([]float64, n)
		wp := make([]float64, n)
		absDiffMulGeneric(wd, wp, a, b)
		gd := make([]float64, n)
		gp := make([]float64, n)
		AbsDiffMul(gd, gp, a, b)
		for i := range wd {
			if math.Float64bits(gd[i]) != math.Float64bits(wd[i]) {
				t.Fatalf("trial %d n=%d diff[%d]: kernel %x != scalar %x (a=%v b=%v)",
					trial, n, i, math.Float64bits(gd[i]), math.Float64bits(wd[i]), a[i], b[i])
			}
			if math.Float64bits(gp[i]) != math.Float64bits(wp[i]) {
				t.Fatalf("trial %d n=%d prod[%d]: kernel %x != scalar %x (a=%v b=%v)",
					trial, n, i, math.Float64bits(gp[i]), math.Float64bits(wp[i]), a[i], b[i])
			}
		}
	}
}

func TestAbsDiffMulLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	AbsDiffMul(make([]float64, 2), make([]float64, 3), make([]float64, 3), make([]float64, 3))
}

func BenchmarkAbsDiffMul(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 64
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	d := make([]float64, n)
	p := make([]float64, n)
	b.Run("kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			AbsDiffMul(d, p, x, y)
		}
	})
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			absDiffMulGeneric(d, p, x, y)
		}
	})
}

package embedding

// AbsDiffMul writes diff[i] = |a[i]-b[i]| and prod[i] = a[i]*b[i] for
// every element — the inner loop of the DeepER featurizer (element-wise
// absolute difference and Hadamard product of the two record
// embeddings). The operations are independent per element, so the amd64
// kernel vectorizes them four lanes wide with no change in the result:
// each lane performs exactly the scalar sequence (subtract, negate if
// negative, multiply), making the output bit-identical to the pure-Go
// path including -0 and NaN propagation
// (TestAbsDiffMulKernelBitIdentical). All four slices must have equal
// length.
func AbsDiffMul(diff, prod, a, b []float64) {
	n := len(a)
	if len(b) != n || len(diff) != n || len(prod) != n {
		panic("embedding: AbsDiffMul slice lengths differ")
	}
	if n == 0 {
		return
	}
	if useAVX && n >= 4 {
		q := n &^ 3
		absDiffMulAVX(&a[0], &b[0], &diff[0], &prod[0], q)
		a, b, diff, prod = a[q:], b[q:], diff[q:], prod[q:]
	}
	absDiffMulGeneric(diff, prod, a, b)
}

// absDiffMulGeneric is the scalar reference; the kernel must match it
// bit for bit.
func absDiffMulGeneric(diff, prod, a, b []float64) {
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		diff[i] = d
		prod[i] = a[i] * b[i]
	}
}

package embedding

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// embedderState is the gob-serializable view of an Embedder.
type embedderState struct {
	Dim        int
	IDF        map[string]float64
	DefaultIDF float64
}

// MarshalBinary serializes the embedder (dimension and fitted IDF
// table). Token vectors are hash-derived and need no storage.
func (e *Embedder) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	st := embedderState{Dim: e.Dim, IDF: e.idf, DefaultIDF: e.defaultIDF}
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("embedding: encoding embedder: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores an embedder serialized by MarshalBinary.
func (e *Embedder) UnmarshalBinary(data []byte) error {
	var st embedderState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("embedding: decoding embedder: %w", err)
	}
	if st.Dim <= 0 {
		return fmt.Errorf("embedding: decoded dimension %d is invalid", st.Dim)
	}
	e.Dim = st.Dim
	e.idf = st.IDF
	e.defaultIDF = st.DefaultIDF
	if e.defaultIDF == 0 {
		e.defaultIDF = 1
	}
	return nil
}

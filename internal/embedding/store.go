package embedding

import (
	"sync"
	"sync/atomic"
)

// StoreOptions tunes a Store.
type StoreOptions struct {
	// Shards is the number of lock stripes (default 32, rounded up to a
	// power of two). More shards means less contention between
	// concurrent explanations scoring through the same matcher.
	Shards int
	// Capacity bounds the total number of cached texts (0 = unbounded).
	// When a shard exceeds its share, its oldest entries are evicted
	// FIFO — embeddings are cheap to recompute and the working set of a
	// perturbation workload is dominated by a stable core of pivot
	// attribute texts, so approximate recency is enough.
	Capacity int
}

// Store is a concurrency-safe, content-keyed cache of text embeddings in
// front of an Embedder. Embedder.Text is a pure function of the input
// string (hashed embeddings, fitted IDF table frozen after Fit), so
// memoization is invisible to callers: the same bytes come back whether
// the vector was computed or cached. Perturbed records in an explanation
// workload reuse the pivot pair's attribute texts thousands of times
// across batches and across explanations; the store makes each distinct
// string cost one embedding per process lifetime instead of one per
// batch.
//
// Returned vectors are shared and must be treated as read-only.
type Store struct {
	emb    *Embedder
	shards []storeShard
	mask   uint64
	perCap int // max entries per shard; 0 = unbounded

	lookups   atomic.Int64
	hits      atomic.Int64
	evictions atomic.Int64
}

type storeShard struct {
	mu   sync.RWMutex
	m    map[string][]float64
	fifo []string // insertion order, for capacity eviction
}

// NewStore creates a store over a fitted embedder.
func NewStore(emb *Embedder, opts StoreOptions) *Store {
	n := opts.Shards
	if n <= 0 {
		n = 32
	}
	// Round up to a power of two so shard selection is a mask.
	p := 1
	for p < n {
		p <<= 1
	}
	s := &Store{emb: emb, shards: make([]storeShard, p), mask: uint64(p - 1)}
	if opts.Capacity > 0 {
		s.perCap = (opts.Capacity + p - 1) / p
	}
	for i := range s.shards {
		s.shards[i].m = make(map[string][]float64)
	}
	return s
}

// Text returns the embedding of s, computing and caching it on first
// sight. Safe for concurrent use; the returned slice is shared and
// read-only.
func (st *Store) Text(s string) []float64 {
	st.lookups.Add(1)
	sh := &st.shards[fnv64(s)&st.mask]
	sh.mu.RLock()
	v, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		st.hits.Add(1)
		return v
	}
	// Compute outside the lock: a racing duplicate computation produces
	// identical bytes (Text is pure), so last-writer-wins is benign and
	// the write lock is never held across the embedding math.
	v = st.emb.Text(s)
	sh.mu.Lock()
	if prev, ok := sh.m[s]; ok {
		sh.mu.Unlock()
		st.hits.Add(1)
		return prev
	}
	sh.m[s] = v
	if st.perCap > 0 {
		sh.fifo = append(sh.fifo, s)
		for len(sh.fifo) > st.perCap {
			old := sh.fifo[0]
			sh.fifo = sh.fifo[1:]
			delete(sh.m, old)
			st.evictions.Add(1)
		}
	}
	sh.mu.Unlock()
	return v
}

// StoreStats is a consistent-enough snapshot of store activity (counters
// are sampled independently, so ratios may be off by in-flight calls).
type StoreStats struct {
	Lookups   int
	Hits      int
	Misses    int
	Evictions int
	Entries   int
}

// HitRate is Hits/Lookups, 0 when idle.
func (s StoreStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Stats snapshots the store's counters and current size.
func (st *Store) Stats() StoreStats {
	s := StoreStats{
		Lookups:   int(st.lookups.Load()),
		Hits:      int(st.hits.Load()),
		Evictions: int(st.evictions.Load()),
	}
	s.Misses = s.Lookups - s.Hits
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		s.Entries += len(sh.m)
		sh.mu.RUnlock()
	}
	return s
}

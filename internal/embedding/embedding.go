// Package embedding provides deterministic token and text embeddings for
// the ER matchers. In place of the pre-trained fastText vectors used by
// DeepER/DeepMatcher (unavailable offline), tokens are embedded by
// hashing: each token's vector is a unit vector derived from a
// deterministic PRNG seeded by the token's hash, blended with the hashed
// vectors of its character trigrams. The trigram blending gives the
// fastText-like property that typo variants of a token land close to each
// other, which the benchmarks' noisy values rely on.
//
// Text embeddings are IDF-weighted means of token vectors; IDF is fit on
// the benchmark corpus so frequent filler words ("with", "and") carry
// less weight than discriminative tokens (brands, model numbers).
package embedding

import (
	"math"

	"certa/internal/strutil"
)

// Embedder turns tokens and texts into fixed-dimension dense vectors.
// After Fit it is read-only and safe for concurrent use.
type Embedder struct {
	// Dim is the embedding dimensionality.
	Dim int

	idf        map[string]float64
	defaultIDF float64
}

// New creates an embedder with the given dimensionality.
func New(dim int) *Embedder {
	if dim <= 0 {
		panic("embedding: dimension must be positive")
	}
	return &Embedder{Dim: dim, defaultIDF: 1}
}

// Fit computes IDF weights from a corpus of documents (each document is a
// raw text whose tokens are counted once).
func (e *Embedder) Fit(corpus []string) {
	df := make(map[string]int)
	for _, doc := range corpus {
		for tok := range strutil.TokenSet(doc) {
			df[tok]++
		}
	}
	n := float64(len(corpus))
	if n == 0 {
		return
	}
	e.idf = make(map[string]float64, len(df))
	for tok, d := range df {
		e.idf[tok] = math.Log(1 + n/float64(d))
	}
	// Unknown tokens are treated as rare (high signal).
	e.defaultIDF = math.Log(1 + n)
}

// IDF returns the inverse document frequency weight of a token.
func (e *Embedder) IDF(tok string) float64 {
	if e.idf == nil {
		return 1
	}
	if w, ok := e.idf[tok]; ok {
		return w
	}
	return e.defaultIDF
}

// Token embeds a single token: the hashed whole-token vector plus the sum
// of its hashed trigram vectors, L2-normalized.
func (e *Embedder) Token(tok string) []float64 {
	v := make([]float64, e.Dim)
	addHashed(v, tok, 1)
	for _, g := range strutil.NGrams(tok, 3) {
		addHashed(v, "##"+g, 0.5)
	}
	normalize(v)
	return v
}

// Text embeds a whole text as the IDF-weighted mean of its token
// embeddings, L2-normalized. Missing values embed to the zero vector.
func (e *Embedder) Text(s string) []float64 {
	v := make([]float64, e.Dim)
	toks := strutil.Tokenize(s)
	if len(toks) == 0 {
		return v
	}
	for _, tok := range toks {
		w := e.IDF(tok)
		tv := e.Token(tok)
		for i := range v {
			v[i] += w * tv[i]
		}
	}
	normalize(v)
	return v
}

// Cosine is the cosine similarity between two embeddings, 0 when either
// is the zero vector.
func Cosine(a, b []float64) float64 {
	dot, na, nb := cosineAccum(a, b)
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// cosineAccumGeneric is the pure-Go accumulator and the reference the
// amd64 kernel must match bit-for-bit (TestCosineAccumKernelBitIdentical).
func cosineAccumGeneric(a, b []float64) (dot, na, nb float64) {
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	return dot, na, nb
}

// addHashed adds weight * unitHash(s) into v using a splitmix64 stream
// seeded by the FNV-1a hash of s. The per-component values approximate a
// standard normal via the sum of uniforms.
func addHashed(v []float64, s string, weight float64) {
	state := fnv64(s)
	for i := range v {
		// Sum of 4 uniforms, centered: approximately normal with
		// variance 1/3; good enough token geometry.
		var sum float64
		for k := 0; k < 4; k++ {
			state = splitmix64(state)
			sum += float64(state>>11) / float64(1<<53)
		}
		v[i] += weight * (sum - 2)
	}
}

func normalize(v []float64) {
	var n float64
	for _, x := range v {
		n += x * x
	}
	if n == 0 {
		return
	}
	n = math.Sqrt(n)
	for i := range v {
		v[i] /= n
	}
}

func fnv64(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

//go:build amd64

#include "textflag.h"

DATA signmask<>+0(SB)/8, $0x8000000000000000
DATA signmask<>+8(SB)/8, $0x8000000000000000
DATA signmask<>+16(SB)/8, $0x8000000000000000
DATA signmask<>+24(SB)/8, $0x8000000000000000
GLOBL signmask<>(SB), RODATA|NOPTR, $32

// func absDiffMulAVX(a, b, diff, prod *float64, n int)
//
// Four elements per iteration: d = a-b, then blend in -d exactly where
// d < 0 (ordered compare, so NaN keeps the subtraction's own result and
// -0 survives, matching the scalar branch bit for bit), and the Hadamard
// product. Element-wise only — no cross-lane reduction — so
// vectorization cannot reorder any floating-point operation.
//
// Register plan:
//   DI = a   SI = b   R8 = diff   R9 = prod   CX = remaining count
//   Y7 = sign mask    Y6 = zeros
TEXT ·absDiffMulAVX(SB), NOSPLIT, $0-40
	MOVQ	a+0(FP), DI
	MOVQ	b+8(FP), SI
	MOVQ	diff+16(FP), R8
	MOVQ	prod+24(FP), R9
	MOVQ	n+32(FP), CX
	VMOVUPD	signmask<>(SB), Y7
	VXORPD	Y6, Y6, Y6
loop:
	VMOVUPD	(DI), Y0
	VMOVUPD	(SI), Y1
	VSUBPD	Y1, Y0, Y2	// d = a-b
	VXORPD	Y7, Y2, Y3	// -d
	VCMPPD	$1, Y6, Y2, Y4	// d < 0 (LT_OS: false for NaN)
	VBLENDVPD	Y4, Y3, Y2, Y5
	VMOVUPD	Y5, (R8)
	VMULPD	Y1, Y0, Y5	// a*b
	VMOVUPD	Y5, (R9)
	ADDQ	$32, DI
	ADDQ	$32, SI
	ADDQ	$32, R8
	ADDQ	$32, R9
	SUBQ	$4, CX
	JNZ	loop
	VZEROUPPER
	RET

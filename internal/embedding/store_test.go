package embedding

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func fittedEmbedder() *Embedder {
	e := New(16)
	e.Fit([]string{"apple pie with cream", "apple tart", "cream soda"})
	return e
}

// TestStoreBitIdentical: cached vectors must be the exact bytes the bare
// embedder produces — memoization is invisible.
func TestStoreBitIdentical(t *testing.T) {
	emb := fittedEmbedder()
	st := NewStore(emb, StoreOptions{})
	texts := []string{"apple pie", "cream", "", "apple pie", "zebra 42"}
	for _, s := range texts {
		got := st.Text(s)
		want := emb.Text(s)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Store.Text(%q) = %v, want %v", s, got, want)
		}
	}
	stats := st.Stats()
	if stats.Lookups != 5 || stats.Hits != 1 || stats.Misses != 4 {
		t.Fatalf("stats = %+v, want 5 lookups / 1 hit / 4 misses", stats)
	}
	if stats.Entries != 4 {
		t.Fatalf("entries = %d, want 4", stats.Entries)
	}
}

// TestStoreConcurrent hammers one store from many goroutines (run under
// -race in CI) and checks every returned vector against the pure
// embedder.
func TestStoreConcurrent(t *testing.T) {
	emb := fittedEmbedder()
	st := NewStore(emb, StoreOptions{Shards: 4})
	keys := make([]string, 40)
	want := make(map[string][]float64, len(keys))
	for i := range keys {
		keys[i] = fmt.Sprintf("item %d of corpus", i)
		want[keys[i]] = emb.Text(keys[i])
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keys[(g*7+i)%len(keys)]
				if !reflect.DeepEqual(st.Text(k), want[k]) {
					errs <- "concurrent Store.Text diverged from Embedder.Text"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if st.Stats().Entries != len(keys) {
		t.Fatalf("entries = %d, want %d", st.Stats().Entries, len(keys))
	}
}

// TestStoreCapacity: a bounded store evicts FIFO but keeps serving
// correct vectors for evicted keys (recompute on next lookup).
func TestStoreCapacity(t *testing.T) {
	emb := fittedEmbedder()
	st := NewStore(emb, StoreOptions{Shards: 1, Capacity: 8})
	for i := 0; i < 50; i++ {
		st.Text(fmt.Sprintf("key %d", i))
	}
	stats := st.Stats()
	if stats.Entries > 8 {
		t.Fatalf("entries = %d, want <= 8", stats.Entries)
	}
	if stats.Evictions != 50-stats.Entries {
		t.Fatalf("evictions = %d, entries = %d, want evictions+entries = 50", stats.Evictions, stats.Entries)
	}
	// An evicted key still round-trips correctly.
	if !reflect.DeepEqual(st.Text("key 0"), emb.Text("key 0")) {
		t.Fatal("evicted key recomputed incorrectly")
	}
}

package embedding

import (
	"math"
	"math/rand"
	"testing"
)

// TestCosineAccumKernelBitIdentical is the kernel's correctness gate: on
// hardware where the AVX path runs, every accumulator must match the
// pure-Go reference bit for bit — same IEEE operations in the same
// order, no FMA contraction, no lane reassociation. On machines (or
// architectures) without the kernel the comparison is trivially true,
// so the test is portable.
func TestCosineAccumKernelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(300)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			// Mix magnitudes so rounding actually exercises the order of
			// operations; include exact zeros and negatives.
			a[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(13)-6))
			b[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(13)-6))
			if rng.Intn(17) == 0 {
				a[i] = 0
			}
			if rng.Intn(17) == 0 {
				b[i] = 0
			}
		}
		gd, gna, gnb := cosineAccumGeneric(a, b)
		kd, kna, knb := cosineAccum(a, b)
		if math.Float64bits(gd) != math.Float64bits(kd) ||
			math.Float64bits(gna) != math.Float64bits(kna) ||
			math.Float64bits(gnb) != math.Float64bits(knb) {
			t.Fatalf("n=%d: kernel (%x,%x,%x) != generic (%x,%x,%x)", n,
				math.Float64bits(kd), math.Float64bits(kna), math.Float64bits(knb),
				math.Float64bits(gd), math.Float64bits(gna), math.Float64bits(gnb))
		}
	}
}

// TestCosineZeroVectors pins the zero-norm contract across both paths.
func TestCosineZeroVectors(t *testing.T) {
	z := make([]float64, 8)
	v := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if got := Cosine(z, v); got != 0 {
		t.Fatalf("Cosine(0, v) = %v, want 0", got)
	}
	if got := Cosine(v, z); got != 0 {
		t.Fatalf("Cosine(v, 0) = %v, want 0", got)
	}
	if got := Cosine(nil, nil); got != 0 {
		t.Fatalf("Cosine(nil, nil) = %v, want 0", got)
	}
}

func BenchmarkCosine(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 64)
	y := make([]float64, 64)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.Run("kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Cosine(x, y)
		}
	})
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dot, na, nb := cosineAccumGeneric(x, y)
			if na != 0 && nb != 0 {
				_ = dot / math.Sqrt(na*nb)
			}
		}
	})
}

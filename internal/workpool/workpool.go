// Package workpool provides the bounded-concurrency worker primitive
// shared by the batched scoring pipeline: ExplainBatch fans explanations
// out over it, and the score cache shards batch evaluations through it.
//
// The design follows errgroup-with-SetLimit: run n index-addressed jobs
// with at most `workers` goroutines, collect per-index errors, and
// report the lowest-index error so callers see a deterministic failure
// regardless of scheduling. Workers write results into caller-owned,
// index-aligned slices, which keeps outputs byte-identical at any
// parallelism.
package workpool

import "sync"

// Each runs fn(0), fn(1), ..., fn(n-1) with at most workers concurrent
// goroutines and returns the lowest-index error (nil if every call
// succeeded).
//
// With workers <= 1 the jobs run inline on the calling goroutine and
// Each short-circuits on the first error, exactly like a plain loop. In
// parallel mode every job is attempted even if an earlier index fails;
// only the reported error is deterministic.
func Each(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Package workpool provides the bounded-concurrency worker primitive
// shared by the batched scoring pipeline: ExplainBatch fans explanations
// out over it, and the score cache shards batch evaluations through it.
//
// The design follows errgroup-with-SetLimit: run n index-addressed jobs
// with at most `workers` goroutines and collect per-index errors.
// Workers write results into caller-owned, index-aligned slices, which
// keeps successful outputs byte-identical at any parallelism. Failure
// is fail-fast: the first error cancels the run's context and stops
// dispatching new jobs, so one poisoned job does not pay for the whole
// batch. Error reporting is deterministic when a single job fails (the
// common case); with several concurrent failures, which one is reported
// depends on which jobs the cancellation reached first — see
// EachContext.
package workpool

import (
	"context"
	"errors"
	"sync"
)

// Each runs fn(0), fn(1), ..., fn(n-1) with at most workers concurrent
// goroutines and returns the lowest-index job error (nil if every call
// succeeded).
//
// With workers <= 1 the jobs run inline on the calling goroutine and
// Each short-circuits on the first error, exactly like a plain loop. In
// parallel mode the first error stops dispatch, so jobs not yet handed
// to a worker never start; jobs already in flight run to completion.
func Each(n, workers int, fn func(i int) error) error {
	return EachContext(context.Background(), n, workers, func(_ context.Context, i int) error {
		return fn(i)
	})
}

// EachContext is Each under a caller context: fn receives a context that
// is cancelled as soon as ctx is cancelled or any job returns an error,
// so cooperative jobs (and the scoring calls inside them) can abandon
// work the batch no longer needs. Dispatch stops at the first
// cancellation — a job that fails promptly leaves later indexes
// unstarted.
//
// The returned error is deterministic where determinism is possible: the
// lowest-index error that is not itself a cancellation is preferred
// (sibling jobs cut short by fail-fast report context.Canceled, which
// must not mask the root cause). When every recorded error is
// cancellation-classed, the caller context's error wins — a cancelled
// batch reports ctx.Err() verbatim — and failing that, the job error
// that triggered the fail-fast is reported, so a root cause that merely
// wraps a context error (a model's own RPC timeout, say) still
// surfaces.
func EachContext(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	inner, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	jobs := make(chan int)
	// rootErr remembers the job error that triggered the fail-fast
	// cancellation: if that error itself wraps a context error (an
	// RPC-backed model's own timeout, say), the classification scan below
	// would lump it in with the sibling cancellations it caused and mask
	// the root cause.
	var rootOnce sync.Once
	var rootErr error
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				// A job can be handed out in the same instant the batch is
				// cancelled (the dispatch select has both cases ready);
				// record the cancellation instead of running it.
				if err := inner.Err(); err != nil {
					errs[i] = err
					continue
				}
				if errs[i] = fn(inner, i); errs[i] != nil {
					rootOnce.Do(func() { rootErr = errs[i]; cancel() })
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-inner.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			continue
		}
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Every recorded error is cancellation-classed and the caller's
	// context is live: the failure originated inside a job. Report the
	// error that started the fail-fast, not a sibling's induced
	// cancellation.
	return rootErr
}

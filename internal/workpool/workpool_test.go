package workpool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 16} {
		n := 100
		hit := make([]int32, n)
		err := Each(n, workers, func(i int) error {
			atomic.AddInt32(&hit[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestEachZeroJobs(t *testing.T) {
	if err := Each(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestEachReportsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := Each(50, workers, func(i int) error {
			if i == 7 || i == 31 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 7 failed" {
			t.Fatalf("workers=%d: err = %v, want job 7 failed", workers, err)
		}
	}
}

func TestEachSequentialShortCircuits(t *testing.T) {
	ran := 0
	err := Each(10, 1, func(i int) error {
		ran++
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if ran != 4 {
		t.Fatalf("sequential mode ran %d jobs after error, want 4", ran)
	}
}

func TestEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var mu sync.Mutex
	cur, peak := 0, 0
	err := Each(64, workers, func(int) error {
		mu.Lock()
		cur++
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		mu.Lock()
		cur--
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Fatalf("observed %d concurrent jobs, bound is %d", peak, workers)
	}
}

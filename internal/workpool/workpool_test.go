package workpool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 16} {
		n := 100
		hit := make([]int32, n)
		err := Each(n, workers, func(i int) error {
			atomic.AddInt32(&hit[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestEachZeroJobs(t *testing.T) {
	if err := Each(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestEachReportsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := Each(50, workers, func(i int) error {
			if i == 7 || i == 31 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 7 failed" {
			t.Fatalf("workers=%d: err = %v, want job 7 failed", workers, err)
		}
	}
}

func TestEachSequentialShortCircuits(t *testing.T) {
	ran := 0
	err := Each(10, 1, func(i int) error {
		ran++
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if ran != 4 {
		t.Fatalf("sequential mode ran %d jobs after error, want 4", ran)
	}
}

// Regression test: parallel Each used to attempt every remaining job
// after an index failed. A poisoned job at index 0 must now cancel the
// batch before jobs beyond the in-flight window start. (Each routes
// through EachContext; the test drives EachContext directly so the
// non-poisoned jobs can park on the fail-fast cancellation itself,
// which is guaranteed to arrive, rather than on test state.)
func TestEachFailFastLeavesLaterJobsUnstarted(t *testing.T) {
	const n, workers = 1000, 4
	var started atomic.Int32
	err := EachContext(context.Background(), n, workers, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			return errors.New("poisoned")
		}
		<-ctx.Done() // park until the poisoned job's failure cancels the batch
		return nil
	})
	if err == nil || err.Error() != "poisoned" {
		t.Fatalf("err = %v, want poisoned", err)
	}
	// At most the initial in-flight window, plus one racy dequeue per
	// other worker whose inner.Err() pre-check ran before the
	// cancellation landed; a worker resumed by ctx.Done() always sees
	// the cancellation on its next dequeue. Without fail-fast all 1000
	// jobs would run.
	if got := started.Load(); got >= 2*workers {
		t.Fatalf("%d jobs started after index 0 failed, want < %d", got, 2*workers)
	}
}

func TestEachContextCancelStopsDispatchAndReturnsCtxErr(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		err := EachContext(ctx, 100, workers, func(c context.Context, i int) error {
			ran.Add(1)
			if i == 0 {
				cancel()
				return c.Err()
			}
			<-c.Done() // park until the cancellation lands
			return c.Err()
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got > int32(workers) {
			t.Fatalf("workers=%d: %d jobs ran after cancellation, want at most %d", workers, got, workers)
		}
	}
}

func TestEachContextPreExpiredContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := EachContext(ctx, 10, 4, func(context.Context, int) error {
		t.Error("job ran under an expired context")
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// A sibling cancelled by fail-fast must not mask the root-cause error,
// even when the cancelled job sits at a lower index.
func TestEachContextCancellationDoesNotMaskRootCause(t *testing.T) {
	boom := errors.New("boom")
	failed := make(chan struct{})
	err := EachContext(context.Background(), 2, 2, func(ctx context.Context, i int) error {
		if i == 1 {
			defer close(failed)
			return boom
		}
		<-failed
		<-ctx.Done() // observe the fail-fast cancellation
		return ctx.Err()
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// A root-cause error that itself wraps a context error (a model's own
// RPC timeout, say) must not be masked by the sibling cancellations it
// triggers.
func TestEachContextRootCauseWrappingCtxErrorSurfaces(t *testing.T) {
	rpcErr := fmt.Errorf("rpc call: %w", context.DeadlineExceeded)
	err := EachContext(context.Background(), 8, 4, func(ctx context.Context, i int) error {
		if i == 0 {
			return rpcErr
		}
		<-ctx.Done() // induced cancellations must not win
		return ctx.Err()
	})
	if !errors.Is(err, rpcErr) {
		t.Fatalf("err = %v, want the root-cause rpc error", err)
	}
}

func TestEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var mu sync.Mutex
	cur, peak := 0, 0
	err := Each(64, workers, func(int) error {
		mu.Lock()
		cur++
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		mu.Lock()
		cur--
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Fatalf("observed %d concurrent jobs, bound is %d", peak, workers)
	}
}

package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"certa/internal/record"
	"certa/internal/strutil"
)

// randomTables builds two random sources whose names come from a small
// vocabulary, guaranteeing a mix of matching and non-matching pairs for
// the name-only model.
func randomTables(rng *rand.Rand, n int) (*record.Table, *record.Table) {
	ls := record.MustSchema("U", "name", "desc", "price")
	rs := record.MustSchema("V", "name", "desc", "price")
	left := record.NewTable(ls)
	right := record.NewTable(rs)
	words := []string{"ares", "boreas", "chronos", "demeter", "eos", "freya"}
	val := func() string {
		return words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
	}
	for i := 0; i < n; i++ {
		left.MustAdd(record.MustNew(fmt.Sprintf("l%d", i), ls, val(), val(), fmt.Sprint(rng.Intn(50))))
		right.MustAdd(record.MustNew(fmt.Sprintf("r%d", i), rs, val(), val(), fmt.Sprint(rng.Intn(50))))
	}
	return left, right
}

// Property: on arbitrary random tables and pairs, a CERTA explanation of
// the (monotone) name-only model maintains its core invariants:
// probabilities in range, counterfactuals actually flip, changed
// attributes belong to A★'s side, and the saliency of attributes the
// model ignores never exceeds attributes it reads.
func TestExplainInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		left, right := randomTables(rng, 4+rng.Intn(6))
		u := left.Records[rng.Intn(left.Len())]
		v := right.Records[rng.Intn(right.Len())]
		p := record.Pair{Left: u, Right: v}

		e := New(left, right, Options{Triangles: 8, Seed: seed, DisableAugmentation: true})
		res, err := e.Explain(nameModel{}, p)
		if err != nil {
			return false
		}
		for _, phi := range res.Saliency.Scores {
			if phi < 0 || phi > 1 {
				return false
			}
		}
		for _, chi := range res.Sufficiency {
			if chi < 0 || chi > 1 {
				return false
			}
		}
		for _, cf := range res.Counterfactuals {
			if !cf.Flips() {
				// Counterfactuals for the monotone name model are exact.
				return false
			}
			for _, ref := range cf.Changed {
				if ref.Side != res.BestSet.Side {
					return false
				}
			}
		}
		// The model reads only names: any flip must involve a name, so
		// name saliency (summed over sides) dominates every other attr.
		if res.Diag.Flips > 0 {
			nameScore := res.Saliency.Scores[record.AttrRef{Side: record.Left, Attr: "name"}] +
				res.Saliency.Scores[record.AttrRef{Side: record.Right, Attr: "name"}]
			for ref, phi := range res.Saliency.Scores {
				if ref.Attr != "name" && phi > nameScore {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: diagnostics bookkeeping always balances, for any model
// behaviour (here: a hash-based pseudo-random but deterministic model).
func TestDiagnosticsBalanceProperty(t *testing.T) {
	f := func(seed int64, modelSeed uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		left, right := randomTables(rng, 5)
		u := left.Records[rng.Intn(left.Len())]
		v := right.Records[rng.Intn(right.Len())]

		model := hashModel(modelSeed)
		e := New(left, right, Options{Triangles: 6, Seed: seed})
		res, err := e.Explain(model, record.Pair{Left: u, Right: v})
		if err != nil {
			return false
		}
		d := res.Diag
		return d.SavedPredictions == d.ExpectedPredictions-d.LatticePredictions &&
			d.LatticePredictions >= 0 &&
			d.LeftTriangles >= d.AugmentedLeft &&
			d.RightTriangles >= d.AugmentedRight
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// hashModel is a deterministic but arbitrary classifier: the score is a
// hash of the pair's full text. It is intentionally non-monotone,
// stressing the bookkeeping rather than the semantics.
type hashModel uint32

func (hashModel) Name() string { return "hash" }
func (h hashModel) Score(p record.Pair) float64 {
	s := strutil.Normalize(p.Left.Text() + "|" + p.Right.Text())
	v := uint32(h)
	for i := 0; i < len(s); i++ {
		v = v*16777619 ^ uint32(s[i])
	}
	return float64(v%1000) / 999
}

package core

import (
	"fmt"
	"math"
	"sort"

	"certa/internal/explain"
	"certa/internal/lime"
	"certa/internal/record"
	"certa/internal/strutil"
)

// Token-level explanations are the extension the paper names as future
// work (§6): "Extension of certa's principled explanation framework for
// ER to token-level explanations." This file implements a data-driven
// version in CERTA's spirit: the attribute-level probability of
// necessity is distributed over the attribute's tokens by perturbing the
// tokens with material drawn from the *support records* of the open
// triangles — the same distribution-faithful perturbation source the
// attribute-level algorithm uses — rather than by deleting tokens into
// out-of-distribution gibberish.

// TokenScore is the saliency of one token occurrence inside an
// attribute value.
type TokenScore struct {
	Ref record.AttrRef
	// Index is the token position within the attribute value.
	Index int
	Token string
	// Score is the token's share of its attribute's probability of
	// necessity.
	Score float64
}

// TokenOptions tunes the token-level refinement.
type TokenOptions struct {
	// Samples is the perturbation budget per attribute (default 80).
	Samples int
	// MaxTokens caps the tokens analysed per attribute (default 16).
	MaxTokens int
	// TopAttrs restricts the refinement to the most salient attributes
	// (default 4; 0 means all attributes with positive saliency).
	TopAttrs int
	// Seed drives sampling.
	Seed int64
}

func (o TokenOptions) withDefaults() TokenOptions {
	if o.Samples <= 0 {
		o.Samples = 80
	}
	if o.MaxTokens <= 0 {
		o.MaxTokens = 16
	}
	if o.TopAttrs == 0 {
		o.TopAttrs = 4
	}
	return o
}

// TokenSaliency refines an attribute-level CERTA result into token-level
// scores. For each of the most salient attributes it fits a local linear
// model (LIME machinery) over token-keep indicators, where a dropped
// token is *replaced by a token from a support record's value for the
// same attribute* when one is available — keeping perturbations on the
// data manifold. Each attribute's token scores are normalized to sum to
// the attribute's probability of necessity, so the token view refines
// rather than contradicts the attribute view.
func (e *Explainer) TokenSaliency(m explain.Model, p record.Pair, res *Result, opts TokenOptions) ([]TokenScore, error) {
	if res == nil || res.Saliency == nil {
		return nil, fmt.Errorf("core: TokenSaliency needs an attribute-level Result")
	}
	opts = opts.withDefaults()

	ranked := res.Saliency.Ranked()
	if opts.TopAttrs > 0 && len(ranked) > opts.TopAttrs {
		ranked = ranked[:opts.TopAttrs]
	}

	// Token replacement pools per attribute, harvested from the sources
	// (the support records live there; using the full column keeps the
	// pool rich even when few triangles were found).
	pools := e.tokenPools(opts.MaxTokens * 8)

	var out []TokenScore
	for ai, ref := range ranked {
		attrScore := res.Saliency.Scores[ref]
		if attrScore <= 0 {
			continue
		}
		toks := strutil.Tokenize(p.Value(ref))
		if len(toks) == 0 {
			continue
		}
		if len(toks) > opts.MaxTokens {
			toks = toks[:opts.MaxTokens]
		}
		pool := pools[ref.Attr]

		predictBatch := func(rows [][]bool) []float64 {
			pairs := make([]record.Pair, len(rows))
			for ri, active := range rows {
				kept := make([]string, 0, len(toks))
				poolIdx := 0
				for i, t := range toks {
					if active[i] {
						kept = append(kept, t)
						continue
					}
					// Replace the dropped token with support-distribution
					// material when available.
					if len(pool) > 0 {
						kept = append(kept, pool[(i+poolIdx)%len(pool)])
						poolIdx++
					}
				}
				pairs[ri] = p.WithValue(ref, strutil.JoinTokens(kept))
			}
			return explain.ScoreBatch(m, pairs)
		}
		weights, err := lime.ExplainBatch(len(toks), predictBatch, lime.Config{
			Samples: opts.Samples,
			Seed:    opts.Seed + int64(ai)*101,
		})
		if err != nil {
			return nil, fmt.Errorf("core: token saliency for %v: %w", ref, err)
		}

		// Normalize |weights| to the attribute's necessity mass.
		var total float64
		for _, w := range weights {
			total += math.Abs(w)
		}
		for i, w := range weights {
			score := 0.0
			if total > 0 {
				score = attrScore * math.Abs(w) / total
			}
			out = append(out, TokenScore{
				Ref:   ref,
				Index: i,
				Token: toks[i],
				Score: score,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out, nil
}

// tokenPools harvests, for every attribute name, a deterministic pool of
// tokens observed in either source's column.
func (e *Explainer) tokenPools(cap int) map[string][]string {
	pools := make(map[string][]string)
	add := func(t *record.Table) {
		for _, a := range t.Schema.Attrs {
			if len(pools[a]) >= cap {
				continue
			}
			for _, r := range t.Records {
				if len(pools[a]) >= cap {
					break
				}
				pools[a] = append(pools[a], strutil.Tokenize(r.Value(a))...)
			}
			if len(pools[a]) > cap {
				pools[a] = pools[a][:cap]
			}
		}
	}
	add(e.left)
	add(e.right)
	return pools
}

// Package core implements CERTA, the paper's contribution: a post-hoc
// local explanation method for ER classifiers that produces saliency
// explanations (probability of necessity per attribute, Eq. 1) and
// counterfactual explanations (perturbed pairs ranked by probability of
// sufficiency, Eqs. 2–3).
//
// Given a prediction M(⟨u,v⟩)=y, CERTA:
//
//  1. collects open triangles — support records w ∈ U with M(⟨w,v⟩)=¬y
//     (left triangles) and q ∈ V with M(⟨u,q⟩)=¬y (right triangles),
//     topping up with token-drop data augmentation when the sources
//     cannot supply τ of them (§3.3);
//  2. for each triangle, explores the power-set lattice of the free
//     record's attributes bottom-up, copying attribute values from the
//     support record (the perturbation ψ) and asking whether the
//     prediction flips; under the monotone-classifier assumption a flip
//     propagates to all supersets without further model calls (§4);
//  3. counts flips to estimate the probability of necessity φ_a of every
//     attribute and the probability of sufficiency χ_A of every changed
//     attribute set, and emits the counterfactuals whose changed set A★
//     maximizes χ with the fewest attributes (Algorithm 1).
package core

import (
	"fmt"
	"sort"
	"strings"

	"certa/internal/explain"
	"certa/internal/lattice"
	"certa/internal/record"
)

// Options tunes the CERTA explainer. The zero value gives the paper's
// defaults: τ=100 triangles, monotone propagation on, data augmentation
// on.
type Options struct {
	// Triangles is τ, the total number of open triangles to use (half
	// left, half right). Default 100 (the paper's setting, §5.3).
	Triangles int
	// NoMonotone disables the monotone-classifier optimization and
	// evaluates every lattice node exactly (the "Expected" baseline of
	// Table 7).
	NoMonotone bool
	// DisableAugmentation turns off the token-drop data augmentation of
	// §3.3, reproducing the Table 8 ablation.
	DisableAugmentation bool
	// ForceAugmentation uses *only* augmented support records even when
	// the sources could supply natural ones, reproducing the Tables 9–10
	// ablation.
	ForceAugmentation bool
	// LeftTrianglesOnly restricts the explanation to left open triangles
	// (no right-side supports): an ablation of the paper's symmetric
	// design (DESIGN.md §5). Right-record attributes then receive no
	// saliency mass.
	LeftTrianglesOnly bool
	// EvaluateMonotonicity re-tests every lattice node skipped by the
	// monotone optimization and records how many inferences were wrong
	// (Table 7's error rate). Costly; off by default.
	EvaluateMonotonicity bool
	// Seed drives candidate shuffling; explanations are deterministic
	// given (Options, model, pair).
	Seed int64
	// Parallelism bounds concurrent lattice explorations (default 1;
	// results are identical at any setting).
	Parallelism int
	// MaxLatticeAttrs guards against schemas too wide for power-set
	// exploration (default 12; the paper's benchmarks have at most 8).
	MaxLatticeAttrs int
}

func (o Options) withDefaults() Options {
	if o.Triangles <= 0 {
		o.Triangles = 100
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 1
	}
	if o.MaxLatticeAttrs <= 0 {
		o.MaxLatticeAttrs = 12
	}
	return o
}

// Explainer computes CERTA explanations against a pair of sources.
type Explainer struct {
	left  *record.Table
	right *record.Table
	opts  Options
}

// New creates an explainer over the benchmark's two sources U and V.
func New(left, right *record.Table, opts Options) *Explainer {
	return &Explainer{left: left, right: right, opts: opts.withDefaults()}
}

// Name implements the explainer interfaces.
func (e *Explainer) Name() string { return "CERTA" }

// AttrSet identifies a side-qualified set of attributes (a lattice node).
type AttrSet struct {
	Side  record.Side
	Attrs []string
}

// Key renders the set canonically, e.g. "L:{description,name}".
func (s AttrSet) Key() string {
	attrs := append([]string(nil), s.Attrs...)
	sort.Strings(attrs)
	return s.Side.String() + ":{" + strings.Join(attrs, ",") + "}"
}

// Refs converts the set into side-qualified attribute references.
func (s AttrSet) Refs() []record.AttrRef {
	out := make([]record.AttrRef, len(s.Attrs))
	for i, a := range s.Attrs {
		out[i] = record.AttrRef{Side: s.Side, Attr: a}
	}
	return out
}

// Diagnostics reports the work CERTA did for one explanation; the Table 7
// and Table 8 experiments read these.
type Diagnostics struct {
	// LeftTriangles and RightTriangles are the numbers of open triangles
	// actually used per side.
	LeftTriangles, RightTriangles int
	// AugmentedLeft and AugmentedRight count how many of them came from
	// data augmentation.
	AugmentedLeft, AugmentedRight int
	// LatticePredictions counts model calls made during lattice
	// exploration; ExpectedPredictions is the exhaustive 2^l-2 baseline
	// summed over triangles.
	LatticePredictions, ExpectedPredictions int
	// SavedPredictions = Expected - Performed.
	SavedPredictions int
	// WrongInferences counts monotone inferences contradicted by the
	// model (only populated with Options.EvaluateMonotonicity).
	WrongInferences int
	// TriangleSearchCalls counts model calls spent finding support
	// records.
	TriangleSearchCalls int
	// Flips is the total number of flipped lattice nodes (the f of
	// Algorithm 1).
	Flips int
}

// Result is a full CERTA explanation.
type Result struct {
	// Saliency holds the probability of necessity per attribute (Eq. 1).
	Saliency *explain.Saliency
	// Counterfactuals are the examples whose changed attribute set is A★
	// (Eq. 3), annotated with the recomputed model score.
	Counterfactuals []explain.Counterfactual
	// BestSet is A★ and BestSufficiency its χ value.
	BestSet         AttrSet
	BestSufficiency float64
	// Sufficiency maps every flipped attribute set (by Key()) to its χ.
	Sufficiency map[string]float64
	// Diag reports the work performed.
	Diag Diagnostics
}

// Explain runs the CERTA algorithm (Algorithm 1) for one prediction.
func (e *Explainer) Explain(m explain.Model, p record.Pair) (*Result, error) {
	if p.Left == nil || p.Right == nil {
		return nil, fmt.Errorf("core: pair has nil record")
	}
	origScore := m.Score(p)
	y := origScore > 0.5

	tri, searchCalls := e.findTriangles(m, p, y)

	res := &Result{
		Saliency:    explain.NewSaliency(p, origScore),
		Sufficiency: make(map[string]float64),
	}
	res.Diag.TriangleSearchCalls = searchCalls
	res.Diag.LeftTriangles = len(tri.left)
	res.Diag.RightTriangles = len(tri.right)
	res.Diag.AugmentedLeft = tri.augLeft
	res.Diag.AugmentedRight = tri.augRight

	// Per-side lattice exploration.
	leftCounts := e.exploreSide(m, p, y, record.Left, tri.left, &res.Diag)
	rightCounts := e.exploreSide(m, p, y, record.Right, tri.right, &res.Diag)

	// Necessity (Eq. 1): φ_a = N[a] / f, with f the global flip count
	// across both sides' lattices.
	f := leftCounts.flips + rightCounts.flips
	res.Diag.Flips = f
	if f > 0 {
		for ref, n := range leftCounts.necessity {
			res.Saliency.Scores[ref] = float64(n) / float64(f)
		}
		for ref, n := range rightCounts.necessity {
			res.Saliency.Scores[ref] = float64(n) / float64(f)
		}
	}

	// Sufficiency (Eq. 2): χ_A = S[A] / |T_side|. Algorithm 1 divides by
	// |T|; the paper's worked example (§4) divides by the number of
	// triangles on the set's own side, which is the probability the text
	// defines — we follow the worked example.
	best := AttrSet{}
	bestChi := -1.0
	bestSize := 1 << 30
	consider := func(counts *sideCounts, nTri int) {
		if nTri == 0 {
			return
		}
		// Deterministic iteration order.
		keys := make([]lattice.Mask, 0, len(counts.sufficiency))
		for mask := range counts.sufficiency {
			keys = append(keys, mask)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, mask := range keys {
			set := counts.attrSet(mask)
			chi := float64(counts.sufficiency[mask]) / float64(nTri)
			res.Sufficiency[set.Key()] = chi
			sz := mask.Count()
			if chi > bestChi || (chi == bestChi && sz < bestSize) {
				bestChi = chi
				bestSize = sz
				best = set
			}
		}
	}
	consider(leftCounts, len(tri.left))
	consider(rightCounts, len(tri.right))

	if bestChi > 0 {
		res.BestSet = best
		res.BestSufficiency = bestChi
		res.Counterfactuals = e.buildCounterfactuals(m, p, origScore, best, leftCounts, rightCounts, bestChi)
	}
	return res, nil
}

// sideCounts accumulates per-side flip statistics.
type sideCounts struct {
	side  record.Side
	attrs []string // schema attrs of the free record's side

	flips       int
	necessity   map[record.AttrRef]int
	sufficiency map[lattice.Mask]int
	// supports lists, per flipped mask, the support records whose
	// triangle flipped it (for counterfactual materialization).
	supports map[lattice.Mask][]*record.Record
}

func (c *sideCounts) attrSet(mask lattice.Mask) AttrSet {
	var names []string
	for _, i := range mask.Elems() {
		names = append(names, c.attrs[i])
	}
	return AttrSet{Side: c.side, Attrs: names}
}

// exploreSide runs the lattice exploration for every triangle of one
// side and aggregates the counters.
func (e *Explainer) exploreSide(m explain.Model, p record.Pair, y bool, side record.Side, supports []*record.Record, diag *Diagnostics) *sideCounts {
	free := p.Record(side)
	counts := &sideCounts{
		side:        side,
		attrs:       free.Schema.Attrs,
		necessity:   make(map[record.AttrRef]int),
		sufficiency: make(map[lattice.Mask]int),
		supports:    make(map[lattice.Mask][]*record.Record),
	}
	n := len(counts.attrs)
	if n == 0 || n > e.opts.MaxLatticeAttrs || len(supports) == 0 {
		return counts
	}

	type triangleResult struct {
		res   *lattice.Result
		saved int
		wrong int
	}
	results := make([]triangleResult, len(supports))

	run := func(idx int) {
		w := supports[idx]
		oracle := func(mask lattice.Mask) bool {
			perturbed := perturb(p, side, w, counts.attrs, mask)
			return (m.Score(perturbed) > 0.5) != y
		}
		lr := lattice.Explore(n, oracle, !e.opts.NoMonotone)
		tr := triangleResult{res: lr}
		if e.opts.EvaluateMonotonicity && !e.opts.NoMonotone {
			tr.saved, tr.wrong = lattice.CompareExact(lr, oracle)
		}
		results[idx] = tr
	}

	if e.opts.Parallelism > 1 && len(supports) > 1 {
		runParallel(len(supports), e.opts.Parallelism, run)
	} else {
		for i := range supports {
			run(i)
		}
	}

	full := lattice.Mask(1<<uint(n)) - 1
	for idx, tr := range results {
		diag.LatticePredictions += tr.res.Performed
		diag.ExpectedPredictions += tr.res.Expected
		diag.SavedPredictions += tr.res.Expected - tr.res.Performed
		diag.WrongInferences += tr.wrong
		if e.opts.EvaluateMonotonicity {
			// CompareExact's model calls are bookkeeping, not part of the
			// algorithm's cost; they are intentionally not added to
			// LatticePredictions.
			_ = tr.saved
		}
		for _, mask := range tr.res.Flipped() {
			counts.flips++
			for _, ai := range mask.Elems() {
				counts.necessity[record.AttrRef{Side: side, Attr: counts.attrs[ai]}]++
			}
			if mask != full { // Eq. 3 excludes the full attribute set
				counts.sufficiency[mask]++
				counts.supports[mask] = append(counts.supports[mask], supports[idx])
			}
		}
	}
	return counts
}

// perturb applies ψ(free, w, A): copy the attribute values selected by
// mask from the support record into the free record.
func perturb(p record.Pair, side record.Side, w *record.Record, attrs []string, mask lattice.Mask) record.Pair {
	vals := make(map[string]string, mask.Count())
	for _, ai := range mask.Elems() {
		vals[attrs[ai]] = w.Value(attrs[ai])
	}
	return p.WithRecord(side, p.Record(side).WithValues(vals))
}

// buildCounterfactuals materializes the counterfactual examples for A★:
// one per support record whose triangle flipped exactly that set.
func (e *Explainer) buildCounterfactuals(m explain.Model, p record.Pair, origScore float64, best AttrSet, left, right *sideCounts, chi float64) []explain.Counterfactual {
	counts := left
	if best.Side == record.Right {
		counts = right
	}
	mask := maskFor(counts.attrs, best.Attrs)
	var out []explain.Counterfactual
	seen := make(map[string]bool)
	for _, w := range counts.supports[mask] {
		cp := perturb(p, best.Side, w, counts.attrs, mask)
		key := cp.Record(best.Side).String()
		if seen[key] {
			continue // identical perturbations from duplicate supports
		}
		seen[key] = true
		cf := explain.Counterfactual{
			Original:    p,
			Pair:        cp,
			Changed:     changedRefs(p, cp, best.Side),
			Score:       m.Score(cp),
			Probability: chi,
		}.WithOriginalScore(origScore)
		out = append(out, cf)
	}
	return out
}

func maskFor(attrs, subset []string) lattice.Mask {
	var m lattice.Mask
	for i, a := range attrs {
		for _, s := range subset {
			if a == s {
				m |= 1 << uint(i)
			}
		}
	}
	return m
}

// changedRefs lists attributes that actually differ between the original
// and the perturbed pair (copying an identical value changes nothing).
func changedRefs(orig, perturbed record.Pair, side record.Side) []record.AttrRef {
	var out []record.AttrRef
	o, c := orig.Record(side), perturbed.Record(side)
	for _, a := range o.ChangedAttrs(c) {
		out = append(out, record.AttrRef{Side: side, Attr: a})
	}
	return out
}

// runParallel executes fn(0..n-1) with at most workers goroutines.
func runParallel(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for i := range jobs {
				fn(i)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	for w := 0; w < workers; w++ {
		<-done
	}
}

// ExplainSaliency implements explain.SaliencyExplainer.
func (e *Explainer) ExplainSaliency(m explain.Model, p record.Pair) (*explain.Saliency, error) {
	res, err := e.Explain(m, p)
	if err != nil {
		return nil, err
	}
	return res.Saliency, nil
}

// ExplainCounterfactuals implements explain.CounterfactualExplainer.
func (e *Explainer) ExplainCounterfactuals(m explain.Model, p record.Pair) ([]explain.Counterfactual, error) {
	res, err := e.Explain(m, p)
	if err != nil {
		return nil, err
	}
	return res.Counterfactuals, nil
}

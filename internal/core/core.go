// Package core implements CERTA, the paper's contribution: a post-hoc
// local explanation method for ER classifiers that produces saliency
// explanations (probability of necessity per attribute, Eq. 1) and
// counterfactual explanations (perturbed pairs ranked by probability of
// sufficiency, Eqs. 2–3).
//
// Given a prediction M(⟨u,v⟩)=y, CERTA:
//
//  1. collects open triangles — support records w ∈ U with M(⟨w,v⟩)=¬y
//     (left triangles) and q ∈ V with M(⟨u,q⟩)=¬y (right triangles),
//     topping up with token-drop data augmentation when the sources
//     cannot supply τ of them (§3.3);
//  2. for each triangle, explores the power-set lattice of the free
//     record's attributes bottom-up, copying attribute values from the
//     support record (the perturbation ψ) and asking whether the
//     prediction flips; under the monotone-classifier assumption a flip
//     propagates to all supersets without further model calls (§4);
//  3. counts flips to estimate the probability of necessity φ_a of every
//     attribute and the probability of sufficiency χ_A of every changed
//     attribute set, and emits the counterfactuals whose changed set A★
//     maximizes χ with the fewest attributes (Algorithm 1).
package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"certa/internal/explain"
	"certa/internal/lattice"
	"certa/internal/neighborhood"
	"certa/internal/record"
	"certa/internal/scorecache"
	"certa/internal/telemetry"
)

// Options tunes the CERTA explainer. The zero value gives the paper's
// defaults: τ=100 triangles, monotone propagation on, data augmentation
// on.
type Options struct {
	// Triangles is τ, the total number of open triangles to use (half
	// left, half right). Default 100 (the paper's setting, §5.3).
	Triangles int
	// NoMonotone disables the monotone-classifier optimization and
	// evaluates every lattice node exactly (the "Expected" baseline of
	// Table 7).
	NoMonotone bool
	// DisableAugmentation turns off the token-drop data augmentation of
	// §3.3, reproducing the Table 8 ablation.
	DisableAugmentation bool
	// ForceAugmentation uses *only* augmented support records even when
	// the sources could supply natural ones, reproducing the Tables 9–10
	// ablation.
	ForceAugmentation bool
	// LeftTrianglesOnly restricts the explanation to left open triangles
	// (no right-side supports): an ablation of the paper's symmetric
	// design (DESIGN.md §5). Right-record attributes then receive no
	// saliency mass.
	LeftTrianglesOnly bool
	// EvaluateMonotonicity re-tests every lattice node skipped by the
	// monotone optimization and records how many inferences were wrong
	// (Table 7's error rate). Costly; off by default.
	EvaluateMonotonicity bool
	// DisableCache turns off the perturbation score cache, so every
	// lookup reaches the model — the seed scoring path, kept as an
	// ablation to measure what memoization saves. Results are identical
	// either way; only Diagnostics change.
	DisableCache bool
	// SeedSearch restores the original blind augmented-support scan: a
	// seeded shuffle of the source scanned to a fixed attempt budget. The
	// default search orders augmentation candidates by token overlap with
	// the triangle's fixed record (similar records are the ones whose
	// trimmed variants can flip the prediction) and abandons streams that
	// yield nothing — the same supports are found orders of magnitude
	// earlier when they exist, and hopeless scans stop early. The
	// batched-pipeline benchmarks use SeedSearch as their baseline.
	SeedSearch bool
	// AugmentBudget caps the augmented-support search: at most
	// want×AugmentBudget token-drop variants are generated per scan
	// (want being the supports still missing), so pathological models
	// cannot make explanation cost unbounded. Default 200, the
	// historical hard-coded budget.
	AugmentBudget int
	// Retrieval injects a prebuilt candidate retrieval layer
	// (neighborhood.NewSources; certa.NewCandidateIndex publicly): the
	// per-table token indexes the triangle support search streams its
	// candidates from. Build it once and share it — across ExplainBatch,
	// an eval-harness run, or a server backend's lifetime — instead of
	// letting every New rebuild it. The injected sources must have been
	// built over the same left/right tables the explainer is given.
	// When nil, New builds per-Explainer indexes (or scan sources under
	// DisableIndex).
	Retrieval *neighborhood.Sources
	// DisableIndex falls back to the unindexed candidate scan: the
	// support search re-tokenizes and fully sorts the source table per
	// explanation, as it did before the retrieval layer. Results are
	// byte-identical either way (the equivalence test gates this); the
	// ablation exists to measure what the index saves. Ignored when
	// Retrieval is injected.
	DisableIndex bool
	// Seed drives candidate shuffling; explanations are deterministic
	// given (Options, model, pair).
	Seed int64
	// CallBudget caps the unique model calls one explanation may spend
	// (0 = unlimited), making Explain an anytime algorithm: when the
	// budget trips at a batch checkpoint, the remaining pipeline stages
	// are skipped and the best-so-far Result is returned with
	// Diagnostics.Truncated set, the budget spent, and a completeness
	// fraction. Truncation is decided by deterministic call accounting
	// against the explanation's private scorer view at batch boundaries,
	// so a truncated Result is byte-identical at any Parallelism and
	// with or without a shared service; the budget can be overshot by at
	// most the batch in flight when it tripped, plus the final
	// counterfactual materialization (normally answered by the cache).
	CallBudget int
	// Deadline is the per-explanation soft wall-clock allowance (0 =
	// none). It maps onto the same cooperative checkpoints as
	// CallBudget: when the clock runs out the explanation stops
	// expanding work and returns the best-so-far Result with
	// Diagnostics.Truncated — it does not abort with an error. Unlike
	// call-budget truncation, where the cut falls depends on real model
	// latency. For hard cancellation use ExplainContext: a cancelled
	// context aborts at the next scoring call and returns ctx.Err().
	Deadline time.Duration
	// Parallelism bounds the worker goroutines of the scoring pipeline:
	// batch evaluations inside one explanation and, for ExplainBatch,
	// concurrent explanations. Default 1; results are identical at any
	// setting.
	Parallelism int
	// MaxLatticeAttrs guards against schemas too wide for power-set
	// exploration (default 12; the paper's benchmarks have at most 8).
	MaxLatticeAttrs int
	// LatticePrune cuts lattice exploration early: after each fully
	// explored level, a lattice whose level flip fraction reaches the
	// policy threshold stops asking questions (lattice.PrunePolicy —
	// see its comment for why saturated lattices, not flip-poor ones,
	// are the safe cut). It also shortens the augmented triangle
	// search's barren-stream patience (see prunePatience). The zero
	// value is off and leaves every result byte-identical to an
	// unpruned run.
	//
	// Determinism story: pruning decisions are a pure function of each
	// lattice's own oracle answers — never shared-cache hit patterns,
	// scheduling or Parallelism — so a pruned explanation is itself
	// byte-identical at any Parallelism and with or without a shared
	// service. What changes under pruning is the estimator, exactly as
	// with anytime truncation: saliency and sufficiency are computed from
	// the levels actually explored, and Diagnostics grow
	// PrunedQueries/PruneLevels recording what the cut skipped. Quality
	// is gated by measured saliency agreement against the exact run (see
	// certa-bench's "pruning" section), not assumed.
	LatticePrune lattice.PrunePolicy
	// Shared injects a shared scoring service (scorecache.NewService)
	// reused across explanations: every distinct pair content is scored
	// once per service lifetime instead of once per explanation. The
	// service must wrap the same model the explanation is asked to
	// explain. Results and per-explanation Diagnostics are byte-identical
	// with or without sharing — Diagnostics are computed against a
	// per-explanation view — only the service's own ServiceStats reveal
	// the cross-explanation reuse. ExplainBatch creates a per-batch
	// service automatically when none is injected.
	Shared *scorecache.Service
}

func (o Options) withDefaults() Options {
	if o.Triangles <= 0 {
		o.Triangles = 100
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 1
	}
	if o.MaxLatticeAttrs <= 0 {
		o.MaxLatticeAttrs = 12
	}
	if o.AugmentBudget <= 0 {
		o.AugmentBudget = 200
	}
	return o
}

// Explainer computes CERTA explanations against a pair of sources.
type Explainer struct {
	left  *record.Table
	right *record.Table
	opts  Options
	// sources is the candidate retrieval layer the triangle support
	// search streams from: Options.Retrieval when injected, otherwise
	// built once per Explainer by New.
	sources *neighborhood.Sources
}

// New creates an explainer over the benchmark's two sources U and V.
//
// Unless Options.Retrieval injects a shared one, New builds the
// candidate retrieval index over both tables here — once per Explainer,
// off the per-explanation path. Long-lived callers that construct many
// explainers over the same tables (a serving backend, a harness run)
// should build the index once (neighborhood.NewSources) and inject it.
func New(left, right *record.Table, opts Options) *Explainer {
	e := &Explainer{left: left, right: right, opts: opts.withDefaults()}
	switch {
	case e.opts.Retrieval != nil:
		e.sources = e.opts.Retrieval
	case e.opts.DisableIndex:
		e.sources = neighborhood.NewScanSources(left, right)
	default:
		e.sources = neighborhood.NewSources(left, right)
	}
	return e
}

// Name implements the explainer interfaces.
func (e *Explainer) Name() string { return "CERTA" }

// AttrSet identifies a side-qualified set of attributes (a lattice node).
type AttrSet struct {
	Side  record.Side `json:"side"`
	Attrs []string    `json:"attrs,omitempty"`
}

// Key renders the set canonically, e.g. "L:{description,name}".
func (s AttrSet) Key() string {
	attrs := append([]string(nil), s.Attrs...)
	sort.Strings(attrs)
	return s.Side.String() + ":{" + strings.Join(attrs, ",") + "}"
}

// Refs converts the set into side-qualified attribute references.
func (s AttrSet) Refs() []record.AttrRef {
	out := make([]record.AttrRef, len(s.Attrs))
	for i, a := range s.Attrs {
		out[i] = record.AttrRef{Side: s.Side, Attr: a}
	}
	return out
}

// Diagnostics reports the work CERTA did for one explanation; the Table 7
// and Table 8 experiments read these, and the batch/cache counters make
// the batched scoring pipeline's savings measurable.
type Diagnostics struct {
	// LeftTriangles and RightTriangles are the numbers of open triangles
	// actually used per side.
	LeftTriangles  int `json:"left_triangles"`
	RightTriangles int `json:"right_triangles"`
	// AugmentedLeft and AugmentedRight count how many of them came from
	// data augmentation.
	AugmentedLeft  int `json:"augmented_left,omitempty"`
	AugmentedRight int `json:"augmented_right,omitempty"`
	// LatticeQueries counts oracle questions asked during lattice
	// exploration — the model calls the unbatched seed path would have
	// paid. LatticePredictions counts the unique model invocations that
	// actually reached the model for them (duplicate perturbations are
	// answered by the score cache, so LatticePredictions <=
	// LatticeQueries). ExpectedPredictions is the exhaustive 2^l-2
	// baseline summed over triangles.
	LatticeQueries      int `json:"lattice_queries"`
	LatticePredictions  int `json:"lattice_predictions"`
	ExpectedPredictions int `json:"expected_predictions"`
	// SavedPredictions = Expected - LatticePredictions: what monotone
	// propagation and score memoization together avoided.
	SavedPredictions int `json:"saved_predictions"`
	// WrongInferences counts monotone inferences contradicted by the
	// model (only populated with Options.EvaluateMonotonicity).
	WrongInferences int `json:"wrong_inferences,omitempty"`
	// TriangleSearchCalls counts score lookups spent finding support
	// records (the chunked batch scan may look slightly past the last
	// support the sequential scan would have stopped at).
	TriangleSearchCalls int `json:"triangle_search_calls"`
	// Flips is the total number of flipped lattice nodes (the f of
	// Algorithm 1).
	Flips int `json:"flips"`
	// ModelCalls counts the unique model invocations of the whole
	// explanation: original score, triangle search, lattice exploration
	// and counterfactual materialization, after deduplication.
	ModelCalls int `json:"model_calls"`
	// BatchCalls counts the batched scoring requests those invocations
	// were grouped into.
	BatchCalls int `json:"batch_calls"`
	// CacheLookups and CacheHits report the perturbation score cache:
	// CacheLookups = CacheHits + ModelCalls.
	CacheLookups int `json:"cache_lookups"`
	CacheHits    int `json:"cache_hits"`
	// SeedPathCalls counts the model calls a sequential, uncached
	// point-lookup pipeline would have made over the same candidate
	// streams this explanation scanned. With Options.SeedSearch it is
	// exactly the pre-batching pipeline's cost; in default (guided
	// search) mode the streams themselves are shorter, so comparing
	// against the historical seed path additionally requires a
	// SeedSearch baseline run (see TestBatchedPipelineModelCallReduction).
	SeedPathCalls int `json:"seed_path_calls"`
	// Truncated marks an anytime explanation: a budget checkpoint
	// (Options.CallBudget or Options.Deadline) stopped the pipeline
	// before it ran to completion, and the Result is the best
	// explanation obtainable within the limit. Saliency and sufficiency
	// are then estimated from the triangles and lattice levels actually
	// explored; counterfactuals are materialized and re-scored exactly
	// as in a full run (under the monotone-classifier assumption they
	// flip; an inferred-only A★ on a non-monotone model may not, just as
	// without a budget).
	Truncated bool `json:"truncated,omitempty"`
	// TruncatedBy names the limit that tripped first: TruncatedByCallBudget
	// or TruncatedByDeadline. Empty when Truncated is false.
	TruncatedBy string `json:"truncated_by,omitempty"`
	// PrunedQueries counts lattice questions skipped by
	// Options.LatticePrune: nodes above a lattice's prune cut that neither
	// monotone propagation nor the oracle ever settled. PruneLevels totals
	// the levels those cuts skipped across all lattices of the
	// explanation. Both are zero (and absent on the wire) when pruning is
	// off, keeping default output byte-identical to an unpruned build.
	PrunedQueries int `json:"pruned_queries,omitempty"`
	PruneLevels   int `json:"prune_levels,omitempty"`
	// BudgetSpent is the unique model calls charged against CallBudget —
	// the explanation's private-view misses, equal to ModelCalls. It is
	// reported separately so budget accounting reads explicitly.
	BudgetSpent int `json:"budget_spent"`
	// Completeness is the fraction of the planned pipeline phases this
	// explanation completed, in [0,1]: each per-side triangle scan and
	// lattice exploration counts one unit, scored by how far it got
	// before a checkpoint cut it. 1 when Truncated is false.
	Completeness float64 `json:"completeness"`
}

// CacheHitRate returns CacheHits/CacheLookups, or 0 before any lookup.
func (d Diagnostics) CacheHitRate() float64 {
	if d.CacheLookups == 0 {
		return 0
	}
	return float64(d.CacheHits) / float64(d.CacheLookups)
}

// Result is a full CERTA explanation. The JSON tags define the stable
// wire schema served by the HTTP API (internal/server) and printed by
// certa-explain -json; a golden-file round-trip test guards it against
// silent drift.
type Result struct {
	// Saliency holds the probability of necessity per attribute (Eq. 1).
	Saliency *explain.Saliency `json:"saliency"`
	// Counterfactuals are the examples whose changed attribute set is A★
	// (Eq. 3), annotated with the recomputed model score.
	Counterfactuals []explain.Counterfactual `json:"counterfactuals,omitempty"`
	// BestSet is A★ and BestSufficiency its χ value.
	BestSet         AttrSet `json:"best_set"`
	BestSufficiency float64 `json:"best_sufficiency"`
	// Sufficiency maps every flipped attribute set (by Key()) to its χ.
	Sufficiency map[string]float64 `json:"sufficiency,omitempty"`
	// Diag reports the work performed.
	Diag Diagnostics `json:"diagnostics"`
}

// newScorer opens the explanation's memoizing scorer view: over the
// injected shared service when Options.Shared is set, and over a fresh
// private store otherwise. The view's statistics are private-equivalent
// either way, which is what keeps Diagnostics deterministic under
// sharing.
func (e *Explainer) newScorer(m explain.Model) (*scorecache.Scorer, error) {
	vopts := scorecache.Options{
		Parallelism: e.opts.Parallelism,
		Disabled:    e.opts.DisableCache,
	}
	if e.opts.Shared != nil {
		if e.opts.Shared.Name() != m.Name() {
			return nil, fmt.Errorf("core: shared scoring service wraps model %q, cannot explain model %q",
				e.opts.Shared.Name(), m.Name())
		}
		return e.opts.Shared.NewScorer(vopts), nil
	}
	return scorecache.New(m, vopts), nil
}

// Explain runs the CERTA algorithm (Algorithm 1) for one prediction.
//
// All model access flows through a memoizing batch scorer: triangle
// search scores candidates in chunks, each lattice level is evaluated in
// one batch across every triangle of a side, and duplicate perturbations
// — which recur heavily across triangles that share support records or
// copied values — reach the model exactly once. With Options.Shared the
// memo additionally spans explanations: pairs another explanation
// already paid for are answered from the shared store.
func (e *Explainer) Explain(m explain.Model, p record.Pair) (*Result, error) {
	return e.ExplainContext(context.Background(), m, p)
}

// ExplainContext is Explain under a caller context: cancellation aborts
// the explanation at the next scoring call and returns ctx.Err().
// Options.Deadline and Options.CallBudget, by contrast, do not abort —
// they truncate, turning Explain into an anytime algorithm that returns
// the best explanation obtainable within the limit (see
// Diagnostics.Truncated).
func (e *Explainer) ExplainContext(ctx context.Context, m explain.Model, p record.Pair) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if p.Left == nil || p.Right == nil {
		return nil, fmt.Errorf("core: pair has nil record")
	}
	if e.sources.Left.Table() != e.left || e.sources.Right.Table() != e.right {
		return nil, fmt.Errorf("core: Options.Retrieval indexes different tables than the explainer's sources")
	}
	sc, err := e.newScorer(m)
	if err != nil {
		return nil, err
	}
	bud := newRunBudget(sc, e.opts)
	prog := &progress{}
	// Telemetry spans time the stages of this explanation when the
	// serving layer put a telemetry.Trace on ctx (no-ops otherwise).
	// They are a wall-clock side channel in the sense of the PR 6
	// FlipHits split: nothing in Diagnostics or the Result depends on
	// them, so byte-identity at any Parallelism is untouched.
	spOrig, octx := telemetry.StartSpan(ctx, "original_score")
	origScores, err := sc.ScoreBatchContext(octx, []record.Pair{p})
	spOrig.End()
	if err != nil {
		return nil, err
	}
	origScore := origScores[0]
	y := origScore > 0.5

	spTri, tctx := telemetry.StartSpan(ctx, "triangles")
	tri, searchCalls, seedSearchCalls, err := e.findTriangles(tctx, bud, prog, sc, p, y)
	spTri.End()
	if err != nil {
		return nil, err
	}

	res := &Result{
		Saliency:    explain.NewSaliency(p, origScore),
		Sufficiency: make(map[string]float64),
	}
	res.Diag.TriangleSearchCalls = searchCalls
	res.Diag.LeftTriangles = len(tri.left)
	res.Diag.RightTriangles = len(tri.right)
	res.Diag.AugmentedLeft = tri.augLeft
	res.Diag.AugmentedRight = tri.augRight

	// Per-side lattice exploration.
	leftCounts, err := e.exploreSide(ctx, bud, prog, sc, p, y, record.Left, tri.left, &res.Diag)
	if err != nil {
		return nil, err
	}
	rightCounts, err := e.exploreSide(ctx, bud, prog, sc, p, y, record.Right, tri.right, &res.Diag)
	if err != nil {
		return nil, err
	}
	res.Diag.SavedPredictions = res.Diag.ExpectedPredictions - res.Diag.LatticePredictions

	// Necessity (Eq. 1): φ_a = N[a] / f, with f the global flip count
	// across both sides' lattices.
	f := leftCounts.flips + rightCounts.flips
	res.Diag.Flips = f
	if f > 0 {
		for ref, n := range leftCounts.necessity {
			res.Saliency.Scores[ref] = float64(n) / float64(f)
		}
		for ref, n := range rightCounts.necessity {
			res.Saliency.Scores[ref] = float64(n) / float64(f)
		}
	}

	// Sufficiency (Eq. 2): χ_A = S[A] / |T_side|. Algorithm 1 divides by
	// |T|; the paper's worked example (§4) divides by the number of
	// triangles on the set's own side, which is the probability the text
	// defines — we follow the worked example.
	best := AttrSet{}
	bestChi := -1.0
	bestSize := 1 << 30
	consider := func(counts *sideCounts, nTri int) {
		if nTri == 0 {
			return
		}
		// Deterministic iteration order.
		keys := make([]lattice.Mask, 0, len(counts.sufficiency))
		for mask := range counts.sufficiency {
			keys = append(keys, mask)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, mask := range keys {
			set := counts.attrSet(mask)
			chi := float64(counts.sufficiency[mask]) / float64(nTri)
			res.Sufficiency[set.Key()] = chi
			sz := mask.Count()
			if chi > bestChi || (chi == bestChi && sz < bestSize) {
				bestChi = chi
				bestSize = sz
				best = set
			}
		}
	}
	consider(leftCounts, len(tri.left))
	consider(rightCounts, len(tri.right))

	if bestChi > 0 {
		res.BestSet = best
		res.BestSufficiency = bestChi
		// Materialization runs even under a tripped budget: the scores it
		// asks for were (almost always) already paid for during lattice
		// exploration, and an anytime result should keep its
		// counterfactual examples.
		spCF, cctx := telemetry.StartSpan(ctx, "counterfactuals")
		res.Counterfactuals, err = e.buildCounterfactuals(cctx, sc, p, origScore, best, leftCounts, rightCounts, bestChi)
		spCF.End()
		if err != nil {
			return nil, err
		}
	}

	st := sc.Stats()
	res.Diag.ModelCalls = st.Misses
	res.Diag.BatchCalls = st.Batches
	res.Diag.CacheLookups = st.Lookups
	res.Diag.CacheHits = st.Hits
	// The seed pipeline scored: the original pair, the candidate scan up
	// to the last accepted support, every lattice oracle question, and
	// each deduplicated counterfactual.
	res.Diag.SeedPathCalls = 1 + seedSearchCalls + res.Diag.LatticeQueries + len(res.Counterfactuals)
	res.Diag.Truncated = bud.truncated
	res.Diag.TruncatedBy = bud.by
	res.Diag.BudgetSpent = st.Misses
	res.Diag.Completeness = prog.fraction()
	return res, nil
}

// sideCounts accumulates per-side flip statistics.
type sideCounts struct {
	side  record.Side
	attrs []string // schema attrs of the free record's side

	flips       int
	necessity   map[record.AttrRef]int
	sufficiency map[lattice.Mask]int
	// supports lists, per flipped mask, the support records whose
	// triangle flipped it (for counterfactual materialization).
	supports map[lattice.Mask][]*record.Record
}

func (c *sideCounts) attrSet(mask lattice.Mask) AttrSet {
	var names []string
	for _, i := range mask.Elems() {
		names = append(names, c.attrs[i])
	}
	return AttrSet{Side: c.side, Attrs: names}
}

// exploreSide runs the lattice exploration for every triangle of one
// side and aggregates the counters. The triangles advance level by level
// in lock step: all of a level's oracle questions, across every
// triangle, become one batched (and deduplicated) scoring call — and
// every level boundary is an anytime checkpoint: a tripped budget stops
// the walk there, keeping the levels already explored as the best-so-far
// estimate.
func (e *Explainer) exploreSide(ctx context.Context, bud *runBudget, prog *progress, sc *scorecache.Scorer, p record.Pair, y bool, side record.Side, supports []*record.Record, diag *Diagnostics) (*sideCounts, error) {
	free := p.Record(side)
	counts := &sideCounts{
		side:        side,
		attrs:       free.Schema.Attrs,
		necessity:   make(map[record.AttrRef]int),
		sufficiency: make(map[lattice.Mask]int),
		supports:    make(map[lattice.Mask][]*record.Record),
	}
	n := len(counts.attrs)
	if n == 0 || n > e.opts.MaxLatticeAttrs || len(supports) == 0 {
		return counts, nil
	}

	// One span per side; each lock-step level batch records a child
	// below (the oracle closure), so the trace attributes lattice time
	// per level.
	spSide, ctx := telemetry.StartSpan(ctx, "lattice/"+side.String())
	defer spSide.End()

	// The oracle needs classes, not scores, and most questions repeat
	// perturbations some lattice already asked: the keyers assemble each
	// question's canonical cache key without cloning a record, so the
	// score cache and the shared flip memo answer known subsets with zero
	// materialization — pairs are built only for true misses, with
	// identical answers and identical per-explanation accounting.
	keyers := make([]*scorecache.PerturbKeyer, len(supports))
	for i, w := range supports {
		keyers[i] = scorecache.NewPerturbKeyer(p, side, w)
	}
	oracle := func(qs []lattice.Query) ([]bool, error) {
		keys := make([]string, len(qs))
		for i, q := range qs {
			keys[i] = keyers[q.Lattice].Key(uint32(q.Mask))
		}
		// The lock-step exploration batches one level at a time, so one
		// oracle call is one lattice level across every triangle.
		qctx := ctx
		var sp *telemetry.Span
		if len(qs) > 0 {
			sp, qctx = telemetry.StartSpan(ctx, "lattice/level"+strconv.Itoa(qs[0].Mask.Count()))
			sp.AddItems(len(qs))
		}
		flips, err := sc.ScoreFlipsKeyedContext(qctx, keys, y, func(i int) record.Pair {
			q := qs[i]
			return perturb(p, side, supports[q.Lattice], counts.attrs, q.Mask)
		})
		sp.End()
		return flips, err
	}

	before := sc.Stats().Misses
	results, err := lattice.ExploreManyOpts(n, len(supports), oracle, lattice.ExploreOptions{
		Monotone: !e.opts.NoMonotone,
		Stop:     bud.exhausted,
		Prune:    e.opts.LatticePrune,
	})
	if err != nil {
		return nil, err
	}
	diag.LatticePredictions += sc.Stats().Misses - before
	// A pruned lattice is complete by policy, never Truncated; with
	// pruning on, the budget checkpoint may have marked some lattices
	// Truncated while others had already pruned themselves out.
	truncated := false
	levelsDone := 0
	for _, lr := range results {
		if lr.Truncated {
			truncated = true
			levelsDone = lr.LevelsDone
			break
		}
	}
	if truncated && n > 1 {
		prog.phase(float64(levelsDone) / float64(n-1))
	} else {
		prog.phase(1)
	}

	if e.opts.EvaluateMonotonicity && !e.opts.NoMonotone && !truncated {
		// CompareExact's model calls are bookkeeping, not part of the
		// algorithm's cost; they bypass the scorer entirely so no cost
		// or cache counter sees them.
		raw := sc.Underlying()
		for idx, lr := range results {
			if lr.Pruned {
				// A pruned lattice deliberately left nodes untagged;
				// CompareExact would charge those as wrong inferences, which
				// they are not — they are the policy's accepted unknowns,
				// reported via PrunedQueries instead.
				continue
			}
			w := supports[idx]
			exact := func(mask lattice.Mask) bool {
				perturbed := perturb(p, side, w, counts.attrs, mask)
				return (raw.Score(perturbed) > 0.5) != y
			}
			_, wrong := lattice.CompareExact(lr, exact)
			diag.WrongInferences += wrong
		}
	}

	full := lattice.Mask(1<<uint(n)) - 1
	for idx, lr := range results {
		diag.LatticeQueries += lr.Performed
		diag.ExpectedPredictions += lr.Expected
		if lr.Pruned {
			diag.PrunedQueries += lr.PrunedQueries
			diag.PruneLevels += (n - 1) - lr.LevelsDone
		}
		for _, mask := range lr.Flipped() {
			counts.flips++
			for _, ai := range mask.Elems() {
				counts.necessity[record.AttrRef{Side: side, Attr: counts.attrs[ai]}]++
			}
			if mask != full { // Eq. 3 excludes the full attribute set
				counts.sufficiency[mask]++
				counts.supports[mask] = append(counts.supports[mask], supports[idx])
			}
		}
	}
	return counts, nil
}

// perturb applies ψ(free, w, A): copy the attribute values selected by
// mask from the support record into the free record.
func perturb(p record.Pair, side record.Side, w *record.Record, attrs []string, mask lattice.Mask) record.Pair {
	vals := make(map[string]string, mask.Count())
	for _, ai := range mask.Elems() {
		vals[attrs[ai]] = w.Value(attrs[ai])
	}
	return p.WithRecord(side, p.Record(side).WithValues(vals))
}

// buildCounterfactuals materializes the counterfactual examples for A★:
// one per support record whose triangle flipped exactly that set. Their
// scores were asked during lattice exploration whenever A★ was tested
// directly, so the batched lookup below is normally answered entirely by
// the cache (an inferred-only A★ pays a small, deterministic overshoot).
func (e *Explainer) buildCounterfactuals(ctx context.Context, sc *scorecache.Scorer, p record.Pair, origScore float64, best AttrSet, left, right *sideCounts, chi float64) ([]explain.Counterfactual, error) {
	counts := left
	if best.Side == record.Right {
		counts = right
	}
	mask := maskFor(counts.attrs, best.Attrs)
	var cps []record.Pair
	seen := make(map[string]bool)
	for _, w := range counts.supports[mask] {
		cp := perturb(p, best.Side, w, counts.attrs, mask)
		key := cp.Record(best.Side).String()
		if seen[key] {
			continue // identical perturbations from duplicate supports
		}
		seen[key] = true
		cps = append(cps, cp)
	}
	if len(cps) == 0 {
		return nil, nil
	}
	scores, err := sc.ScoreBatchContext(ctx, cps)
	if err != nil {
		return nil, err
	}
	var out []explain.Counterfactual
	for i, cp := range cps {
		cf := explain.Counterfactual{
			Original:    p,
			Pair:        cp,
			Changed:     changedRefs(p, cp, best.Side),
			Score:       scores[i],
			Probability: chi,
		}.WithOriginalScore(origScore)
		out = append(out, cf)
	}
	return out, nil
}

func maskFor(attrs, subset []string) lattice.Mask {
	var m lattice.Mask
	for i, a := range attrs {
		for _, s := range subset {
			if a == s {
				m |= 1 << uint(i)
			}
		}
	}
	return m
}

// changedRefs lists attributes that actually differ between the original
// and the perturbed pair (copying an identical value changes nothing).
func changedRefs(orig, perturbed record.Pair, side record.Side) []record.AttrRef {
	var out []record.AttrRef
	o, c := orig.Record(side), perturbed.Record(side)
	for _, a := range o.ChangedAttrs(c) {
		out = append(out, record.AttrRef{Side: side, Attr: a})
	}
	return out
}

// ExplainSaliency implements explain.SaliencyExplainer.
func (e *Explainer) ExplainSaliency(m explain.Model, p record.Pair) (*explain.Saliency, error) {
	res, err := e.Explain(m, p)
	if err != nil {
		return nil, err
	}
	return res.Saliency, nil
}

// ExplainCounterfactuals implements explain.CounterfactualExplainer.
func (e *Explainer) ExplainCounterfactuals(m explain.Model, p record.Pair) ([]explain.Counterfactual, error) {
	res, err := e.Explain(m, p)
	if err != nil {
		return nil, err
	}
	return res.Counterfactuals, nil
}

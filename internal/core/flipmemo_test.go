package core

import (
	"reflect"
	"testing"

	"certa/internal/dataset"
	"certa/internal/record"
	"certa/internal/scorecache"
)

// flipWorkload builds the batch the cross-explanation flip memo exists
// for: pivot-sharing pairs (one left record against several rights,
// whose candidate scans share the score store) plus re-requested pairs —
// explanations of content already explained, as a long-lived shared
// service sees them, whose lattice perturbations repeat key-for-key.
func flipWorkload(t *testing.T, n, repeats int) (*dataset.Benchmark, []record.Pair) {
	t.Helper()
	b, pairs := benchPairs(t, "AB", n+1)
	pivot := pairs[0].Left
	out := make([]record.Pair, 0, n+repeats)
	for _, p := range pairs[1 : n+1] {
		out = append(out, record.Pair{Left: pivot, Right: p.Right})
	}
	out = append(out, out[:repeats]...)
	return b, out
}

// TestFlipMemoCrossExplanationReduction is the flip memo's end-to-end
// gate: a batch with repeated pair contents must issue strictly fewer
// score-store requests with the memo on (lattice subsets an earlier
// explanation settled are answered from the memo without a score
// fetch), never more model calls, and produce byte-identical Results
// with the memo on or off, at Parallelism 1 or 8, and against a
// sequential private-cache run.
func TestFlipMemoCrossExplanationReduction(t *testing.T) {
	b, expl := flipWorkload(t, 6, 3)

	run := func(par int, disable bool) ([]*Result, scorecache.ServiceStats) {
		svc := scorecache.NewService(textModel{}, scorecache.ServiceOptions{
			Parallelism:     par,
			DisableFlipMemo: disable,
		})
		e := New(b.Left, b.Right, Options{Triangles: 10, Seed: 5, Parallelism: par, Shared: svc})
		res, err := e.ExplainBatch(textModel{}, expl)
		if err != nil {
			t.Fatal(err)
		}
		return res, svc.Stats()
	}

	memoOn, statsOn := run(1, false)
	memoOff, statsOff := run(1, true)

	if statsOn.FlipHits == 0 {
		t.Fatalf("pivot-sharing explanations produced no flip-memo hits: %+v", statsOn)
	}
	if statsOn.Lookups >= statsOff.Lookups {
		t.Errorf("memo did not reduce score-store requests: %d lookups with memo, %d without",
			statsOn.Lookups, statsOff.Lookups)
	}
	if statsOn.Misses > statsOff.Misses {
		t.Errorf("memo increased model calls: %d > %d", statsOn.Misses, statsOff.Misses)
	}
	if !reflect.DeepEqual(memoOn, memoOff) {
		t.Fatal("results differ between flip memo on and off")
	}

	par8, _ := run(8, false)
	if !reflect.DeepEqual(memoOn, par8) {
		t.Fatal("memo-on results differ between Parallelism 1 and 8")
	}

	// Gold standard: a sequential run with a private cache per
	// explanation (no sharing, no memo reuse possible).
	seq := New(b.Left, b.Right, Options{Triangles: 10, Seed: 5})
	for i, p := range expl {
		want, err := seq.Explain(textModel{}, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(memoOn[i], want) {
			t.Fatalf("pair %d (%s): memoized result differs from private sequential run", i, p.Key())
		}
	}
}

package core

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"certa/internal/record"
)

// TestAnytimeBudgetDeterminism is the anytime determinism gate:
// CallBudget-truncated results must be byte-identical at Parallelism 1
// vs N, with or without batch-level sharing, at every budget. Truncation
// is decided by deterministic call accounting against the private scorer
// view at batch boundaries, so neither worker scheduling nor shared-store
// contents may move the cut.
func TestAnytimeBudgetDeterminism(t *testing.T) {
	b, pairs := benchPairs(t, "AB", 12)

	for _, budget := range []int{1, 2, 5, 10, 25, 60, 150, 0} {
		opts := Options{Triangles: 10, Seed: 5, CallBudget: budget}

		seq := New(b.Left, b.Right, opts)
		var want []*Result
		for _, p := range pairs {
			res, err := seq.Explain(textModel{}, p)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, res)
		}

		for _, workers := range []int{1, 4, 8} {
			popts := opts
			popts.Parallelism = workers
			got, err := New(b.Left, b.Right, popts).ExplainBatch(textModel{}, pairs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("budget=%d parallelism=%d pair %d: truncated result differs from sequential private-cache run\ngot:  %+v\nwant: %+v",
						budget, workers, i, got[i].Diag, want[i].Diag)
				}
			}
		}

		for _, res := range want {
			if budget == 0 {
				if res.Diag.Truncated {
					t.Fatalf("unlimited run marked truncated: %+v", res.Diag)
				}
				continue
			}
			if res.Diag.BudgetSpent != res.Diag.ModelCalls {
				t.Fatalf("budget=%d: BudgetSpent %d != ModelCalls %d", budget, res.Diag.BudgetSpent, res.Diag.ModelCalls)
			}
			if res.Diag.Truncated {
				if res.Diag.TruncatedBy != TruncatedByCallBudget {
					t.Fatalf("budget=%d: TruncatedBy = %q", budget, res.Diag.TruncatedBy)
				}
				if res.Diag.Completeness >= 1 {
					t.Fatalf("budget=%d: truncated run reports completeness %v", budget, res.Diag.Completeness)
				}
			} else if res.Diag.Completeness != 1 {
				t.Fatalf("budget=%d: complete run reports completeness %v", budget, res.Diag.Completeness)
			}
		}
	}
}

// TestAnytimeQualityMonotoneInBudget pins the anytime contract on a
// fixed pair: as CallBudget grows, a truncated run is a prefix of the
// next one, so completeness, triangles found and flips counted never
// degrade; once the budget covers the unlimited cost the result
// converges byte-identically to the untruncated run; and the
// counterfactuals of every budget, when present, genuinely flip.
func TestAnytimeQualityMonotoneInBudget(t *testing.T) {
	b, pairs := benchPairs(t, "AB", 1)
	p := pairs[0]

	full, err := New(b.Left, b.Right, Options{Triangles: 10, Seed: 5}).Explain(textModel{}, p)
	if err != nil {
		t.Fatal(err)
	}

	budgets := []int{1, 2, 4, 8, 16, 32, 64, 128, full.Diag.ModelCalls + 1}
	var prev *Result
	for _, budget := range budgets {
		res, err := New(b.Left, b.Right, Options{Triangles: 10, Seed: 5, CallBudget: budget}).Explain(textModel{}, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Diag.Completeness < 0 || res.Diag.Completeness > 1 {
			t.Fatalf("budget %d: completeness %v out of range", budget, res.Diag.Completeness)
		}
		if prev != nil {
			// Work at a smaller budget is a deterministic prefix of work
			// at a larger one, so everything the explanation *found* is
			// monotone non-degrading. (The completeness fraction itself is
			// not strictly monotone — an earlier cut can plan salvage
			// phases a later cut never needs — so it is only range-checked
			// above.)
			if res.Diag.Flips < prev.Diag.Flips {
				t.Fatalf("budget %d: flips %d < %d", budget, res.Diag.Flips, prev.Diag.Flips)
			}
			gotTri := res.Diag.LeftTriangles + res.Diag.RightTriangles
			prevTri := prev.Diag.LeftTriangles + prev.Diag.RightTriangles
			if gotTri < prevTri {
				t.Fatalf("budget %d: triangles %d < %d", budget, gotTri, prevTri)
			}
		}
		for _, cf := range res.Counterfactuals {
			if !cf.Flips() {
				t.Fatalf("budget %d: counterfactual does not flip (score %v, original %v)",
					budget, cf.Score, cf.OriginalScore())
			}
		}
		prev = res
	}
	if prev.Diag.Truncated {
		t.Fatalf("budget %d above unlimited cost %d still truncated", budgets[len(budgets)-1], full.Diag.ModelCalls)
	}
	if !reflect.DeepEqual(prev, full) {
		t.Fatalf("budget above unlimited cost does not converge to the untruncated result\ngot:  %+v\nwant: %+v",
			prev.Diag, full.Diag)
	}
}

// cancellingModel cancels a context after a fixed number of Score calls,
// simulating a caller that gives up mid-explanation.
type cancellingModel struct {
	inner  textModel
	cancel context.CancelFunc
	after  int64
	calls  atomic.Int64
}

func (m *cancellingModel) Name() string { return m.inner.Name() }
func (m *cancellingModel) Score(p record.Pair) float64 {
	if m.calls.Add(1) == m.after {
		m.cancel()
	}
	return m.inner.Score(p)
}

// TestExplainBatchContextCancellation: a cancelled context aborts the
// batch with ctx.Err() at the next scoring checkpoint, without running
// the remaining explanations.
func TestExplainBatchContextCancellation(t *testing.T) {
	b, pairs := benchPairs(t, "AB", 6)

	// Reference cost of the full batch and of one explanation.
	fullModel := &cancellingModel{after: -1}
	if _, err := New(b.Left, b.Right, Options{Triangles: 10, Seed: 5}).ExplainBatch(fullModel, pairs); err != nil {
		t.Fatal(err)
	}
	fullCalls := fullModel.calls.Load()

	// Cancel early in the first explanation: the batch must abort within
	// one batched scoring round, leaving the other five pairs unstarted.
	ctx, cancel := context.WithCancel(context.Background())
	m := &cancellingModel{cancel: cancel, after: 5}
	res, err := New(b.Left, b.Right, Options{Triangles: 10, Seed: 5}).ExplainBatchContext(ctx, m, pairs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled batch returned results")
	}
	if got := m.calls.Load(); got > fullCalls/3 {
		t.Fatalf("cancelled batch still made %d of %d model calls — remaining explanations ran", got, fullCalls)
	}

	// A context cancelled before the call makes no model calls at all.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	m2 := &cancellingModel{after: -1}
	if _, err := New(b.Left, b.Right, Options{Triangles: 10, Seed: 5, Parallelism: 4}).ExplainBatchContext(pre, m2, pairs); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v, want context.Canceled", err)
	}
	if got := m2.calls.Load(); got != 0 {
		t.Fatalf("pre-cancelled batch made %d model calls", got)
	}
}

// TestExplainDeadlineTruncatesNotErrors: an expired Options.Deadline
// yields a truncated best-so-far result, not an error — the soft
// deadline is an anytime knob, unlike context cancellation.
func TestExplainDeadlineTruncatesNotErrors(t *testing.T) {
	b, pairs := benchPairs(t, "AB", 1)
	res, err := New(b.Left, b.Right, Options{Triangles: 10, Seed: 5, Deadline: time.Nanosecond}).Explain(textModel{}, pairs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diag.Truncated || res.Diag.TruncatedBy != TruncatedByDeadline {
		t.Fatalf("expired deadline: Diag = %+v, want deadline truncation", res.Diag)
	}
	if res.Diag.Completeness >= 1 {
		t.Fatalf("expired deadline: completeness %v", res.Diag.Completeness)
	}
	if res.Saliency == nil {
		t.Fatal("truncated result missing saliency skeleton")
	}
}

package core

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"certa/internal/record"
	"certa/internal/scorecache"
)

// TestExplainBatchSharedCacheDeterministicAcrossParallelism pins the
// acceptance contract of the shared scoring service: with the shared
// cache on, ExplainBatch results — per-pair diagnostics included — are
// index-aligned identical at Parallelism 1 and 8, and both match a
// sequential loop of private-cache Explain calls.
func TestExplainBatchSharedCacheDeterministicAcrossParallelism(t *testing.T) {
	b, pairs := benchPairs(t, "AB", 12)

	run := func(par int) []*Result {
		svc := scorecache.NewService(textModel{}, scorecache.ServiceOptions{Parallelism: par})
		e := New(b.Left, b.Right, Options{Triangles: 10, Seed: 5, Parallelism: par, Shared: svc})
		out, err := e.ExplainBatch(textModel{}, pairs)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	one := run(1)
	eight := run(8)

	seq := New(b.Left, b.Right, Options{Triangles: 10, Seed: 5})
	for i, p := range pairs {
		priv, err := seq.Explain(textModel{}, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(one[i], eight[i]) {
			t.Errorf("pair %d (%s): shared-cache results differ between Parallelism 1 and 8", i, p.Key())
		}
		if !reflect.DeepEqual(one[i], priv) {
			t.Errorf("pair %d (%s): shared-cache result differs from private-cache Explain\nshared:  %+v\nprivate: %+v",
				i, p.Key(), one[i].Diag, priv.Diag)
		}
	}
}

// TestSharedServiceModelMismatchRejected guards the injection contract:
// a service wrapping one model cannot silently answer for another.
func TestSharedServiceModelMismatchRejected(t *testing.T) {
	b, pairs := benchPairs(t, "AB", 1)
	svc := scorecache.NewService(textModel{}, scorecache.ServiceOptions{})
	e := New(b.Left, b.Right, Options{Triangles: 4, Seed: 1, Shared: svc})
	if _, err := e.Explain(otherModel{}, pairs[0]); err == nil {
		t.Fatal("expected an error explaining a different model through the shared service")
	}
}

type otherModel struct{ textModel }

func (otherModel) Name() string { return "other" }

// TestExplainBatchLeftoverWorkersShardInner checks the parallelism
// distribution: with more workers than pairs, the leftover budget goes
// to inner batch sharding (and results stay identical, which
// TestExplainBatchSharedCacheDeterministicAcrossParallelism already
// covers at scale). Here 8 workers over 3 pairs must match 1 worker.
func TestExplainBatchLeftoverWorkersShardInner(t *testing.T) {
	b, pairs := benchPairs(t, "BA", 3)
	wide := New(b.Left, b.Right, Options{Triangles: 10, Seed: 3, Parallelism: 8})
	got, err := wide.ExplainBatch(textModel{}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	narrow := New(b.Left, b.Right, Options{Triangles: 10, Seed: 3})
	want, err := narrow.ExplainBatch(textModel{}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("pair %d: results differ when leftover workers shard inner batches", i)
		}
	}
}

// neverFlips predicts Match with high confidence for every input, so no
// candidate — natural or augmented — is ever an eligible support.
type neverFlips struct{}

func (neverFlips) Name() string                { return "never-flips" }
func (neverFlips) Score(p record.Pair) float64 { return 0.9 }

// TestAugmentedPatienceCountsRecords pins the abandonment point of the
// guided augmented-support scan: patience is spent per candidate record,
// not per token-drop variant. With records of 3-token values (4 variants
// each) and a model that never flips, the sequential-equivalent scan
// cost must be exactly 20 records x 4 variants.
func TestAugmentedPatienceCountsRecords(t *testing.T) {
	schema := record.MustSchema("S", "a")
	table := record.NewTable(schema)
	for i := 0; i < 30; i++ {
		table.MustAdd(record.MustNew(
			fmt.Sprintf("r%d", i), schema,
			fmt.Sprintf("tok%da tok%db tok%dc", i, i, i),
		))
	}
	pivotL := record.MustNew("pl", schema, "pivot left value")
	pivotR := record.MustNew("pr", schema, "pivot right value")
	p := record.Pair{Left: pivotL, Right: pivotR}

	e := New(table, table, Options{Triangles: 10, Seed: 1})
	sc := scorecache.New(neverFlips{}, scorecache.Options{})
	calls, seedCalls := 0, 0
	out, err := e.augmentedSupports(context.Background(), newRunBudget(sc, e.opts), &progress{}, sc, p, true, record.Left, 5, &calls, &seedCalls)
	if err != nil {
		t.Fatal(err)
	}

	if len(out) != 0 {
		t.Fatalf("never-flipping model produced %d supports", len(out))
	}
	const variantsPerRecord = 4 // 3 tokens -> k=1,2 x {drop-first, drop-last}
	want := augmentPatience * variantsPerRecord
	if seedCalls != want {
		t.Fatalf("abandonment after %d sequential-equivalent calls, want %d (= %d records x %d variants)",
			seedCalls, want, augmentPatience, variantsPerRecord)
	}
	if calls < seedCalls {
		t.Fatalf("scored %d < sequential-equivalent %d", calls, seedCalls)
	}
}

// TestAugmentedPatienceResetsOnEligibleRecord checks the streak is per
// record and resets when a record yields a support: a model that accepts
// every 10th record's variants keeps the scan alive past 20 records.
func TestAugmentedPatienceResetsOnEligibleRecord(t *testing.T) {
	schema := record.MustSchema("S", "a")
	table := record.NewTable(schema)
	for i := 0; i < 60; i++ {
		table.MustAdd(record.MustNew(
			fmt.Sprintf("r%02d", i), schema,
			fmt.Sprintf("t%02da t%02db t%02dc", i, i, i),
		))
	}
	pivotL := record.MustNew("pl", schema, "pivot left value")
	pivotR := record.MustNew("pr", schema, "pivot right value")
	p := record.Pair{Left: pivotL, Right: pivotR}

	e := New(table, table, Options{Triangles: 10, Seed: 1})
	sc := scorecache.New(everyTenth{}, scorecache.Options{})
	calls, seedCalls := 0, 0
	out, err := e.augmentedSupports(context.Background(), newRunBudget(sc, e.opts), &progress{}, sc, p, true, record.Left, 6, &calls, &seedCalls)
	if err != nil {
		t.Fatal(err)
	}

	// Eligible records arrive sprinkled through the stream less than 20
	// records apart, so the scan never abandons and finds all 6 wanted
	// supports (each eligible record contributes its flipping variants).
	if len(out) != 6 {
		t.Fatalf("found %d supports, want 6 (scan must not abandon between eligible records)", len(out))
	}
}

// everyTenth flips (predicts Non-Match) for variants derived from every
// 10th record, identified by its token prefix.
type everyTenth struct{}

func (everyTenth) Name() string { return "every-tenth" }
func (everyTenth) Score(p record.Pair) float64 {
	for _, tag := range []string{"t00", "t10", "t20", "t30", "t40", "t50"} {
		if strings.Contains(p.Left.Value("a"), tag+"a") || strings.Contains(p.Left.Value("a"), tag+"b") {
			return 0.1
		}
	}
	return 0.9
}

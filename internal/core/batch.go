package core

import (
	"fmt"

	"certa/internal/explain"
	"certa/internal/record"
	"certa/internal/workpool"
)

// ExplainBatch explains many predictions against the same model,
// fanning the pairs out over Options.Parallelism workers. Every pair is
// explained by the same deterministic per-pair pipeline Explain runs, so
// the results — diagnostics included — are index-aligned and identical
// to a sequential loop of Explain calls at any parallelism.
//
// Combined with the per-explanation batching this gives whole-benchmark
// runs both levers at once: intra-explanation batch scoring and
// cross-pair concurrency.
func (e *Explainer) ExplainBatch(m explain.Model, pairs []record.Pair) ([]*Result, error) {
	// Cross-pair concurrency takes the whole parallelism budget: giving
	// each in-flight explanation its own sharding workers on top would
	// oversubscribe the CPU (P*P goroutines) without changing results.
	inner := e
	if e.opts.Parallelism > 1 {
		opts := e.opts
		opts.Parallelism = 1
		inner = &Explainer{left: e.left, right: e.right, opts: opts}
	}
	out := make([]*Result, len(pairs))
	err := workpool.Each(len(pairs), e.opts.Parallelism, func(i int) error {
		res, err := inner.Explain(m, pairs[i])
		if err != nil {
			return fmt.Errorf("core: explaining pair %d (%s): %w", i, pairKey(pairs[i]), err)
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// pairKey renders a pair identity for error messages, tolerating the
// nil records Explain rejects.
func pairKey(p record.Pair) string {
	if p.Left == nil || p.Right == nil {
		return "<nil record>"
	}
	return p.Key()
}

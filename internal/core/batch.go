package core

import (
	"context"
	"fmt"

	"certa/internal/explain"
	"certa/internal/record"
	"certa/internal/scorecache"
	"certa/internal/workpool"
)

// ExplainBatch explains many predictions against the same model,
// fanning the pairs out over Options.Parallelism workers. Every pair is
// explained by the same deterministic per-pair pipeline Explain runs, so
// the results — diagnostics included — are index-aligned and identical
// to a sequential loop of Explain calls at any parallelism.
//
// All explanations of the batch score through one shared scoring
// service (Options.Shared when injected, a per-batch service otherwise):
// pair contents that recur across explanations — support candidates
// scanned against a shared pivot record, perturbations repeated between
// neighboring pairs — reach the model exactly once per batch instead of
// once per explanation, and two workers that miss on the same content
// concurrently trigger a single model call. Per-explanation Diagnostics
// are unaffected by the sharing: they are computed against
// per-explanation views and report what a private cache would have.
func (e *Explainer) ExplainBatch(m explain.Model, pairs []record.Pair) ([]*Result, error) {
	return e.ExplainBatchContext(context.Background(), m, pairs)
}

// ExplainBatchContext is ExplainBatch under a caller context. A
// cancelled context fail-fast-cancels the batch: explanations not yet
// started never run, in-flight explanations abort at their next scoring
// call, and the batch returns ctx.Err(). Per-explanation anytime limits
// (Options.Deadline, Options.CallBudget) apply to each explanation
// independently and truncate instead of erroring; a batch-wide hard
// deadline is expressed on ctx (context.WithTimeout).
func (e *Explainer) ExplainBatchContext(ctx context.Context, m explain.Model, pairs []record.Pair) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Cross-pair concurrency claims the parallelism budget first; any
	// leftover is handed to the inner explanations for batch sharding.
	// With 8 workers and 3 pairs the old pipeline pinned inner
	// Parallelism to 1 and idled 5 workers; now each of the 3 in-flight
	// explanations shards its batch evaluations over 2 workers. Inner
	// sharding never changes results, so the byte-identity contract
	// holds at any split.
	workers := e.opts.Parallelism
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers < 1 {
		workers = 1
	}
	opts := e.opts
	opts.Parallelism = e.opts.Parallelism / workers
	if opts.Parallelism < 1 {
		opts.Parallelism = 1
	}
	if opts.Shared == nil && !opts.DisableCache {
		opts.Shared = scorecache.NewService(m, scorecache.ServiceOptions{
			Parallelism: opts.Parallelism,
		})
	}
	// The inner explainers inherit the batch explainer's candidate
	// retrieval layer: one index serves every explanation of the batch.
	inner := &Explainer{left: e.left, right: e.right, opts: opts, sources: e.sources}

	out := make([]*Result, len(pairs))
	err := workpool.EachContext(ctx, len(pairs), workers, func(ctx context.Context, i int) error {
		res, err := inner.ExplainContext(ctx, m, pairs[i])
		if err != nil {
			return fmt.Errorf("core: explaining pair %d (%s): %w", i, pairKey(pairs[i]), err)
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// pairKey renders a pair identity for error messages, tolerating the
// nil records Explain rejects.
func pairKey(p record.Pair) string {
	if p.Left == nil || p.Right == nil {
		return "<nil record>"
	}
	return p.Key()
}

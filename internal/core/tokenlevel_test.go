package core

import (
	"math"
	"testing"

	"certa/internal/record"
	"certa/internal/strutil"
)

// brandModel matches iff the *first token* of the name attributes agree
// — so within the name value, exactly one token matters.
type brandModel struct{}

func (brandModel) Name() string { return "brand-oracle" }
func (brandModel) Score(p record.Pair) float64 {
	lt := strutil.Tokenize(p.Left.Value("name"))
	rt := strutil.Tokenize(p.Right.Value("name"))
	if len(lt) > 0 && len(rt) > 0 && lt[0] == rt[0] {
		return 0.9
	}
	return 0.1
}

func TestTokenSaliencyFindsDecisiveToken(t *testing.T) {
	left, right := buildTables()
	e := New(left, right, Options{Triangles: 10, Seed: 1, DisableAugmentation: true})
	p := matchPair(left, right) // names "alpha beta" on both sides
	res, err := e.Explain(brandModel{}, p)
	if err != nil {
		t.Fatal(err)
	}
	tokens, err := e.TokenSaliency(brandModel{}, p, res, TokenOptions{Samples: 120, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tokens) == 0 {
		t.Fatal("no token scores")
	}
	// The first token of a name attribute must outrank the second token
	// of the same attribute.
	first := map[record.AttrRef]float64{}
	second := map[record.AttrRef]float64{}
	for _, ts := range tokens {
		if ts.Ref.Attr != "name" {
			continue
		}
		switch ts.Index {
		case 0:
			first[ts.Ref] = ts.Score
		case 1:
			second[ts.Ref] = ts.Score
		}
	}
	if len(first) == 0 {
		t.Fatal("name tokens not analysed")
	}
	for ref, f := range first {
		if s, ok := second[ref]; ok && f <= s {
			t.Errorf("%v: first token score %v should exceed second %v (model reads only token 0)", ref, f, s)
		}
	}
}

func TestTokenSaliencyMassMatchesAttribute(t *testing.T) {
	left, right := buildTables()
	e := New(left, right, Options{Triangles: 10, Seed: 3, DisableAugmentation: true})
	p := nonMatchPair(left, right)
	res, err := e.Explain(nameModel{}, p)
	if err != nil {
		t.Fatal(err)
	}
	tokens, err := e.TokenSaliency(nameModel{}, p, res, TokenOptions{Samples: 80, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Per attribute, token scores sum to the attribute's necessity.
	sums := map[record.AttrRef]float64{}
	for _, ts := range tokens {
		sums[ts.Ref] += ts.Score
	}
	for ref, sum := range sums {
		want := res.Saliency.Scores[ref]
		if math.Abs(sum-want) > 1e-9 && want > 0 {
			t.Errorf("%v: token mass %v != attribute necessity %v", ref, sum, want)
		}
	}
}

func TestTokenSaliencySortedAndDeterministic(t *testing.T) {
	left, right := buildTables()
	e := New(left, right, Options{Triangles: 8, Seed: 5, DisableAugmentation: true})
	p := matchPair(left, right)
	res, err := e.Explain(nameModel{}, p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.TokenSaliency(nameModel{}, p, res, TokenOptions{Samples: 60, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.TokenSaliency(nameModel{}, p, res, TokenOptions{Samples: 60, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("non-deterministic token count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic token scores")
		}
		if i > 0 && a[i-1].Score < a[i].Score {
			t.Fatal("token scores not sorted descending")
		}
	}
}

func TestTokenSaliencyNeedsResult(t *testing.T) {
	left, right := buildTables()
	e := New(left, right, Options{})
	if _, err := e.TokenSaliency(nameModel{}, matchPair(left, right), nil, TokenOptions{}); err == nil {
		t.Error("nil result should error")
	}
}

func TestTokenSaliencyTopAttrsCap(t *testing.T) {
	left, right := buildTables()
	e := New(left, right, Options{Triangles: 8, Seed: 7, DisableAugmentation: true})
	p := matchPair(left, right)
	res, err := e.Explain(nameModel{}, p)
	if err != nil {
		t.Fatal(err)
	}
	tokens, err := e.TokenSaliency(nameModel{}, p, res, TokenOptions{Samples: 40, Seed: 8, TopAttrs: 1})
	if err != nil {
		t.Fatal(err)
	}
	attrs := map[record.AttrRef]bool{}
	for _, ts := range tokens {
		attrs[ts.Ref] = true
	}
	if len(attrs) > 1 {
		t.Errorf("TopAttrs=1 should analyse a single attribute, got %d", len(attrs))
	}
}

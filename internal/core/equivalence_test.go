package core

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"certa/internal/neighborhood"
)

// TestIndexedScanEquivalence is the single test that gates the
// candidate retrieval swap: explanations sourced from the prebuilt
// index must be byte-identical — the full Result, Diagnostics included
// — to explanations sourced from the historical scan path, at
// Parallelism 1 and 8, under the default guided search, under the
// SeedSearch ablation, under ForceAugmentation (the ranked stream's
// heaviest consumer), and under a CallBudget that truncates mid-search.
func TestIndexedScanEquivalence(t *testing.T) {
	b, pairs := benchPairs(t, "AB", 6)
	// A prebuilt shared index must behave exactly like the per-Explainer
	// build, so the indexed side alternates between the two.
	shared := neighborhood.NewSources(b.Left, b.Right)

	variants := []struct {
		name string
		opts Options
	}{
		{"guided", Options{Triangles: 10, Seed: 5}},
		{"seed-search", Options{Triangles: 10, Seed: 5, SeedSearch: true}},
		{"force-augmentation", Options{Triangles: 6, Seed: 5, ForceAugmentation: true}},
		{"call-budget", Options{Triangles: 10, Seed: 5, CallBudget: 120}},
		{"call-budget-seed-search", Options{Triangles: 10, Seed: 5, CallBudget: 120, SeedSearch: true}},
	}
	for _, v := range variants {
		for _, parallelism := range []int{1, 8} {
			name := fmt.Sprintf("%s/p%d", v.name, parallelism)
			opts := v.opts
			opts.Parallelism = parallelism

			indexed := opts
			if parallelism == 8 {
				indexed.Retrieval = shared
			}
			scan := opts
			scan.DisableIndex = true

			got, err := New(b.Left, b.Right, indexed).ExplainBatch(textModel{}, pairs)
			if err != nil {
				t.Fatalf("%s: indexed: %v", name, err)
			}
			want, err := New(b.Left, b.Right, scan).ExplainBatch(textModel{}, pairs)
			if err != nil {
				t.Fatalf("%s: scan: %v", name, err)
			}
			for i := range pairs {
				gj, err := json.Marshal(got[i])
				if err != nil {
					t.Fatal(err)
				}
				wj, err := json.Marshal(want[i])
				if err != nil {
					t.Fatal(err)
				}
				if string(gj) != string(wj) {
					t.Fatalf("%s: pair %s: indexed result differs from scan result\nindexed: %s\nscan:    %s",
						name, pairs[i].Key(), gj, wj)
				}
			}
			if v.name == "call-budget" {
				// The budget must really have truncated, or the variant
				// proves nothing.
				truncated := false
				for _, r := range got {
					truncated = truncated || r.Diag.Truncated
				}
				if !truncated {
					t.Fatalf("%s: CallBudget %d truncated nothing; the truncation variant is vacuous",
						name, opts.CallBudget)
				}
			}
		}
	}
}

// TestIndexedScanEquivalenceDeepEqual complements the JSON comparison
// with reflect.DeepEqual over the in-memory Results (JSON would mask a
// divergence in an unexported or omitted field) on the single-explain
// path.
func TestIndexedScanEquivalenceDeepEqual(t *testing.T) {
	b, pairs := benchPairs(t, "BA", 3)
	for _, p := range pairs {
		indexed, err := New(b.Left, b.Right, Options{Triangles: 8, Seed: 3}).Explain(textModel{}, p)
		if err != nil {
			t.Fatal(err)
		}
		scan, err := New(b.Left, b.Right, Options{Triangles: 8, Seed: 3, DisableIndex: true}).Explain(textModel{}, p)
		if err != nil {
			t.Fatal(err)
		}
		assertDeepEqualResults(t, p.Key(), indexed, scan)
	}
}

// TestRetrievalTableMismatchRejected pins the injection guard: an index
// built over different tables must be rejected, not silently produce
// explanations from the wrong sources.
func TestRetrievalTableMismatchRejected(t *testing.T) {
	b, pairs := benchPairs(t, "AB", 1)
	other, _ := benchPairs(t, "BA", 1)
	wrong := neighborhood.NewSources(other.Left, other.Right)
	_, err := New(b.Left, b.Right, Options{Triangles: 4, Seed: 1, Retrieval: wrong}).Explain(textModel{}, pairs[0])
	if err == nil {
		t.Fatal("expected an error for a Retrieval index over different tables")
	}
}

// TestAugmentBudgetDefaultPreserved pins the satellite refactor of the
// hard-coded attempt budget: the default AugmentBudget must reproduce
// the historical want*200 behaviour exactly, and a tiny budget must
// actually bound the augmented search's work.
func TestAugmentBudgetDefaultPreserved(t *testing.T) {
	b, pairs := benchPairs(t, "AB", 3)
	for _, p := range pairs {
		def, err := New(b.Left, b.Right, Options{Triangles: 6, Seed: 5, ForceAugmentation: true}).Explain(textModel{}, p)
		if err != nil {
			t.Fatal(err)
		}
		explicit, err := New(b.Left, b.Right, Options{Triangles: 6, Seed: 5, ForceAugmentation: true, AugmentBudget: 200}).Explain(textModel{}, p)
		if err != nil {
			t.Fatal(err)
		}
		assertDeepEqualResults(t, p.Key(), def, explicit)

		tiny, err := New(b.Left, b.Right, Options{Triangles: 6, Seed: 5, ForceAugmentation: true, AugmentBudget: 1}).Explain(textModel{}, p)
		if err != nil {
			t.Fatal(err)
		}
		if tiny.Diag.TriangleSearchCalls > def.Diag.TriangleSearchCalls {
			t.Errorf("pair %s: AugmentBudget 1 spent %d search calls, default spent %d — the budget is not bounding work",
				p.Key(), tiny.Diag.TriangleSearchCalls, def.Diag.TriangleSearchCalls)
		}
	}
}

func assertDeepEqualResults(t *testing.T, key string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		t.Fatalf("pair %s: results differ\na: %s\nb: %s", key, aj, bj)
	}
}

package core

import (
	"strings"
	"testing"

	"certa/internal/record"
	"certa/internal/strutil"
)

// rightOnlyModel matches iff the right record's desc contains "magic" —
// only right-side perturbations can flip it, exercising right open
// triangles in isolation.
type rightOnlyModel struct{}

func (rightOnlyModel) Name() string { return "right-only" }
func (rightOnlyModel) Score(p record.Pair) float64 {
	if strings.Contains(strutil.Normalize(p.Right.Value("desc")), "magic") {
		return 0.9
	}
	return 0.1
}

func TestRightOnlyTriangles(t *testing.T) {
	ls := record.MustSchema("U", "name", "desc", "price")
	rs := record.MustSchema("V", "name", "desc", "price")
	left := record.NewTable(ls)
	right := record.NewTable(rs)
	for i := 0; i < 6; i++ {
		id := string(rune('a' + i))
		left.MustAdd(record.MustNew("l"+id, ls, "name "+id, "plain desc "+id, "1"))
		desc := "plain desc " + id
		if i%2 == 0 {
			desc = "magic desc " + id
		}
		right.MustAdd(record.MustNew("r"+id, rs, "name "+id, desc, "1"))
	}
	u, _ := left.Get("la")
	v, _ := right.Get("rb") // non-magic: predicted non-match
	e := New(left, right, Options{Triangles: 6, Seed: 1, DisableAugmentation: true})
	res, err := e.Explain(rightOnlyModel{}, record.Pair{Left: u, Right: v})
	if err != nil {
		t.Fatal(err)
	}
	// Left triangles cannot exist: no left-side perturbation changes the
	// prediction, and no w has M(w, v)=Match since the model ignores the
	// left record entirely.
	if res.Diag.LeftTriangles != 0 {
		t.Errorf("left triangles = %d, want 0 for a right-only model", res.Diag.LeftTriangles)
	}
	if res.Diag.RightTriangles == 0 {
		t.Fatal("no right triangles found")
	}
	// All saliency mass sits on R_desc.
	rDesc := res.Saliency.Scores[record.AttrRef{Side: record.Right, Attr: "desc"}]
	if rDesc <= 0 {
		t.Error("R_desc should carry saliency")
	}
	for ref, v := range res.Saliency.Scores {
		if ref.Side == record.Left && v != 0 {
			t.Errorf("left attribute %v has saliency %v, want 0", ref, v)
		}
	}
	// A★ must be {R desc}.
	if res.BestSet.Side != record.Right || len(res.BestSet.Attrs) != 1 || res.BestSet.Attrs[0] != "desc" {
		t.Errorf("A★ = %v, want R:{desc}", res.BestSet)
	}
}

func TestMaxLatticeAttrsGuard(t *testing.T) {
	// A 14-attribute schema exceeds the default 12-attribute lattice
	// guard: the explanation degrades gracefully to no lattice work.
	attrs := make([]string, 14)
	for i := range attrs {
		attrs[i] = "a" + string(rune('a'+i))
	}
	ls := record.MustSchema("U", attrs...)
	rs := record.MustSchema("V", attrs...)
	left := record.NewTable(ls)
	right := record.NewTable(rs)
	vals := make([]string, 14)
	for i := range vals {
		vals[i] = "v"
	}
	left.MustAdd(record.MustNew("l0", ls, vals...))
	left.MustAdd(record.MustNew("l1", ls, vals...))
	right.MustAdd(record.MustNew("r0", rs, vals...))
	right.MustAdd(record.MustNew("r1", rs, vals...))
	u, _ := left.Get("l0")
	v, _ := right.Get("r0")
	e := New(left, right, Options{Triangles: 4, Seed: 1})
	res, err := e.Explain(constScore(0.4), record.Pair{Left: u, Right: v})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diag.LatticePredictions != 0 {
		t.Error("lattice exploration should be skipped beyond MaxLatticeAttrs")
	}
}

func TestSingleTriangleBudget(t *testing.T) {
	left, right := buildTables()
	e := New(left, right, Options{Triangles: 1, Seed: 2, DisableAugmentation: true})
	res, err := e.Explain(nameModel{}, nonMatchPair(left, right))
	if err != nil {
		t.Fatal(err)
	}
	if res.Diag.LeftTriangles > 1 || res.Diag.RightTriangles > 1 {
		t.Errorf("triangle budget exceeded: %d+%d", res.Diag.LeftTriangles, res.Diag.RightTriangles)
	}
}

func TestCounterfactualsDeduplicated(t *testing.T) {
	// Two identical support records produce identical perturbations; the
	// counterfactual list must not contain duplicates.
	ls := record.MustSchema("U", "name", "desc", "price")
	rs := record.MustSchema("V", "name", "desc", "price")
	left := record.NewTable(ls)
	right := record.NewTable(rs)
	left.MustAdd(record.MustNew("l0", ls, "alpha beta", "d0", "1"))
	left.MustAdd(record.MustNew("l1", ls, "gamma delta", "d1", "2"))
	left.MustAdd(record.MustNew("l2", ls, "gamma delta", "d1", "2")) // duplicate of l1
	right.MustAdd(record.MustNew("r0", rs, "alpha beta", "d0", "1"))
	right.MustAdd(record.MustNew("r1", rs, "gamma delta", "d1", "2"))

	u, _ := left.Get("l0")
	v, _ := right.Get("r1")
	e := New(left, right, Options{Triangles: 10, Seed: 3, DisableAugmentation: true})
	res, err := e.Explain(nameModel{}, record.Pair{Left: u, Right: v})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, cf := range res.Counterfactuals {
		key := cf.Pair.Left.String() + "|" + cf.Pair.Right.String()
		if seen[key] {
			t.Fatalf("duplicate counterfactual: %s", key)
		}
		seen[key] = true
	}
}

func TestSufficiencyProbabilitiesInRange(t *testing.T) {
	left, right := buildTables()
	e := New(left, right, Options{Triangles: 10, Seed: 4})
	res, err := e.Explain(twoAttrModel{}, nonMatchPair(left, right))
	if err != nil {
		t.Fatal(err)
	}
	for key, chi := range res.Sufficiency {
		if chi < 0 || chi > 1 {
			t.Errorf("χ(%s) = %v out of [0,1]", key, chi)
		}
	}
	for ref, phi := range res.Saliency.Scores {
		if phi < 0 || phi > 1 {
			t.Errorf("φ(%v) = %v out of [0,1]", ref, phi)
		}
	}
	if res.BestSufficiency < 0 || res.BestSufficiency > 1 {
		t.Errorf("χ★ = %v out of range", res.BestSufficiency)
	}
}

func TestLeftTrianglesOnly(t *testing.T) {
	left, right := buildTables()
	e := New(left, right, Options{Triangles: 10, Seed: 5, LeftTrianglesOnly: true, DisableAugmentation: true})
	res, err := e.Explain(nameModel{}, nonMatchPair(left, right))
	if err != nil {
		t.Fatal(err)
	}
	if res.Diag.RightTriangles != 0 {
		t.Errorf("right triangles = %d, want 0", res.Diag.RightTriangles)
	}
	// All saliency mass on the left side; φ(L_name) = 1 since every flip
	// of the name-only model involves the left name.
	if got := res.Saliency.Scores[record.AttrRef{Side: record.Left, Attr: "name"}]; got != 1 {
		t.Errorf("φ(L_name) = %v, want 1 with left-only triangles", got)
	}
	for ref, v := range res.Saliency.Scores {
		if ref.Side == record.Right && v != 0 {
			t.Errorf("right attribute %v has saliency %v", ref, v)
		}
	}
}

func TestSeedChangesTriangleSelection(t *testing.T) {
	left, right := buildTables()
	p := matchPair(left, right) // many eligible supports on both sides
	a, err := New(left, right, Options{Triangles: 4, Seed: 1, DisableAugmentation: true}).Explain(nameModel{}, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(left, right, Options{Triangles: 4, Seed: 99, DisableAugmentation: true}).Explain(nameModel{}, p)
	if err != nil {
		t.Fatal(err)
	}
	// With 9 eligible supports and a budget of 2 per side, different
	// seeds should (almost surely) select different support sets; the
	// counterfactual values then differ.
	if len(a.Counterfactuals) > 0 && len(b.Counterfactuals) > 0 {
		sameAll := len(a.Counterfactuals) == len(b.Counterfactuals)
		if sameAll {
			for i := range a.Counterfactuals {
				if !a.Counterfactuals[i].Pair.Left.Equal(b.Counterfactuals[i].Pair.Left) {
					sameAll = false
					break
				}
			}
		}
		if sameAll {
			t.Log("seeds selected identical supports (possible but unlikely); not failing")
		}
	}
}

package core

import (
	"reflect"
	"testing"

	"certa/internal/lattice"
)

// TestLatticePruneDeterministic is the pruned mode's determinism gate:
// with a PrunePolicy enabled, ExplainBatch must produce byte-identical
// Results at Parallelism 1 and 8 and against a sequential
// private-cache-per-explanation run — pruning decisions read only each
// lattice's own oracle answers, never scheduling or shared-cache state —
// and the skipped work must be reported through Diagnostics.
func TestLatticePruneDeterministic(t *testing.T) {
	b, pairs := benchPairs(t, "AB", 6)
	prune := lattice.PrunePolicy{Threshold: 0.3, MinLevels: 1}

	run := func(par int) []*Result {
		e := New(b.Left, b.Right, Options{Triangles: 10, Seed: 5, Parallelism: par, LatticePrune: prune})
		res, err := e.ExplainBatch(textModel{}, pairs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	p1 := run(1)
	p8 := run(8)
	if !reflect.DeepEqual(p1, p8) {
		t.Fatal("pruned results differ between Parallelism 1 and 8")
	}

	seq := New(b.Left, b.Right, Options{Triangles: 10, Seed: 5, LatticePrune: prune})
	for i, p := range pairs {
		want, err := seq.Explain(textModel{}, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p1[i], want) {
			t.Fatalf("pair %d (%s): batched pruned result differs from sequential run", i, p.Key())
		}
	}

	// The policy must actually have cut something, or the test is vacuous.
	pruned := 0
	for _, r := range p1 {
		pruned += r.Diag.PrunedQueries
		if r.Diag.PrunedQueries > 0 && r.Diag.PruneLevels == 0 {
			t.Fatal("PrunedQueries reported without PruneLevels")
		}
	}
	if pruned == 0 {
		t.Fatalf("threshold %v pruned nothing on this workload; the determinism check proved nothing", prune.Threshold)
	}
}

// TestLatticePruneSavesQueriesKeepsTopAttribution checks the estimator
// contract: a pruned run must ask strictly fewer lattice questions than
// the exact run on a workload where pruning fires, and the saved work
// must be visible in the diagnostics ledger (Performed + Pruned never
// exceeds the exhaustive count).
func TestLatticePruneSavesQueriesKeepsTopAttribution(t *testing.T) {
	b, pairs := benchPairs(t, "AB", 4)
	exact := New(b.Left, b.Right, Options{Triangles: 10, Seed: 5})
	pruned := New(b.Left, b.Right, Options{Triangles: 10, Seed: 5,
		LatticePrune: lattice.PrunePolicy{Threshold: 0.3, MinLevels: 1}})

	savedSomewhere := false
	for _, p := range pairs {
		er, err := exact.Explain(textModel{}, p)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := pruned.Explain(textModel{}, p)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Diag.LatticeQueries > er.Diag.LatticeQueries {
			t.Fatalf("pair %s: pruned run asked more questions (%d) than exact (%d)",
				p.Key(), pr.Diag.LatticeQueries, er.Diag.LatticeQueries)
		}
		if pr.Diag.LatticeQueries < er.Diag.LatticeQueries {
			savedSomewhere = true
			if pr.Diag.PrunedQueries == 0 {
				t.Fatalf("pair %s: questions saved but PrunedQueries is 0", p.Key())
			}
		}
		if pr.Diag.ExpectedPredictions != er.Diag.ExpectedPredictions {
			t.Fatalf("pair %s: pruning changed the exhaustive baseline (%d vs %d)",
				p.Key(), pr.Diag.ExpectedPredictions, er.Diag.ExpectedPredictions)
		}
	}
	if !savedSomewhere {
		t.Fatal("pruning saved no lattice questions on any pair; thresholds need retuning")
	}
}

// TestLatticePruneZeroPolicyIsDefault pins the off switch: the zero
// PrunePolicy must leave every Result byte-identical to an Options
// struct that never mentions pruning.
func TestLatticePruneZeroPolicyIsDefault(t *testing.T) {
	b, pairs := benchPairs(t, "BA", 3)
	plain := New(b.Left, b.Right, Options{Triangles: 8, Seed: 3})
	zeroed := New(b.Left, b.Right, Options{Triangles: 8, Seed: 3, LatticePrune: lattice.PrunePolicy{}})
	for _, p := range pairs {
		a, err := plain.Explain(textModel{}, p)
		if err != nil {
			t.Fatal(err)
		}
		z, err := zeroed.Explain(textModel{}, p)
		if err != nil {
			t.Fatal(err)
		}
		assertDeepEqualResults(t, p.Key(), a, z)
		if a.Diag.PrunedQueries != 0 || a.Diag.PruneLevels != 0 {
			t.Fatalf("pair %s: default run reported pruning diagnostics %d/%d",
				p.Key(), a.Diag.PrunedQueries, a.Diag.PruneLevels)
		}
	}
}

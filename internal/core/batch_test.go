package core

import (
	"reflect"
	"testing"

	"certa/internal/dataset"
	"certa/internal/record"
	"certa/internal/strutil"
)

// textModel is a deterministic functional classifier over the pair's
// full text, cheap enough to run across every benchmark code.
type textModel struct{}

func (textModel) Name() string { return "text-jaccard" }
func (textModel) Score(p record.Pair) float64 {
	if strutil.Jaccard(p.Left.Text(), p.Right.Text()) > 0.4 {
		return 0.9
	}
	return 0.1
}

func benchPairs(t *testing.T, code string, n int) (*dataset.Benchmark, []record.Pair) {
	t.Helper()
	b, err := dataset.Generate(code, dataset.Options{Seed: 11, MaxRecords: 120, MaxMatches: 60})
	if err != nil {
		t.Fatal(err)
	}
	var pairs []record.Pair
	for _, lp := range b.Test {
		pairs = append(pairs, lp.Pair)
		if len(pairs) == n {
			break
		}
	}
	if len(pairs) < n {
		t.Fatalf("benchmark %s has only %d test pairs, want %d", code, len(pairs), n)
	}
	return b, pairs
}

// TestExplainBatchMatchesSequentialExplain is the batch API's core
// contract: >=32 pairs at Parallelism 8 must produce results —
// diagnostics included — byte-identical to a sequential Explain loop.
func TestExplainBatchMatchesSequentialExplain(t *testing.T) {
	b, pairs := benchPairs(t, "AB", 32)

	seq := New(b.Left, b.Right, Options{Triangles: 10, Seed: 5})
	var want []*Result
	for _, p := range pairs {
		res, err := seq.Explain(textModel{}, p)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}

	par := New(b.Left, b.Right, Options{Triangles: 10, Seed: 5, Parallelism: 8})
	got, err := par.ExplainBatch(textModel{}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("pair %d (%s): batched result differs from sequential\ngot:  %+v\nwant: %+v",
				i, pairs[i].Key(), got[i].Diag, want[i].Diag)
		}
	}
}

// TestExplainByteIdenticalAcrossParallelism pins the determinism
// guarantee of the worker-pool pipeline at the single-explanation level.
func TestExplainByteIdenticalAcrossParallelism(t *testing.T) {
	b, pairs := benchPairs(t, "BA", 4)
	for _, p := range pairs {
		one, err := New(b.Left, b.Right, Options{Triangles: 12, Seed: 3, Parallelism: 1}).Explain(textModel{}, p)
		if err != nil {
			t.Fatal(err)
		}
		eight, err := New(b.Left, b.Right, Options{Triangles: 12, Seed: 3, Parallelism: 8}).Explain(textModel{}, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(one, eight) {
			t.Fatalf("pair %s: results differ between Parallelism 1 and 8", p.Key())
		}
	}
}

// TestExplainBatchPropagatesError checks the lowest-index failure
// surfaces deterministically.
func TestExplainBatchPropagatesError(t *testing.T) {
	b, pairs := benchPairs(t, "AB", 3)
	pairs[1] = record.Pair{} // nil records
	e := New(b.Left, b.Right, Options{Triangles: 4, Seed: 1, Parallelism: 4})
	if _, err := e.ExplainBatch(textModel{}, pairs); err == nil {
		t.Fatal("expected error for nil pair")
	}
}

// TestCachedMatchesUncachedAcrossAllCodes is the score-cache property
// test: on every one of the twelve benchmark codes, the memoized
// pipeline must produce exactly the explanation the uncached (seed
// scoring path) pipeline produces, while reaching the model no more
// often.
func TestCachedMatchesUncachedAcrossAllCodes(t *testing.T) {
	for _, code := range dataset.Codes() {
		b, pairs := benchPairs(t, code, 2)
		for _, p := range pairs {
			cached, err := New(b.Left, b.Right, Options{Triangles: 8, Seed: 21}).Explain(textModel{}, p)
			if err != nil {
				t.Fatalf("%s: %v", code, err)
			}
			raw, err := New(b.Left, b.Right, Options{Triangles: 8, Seed: 21, DisableCache: true}).Explain(textModel{}, p)
			if err != nil {
				t.Fatalf("%s: %v", code, err)
			}

			if !reflect.DeepEqual(cached.Saliency.Scores, raw.Saliency.Scores) {
				t.Errorf("%s %s: saliency differs with cache", code, p.Key())
			}
			if !reflect.DeepEqual(cached.Counterfactuals, raw.Counterfactuals) {
				t.Errorf("%s %s: counterfactuals differ with cache", code, p.Key())
			}
			if cached.BestSet.Key() != raw.BestSet.Key() || cached.BestSufficiency != raw.BestSufficiency {
				t.Errorf("%s %s: A★ differs with cache", code, p.Key())
			}
			if !reflect.DeepEqual(cached.Sufficiency, raw.Sufficiency) {
				t.Errorf("%s %s: sufficiency table differs with cache", code, p.Key())
			}

			// The oracle workload is identical; only who answers differs.
			if cached.Diag.LatticeQueries != raw.Diag.LatticeQueries {
				t.Errorf("%s %s: lattice queries %d (cached) vs %d (raw)",
					code, p.Key(), cached.Diag.LatticeQueries, raw.Diag.LatticeQueries)
			}
			if cached.Diag.LatticePredictions > cached.Diag.LatticeQueries {
				t.Errorf("%s %s: unique lattice calls %d exceed queries %d",
					code, p.Key(), cached.Diag.LatticePredictions, cached.Diag.LatticeQueries)
			}
			// LatticePredictions counts unique model calls: with the
			// cache disabled every query is one.
			if raw.Diag.LatticePredictions != raw.Diag.LatticeQueries {
				t.Errorf("%s %s: uncached run must call the model per query: %d != %d",
					code, p.Key(), raw.Diag.LatticePredictions, raw.Diag.LatticeQueries)
			}
			if cached.Diag.ModelCalls > raw.Diag.ModelCalls {
				t.Errorf("%s %s: cache increased model calls: %d > %d",
					code, p.Key(), cached.Diag.ModelCalls, raw.Diag.ModelCalls)
			}
			if cached.Diag.CacheLookups != cached.Diag.CacheHits+cached.Diag.ModelCalls {
				t.Errorf("%s %s: lookup accounting broken: %d != %d + %d",
					code, p.Key(), cached.Diag.CacheLookups, cached.Diag.CacheHits, cached.Diag.ModelCalls)
			}
		}
	}
}

// TestSeedPathAccounting sanity-checks the seed-path estimate the
// speedup benchmarks divide by.
func TestSeedPathAccounting(t *testing.T) {
	b, pairs := benchPairs(t, "AB", 4)
	e := New(b.Left, b.Right, Options{Triangles: 10, Seed: 2})
	for _, p := range pairs {
		res, err := e.Explain(textModel{}, p)
		if err != nil {
			t.Fatal(err)
		}
		d := res.Diag
		if d.SeedPathCalls < 1+d.LatticeQueries {
			t.Errorf("seed path %d cannot be below 1 + lattice queries %d", d.SeedPathCalls, d.LatticeQueries)
		}
		if d.ModelCalls <= 0 {
			t.Error("no model calls recorded")
		}
		// The chunked scan may overscan, but never by more than the scan
		// itself plus the final chunks; the seed estimate never exceeds
		// the lookups actually issued.
		if d.SeedPathCalls > d.CacheLookups {
			t.Errorf("seed path %d exceeds issued lookups %d", d.SeedPathCalls, d.CacheLookups)
		}
	}
}

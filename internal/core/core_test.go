package core

import (
	"fmt"
	"testing"

	"certa/internal/explain"
	"certa/internal/record"
	"certa/internal/strutil"
)

// nameModel is a transparent ER "classifier": match iff the name token
// sets overlap by more than half. Its ground-truth behaviour lets tests
// assert exactly which attributes are necessary and sufficient.
type nameModel struct{}

func (nameModel) Name() string { return "name-oracle" }
func (nameModel) Score(p record.Pair) float64 {
	if strutil.Jaccard(p.Left.Value("name"), p.Right.Value("name")) > 0.5 {
		return 0.9
	}
	return 0.1
}

// twoAttrModel matches iff name agrees OR (desc agrees AND price agrees):
// a non-monotone-free structure for sufficiency-set tests.
type twoAttrModel struct{}

func (twoAttrModel) Name() string { return "two-attr" }
func (twoAttrModel) Score(p record.Pair) float64 {
	nameOK := strutil.Jaccard(p.Left.Value("name"), p.Right.Value("name")) > 0.5
	descOK := strutil.Jaccard(p.Left.Value("desc"), p.Right.Value("desc")) > 0.5
	priceOK := strutil.Jaccard(p.Left.Value("price"), p.Right.Value("price")) > 0.5
	if nameOK || (descOK && priceOK) {
		return 0.85
	}
	return 0.15
}

// buildTables creates two small sources with controllable values.
func buildTables() (*record.Table, *record.Table) {
	ls := record.MustSchema("U", "name", "desc", "price")
	rs := record.MustSchema("V", "name", "desc", "price")
	left := record.NewTable(ls)
	right := record.NewTable(rs)
	names := []string{"alpha beta", "gamma delta", "epsilon zeta", "eta theta", "iota kappa",
		"lambda mu", "nu xi", "omicron pi", "rho sigma", "tau upsilon"}
	for i, n := range names {
		left.MustAdd(record.MustNew(fmt.Sprintf("l%d", i), ls, n, "desc "+n, fmt.Sprintf("%d", 10+i)))
		right.MustAdd(record.MustNew(fmt.Sprintf("r%d", i), rs, n, "desc "+n, fmt.Sprintf("%d", 10+i)))
	}
	return left, right
}

func nonMatchPair(left, right *record.Table) record.Pair {
	u, _ := left.Get("l0")  // name "alpha beta"
	v, _ := right.Get("r1") // name "gamma delta"
	return record.Pair{Left: u, Right: v}
}

func matchPair(left, right *record.Table) record.Pair {
	u, _ := left.Get("l0")
	v, _ := right.Get("r0")
	return record.Pair{Left: u, Right: v}
}

func TestExplainNonMatchFindsNameNecessity(t *testing.T) {
	left, right := buildTables()
	e := New(left, right, Options{Triangles: 10, Seed: 1, DisableAugmentation: true})
	res, err := e.Explain(nameModel{}, nonMatchPair(left, right))
	if err != nil {
		t.Fatal(err)
	}
	sal := res.Saliency.Scores
	lName := sal[record.AttrRef{Side: record.Left, Attr: "name"}]
	lDesc := sal[record.AttrRef{Side: record.Left, Attr: "desc"}]
	lPrice := sal[record.AttrRef{Side: record.Left, Attr: "price"}]
	rName := sal[record.AttrRef{Side: record.Right, Attr: "name"}]
	if lName <= lDesc || lName <= lPrice {
		t.Errorf("name saliency %v should dominate desc %v and price %v", lName, lDesc, lPrice)
	}
	// The model only looks at name, so every flipped lattice node (on
	// either side) contains its side's name attribute: φ is normalized by
	// the global flip count, hence φ(L_name) + φ(R_name) = 1.
	if sum := lName + rName; sum < 0.999 || sum > 1.001 {
		t.Errorf("φ(L_name)+φ(R_name) = %v, want 1 for the name-only model", sum)
	}
}

func TestExplainNonMatchCounterfactuals(t *testing.T) {
	left, right := buildTables()
	e := New(left, right, Options{Triangles: 10, Seed: 1, DisableAugmentation: true})
	p := nonMatchPair(left, right)
	res, err := e.Explain(nameModel{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counterfactuals) == 0 {
		t.Fatal("expected counterfactuals")
	}
	// A★ must be a single name attribute with χ = 1.
	if len(res.BestSet.Attrs) != 1 || res.BestSet.Attrs[0] != "name" {
		t.Errorf("A★ = %v, want {name}", res.BestSet)
	}
	if res.BestSufficiency != 1 {
		t.Errorf("χ★ = %v, want 1", res.BestSufficiency)
	}
	for _, cf := range res.Counterfactuals {
		if !cf.Flips() {
			t.Errorf("counterfactual does not flip: score %v orig %v", cf.Score, cf.OriginalScore())
		}
		if len(cf.Changed) == 0 {
			t.Error("counterfactual with no changed attributes")
		}
		for _, ref := range cf.Changed {
			if ref.Attr != "name" {
				t.Errorf("changed attr %v, want only name", ref)
			}
		}
	}
}

func TestExplainMatchDirection(t *testing.T) {
	left, right := buildTables()
	e := New(left, right, Options{Triangles: 10, Seed: 2, DisableAugmentation: true})
	p := matchPair(left, right)
	res, err := e.Explain(nameModel{}, p)
	if err != nil {
		t.Fatal(err)
	}
	// Explaining a Match: supports are non-matching records; copying
	// their names breaks the match. Name carries all necessity mass.
	lName := res.Saliency.Scores[record.AttrRef{Side: record.Left, Attr: "name"}]
	rName := res.Saliency.Scores[record.AttrRef{Side: record.Right, Attr: "name"}]
	if sum := lName + rName; sum < 0.999 || sum > 1.001 {
		t.Errorf("φ(L_name)+φ(R_name) = %v, want 1", sum)
	}
	if len(res.Counterfactuals) == 0 {
		t.Fatal("expected counterfactuals for match prediction")
	}
	for _, cf := range res.Counterfactuals {
		if cf.Score > 0.5 {
			t.Errorf("counterfactual of a match should score below 0.5, got %v", cf.Score)
		}
	}
}

func TestSufficiencyOfConjunction(t *testing.T) {
	left, right := buildTables()
	e := New(left, right, Options{Triangles: 10, Seed: 3, DisableAugmentation: true})
	p := nonMatchPair(left, right)
	res, err := e.Explain(twoAttrModel{}, p)
	if err != nil {
		t.Fatal(err)
	}
	// Both {name} and {desc,price} are sufficient; A★ should prefer the
	// singleton when χ ties, and χ({name}) = 1 regardless.
	chiName := res.Sufficiency[AttrSet{Side: record.Left, Attrs: []string{"name"}}.Key()]
	if chiName != 1 {
		t.Errorf("χ(L:{name}) = %v, want 1", chiName)
	}
	if len(res.BestSet.Attrs) != 1 {
		t.Errorf("A★ = %v, want a singleton (tie-break on size)", res.BestSet)
	}
	// The conjunction must appear in the sufficiency table.
	chiPair := res.Sufficiency[AttrSet{Side: record.Left, Attrs: []string{"desc", "price"}}.Key()]
	if chiPair <= 0 {
		t.Errorf("χ(L:{desc,price}) = %v, want > 0", chiPair)
	}
}

func TestMonotoneSavesPredictions(t *testing.T) {
	left, right := buildTables()
	p := nonMatchPair(left, right)

	mono := New(left, right, Options{Triangles: 10, Seed: 4})
	resMono, err := mono.Explain(nameModel{}, p)
	if err != nil {
		t.Fatal(err)
	}
	exact := New(left, right, Options{Triangles: 10, Seed: 4, NoMonotone: true})
	resExact, err := exact.Explain(nameModel{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if resMono.Diag.LatticeQueries >= resExact.Diag.LatticeQueries {
		t.Errorf("monotone should save queries: %d vs %d",
			resMono.Diag.LatticeQueries, resExact.Diag.LatticeQueries)
	}
	if resMono.Diag.LatticePredictions >= resExact.Diag.LatticePredictions {
		t.Errorf("monotone should save predictions: %d vs %d",
			resMono.Diag.LatticePredictions, resExact.Diag.LatticePredictions)
	}
	if resExact.Diag.LatticeQueries != resExact.Diag.ExpectedPredictions {
		t.Errorf("exact mode must ask about all nodes: %d vs %d",
			resExact.Diag.LatticeQueries, resExact.Diag.ExpectedPredictions)
	}
	// The name-only model is monotone, so the two runs agree on saliency.
	for ref, v := range resMono.Saliency.Scores {
		if ev := resExact.Saliency.Scores[ref]; v != ev {
			t.Errorf("saliency for %v differs: mono %v exact %v", ref, v, ev)
		}
	}
}

func TestEvaluateMonotonicityOnMonotoneModel(t *testing.T) {
	left, right := buildTables()
	e := New(left, right, Options{Triangles: 10, Seed: 5, EvaluateMonotonicity: true})
	res, err := e.Explain(nameModel{}, nonMatchPair(left, right))
	if err != nil {
		t.Fatal(err)
	}
	if res.Diag.WrongInferences != 0 {
		t.Errorf("name model is monotone; wrong inferences = %d", res.Diag.WrongInferences)
	}
	if res.Diag.SavedPredictions <= 0 {
		t.Error("expected savings")
	}
}

func TestDeterminism(t *testing.T) {
	left, right := buildTables()
	p := nonMatchPair(left, right)
	a, err := New(left, right, Options{Triangles: 8, Seed: 9}).Explain(nameModel{}, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(left, right, Options{Triangles: 8, Seed: 9}).Explain(nameModel{}, p)
	if err != nil {
		t.Fatal(err)
	}
	for ref, v := range a.Saliency.Scores {
		if b.Saliency.Scores[ref] != v {
			t.Fatalf("saliency differs for %v", ref)
		}
	}
	if len(a.Counterfactuals) != len(b.Counterfactuals) {
		t.Fatal("counterfactual counts differ")
	}
	if a.BestSet.Key() != b.BestSet.Key() {
		t.Fatal("A★ differs")
	}
}

func TestParallelismEquivalence(t *testing.T) {
	left, right := buildTables()
	p := nonMatchPair(left, right)
	serial, err := New(left, right, Options{Triangles: 10, Seed: 6}).Explain(twoAttrModel{}, p)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(left, right, Options{Triangles: 10, Seed: 6, Parallelism: 4}).Explain(twoAttrModel{}, p)
	if err != nil {
		t.Fatal(err)
	}
	for ref, v := range serial.Saliency.Scores {
		if parallel.Saliency.Scores[ref] != v {
			t.Fatalf("parallel result differs for %v", ref)
		}
	}
	if serial.BestSet.Key() != parallel.BestSet.Key() {
		t.Fatal("A★ differs under parallelism")
	}
}

func TestAugmentationTopsUpTriangles(t *testing.T) {
	// A tiny source cannot supply enough natural supports.
	ls := record.MustSchema("U", "name", "desc", "price")
	rs := record.MustSchema("V", "name", "desc", "price")
	left := record.NewTable(ls)
	right := record.NewTable(rs)
	left.MustAdd(record.MustNew("l0", ls, "alpha beta gamma", "one two three", "5"))
	left.MustAdd(record.MustNew("l1", ls, "delta epsilon zeta", "four five six", "6"))
	right.MustAdd(record.MustNew("r0", rs, "alpha beta gamma", "one two three", "5"))
	right.MustAdd(record.MustNew("r1", rs, "delta epsilon zeta", "four five six", "6"))

	u, _ := left.Get("l0")
	v, _ := right.Get("r1")
	p := record.Pair{Left: u, Right: v} // non-match under nameModel

	e := New(left, right, Options{Triangles: 12, Seed: 7})
	res, err := e.Explain(nameModel{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diag.AugmentedLeft == 0 && res.Diag.AugmentedRight == 0 {
		t.Errorf("expected augmented triangles, diag=%+v", res.Diag)
	}
	if res.Diag.LeftTriangles == 0 {
		t.Error("no left triangles at all")
	}
}

func TestDisableAugmentation(t *testing.T) {
	ls := record.MustSchema("U", "name", "desc", "price")
	rs := record.MustSchema("V", "name", "desc", "price")
	left := record.NewTable(ls)
	right := record.NewTable(rs)
	left.MustAdd(record.MustNew("l0", ls, "alpha beta", "x", "1"))
	left.MustAdd(record.MustNew("l1", ls, "gamma delta", "y", "2"))
	right.MustAdd(record.MustNew("r0", rs, "alpha beta", "x", "1"))
	right.MustAdd(record.MustNew("r1", rs, "gamma delta", "y", "2"))
	u, _ := left.Get("l0")
	v, _ := right.Get("r1")
	p := record.Pair{Left: u, Right: v}

	e := New(left, right, Options{Triangles: 50, Seed: 8, DisableAugmentation: true})
	res, err := e.Explain(nameModel{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diag.AugmentedLeft != 0 || res.Diag.AugmentedRight != 0 {
		t.Error("augmentation should be disabled")
	}
	if res.Diag.LeftTriangles > 1 {
		t.Errorf("tiny source should cap natural triangles at 1, got %d", res.Diag.LeftTriangles)
	}
}

func TestForceAugmentation(t *testing.T) {
	left, right := buildTables()
	e := New(left, right, Options{Triangles: 10, Seed: 9, ForceAugmentation: true})
	res, err := e.Explain(nameModel{}, nonMatchPair(left, right))
	if err != nil {
		t.Fatal(err)
	}
	if res.Diag.LeftTriangles != res.Diag.AugmentedLeft {
		t.Errorf("forced augmentation: all %d left triangles should be augmented, got %d",
			res.Diag.LeftTriangles, res.Diag.AugmentedLeft)
	}
}

func TestDegenerateNoTriangles(t *testing.T) {
	// A constant model never flips, so no support records exist.
	left, right := buildTables()
	e := New(left, right, Options{Triangles: 10, Seed: 10})
	constModel := constScore(0.9)
	res, err := e.Explain(constModel, matchPair(left, right))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counterfactuals) != 0 {
		t.Error("constant model cannot have counterfactuals")
	}
	for ref, v := range res.Saliency.Scores {
		if v != 0 {
			t.Errorf("saliency %v = %v, want 0", ref, v)
		}
	}
	if res.Diag.Flips != 0 {
		t.Error("no flips expected")
	}
}

type constScore float64

func (constScore) Name() string                { return "const" }
func (c constScore) Score(record.Pair) float64 { return float64(c) }

func TestExplainNilPair(t *testing.T) {
	left, right := buildTables()
	e := New(left, right, Options{})
	if _, err := e.Explain(nameModel{}, record.Pair{}); err == nil {
		t.Error("nil records should error")
	}
}

func TestExplainerInterfaces(t *testing.T) {
	left, right := buildTables()
	e := New(left, right, Options{Triangles: 8, Seed: 11})
	var _ explain.SaliencyExplainer = e
	var _ explain.CounterfactualExplainer = e
	p := nonMatchPair(left, right)
	sal, err := e.ExplainSaliency(nameModel{}, p)
	if err != nil || sal == nil {
		t.Fatal("ExplainSaliency failed")
	}
	cfs, err := e.ExplainCounterfactuals(nameModel{}, p)
	if err != nil || len(cfs) == 0 {
		t.Fatal("ExplainCounterfactuals failed")
	}
	if e.Name() != "CERTA" {
		t.Error("Name wrong")
	}
}

func TestAttrSetKey(t *testing.T) {
	s := AttrSet{Side: record.Left, Attrs: []string{"price", "name"}}
	if s.Key() != "L:{name,price}" {
		t.Errorf("Key = %q", s.Key())
	}
	refs := s.Refs()
	if len(refs) != 2 || refs[0].Side != record.Left {
		t.Errorf("Refs = %v", refs)
	}
}

func TestDiagnosticsAccounting(t *testing.T) {
	left, right := buildTables()
	e := New(left, right, Options{Triangles: 6, Seed: 12})
	res, err := e.Explain(nameModel{}, nonMatchPair(left, right))
	if err != nil {
		t.Fatal(err)
	}
	d := res.Diag
	if d.SavedPredictions != d.ExpectedPredictions-d.LatticePredictions {
		t.Errorf("saved %d != expected %d - performed %d", d.SavedPredictions, d.ExpectedPredictions, d.LatticePredictions)
	}
	// 3 attributes per side: each lattice expects 2^3-2 = 6 nodes.
	wantExpected := 6 * (d.LeftTriangles + d.RightTriangles)
	if d.ExpectedPredictions != wantExpected {
		t.Errorf("expected predictions %d, want %d", d.ExpectedPredictions, wantExpected)
	}
	if d.TriangleSearchCalls == 0 {
		t.Error("triangle search must cost model calls")
	}
}

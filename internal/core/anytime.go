package core

import (
	"time"

	"certa/internal/scorecache"
)

// Diagnostics.TruncatedBy values.
const (
	// TruncatedByCallBudget marks explanations cut short by
	// Options.CallBudget.
	TruncatedByCallBudget = "call-budget"
	// TruncatedByDeadline marks explanations cut short by
	// Options.Deadline.
	TruncatedByDeadline = "deadline"
)

// runBudget tracks the anytime limits of one explanation. Its exhausted
// method is the cooperative checkpoint every batched stage of the
// pipeline consults before expanding work: triangle-scan chunk flushes
// and lattice level boundaries.
//
// The call-budget check reads the per-explanation scorer view's Misses
// counter, which is deterministic at any Parallelism and independent of
// what a shared service already cached — so call-budget truncation is
// byte-identical across Parallelism settings and with or without
// Options.Shared. The wall-clock check reuses the same checkpoints but
// is inherently nondeterministic; it is skipped entirely when no
// deadline is set, keeping budget-only runs free of clock reads.
type runBudget struct {
	sc       *scorecache.Scorer
	calls    int       // Options.CallBudget; 0 = unlimited
	deadline time.Time // zero = no deadline

	truncated bool
	by        string
}

func newRunBudget(sc *scorecache.Scorer, opts Options) *runBudget {
	b := &runBudget{sc: sc, calls: opts.CallBudget}
	if opts.Deadline > 0 {
		//lint:allow nodrift the anytime deadline is wall-clock by contract (PR 3); budget truncation itself stays deterministic via call accounting
		b.deadline = time.Now().Add(opts.Deadline)
	}
	return b
}

// exhausted reports whether the explanation should stop expanding work,
// latching the first limit that trips. Checkpoints sit at batch
// boundaries, so a budget can be overshot by at most the batch that was
// in flight when it tripped — deterministically so for the call budget.
func (b *runBudget) exhausted() bool {
	if b.truncated {
		return true
	}
	if b.calls > 0 && b.sc.Stats().Misses >= b.calls {
		b.truncated, b.by = true, TruncatedByCallBudget
		return true
	}
	//lint:allow nodrift deadline checkpoint reads the wall clock by design (PR 3); soft truncation is the point
	if !b.deadline.IsZero() && !time.Now().Before(b.deadline) {
		b.truncated, b.by = true, TruncatedByDeadline
		return true
	}
	return false
}

// progress accumulates the completeness fraction of an anytime
// explanation: each pipeline phase that runs (per-side triangle scans,
// per-side lattice explorations) registers once with its own completion
// fraction — 1 when it ran to its natural end, the fraction of work done
// when a budget checkpoint cut it short. Phases that were never planned
// (augmentation not needed, side disabled) do not dilute the fraction.
type progress struct {
	planned, done float64
}

// phase registers one unit-weight phase with completion fraction frac.
func (p *progress) phase(frac float64) {
	p.planned++
	p.done += frac
}

// fraction reports overall completeness in [0,1]; 1 when nothing was
// planned (nothing to do is complete).
func (p *progress) fraction() float64 {
	if p.planned == 0 {
		return 1
	}
	return p.done / p.planned
}

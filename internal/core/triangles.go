package core

import (
	"context"
	"strconv"

	"certa/internal/neighborhood"
	"certa/internal/record"
	"certa/internal/scorecache"
	"certa/internal/strutil"
	"certa/internal/telemetry"
)

// triangles holds the support records selected for one explanation.
type triangles struct {
	left, right       []*record.Record
	augLeft, augRight int
}

// findTriangles implements get_triangles of Algorithm 1: τ/2 left
// supports (w ∈ U with M(⟨w,v⟩)=¬y) and τ/2 right supports (q ∈ V with
// M(⟨u,q⟩)=¬y), topped up by data augmentation on shortage (§3.3).
//
// It returns the supports plus two cost counters: calls is the number of
// candidate score lookups the chunked batch scan issued, and seedCalls
// is what the sequential seed scan — which stopped at the last accepted
// support — would have scored.
//
// Every chunk flush is an anytime checkpoint: a tripped budget abandons
// the remaining stream (and the phases after it), keeping the supports
// found so far.
func (e *Explainer) findTriangles(ctx context.Context, bud *runBudget, prog *progress, sc *scorecache.Scorer, p record.Pair, y bool) (triangles, int, int, error) {
	perSide := e.opts.Triangles / 2
	if perSide < 1 {
		perSide = 1
	}
	var tri triangles
	calls, seedCalls := 0, 0

	if e.opts.LeftTrianglesOnly {
		perSide = e.opts.Triangles
	}
	var err error
	if !e.opts.ForceAugmentation {
		tri.left, err = e.naturalSupports(ctx, bud, prog, sc, p, y, record.Left, perSide, &calls, &seedCalls)
		if err != nil {
			return tri, calls, seedCalls, err
		}
		if !e.opts.LeftTrianglesOnly {
			tri.right, err = e.naturalSupports(ctx, bud, prog, sc, p, y, record.Right, perSide, &calls, &seedCalls)
			if err != nil {
				return tri, calls, seedCalls, err
			}
		}
	}
	if !e.opts.DisableAugmentation || e.opts.ForceAugmentation {
		if len(tri.left) < perSide {
			aug, err := e.augmentedSupports(ctx, bud, prog, sc, p, y, record.Left, perSide-len(tri.left), &calls, &seedCalls)
			if err != nil {
				return tri, calls, seedCalls, err
			}
			tri.augLeft = len(aug)
			tri.left = append(tri.left, aug...)
		}
		if !e.opts.LeftTrianglesOnly && len(tri.right) < perSide {
			aug, err := e.augmentedSupports(ctx, bud, prog, sc, p, y, record.Right, perSide-len(tri.right), &calls, &seedCalls)
			if err != nil {
				return tri, calls, seedCalls, err
			}
			tri.augRight = len(aug)
			tri.right = append(tri.right, aug...)
		}
	}
	return tri, calls, seedCalls, nil
}

// maxSearchChunk caps the geometric chunk growth of the candidate scan.
const maxSearchChunk = 256

// augmentPatience is the guided augmented scan's abandonment threshold:
// consecutive candidate records whose token-drop variants all fail to
// flip before the stream is declared hopeless.
const augmentPatience = 20

// prunePatience replaces augmentPatience when Options.LatticePrune is
// enabled. A barren candidate record costs a full token-drop fan-out
// (tens of scored variants) before patience ticks, so the exact mode's
// 20-record tail is the single largest cost on sides where supports are
// scarce. Cutting it to 6 is the LEMON-style budget cut of the pruned
// mode: selection stays a pure function of (pair, sources, Seed) — so
// results remain byte-identical at any Parallelism — and the saliency
// cost of the shorter tail is gated by certa-bench's measured top-2
// agreement against the exact run, not assumed.
const prunePatience = 6

// supportScan selects the first `want` eligible candidates of a
// deterministic stream, scoring the stream in geometrically growing
// chunks through the cached batch scorer. The selection is identical to
// a one-candidate-at-a-time scan (eligibility is per-candidate and the
// accepted set is a prefix property); only the scoring is batched, which
// may look at most one chunk past the last accepted candidate.
type supportScan struct {
	ctx  context.Context
	bud  *runBudget
	sc   *scorecache.Scorer
	p    record.Pair
	side record.Side
	y    bool
	want int

	chunk   int
	pending []*record.Record
	recOrds []int // per pending candidate: ordinal of its source record
	out     []*record.Record
	scored  int  // candidates actually scored (chunk overscan included)
	seed    int  // candidates the sequential seed scan would have scored
	done    bool // want reached or stream abandoned; later candidates are ignored
	// truncated records that a budget checkpoint (not the stream's own
	// logic) abandoned the scan; err records a context cancellation.
	truncated bool
	err       error

	// patience abandons the scan after this many consecutive source
	// records (marked by beginRecord) that contributed no eligible
	// candidate (0 = never). Guards searches over streams that contain
	// no eligible candidates at all. The streak counts candidate
	// records, not individual variants: a record that fans out into
	// dozens of token-drop variants still spends only one unit of
	// patience.
	patience int
	streak   int

	curRec      int  // ordinal of the record currently generating candidates
	lastRec     int  // ordinal of the last record seen during scoring
	recEligible bool // the record being scored has yielded an eligible candidate
}

func newSupportScan(ctx context.Context, bud *runBudget, sc *scorecache.Scorer, p record.Pair, side record.Side, y bool, want int) *supportScan {
	chunk := want
	if chunk < 1 {
		chunk = 1
	}
	if chunk > maxSearchChunk {
		chunk = maxSearchChunk
	}
	return &supportScan{ctx: ctx, bud: bud, sc: sc, p: p, side: side, y: y, want: want, chunk: chunk}
}

// beginRecord marks the start of a new source record's candidates; the
// patience streak advances per record, not per candidate variant.
func (s *supportScan) beginRecord() { s.curRec++ }

// add buffers one candidate, flushing a full chunk through the scorer.
func (s *supportScan) add(cand *record.Record) {
	if s.done {
		return
	}
	s.pending = append(s.pending, cand)
	s.recOrds = append(s.recOrds, s.curRec)
	if len(s.pending) >= s.chunk {
		s.flush()
	}
}

func (s *supportScan) flush() {
	if s.done || len(s.pending) == 0 {
		return
	}
	// Anytime checkpoint: a tripped budget abandons the stream before the
	// chunk is scored, keeping whatever the scan already accepted.
	if s.bud.exhausted() {
		s.seed = s.scored
		s.truncated = true
		s.done = true
		s.pending = s.pending[:0]
		s.recOrds = s.recOrds[:0]
		return
	}
	pairs := make([]record.Pair, len(s.pending))
	for i, w := range s.pending {
		pairs[i] = s.p.WithRecord(s.side, w)
	}
	scores, err := s.sc.ScoreBatchContext(s.ctx, pairs)
	if err != nil {
		s.err = err
		s.done = true
		return
	}
	for i, score := range scores {
		// A record boundary settles the previous record's patience
		// verdict: eligible somewhere → streak resets; barren → one more
		// unit spent. A sequential scan abandons right after the barren
		// record that exhausts patience, before this candidate — the
		// chunked scan has merely overscored the remainder of the chunk.
		if ord := s.recOrds[i]; ord != s.lastRec {
			if s.lastRec != 0 {
				if s.recEligible {
					s.streak = 0
				} else if s.streak++; s.patience > 0 && s.streak >= s.patience {
					s.seed = s.scored + i
					s.done = true
					break
				}
			}
			s.lastRec = ord
			s.recEligible = false
		}
		if (score > 0.5) != s.y {
			s.recEligible = true
			s.out = append(s.out, s.pending[i])
			if len(s.out) >= s.want {
				s.seed = s.scored + i + 1
				s.done = true
				break
			}
		}
	}
	s.scored += len(s.pending)
	s.pending = s.pending[:0]
	s.recOrds = s.recOrds[:0]
	if !s.done && s.chunk < maxSearchChunk {
		s.chunk *= 2
		if s.chunk > maxSearchChunk {
			s.chunk = maxSearchChunk
		}
	}
}

// finish flushes the tail of the stream and reports the selection.
func (s *supportScan) finish() []*record.Record {
	s.flush()
	if !s.done {
		s.seed = s.scored
	}
	return s.out
}

// naturalSupports scans one source for records that predict opposite to y
// when paired with the pivot. Candidates are streamed in a seeded shuffle
// so different explanations sample different supports, then the first
// `want` eligible records (in stream order) are returned.
//
// The shuffle is seeded by the triangle's fixed record — the scan's
// actual input, since every candidate is paired against it — rather
// than the full pair key. Explanations whose pivots differ stay
// decorrelated, while explanations that share the fixed record (the
// serving-shaped workload: many candidate pairs per query record) scan
// the same candidates in the same order, so a shared scoring service
// answers the repeat scans from its store.
//
// The shuffle is deliberately kept in pruned mode too: on sides where
// eligible candidates are scarce, any ordering scans the full stream
// anyway, and on dense sides a relevance reordering changes which
// supports are selected — a set divergence the pruned mode's agreement
// gate would then have to absorb for no measured call savings.
func (e *Explainer) naturalSupports(ctx context.Context, bud *runBudget, prog *progress, sc *scorecache.Scorer, p record.Pair, y bool, side record.Side, want int, calls, seedCalls *int) ([]*record.Record, error) {
	self := p.Record(side)
	fixed := p.Record(side.Opposite())
	src := e.sources.Side(side)
	seed := e.opts.Seed*131 + int64(side) + int64(hashString(fixed.Text()))

	sp, ctx := telemetry.StartSpan(ctx, "retrieval/natural")
	defer sp.End()
	scan := newSupportScan(ctx, bud, sc, p, side, y, want)
	stream := src.Shuffled(seed)
	for !scan.done {
		w, ok := stream.Next()
		if !ok {
			break
		}
		if w.ID == self.ID {
			continue
		}
		scan.beginRecord()
		scan.add(w)
	}
	out := scan.finish()
	if scan.err != nil {
		return nil, scan.err
	}
	sp.AddItems(scan.scored)
	*calls += scan.scored
	*seedCalls += scan.seed
	scan.notePhase(prog)
	return out, nil
}

// augmentedSupports implements the data augmentation of §3.3: derive new
// candidate records from source records by dropping the first-k or
// last-k tokens of attribute values (k = 1..n-1), keep those that
// predict opposite to y. The candidate stream is seeded by the
// triangle's fixed record (like naturalSupports) so augmented supports
// stay decorrelated across pivots while explanations sharing the fixed
// record generate cache-aligned variant streams.
func (e *Explainer) augmentedSupports(ctx context.Context, bud *runBudget, prog *progress, sc *scorecache.Scorer, p record.Pair, y bool, side record.Side, want int, calls, seedCalls *int) ([]*record.Record, error) {
	if want <= 0 {
		return nil, nil
	}
	self := p.Record(side)
	fixed := p.Record(side.Opposite())
	src := e.sources.Side(side)
	seed := e.opts.Seed*197 + 7 + int64(side) + int64(hashString(fixed.Text()))

	// Attempt budget so pathological models cannot make explanation cost
	// unbounded (Options.AugmentBudget variants per missing support).
	budget := want * e.opts.AugmentBudget

	sp, ctx := telemetry.StartSpan(ctx, "retrieval/augmented")
	defer sp.End()
	scan := newSupportScan(ctx, bud, sc, p, side, y, want)
	var stream *neighborhood.Stream
	if e.opts.SeedSearch {
		stream = src.Shuffled(seed)
	} else {
		// Guided search: a support must predict opposite to y when paired
		// with the triangle's fixed record. When the opposite prediction
		// is Match, only records resembling the fixed record can get
		// there by dropping noise tokens — visit those first. When it is
		// Non-Match, dissimilar records flip fastest. The seeded shuffle
		// remains the tie-break, so Seed still diversifies selection.
		// RankedContext additionally records the eager ranking work
		// (postings intersection + heap setup) as its own span.
		stream = neighborhood.RankedContext(ctx, src, seed, fixed.Text(), y /* ascending overlap when seeking Non-Match */)
		// Abandon streams that yield nothing: after this many consecutive
		// candidate records' worth of ineligible variants, no support is
		// coming from the rest of the (relevance-ranked) stream either.
		// Pruned mode gives up sooner; see prunePatience.
		scan.patience = augmentPatience
		if e.opts.LatticePrune.Enabled() {
			scan.patience = prunePatience
		}
	}
	generated := 0
	augID := 0
	for !scan.done && generated < budget {
		w, ok := stream.Next()
		if !ok {
			break
		}
		if w.ID == self.ID {
			continue
		}
		scan.beginRecord()
		for _, a := range w.Schema.Attrs {
			if scan.done || generated >= budget {
				break
			}
			toks := strutil.Tokenize(w.Value(a))
			n := len(toks)
			if n < 2 {
				continue
			}
			for k := 1; k < n && !scan.done && generated < budget; k++ {
				for _, variant := range []string{
					strutil.DropFirstTokens(w.Value(a), k),
					strutil.DropLastTokens(w.Value(a), k),
				} {
					if scan.done || generated >= budget {
						break
					}
					cand := w.WithValue(a, variant)
					cand.ID = w.ID + "#aug" + strconv.Itoa(augID)
					augID++
					generated++
					scan.add(cand)
				}
			}
		}
	}
	out := scan.finish()
	if scan.err != nil {
		return nil, scan.err
	}
	sp.AddItems(scan.scored)
	*calls += scan.scored
	*seedCalls += scan.seed
	scan.notePhase(prog)
	return out, nil
}

// notePhase registers the scan as one completeness phase: complete when
// it ran to its natural end (want reached, stream exhausted, or patience
// spent), fractional when a budget checkpoint abandoned it.
func (s *supportScan) notePhase(prog *progress) {
	if !s.truncated {
		prog.phase(1)
		return
	}
	prog.phase(float64(len(s.out)) / float64(s.want))
}

// hashString is FNV-1a, decorrelating the support shuffles across pairs.
func hashString(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

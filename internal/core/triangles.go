package core

import (
	"math/rand"

	"certa/internal/explain"
	"certa/internal/record"
	"certa/internal/strutil"
)

// triangles holds the support records selected for one explanation.
type triangles struct {
	left, right       []*record.Record
	augLeft, augRight int
}

// findTriangles implements get_triangles of Algorithm 1: τ/2 left
// supports (w ∈ U with M(⟨w,v⟩)=¬y) and τ/2 right supports (q ∈ V with
// M(⟨u,q⟩)=¬y), topped up by data augmentation on shortage (§3.3).
func (e *Explainer) findTriangles(m explain.Model, p record.Pair, y bool) (triangles, int) {
	perSide := e.opts.Triangles / 2
	if perSide < 1 {
		perSide = 1
	}
	var tri triangles
	calls := 0

	if e.opts.LeftTrianglesOnly {
		perSide = e.opts.Triangles
	}
	if !e.opts.ForceAugmentation {
		tri.left = e.naturalSupports(m, p, y, record.Left, perSide, &calls)
		if !e.opts.LeftTrianglesOnly {
			tri.right = e.naturalSupports(m, p, y, record.Right, perSide, &calls)
		}
	}
	if !e.opts.DisableAugmentation || e.opts.ForceAugmentation {
		if len(tri.left) < perSide {
			aug := e.augmentedSupports(m, p, y, record.Left, perSide-len(tri.left), &calls)
			tri.augLeft = len(aug)
			tri.left = append(tri.left, aug...)
		}
		if !e.opts.LeftTrianglesOnly && len(tri.right) < perSide {
			aug := e.augmentedSupports(m, p, y, record.Right, perSide-len(tri.right), &calls)
			tri.augRight = len(aug)
			tri.right = append(tri.right, aug...)
		}
	}
	return tri, calls
}

// naturalSupports scans one source for records that predict opposite to y
// when paired with the pivot. Candidates are scanned in a seeded shuffle
// so different explanations sample different supports, then the first
// `want` eligible records (in scan order) are returned.
func (e *Explainer) naturalSupports(m explain.Model, p record.Pair, y bool, side record.Side, want int, calls *int) []*record.Record {
	table := e.left
	if side == record.Right {
		table = e.right
	}
	self := p.Record(side)

	idx := make([]int, table.Len())
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(e.opts.Seed*131 + int64(side) + int64(hashString(p.Key()))))
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })

	var out []*record.Record
	for _, i := range idx {
		w := table.Records[i]
		if w.ID == self.ID {
			continue
		}
		cand := p.WithRecord(side, w)
		*calls++
		if (m.Score(cand) > 0.5) != y {
			out = append(out, w)
			if len(out) >= want {
				break
			}
		}
	}
	return out
}

// augmentedSupports implements the data augmentation of §3.3: derive new
// candidate records from source records by dropping the first-k or
// last-k tokens of attribute values (k = 1..n-1), keep those that
// predict opposite to y.
func (e *Explainer) augmentedSupports(m explain.Model, p record.Pair, y bool, side record.Side, want int, calls *int) []*record.Record {
	if want <= 0 {
		return nil
	}
	table := e.left
	if side == record.Right {
		table = e.right
	}
	self := p.Record(side)

	idx := make([]int, table.Len())
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(e.opts.Seed*197 + 7 + int64(side)))
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })

	// Attempt budget so pathological models cannot make explanation cost
	// unbounded.
	budget := want * 200

	var out []*record.Record
	augID := 0
	for _, ri := range idx {
		if len(out) >= want || budget <= 0 {
			break
		}
		w := table.Records[ri]
		if w.ID == self.ID {
			continue
		}
		for _, a := range w.Schema.Attrs {
			if len(out) >= want || budget <= 0 {
				break
			}
			toks := strutil.Tokenize(w.Value(a))
			n := len(toks)
			if n < 2 {
				continue
			}
			for k := 1; k < n && len(out) < want && budget > 0; k++ {
				for _, variant := range []string{
					strutil.DropFirstTokens(w.Value(a), k),
					strutil.DropLastTokens(w.Value(a), k),
				} {
					if budget <= 0 || len(out) >= want {
						break
					}
					cand := w.WithValue(a, variant)
					cand.ID = w.ID + "#aug" + itoa(augID)
					augID++
					pp := p.WithRecord(side, cand)
					*calls++
					budget--
					if (m.Score(pp) > 0.5) != y {
						out = append(out, cand)
					}
				}
			}
		}
	}
	return out
}

// hashString is FNV-1a, decorrelating the support shuffle across pairs.
func hashString(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// itoa avoids strconv import for tiny IDs.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

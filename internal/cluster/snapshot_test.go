package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"certa/internal/record"
	"certa/internal/scorecache"
)

// warmDonorSnapshot builds a warmed service over the shared fixture and
// returns its serialized snapshot bytes plus the service itself.
func warmDonorSnapshot(t *testing.T) (*scorecache.Service, []byte) {
	t.Helper()
	left, right := testSources(16)
	svc := scorecache.NewService(overlapModel{}, scorecache.ServiceOptions{})
	pairs := make([]record.Pair, 16)
	for i := range pairs {
		pairs[i] = record.Pair{Left: left.Records[i], Right: right.Records[i]}
	}
	svc.ScoreBatch(pairs)
	if svc.Len() == 0 {
		t.Fatal("donor service cached nothing")
	}
	var buf bytes.Buffer
	if _, err := svc.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return svc, buf.Bytes()
}

// byteServer serves fixed bytes at every path — a stand-in donor whose
// /v1/snapshot response the tests can corrupt at will.
func byteServer(t *testing.T, body []byte) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestFetchSnapshotRoundTrip: the happy path installs every entry the
// donor shipped.
func TestFetchSnapshotRoundTrip(t *testing.T) {
	donor, snap := warmDonorSnapshot(t)
	ts := byteServer(t, snap)
	fresh := scorecache.NewService(overlapModel{}, scorecache.ServiceOptions{})
	n, err := FetchSnapshot(context.Background(), nil, ts.URL, "toy", fresh, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != donor.Len() || fresh.Len() != donor.Len() {
		t.Fatalf("restored %d entries (service holds %d), donor had %d", n, fresh.Len(), donor.Len())
	}
}

// TestFetchSnapshotTruncatedMeansColdStart: a donor dying mid-stream
// ships a prefix; the CRC framing rejects every one and the joiner
// stays empty — cold start, never a partial cache. Prefix lengths
// sample the same space the scorecache fuzz seeds cover (header, count,
// mid-entry, mid-checksum).
func TestFetchSnapshotTruncatedMeansColdStart(t *testing.T) {
	_, snap := warmDonorSnapshot(t)
	cuts := []int{0, 1, 7, 8, 15, 16, 17, len(snap) / 3, len(snap) / 2, len(snap) - 5, len(snap) - 1}
	for _, cut := range cuts {
		if cut < 0 || cut >= len(snap) {
			continue
		}
		ts := byteServer(t, snap[:cut])
		fresh := scorecache.NewService(overlapModel{}, scorecache.ServiceOptions{})
		n, err := FetchSnapshot(context.Background(), nil, ts.URL, "", fresh, nil)
		if err == nil {
			t.Fatalf("truncation at %d of %d accepted (%d entries)", cut, len(snap), n)
		}
		if fresh.Len() != 0 {
			t.Fatalf("truncation at %d left %d entries installed", cut, fresh.Len())
		}
		// The joiner must still be fully usable cold.
		left, right := testSources(1)
		fresh.ScoreBatch([]record.Pair{{Left: left.Records[0], Right: right.Records[0]}})
		if fresh.Len() != 1 {
			t.Fatalf("service unusable after rejected truncated snapshot (cut %d)", cut)
		}
	}
}

// TestFetchSnapshotBitFlipMeansColdStart: a flipped bit anywhere in the
// shipped stream — header, count, key bytes, score bits, checksum — is
// caught by the CRC and nothing is installed. Sampled positions stride
// the whole stream so every frame section is covered without an HTTP
// round trip per byte.
func TestFetchSnapshotBitFlipMeansColdStart(t *testing.T) {
	_, snap := warmDonorSnapshot(t)
	stride := len(snap)/64 + 1
	for pos := 0; pos < len(snap); pos += stride {
		corrupt := append([]byte(nil), snap...)
		corrupt[pos] ^= 0x40
		ts := byteServer(t, corrupt)
		fresh := scorecache.NewService(overlapModel{}, scorecache.ServiceOptions{})
		n, err := FetchSnapshot(context.Background(), nil, ts.URL, "", fresh, nil)
		if err == nil {
			t.Fatalf("bit flip at %d of %d accepted (%d entries)", pos, len(snap), n)
		}
		if fresh.Len() != 0 {
			t.Fatalf("bit flip at %d left %d entries installed", pos, fresh.Len())
		}
		ts.Close()
	}
}

// TestFetchSnapshotDonorErrors: non-200 donors and donors that serve
// something that is not a snapshot both mean a clean cold start.
func TestFetchSnapshotDonorErrors(t *testing.T) {
	fresh := scorecache.NewService(overlapModel{}, scorecache.ServiceOptions{})

	notFound := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown benchmark \"nope\""}`, http.StatusNotFound)
	}))
	defer notFound.Close()
	if _, err := FetchSnapshot(context.Background(), nil, notFound.URL, "nope", fresh, nil); err == nil {
		t.Fatal("404 donor accepted")
	} else if !strings.Contains(err.Error(), "status 404") {
		t.Fatalf("404 donor error does not say so: %v", err)
	}

	garbage := byteServer(t, []byte("<html>this is not a snapshot</html>"))
	if _, err := FetchSnapshot(context.Background(), nil, garbage.URL, "", fresh, nil); err == nil {
		t.Fatal("non-snapshot donor body accepted")
	}

	if _, err := FetchSnapshot(context.Background(), nil, "http://127.0.0.1:1", "", fresh, nil); err == nil {
		t.Fatal("unreachable donor accepted")
	}
	if fresh.Len() != 0 {
		t.Fatalf("failed fetches left %d entries installed", fresh.Len())
	}
}

// TestFetchSnapshotShardFilterAgainstLiveWorker: end-to-end over a real
// worker's /v1/snapshot endpoint, a ring-filtered fetch installs
// exactly the joiner's shard — the cluster-side mirror of the
// scorecache RestoreFunc unit tests.
func TestFetchSnapshotShardFilterAgainstLiveWorker(t *testing.T) {
	left, right := testSources(24)
	var pairs []record.Pair
	for i := 0; i < 6; i++ {
		pairs = append(pairs, record.Pair{Left: left.Records[i], Right: right.Records[i]})
	}
	donor := newTestWorker(t, "w0", left, right, pairs, 0)
	for i := range pairs {
		if resp, body := post(t, donor.ts.URL+"/v1/explain", fmt.Sprintf(`{"pair_index":%d}`, i)); resp.StatusCode != 200 {
			t.Fatalf("warming donor: %d %s", resp.StatusCode, body)
		}
	}
	ring, err := NewRing([]Member{
		{Name: "w0", URL: donor.ts.URL},
		{Name: "w1", URL: "http://127.0.0.1:9001"},
		{Name: "w2", URL: "http://127.0.0.1:9002"},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, name := range []string{"w0", "w1", "w2"} {
		fresh := scorecache.NewService(overlapModel{}, scorecache.ServiceOptions{})
		n, err := FetchSnapshot(context.Background(), nil, donor.ts.URL, "toy", fresh, KeepOwned(ring, name))
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range fresh.Keys() {
			if !ring.OwnsKey(name, key) {
				t.Fatalf("%s installed foreign key %q", name, key)
			}
		}
		total += n
	}
	if total != donor.svc.Len() {
		t.Fatalf("shards sum to %d entries, donor holds %d — shards must partition the snapshot", total, donor.svc.Len())
	}
}

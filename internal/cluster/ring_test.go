package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"certa/internal/scorecache"
)

func fourMembers() []Member {
	return []Member{
		{Name: "w0", URL: "http://127.0.0.1:9000"},
		{Name: "w1", URL: "http://127.0.0.1:9001"},
		{Name: "w2", URL: "http://127.0.0.1:9002"},
		{Name: "w3", URL: "http://127.0.0.1:9003"},
	}
}

// TestRingDeterministic: rings built from the same membership place
// every key identically, regardless of the order members were listed
// in — the property that lets routers and workers compute placement
// independently.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing(fourMembers(), 64)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := []Member{
		{Name: "w2", URL: "http://127.0.0.1:9002"},
		{Name: "w0", URL: "http://127.0.0.1:9000"},
		{Name: "w3", URL: "http://127.0.0.1:9003"},
		{Name: "w1", URL: "http://127.0.0.1:9001"},
	}
	b, err := NewRing(shuffled, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%04d", i)
		h := scorecache.ShardHash(key)
		if a.Owner(h) != b.Owner(h) {
			t.Fatalf("key %q: owner %v vs %v across identically-membered rings", key, a.Owner(h), b.Owner(h))
		}
		if !reflect.DeepEqual(a.Replicas(h), b.Replicas(h)) {
			t.Fatalf("key %q: replica lists diverge", key)
		}
	}
}

// TestRingPinnedPlacement pins the owner of fixed keys on a fixed
// 4-member/64-vnode ring. Placement is a cross-process contract (a
// router and a snapshot-filtering worker must agree without talking),
// so these literals may only change together with a deliberate ring
// migration.
func TestRingPinnedPlacement(t *testing.T) {
	r, err := NewRing(fourMembers(), 64)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, key := range []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"} {
		got[key] = r.Owner(scorecache.ShardHash(key)).Name
	}
	want := map[string]string{
		"alpha":   "w2",
		"bravo":   "w2",
		"charlie": "w2",
		"delta":   "w0",
		"echo":    "w3",
		"foxtrot": "w1",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pinned placement drifted:\ngot  %v\nwant %v", got, want)
	}
}

// TestRingReplicasDistinctAndComplete: the preference list starts at
// the owner and visits every member exactly once.
func TestRingReplicasDistinctAndComplete(t *testing.T) {
	r, err := NewRing(fourMembers(), 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		h := scorecache.ShardHash(fmt.Sprintf("k%d", i))
		reps := r.Replicas(h)
		if len(reps) != 4 {
			t.Fatalf("hash %#x: %d replicas, want 4", h, len(reps))
		}
		if reps[0] != r.Owner(h) {
			t.Fatalf("hash %#x: first replica %v is not the owner %v", h, reps[0], r.Owner(h))
		}
		seen := map[string]bool{}
		for _, m := range reps {
			if seen[m.Name] {
				t.Fatalf("hash %#x: member %s repeated in replica list", h, m.Name)
			}
			seen[m.Name] = true
		}
	}
}

// TestRingBalance: with virtual nodes, a synthetic keyspace spreads
// within a reasonable factor of even across 4 members.
func TestRingBalance(t *testing.T) {
	r, err := NewRing(fourMembers(), DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[r.Owner(scorecache.ShardHash(fmt.Sprintf("pair-content-%06d", i))).Name]++
	}
	for _, m := range r.Members() {
		c := counts[m.Name]
		if c < n/4/2 || c > n/4*2 {
			t.Fatalf("member %s owns %d of %d keys (want within 2x of %d); distribution %v",
				m.Name, c, n, n/4, counts)
		}
	}
}

// TestRingOwnershipPartitions: OwnsKey assigns every key to exactly
// one member — the invariant shard-filtered snapshot restores rely on
// (shards are disjoint and cover the keyspace).
func TestRingOwnershipPartitions(t *testing.T) {
	r, err := NewRing(fourMembers(), 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := 0
		for _, m := range r.Members() {
			if r.OwnsKey(m.Name, key) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("key %q owned by %d members", key, owners)
		}
	}
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewRing([]Member{{Name: "", URL: "http://x"}}, 8); err == nil {
		t.Fatal("unnamed member accepted")
	}
	if _, err := NewRing([]Member{{Name: "w", URL: ""}}, 8); err == nil {
		t.Fatal("URL-less member accepted")
	}
	if _, err := NewRing([]Member{{Name: "w", URL: "http://a"}, {Name: "w", URL: "http://b"}}, 8); err == nil {
		t.Fatal("duplicate member name accepted")
	}
}

func TestParseMembers(t *testing.T) {
	got, err := ParseMembers("http://a:1, w9=http://b:2/ ,http://c:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []Member{
		{Name: "w0", URL: "http://a:1"},
		{Name: "w9", URL: "http://b:2"},
		{Name: "w2", URL: "http://c:3"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseMembers = %v, want %v", got, want)
	}
	if _, err := ParseMembers(""); err == nil {
		t.Fatal("empty workers list accepted")
	}
	if _, err := ParseMembers("name="); err == nil {
		t.Fatal("URL-less entry accepted")
	}
}

package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"certa/internal/scorecache"
)

// FetchSnapshot pulls a donor worker's score cache over HTTP (the
// worker's GET /v1/snapshot endpoint) and restores it into svc,
// optionally filtered by keep — pass KeepOwned(ring, self) so a
// joining worker installs exactly the shard the ring assigns it, or
// nil to take everything (subject to the service's capacity bound).
// It returns the number of entries installed.
//
// Integrity is the snapshot format's own CRC framing: a truncated or
// bit-flipped stream is rejected by scorecache.RestoreFunc before
// anything is installed, so a failed fetch means a cold start, never
// a corrupt cache. Callers treat any error as "start cold and let the
// cache warm over traffic".
func FetchSnapshot(ctx context.Context, client *http.Client, donorURL, benchmark string, svc *scorecache.Service, keep func(key string) bool) (int, error) {
	if client == nil {
		client = http.DefaultClient
	}
	u := strings.TrimSuffix(donorURL, "/") + "/v1/snapshot"
	if benchmark != "" {
		u += "?benchmark=" + url.QueryEscape(benchmark)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, fmt.Errorf("cluster: building snapshot request: %w", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("cluster: fetching snapshot from %s: %w", donorURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return 0, fmt.Errorf("cluster: snapshot from %s: status %d: %s", donorURL, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	n, err := svc.RestoreFunc(resp.Body, keep)
	if err != nil {
		return 0, fmt.Errorf("cluster: restoring shipped snapshot: %w", err)
	}
	return n, nil
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"certa/internal/core"
	"certa/internal/record"
	"certa/internal/scorecache"
	"certa/internal/server"
)

// The fixture mirrors internal/server's: token-overlap scoring over
// paired synthetic rows, so explanations are real and deterministic
// without training.

func testSources(n int) (*record.Table, *record.Table) {
	schema := record.MustSchema("S", "name", "desc", "price")
	left := record.NewTable(schema)
	right := record.NewTable(schema)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("widget%d alpha%d", i, i%5)
		desc := fmt.Sprintf("desc%d common%d filler%d", i, i%3, i%7)
		price := fmt.Sprintf("%d", 10+i)
		left.MustAdd(record.MustNew(fmt.Sprintf("l%d", i), schema, name, desc, price))
		right.MustAdd(record.MustNew(fmt.Sprintf("r%d", i), schema, name+" extra", desc, price))
	}
	return left, right
}

type overlapModel struct{}

func (overlapModel) Name() string { return "overlap" }

func (overlapModel) Score(p record.Pair) float64 {
	toks := func(r *record.Record) map[string]bool {
		out := make(map[string]bool)
		for _, v := range r.Values {
			for _, t := range strings.Fields(v) {
				out[t] = true
			}
		}
		return out
	}
	a, b := toks(p.Left), toks(p.Right)
	inter := 0
	for t := range a {
		if b[t] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// testRing is an in-process ring: n workers over one shared fixture,
// plus a router in front.
type testRing struct {
	left, right *record.Table
	pairs       []record.Pair
	workers     []*testWorker
	router      *Router
	ts          *httptest.Server
}

type testWorker struct {
	name string
	srv  *server.Server
	ts   *httptest.Server
	svc  *scorecache.Service
}

func newTestWorker(t *testing.T, name string, left, right *record.Table, pairs []record.Pair, capacity int) *testWorker {
	t.Helper()
	svc := scorecache.NewService(overlapModel{}, scorecache.ServiceOptions{Capacity: capacity})
	srv, err := server.New([]server.Backend{{
		Name: "toy", Left: left, Right: right, Model: overlapModel{},
		Options: core.Options{Triangles: 8, Seed: 3},
		Pairs:   pairs,
		Service: svc,
	}}, server.Options{Name: name})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &testWorker{name: name, srv: srv, ts: ts, svc: svc}
}

func newTestRing(t *testing.T, n int, opts Options) *testRing {
	t.Helper()
	left, right := testSources(24)
	var pairs []record.Pair
	for i := 0; i < 6; i++ {
		pairs = append(pairs, record.Pair{Left: left.Records[i], Right: right.Records[i]})
	}
	tr := &testRing{left: left, right: right, pairs: pairs}
	var members []Member
	for i := 0; i < n; i++ {
		w := newTestWorker(t, fmt.Sprintf("w%d", i), left, right, pairs, 0)
		tr.workers = append(tr.workers, w)
		members = append(members, Member{Name: w.name, URL: w.ts.URL})
	}
	opts.Keyspaces = []Keyspace{{Name: "toy", Left: left, Right: right, Pairs: pairs}}
	rt, err := NewRouter(members, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	tr.router = rt
	tr.ts = httptest.NewServer(rt)
	t.Cleanup(tr.ts.Close)
	return tr
}

func post(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// identityRequests is the request matrix the byte-identity tests run:
// the addressing modes, the anytime knobs (call_budget), pruned mode,
// top_k shaping, and the error cases a router must not answer
// differently than a worker.
func identityRequests() []string {
	return []string{
		`{"pair_index":0}`,
		`{"pair_index":1}`,
		`{"left_id":"l2","right_id":"r2"}`,
		`{"left_id":"l3","right_id":"r3","call_budget":40}`,
		`{"pair_index":2,"lattice_prune":{"threshold":0.5,"min_levels":1}}`,
		`{"pair_index":3,"top_k":2}`,
		`{"left":{"values":["widget9 alpha4","desc9 common0 filler2","19"]},"right":{"values":["widget9 alpha4 extra","desc9 common0 filler2","19"]}}`,
		`{"pair_index":99}`,                   // out of range -> worker's 400 body
		`{"left_id":"l1"}`,                    // half-addressed -> worker's 400 body
		`{"benchmark":"nope","pair_index":0}`, // unknown benchmark -> worker's 404 body
		`{}`,                                  // no address at all -> worker's 400 body
	}
}

// TestRoutedExplainByteIdentical is the core acceptance check: for
// every request shape, a 1-worker ring and a 4-worker ring return the
// exact bytes a direct certa-serve process returns — success bodies,
// anytime and pruned modes, and error bodies alike.
func TestRoutedExplainByteIdentical(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("%d-worker", workers), func(t *testing.T) {
			ring := newTestRing(t, workers, Options{})
			// The direct server: same fixture, its own cache.
			direct := newTestWorker(t, "direct", ring.left, ring.right, ring.pairs, 0)
			for _, req := range identityRequests() {
				directResp, directBody := post(t, direct.ts.URL+"/v1/explain", req)
				routedResp, routedBody := post(t, ring.ts.URL+"/v1/explain", req)
				if directResp.StatusCode != routedResp.StatusCode {
					t.Errorf("request %s: direct status %d, routed %d", req, directResp.StatusCode, routedResp.StatusCode)
					continue
				}
				if !bytes.Equal(directBody, routedBody) {
					t.Errorf("request %s: routed body differs from direct:\ndirect: %s\nrouted: %s", req, directBody, routedBody)
				}
			}
		})
	}
}

// TestRoutedBatchByteIdentical: a batch spanning every shard (and
// containing error items) merges back byte-identical to the direct
// server's batch response — envelope, item order, trailing newline,
// everything.
func TestRoutedBatchByteIdentical(t *testing.T) {
	batch := `{"requests":[{"pair_index":0},{"pair_index":4},{"pair_index":1,"call_budget":40},{"pair_index":99},{"pair_index":2},{"left_id":"l5","right_id":"r5"},{"pair_index":3,"top_k":1}]}`
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("%d-worker", workers), func(t *testing.T) {
			ring := newTestRing(t, workers, Options{})
			direct := newTestWorker(t, "direct", ring.left, ring.right, ring.pairs, 0)
			directResp, directBody := post(t, direct.ts.URL+"/v1/explain/batch", batch)
			routedResp, routedBody := post(t, ring.ts.URL+"/v1/explain/batch", batch)
			if directResp.StatusCode != 200 || routedResp.StatusCode != 200 {
				t.Fatalf("status: direct %d routed %d", directResp.StatusCode, routedResp.StatusCode)
			}
			if !bytes.Equal(directBody, routedBody) {
				t.Fatalf("routed batch differs from direct:\ndirect: %s\nrouted: %s", directBody, routedBody)
			}
			// The malformed-batch and empty-batch paths forward whole and
			// must also match.
			for _, bad := range []string{`{"requests":[]}`, `{"nope":1}`, `{`} {
				dResp, dBody := post(t, direct.ts.URL+"/v1/explain/batch", bad)
				rResp, rBody := post(t, ring.ts.URL+"/v1/explain/batch", bad)
				if dResp.StatusCode != rResp.StatusCode || !bytes.Equal(dBody, rBody) {
					t.Errorf("bad batch %q: direct (%d, %s) vs routed (%d, %s)", bad, dResp.StatusCode, dBody, rResp.StatusCode, rBody)
				}
			}
		})
	}
}

// TestShardedPlacementIsStable: the same pair always lands on the ring
// owner the placement math predicts (X-Certa-Worker), so worker caches
// accumulate disjoint shards.
func TestShardedPlacementIsStable(t *testing.T) {
	ring := newTestRing(t, 4, Options{})
	for i, p := range ring.pairs {
		want := ring.router.Ring().Owner(scorecache.ShardHash(scorecache.Key(p))).Name
		for rep := 0; rep < 2; rep++ {
			resp, body := post(t, ring.ts.URL+"/v1/explain", fmt.Sprintf(`{"pair_index":%d}`, i))
			if resp.StatusCode != 200 {
				t.Fatalf("pair %d: status %d: %s", i, resp.StatusCode, body)
			}
			if got := resp.Header.Get("X-Certa-Worker"); got != want {
				t.Fatalf("pair %d served by %q, ring owner is %q", i, got, want)
			}
		}
	}
}

// TestFailoverRetriesNextReplica: killing a worker mid-ring must not
// fail requests — its shard flows to the next replica, the router
// reports the member down, and recovery is possible because a stale
// down flag is retried as a last resort.
func TestFailoverRetriesNextReplica(t *testing.T) {
	ring := newTestRing(t, 2, Options{})
	// Find a pair owned by each worker so both code paths run.
	ownerOf := func(i int) string {
		return ring.router.Ring().Owner(scorecache.ShardHash(scorecache.Key(ring.pairs[i]))).Name
	}
	victim := ring.workers[0]
	victim.ts.Close() // SIGKILL stand-in: connection refused from now on

	for i := range ring.pairs {
		resp, body := post(t, ring.ts.URL+"/v1/explain", fmt.Sprintf(`{"pair_index":%d}`, i))
		if resp.StatusCode != 200 {
			t.Fatalf("pair %d (owner %s) after killing %s: status %d: %s", i, ownerOf(i), victim.name, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Certa-Worker"); got == victim.name {
			t.Fatalf("pair %d reportedly served by dead worker %s", i, victim.name)
		}
	}
	// Batches keep working too, with every item answered.
	resp, body := post(t, ring.ts.URL+"/v1/explain/batch",
		`{"requests":[{"pair_index":0},{"pair_index":1},{"pair_index":2}]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("batch after kill: status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Responses []server.ExplainResponse `json:"responses"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Responses) != 3 {
		t.Fatalf("batch returned %d items, want 3", len(out.Responses))
	}
	for i, r := range out.Responses {
		if r.Error != "" || r.Result == nil {
			t.Fatalf("batch item %d failed after failover: %+v", i, r)
		}
	}

	st := ring.router.Stats(context.Background())
	if st.HealthyWorkers != 1 {
		t.Fatalf("healthy_workers = %d after kill, want 1", st.HealthyWorkers)
	}
	if st.Failovers == 0 {
		t.Fatal("failovers = 0 after killing a worker mid-load")
	}
	for _, row := range st.PerWorker {
		if row.Name == victim.name && row.Healthy {
			t.Fatalf("dead worker %s still reported healthy", victim.name)
		}
	}
}

// TestAllWorkersDownReturns502: when nothing is reachable the router
// answers with the standard error body and a gateway status rather
// than hanging or panicking.
func TestAllWorkersDownReturns502(t *testing.T) {
	ring := newTestRing(t, 2, Options{})
	for _, w := range ring.workers {
		w.ts.Close()
	}
	resp, body := post(t, ring.ts.URL+"/v1/explain", `{"pair_index":0}`)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d with all workers down, want 502 (%s)", resp.StatusCode, body)
	}
	var er server.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Fatalf("502 body not an ErrorResponse: %s", body)
	}
	st := ring.router.Stats(context.Background())
	if st.Unroutable == 0 {
		t.Fatal("unroutable = 0 after a 502")
	}
}

// TestRingStatsAggregation: the router's /v1/stats document carries
// name-ordered per-worker rows (each worker's own stats verbatim) and
// an aggregate whose counters are the exact sums.
func TestRingStatsAggregation(t *testing.T) {
	ring := newTestRing(t, 2, Options{})
	for i := range ring.pairs {
		if resp, body := post(t, ring.ts.URL+"/v1/explain", fmt.Sprintf(`{"pair_index":%d}`, i)); resp.StatusCode != 200 {
			t.Fatalf("pair %d: %d %s", i, resp.StatusCode, body)
		}
	}
	resp, body := func() (*http.Response, []byte) {
		resp, err := http.Get(ring.ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		return resp, out
	}()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /v1/stats: %d", resp.StatusCode)
	}
	var st RingStatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 2 || st.HealthyWorkers != 2 {
		t.Fatalf("workers %d healthy %d, want 2/2", st.Workers, st.HealthyWorkers)
	}
	if len(st.PerWorker) != 2 || st.PerWorker[0].Name != "w0" || st.PerWorker[1].Name != "w1" {
		t.Fatalf("per_worker rows out of order: %+v", st.PerWorker)
	}
	var served, hits, lookups int64
	for _, row := range st.PerWorker {
		if row.Stats == nil {
			t.Fatalf("worker %s row has no stats: %+v", row.Name, row)
		}
		if row.Stats.Worker != row.Name {
			t.Fatalf("row %s carries stats.worker %q", row.Name, row.Stats.Worker)
		}
		served += row.Stats.Served
		for _, bs := range row.Stats.Backends {
			hits += int64(bs.Hits)
			lookups += int64(bs.Lookups)
		}
	}
	if st.Aggregate.Served != served {
		t.Fatalf("aggregate.served = %d, rows sum to %d", st.Aggregate.Served, served)
	}
	if int64(st.Aggregate.Hits) != hits || int64(st.Aggregate.Lookups) != lookups {
		t.Fatalf("aggregate cache counters (%d/%d) != row sums (%d/%d)",
			st.Aggregate.Hits, st.Aggregate.Lookups, hits, lookups)
	}
	if served != int64(len(ring.pairs)) {
		t.Fatalf("ring served %d computations for %d distinct requests", served, len(ring.pairs))
	}
	if st.Forwarded < int64(len(ring.pairs)) {
		t.Fatalf("forwarded = %d, want >= %d", st.Forwarded, len(ring.pairs))
	}
}

// TestRouterMetricsSurface: the router's own /v1/metrics carries the
// routing series catalog, including per-worker health gauges.
func TestRouterMetricsSurface(t *testing.T) {
	ring := newTestRing(t, 2, Options{})
	if resp, body := post(t, ring.ts.URL+"/v1/explain", `{"pair_index":0}`); resp.StatusCode != 200 {
		t.Fatalf("%d %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ring.ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	scrape, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"certa_router_uptime_seconds",
		"certa_router_forwarded_total 1",
		"certa_router_workers 2",
		"certa_router_workers_healthy 2",
		`certa_router_worker_healthy{worker="w0"} 1`,
		`certa_router_worker_healthy{worker="w1"} 1`,
		"certa_router_failovers_total 0",
		"certa_router_request_duration_seconds",
	} {
		if !strings.Contains(string(scrape), want) {
			t.Errorf("metrics scrape missing %q", want)
		}
	}
}

// TestProbeOnceTracksHealth: the active prober marks a sick worker
// down and a recovered one up.
func TestProbeOnceTracksHealth(t *testing.T) {
	ring := newTestRing(t, 2, Options{ProbeTimeout: 500 * time.Millisecond})
	ring.router.ProbeOnce(context.Background())
	if got := ring.router.healthyWorkers(); got != 2 {
		t.Fatalf("healthy = %d after probing live workers, want 2", got)
	}
	ring.workers[1].ts.Close()
	ring.router.ProbeOnce(context.Background())
	if got := ring.router.healthyWorkers(); got != 1 {
		t.Fatalf("healthy = %d after killing one worker, want 1", got)
	}
}

// TestWarmJoinOverHTTP is the snapshot-shipping acceptance path: a
// worker joining the ring pulls the donor's snapshot over HTTP,
// installs exactly its shard, and serves its first request with cache
// hits — byte-identical to the donor's answer.
func TestWarmJoinOverHTTP(t *testing.T) {
	left, right := testSources(24)
	var pairs []record.Pair
	for i := 0; i < 4; i++ {
		pairs = append(pairs, record.Pair{Left: left.Records[i], Right: right.Records[i]})
	}
	donor := newTestWorker(t, "w0", left, right, pairs, 0)
	// Warm the donor on the whole workload.
	var donorBodies [][]byte
	for i := range pairs {
		resp, body := post(t, donor.ts.URL+"/v1/explain", fmt.Sprintf(`{"pair_index":%d}`, i))
		if resp.StatusCode != 200 {
			t.Fatalf("donor warming %d: %d %s", i, resp.StatusCode, body)
		}
		donorBodies = append(donorBodies, body)
	}
	if donor.svc.Len() == 0 {
		t.Fatal("donor cached nothing; warm-join test is vacuous")
	}

	// The ring the joiner will serve in: donor + joiner.
	joiner := newTestWorker(t, "w1", left, right, pairs, 0)
	ring, err := NewRing([]Member{
		{Name: "w0", URL: donor.ts.URL},
		{Name: "w1", URL: joiner.ts.URL},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}

	restored, err := FetchSnapshot(context.Background(), nil, donor.ts.URL, "toy", joiner.svc, KeepOwned(ring, "w1"))
	if err != nil {
		t.Fatal(err)
	}
	if restored == 0 {
		t.Fatal("shard-filtered warm join restored nothing (shard empty?)")
	}
	if restored >= donor.svc.Len() {
		t.Fatalf("joiner restored %d of %d donor entries — the shard filter kept everything", restored, donor.svc.Len())
	}
	for _, key := range joiner.svc.Keys() {
		if !ring.OwnsKey("w1", key) {
			t.Fatalf("joiner installed key it does not own: %q", key)
		}
	}

	// First request on the freshly joined worker: answered with hits
	// from the shipped shard, byte-identical to the donor's body.
	before := joiner.svc.Stats()
	resp, body := post(t, joiner.ts.URL+"/v1/explain", `{"pair_index":0}`)
	if resp.StatusCode != 200 {
		t.Fatalf("joiner first request: %d %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, donorBodies[0]) {
		t.Fatalf("joiner's warm answer differs from donor's:\n%s\n%s", body, donorBodies[0])
	}
	after := joiner.svc.Stats()
	if after.Hits-before.Hits == 0 {
		t.Fatal("joiner served its first request with zero cache hits")
	}
}

package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"certa/internal/scorecache"
)

// DefaultVirtualNodes is the per-member virtual-node count when
// Options leave it zero: enough points that four members split a
// keyspace within a few percent of evenly, cheap enough that ring
// construction stays trivial.
const DefaultVirtualNodes = 64

// Member is one worker process in the ring.
type Member struct {
	// Name identifies the worker in stats, logs and — through the
	// virtual-node labels — on the ring itself: placement depends only
	// on member names and the virtual-node count, never on URLs, so a
	// worker can move hosts without moving keys.
	Name string
	// URL is the worker's base HTTP address, e.g. "http://127.0.0.1:8081".
	URL string
}

// Ring is a deterministic consistent-hash ring with virtual nodes.
// Each member contributes vnodes points derived from
// ShardHash(name + "#" + i); a key lives on the first point at or
// clockwise after its placement position, and its replica order is
// the owner followed by each distinct member clockwise. Construction
// sorts members by name, so any two processes given the same
// membership build byte-for-byte identical rings.
//
// Positions are mix64(ShardHash(...)) on both sides: FNV-1a barely
// avalanches its final input bytes into the high bits that dominate
// 64-bit ring ordering, so raw hashes of "w2#0".."w2#63" clump and
// members end up owning wildly uneven arcs. The fixed splitmix64
// finalizer spreads them; it is part of the placement contract exactly
// like ShardHash and must never change.
type Ring struct {
	members []Member
	vnodes  int
	points  []ringPoint
}

type ringPoint struct {
	hash   uint64
	member int // index into members
}

// NewRing builds a ring over the given members (vnodes <= 0 uses
// DefaultVirtualNodes). Member names must be non-empty and unique;
// URLs non-empty.
func NewRing(members []Member, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	ms := append([]Member(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	r := &Ring{members: ms, vnodes: vnodes}
	for i, m := range ms {
		if m.Name == "" || m.URL == "" {
			return nil, fmt.Errorf("cluster: member %d needs a name and a URL (got %q, %q)", i, m.Name, m.URL)
		}
		if i > 0 && ms[i-1].Name == m.Name {
			return nil, fmt.Errorf("cluster: duplicate member name %q", m.Name)
		}
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   mix64(scorecache.ShardHash(m.Name + "#" + strconv.Itoa(v))),
				member: i,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between virtual nodes is vanishingly
		// unlikely; breaking the tie by member index keeps even that
		// case deterministic.
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Members returns the ring's members in name order (a copy).
func (r *Ring) Members() []Member { return append([]Member(nil), r.members...) }

// Size reports the number of members.
func (r *Ring) Size() int { return len(r.members) }

// VirtualNodes reports the per-member virtual-node count in effect.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// mix64 is splitmix64's finalizer: a fixed bijective avalanche over
// uint64, applied to every position entering the ring (see the Ring
// doc for why). Frozen like ShardHash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ReplicaIndexes returns the preference list for a placement hash
// (ShardHash of the canonical key) as indexes into Members() order:
// the owner first, then each further distinct member in clockwise
// ring order. Failover walks this list.
func (r *Ring) ReplicaIndexes(hash uint64) []int {
	pos := mix64(hash)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= pos })
	out := make([]int, 0, len(r.members))
	seen := make([]bool, len(r.members))
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}

// Replicas is ReplicaIndexes resolved to Members.
func (r *Ring) Replicas(hash uint64) []Member {
	idx := r.ReplicaIndexes(hash)
	out := make([]Member, len(idx))
	for i, j := range idx {
		out[i] = r.members[j]
	}
	return out
}

// Owner returns the member owning a placement hash.
func (r *Ring) Owner(hash uint64) Member {
	return r.members[r.ReplicaIndexes(hash)[0]]
}

// OwnsKey reports whether the named member owns the canonical
// pair-content key — the predicate a joining worker filters a shipped
// snapshot with (see KeepOwned).
func (r *Ring) OwnsKey(name, key string) bool {
	return r.Owner(scorecache.ShardHash(key)).Name == name
}

// KeepOwned returns the placement filter for one member: keep exactly
// the keys the ring assigns to it. Pass it to
// scorecache.Service.RestoreFunc when consuming a donor's snapshot so
// a joiner installs its shard and nothing else.
func KeepOwned(r *Ring, name string) func(key string) bool {
	return func(key string) bool { return r.OwnsKey(name, key) }
}

// ParseMembers parses the daemons' -workers flag value:
// comma-separated entries, each either "name=url" or a bare "url"
// (named w0, w1, ... by position). Every process describing the same
// ring must use the same names in the same entry order, since names —
// not URLs — determine placement.
func ParseMembers(s string) ([]Member, error) {
	var out []Member
	for i, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		m := Member{Name: "w" + strconv.Itoa(i), URL: entry}
		if name, url, ok := strings.Cut(entry, "="); ok {
			m = Member{Name: strings.TrimSpace(name), URL: strings.TrimSpace(url)}
		}
		m.URL = strings.TrimSuffix(m.URL, "/")
		if m.Name == "" || m.URL == "" {
			return nil, fmt.Errorf("cluster: bad worker entry %q (want name=url or url)", entry)
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: no workers in %q", s)
	}
	return out, nil
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"certa/internal/record"
	"certa/internal/scorecache"
	"certa/internal/server"
	"certa/internal/telemetry"
)

// Keyspace declares one benchmark the ring serves: the same source
// tables and registered pair list every worker hosts under this name.
// The router needs them to resolve a request to its canonical pair
// content — the shard key — exactly the way the worker will.
type Keyspace struct {
	Name        string
	Left, Right *record.Table
	// Pairs is the addressable workload (pair_index requests), in the
	// same order the workers registered it.
	Pairs []record.Pair
}

// Options tunes the router.
type Options struct {
	// VirtualNodes per member on the placement ring (0 =
	// DefaultVirtualNodes). Must match any process that filters
	// snapshots by ring ownership.
	VirtualNodes int
	// Keyspaces declares the benchmarks the ring serves (at least one).
	Keyspaces []Keyspace
	// Client optionally overrides the HTTP client for worker calls;
	// cancellation rides the request context either way.
	Client *http.Client
	// MaxBodyBytes bounds request bodies (default 1 MiB, matching the
	// worker's own bound).
	MaxBodyBytes int64
	// HealthEvery turns on active health probing of GET /v1/healthz at
	// this interval (0 = passive only: forwards mark workers down/up).
	HealthEvery time.Duration
	// ProbeTimeout bounds one active health probe (default 1s);
	// StatsTimeout bounds one worker's /v1/stats fetch during ring
	// stats aggregation (default 2s).
	ProbeTimeout time.Duration
	StatsTimeout time.Duration
	// Logger receives worker up/down transitions and forward failures.
	// Nil discards log output.
	Logger *slog.Logger
	// Metrics is the registry behind GET /v1/metrics — the router-side
	// series catalog (see metrics.go). Nil gets a fresh private one.
	Metrics *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = DefaultVirtualNodes
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.StatsTimeout <= 0 {
		o.StatsTimeout = 2 * time.Second
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	if o.Metrics == nil {
		o.Metrics = telemetry.NewRegistry()
	}
	return o
}

// workerState is one ring member plus the router's live view of it.
type workerState struct {
	member Member
	// down is the health flag: set when a forward or probe fails,
	// cleared when one succeeds. A down worker is only tried as a last
	// resort, so a stale flag degrades to extra latency, never to a
	// bricked ring.
	down   atomic.Bool
	errors atomic.Int64
}

// Router consistent-hash-routes explanation traffic across the ring.
// It implements http.Handler with the same surface shape as a worker:
//
//	POST /v1/explain        forwarded to the pair's shard owner (failover: next replica)
//	POST /v1/explain/batch  partitioned by shard, fanned out, merged index-aligned
//	GET  /v1/healthz        ring occupancy (RingHealthResponse)
//	GET  /v1/stats          per-worker + aggregated ring stats (RingStatsResponse)
//	GET  /v1/metrics        the router's own series (workers keep their own /v1/metrics)
type Router struct {
	ring      *Ring
	opts      Options
	workers   []*workerState // aligned with ring.Members() order
	keyspaces map[string]*Keyspace
	order     []string
	mux       *http.ServeMux
	logger    *slog.Logger
	metrics   *telemetry.Registry
	start     time.Time

	forwarded  atomic.Int64
	batchItems atomic.Int64
	failovers  atomic.Int64
	unroutable atomic.Int64

	httpExplain *telemetry.Histogram
	httpBatch   *telemetry.Histogram

	stop      context.CancelFunc
	probeDone chan struct{}
}

// NewRouter builds a Router over a fixed membership. Membership is
// static for the router's lifetime — adding or removing workers means
// building a new router (and re-filtering worker caches), which keeps
// placement trivially deterministic.
func NewRouter(members []Member, opts Options) (*Router, error) {
	opts = opts.withDefaults()
	ring, err := NewRing(members, opts.VirtualNodes)
	if err != nil {
		return nil, err
	}
	if len(opts.Keyspaces) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one keyspace")
	}
	rt := &Router{
		ring:      ring,
		opts:      opts,
		keyspaces: make(map[string]*Keyspace, len(opts.Keyspaces)),
		mux:       http.NewServeMux(),
		logger:    opts.Logger,
		metrics:   opts.Metrics,
		start:     time.Now(),
	}
	for i := range opts.Keyspaces {
		ks := opts.Keyspaces[i]
		if ks.Name == "" || ks.Left == nil || ks.Right == nil {
			return nil, fmt.Errorf("cluster: keyspace %q needs a name and two source tables", ks.Name)
		}
		if _, dup := rt.keyspaces[ks.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate keyspace %q", ks.Name)
		}
		rt.keyspaces[ks.Name] = &ks
		rt.order = append(rt.order, ks.Name)
	}
	for _, m := range ring.Members() {
		rt.workers = append(rt.workers, &workerState{member: m})
	}
	rt.registerMetrics()
	rt.mux.HandleFunc("POST /v1/explain", rt.handleExplain)
	rt.mux.HandleFunc("POST /v1/explain/batch", rt.handleBatch)
	rt.mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /v1/stats", rt.handleStats)
	rt.mux.Handle("GET /v1/metrics", rt.metrics.Handler())

	probeCtx, stop := context.WithCancel(context.Background())
	rt.stop = stop
	rt.probeDone = make(chan struct{})
	if opts.HealthEvery > 0 {
		go rt.probeLoop(probeCtx, opts.HealthEvery)
	} else {
		close(rt.probeDone)
	}
	return rt, nil
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Ring exposes the placement ring (for snapshot filtering and tests).
func (rt *Router) Ring() *Ring { return rt.ring }

// Close stops the active health prober (if any) and waits for it.
func (rt *Router) Close() {
	rt.stop()
	<-rt.probeDone
}

// resolveKeyspace mirrors the worker's backend resolution, defaulting
// when the ring serves exactly one benchmark.
func (rt *Router) resolveKeyspace(name string) (*Keyspace, error) {
	if name == "" {
		if len(rt.order) == 1 {
			return rt.keyspaces[rt.order[0]], nil
		}
		return nil, fmt.Errorf("request names no benchmark and the ring serves %d", len(rt.order))
	}
	ks, ok := rt.keyspaces[name]
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", name)
	}
	return ks, nil
}

// placeItem computes one request's replica preference list (indexes
// into rt.workers). A request the router cannot resolve — unknown
// benchmark, bad pair address — still gets a deterministic fallback
// list: the router never fabricates request-shaped errors, it forwards
// and lets the worker answer exactly as a direct server would, which
// is what keeps routed and direct responses byte-identical for error
// cases too.
func (rt *Router) placeItem(req *server.ExplainRequest) []int {
	ks, err := rt.resolveKeyspace(req.Benchmark)
	if err != nil {
		return rt.fallbackOrder()
	}
	p, err := server.ResolvePair(req, ks.Left, ks.Right, ks.Pairs)
	if err != nil {
		return rt.fallbackOrder()
	}
	return rt.ring.ReplicaIndexes(scorecache.ShardHash(scorecache.Key(p)))
}

// fallbackOrder is the replica list for unplaceable requests: every
// member in name order.
func (rt *Router) fallbackOrder() []int {
	out := make([]int, len(rt.workers))
	for i := range out {
		out[i] = i
	}
	return out
}

// attemptOrder reorders a replica preference list for forwarding:
// healthy members first (in replica order), then down members as a
// last resort — a stale down flag must cost latency, not availability.
func (rt *Router) attemptOrder(replicas []int) []int {
	out := make([]int, 0, len(replicas))
	for _, wi := range replicas {
		if !rt.workers[wi].down.Load() {
			out = append(out, wi)
		}
	}
	for _, wi := range replicas {
		if rt.workers[wi].down.Load() {
			out = append(out, wi)
		}
	}
	return out
}

func (rt *Router) markDown(ws *workerState, err error) {
	ws.errors.Add(1)
	if !ws.down.Swap(true) {
		rt.logger.Warn("worker down", "worker", ws.member.Name, "url", ws.member.URL, "error", err.Error())
	}
}

func (rt *Router) markUp(ws *workerState) {
	if ws.down.Swap(false) {
		rt.logger.Info("worker up", "worker", ws.member.Name, "url", ws.member.URL)
	}
}

// healthyWorkers counts members not currently marked down.
func (rt *Router) healthyWorkers() int {
	n := 0
	for _, ws := range rt.workers {
		if !ws.down.Load() {
			n++
		}
	}
	return n
}

// readBody drains the (bounded) request body. The limit mirrors the
// worker's own MaxBodyBytes, and so does the 413 message.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.opts.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			rt.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
		} else {
			rt.writeError(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		}
		return nil, false
	}
	return body, true
}

// post sends one forwarded request to a worker.
func (rt *Router) post(ctx context.Context, ws *workerState, path, rawQuery string, body []byte) (*http.Response, error) {
	u := ws.member.URL + path
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return rt.opts.Client.Do(req)
}

// handleExplain forwards one explanation to the pair's shard owner,
// walking the replica list on worker failure. The worker's response —
// status, explanation headers and body bytes — passes through
// verbatim, so a routed response is byte-identical to a direct one.
func (rt *Router) handleExplain(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var req server.ExplainRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var order []int
	if err := dec.Decode(&req); err != nil {
		// Undecodable at the router: forward anyway and let the worker
		// reject it with the canonical error body.
		order = rt.fallbackOrder()
	} else {
		order = rt.placeItem(&req)
	}
	rt.forwardTo(w, r, rt.attemptOrder(order), "/v1/explain", body)
	rt.httpExplain.Observe(time.Since(start).Seconds())
}

// forwardTo tries each worker in order until one answers, passing its
// response through verbatim. Transport failures mark the worker down
// and fall through to the next replica; worker HTTP statuses (including
// 4xx/5xx) are authoritative answers, not failover triggers.
func (rt *Router) forwardTo(w http.ResponseWriter, r *http.Request, order []int, path string, body []byte) {
	var lastErr error
	for attempt, wi := range order {
		ws := rt.workers[wi]
		rt.forwarded.Add(1)
		resp, err := rt.post(r.Context(), ws, path, r.URL.RawQuery, body)
		if err != nil {
			if r.Context().Err() != nil {
				return // client gone; nothing to write, nobody to blame
			}
			rt.markDown(ws, err)
			rt.failovers.Add(1)
			lastErr = err
			continue
		}
		rt.markUp(ws)
		if attempt > 0 {
			rt.logger.InfoContext(r.Context(), "failover", "path", path, "worker", ws.member.Name, "attempt", attempt+1)
		}
		rt.relay(w, resp, ws)
		return
	}
	rt.unroutable.Add(1)
	rt.writeError(w, http.StatusBadGateway,
		fmt.Errorf("no reachable worker (tried %d): %v", len(order), lastErr))
}

// relay copies a worker response to the client: status, the
// explanation headers, and the body bytes untouched.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, ws *workerState) {
	defer resp.Body.Close()
	h := w.Header()
	for _, k := range []string{"Content-Type", "Retry-After", "X-Certa-Request-Id", "X-Certa-Coalesced", "X-Certa-Duration-Ms", "X-Certa-Backend"} {
		if v := resp.Header.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	h.Set("X-Certa-Worker", ws.member.Name)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// handleBatch partitions a batch by shard, fans the per-worker
// sub-batches out concurrently, and merges the workers' raw item
// bytes index-aligned. The merged envelope is built exactly like the
// worker's own batch handler (json.Encoder over raw messages), so a
// routed batch response is byte-identical to a direct one.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { rt.httpBatch.Observe(time.Since(start).Seconds()) }()
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var breq server.BatchRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil || len(breq.Requests) == 0 {
		// Not partitionable: forward whole, the worker produces the
		// canonical 400 (malformed or empty batch).
		rt.forwardTo(w, r, rt.attemptOrder(rt.fallbackOrder()), "/v1/explain/batch", body)
		return
	}

	n := len(breq.Requests)
	rt.batchItems.Add(int64(n))
	responses := make([]json.RawMessage, n)
	replicas := make([][]int, n)
	tried := make([]map[int]bool, n)
	for i := range breq.Requests {
		replicas[i] = rt.placeItem(&breq.Requests[i])
		tried[i] = make(map[int]bool, 1)
	}

	pending := make([]int, n)
	for i := range pending {
		pending[i] = i
	}
	// Each round groups pending items by their preferred untried worker
	// and fans the groups out concurrently; failed groups return their
	// items for the next round against the next replica. At most
	// len(workers) rounds: every round burns one replica per item.
	for len(pending) > 0 {
		groups := make(map[int][]int)
		for _, i := range pending {
			wi, ok := rt.nextReplica(replicas[i], tried[i])
			if !ok {
				rt.unroutable.Add(1)
				responses[i] = rt.itemError(&breq.Requests[i], "no reachable worker for this shard")
				continue
			}
			tried[i][wi] = true
			groups[wi] = append(groups[wi], i)
		}
		if len(groups) == 0 {
			break
		}
		workerIdxs := make([]int, 0, len(groups))
		for wi := range groups {
			workerIdxs = append(workerIdxs, wi)
		}
		sort.Ints(workerIdxs)

		var wg sync.WaitGroup
		failed := make([][]int, len(workerIdxs))
		for gi, wi := range workerIdxs {
			wg.Add(1)
			go func(gi, wi int) {
				defer wg.Done()
				items := groups[wi]
				if err := rt.forwardSubBatch(r.Context(), rt.workers[wi], &breq, items, responses); err != nil {
					if r.Context().Err() == nil {
						rt.markDown(rt.workers[wi], err)
						rt.failovers.Add(1)
					}
					failed[gi] = items
					return
				}
				rt.markUp(rt.workers[wi])
			}(gi, wi)
		}
		wg.Wait()
		if r.Context().Err() != nil {
			return // client gone; nothing to write
		}
		pending = pending[:0]
		for _, items := range failed {
			pending = append(pending, items...)
		}
		sort.Ints(pending)
	}

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Responses []json.RawMessage `json:"responses"`
	}{responses})
}

// nextReplica picks an item's next worker: the first untried healthy
// replica, else the first untried one at all (last resort), else none.
func (rt *Router) nextReplica(replicas []int, tried map[int]bool) (int, bool) {
	for _, wi := range replicas {
		if !tried[wi] && !rt.workers[wi].down.Load() {
			return wi, true
		}
	}
	for _, wi := range replicas {
		if !tried[wi] {
			return wi, true
		}
	}
	return 0, false
}

// forwardSubBatch sends the given items to one worker as a batch and
// scatters the returned raw item bodies back into the index-aligned
// response slice.
func (rt *Router) forwardSubBatch(ctx context.Context, ws *workerState, breq *server.BatchRequest, items []int, responses []json.RawMessage) error {
	sub := server.BatchRequest{Requests: make([]server.ExplainRequest, len(items))}
	for j, i := range items {
		sub.Requests[j] = breq.Requests[i]
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return fmt.Errorf("marshaling sub-batch: %w", err)
	}
	resp, err := rt.post(ctx, ws, "/v1/explain/batch", "", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// A worker cannot reject a well-formed sub-batch it would accept
		// directly, so any non-200 means the worker is unwell: treat it
		// like a transport failure and let the items fail over.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		return fmt.Errorf("worker %s: batch status %d", ws.member.Name, resp.StatusCode)
	}
	var out struct {
		Responses []json.RawMessage `json:"responses"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fmt.Errorf("decoding worker batch response: %w", err)
	}
	if len(out.Responses) != len(items) {
		return fmt.Errorf("worker %s returned %d items for %d requests", ws.member.Name, len(out.Responses), len(items))
	}
	for j, i := range items {
		responses[i] = out.Responses[j]
	}
	return nil
}

// itemError fabricates a per-item failure body in the worker's own
// item-error shape. Only degraded rings mint these — healthy rings
// pass worker bytes through untouched.
func (rt *Router) itemError(req *server.ExplainRequest, msg string) json.RawMessage {
	name := req.Benchmark
	if ks, err := rt.resolveKeyspace(name); err == nil {
		name = ks.Name
	}
	body, err := json.Marshal(server.ExplainResponse{Benchmark: name, Error: msg})
	if err != nil {
		return json.RawMessage(`{"error":"encoding item error"}`)
	}
	return body
}

// handleHealthz serves the router's ring-occupancy health document.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy := rt.healthyWorkers()
	status := "ok"
	switch {
	case healthy == 0:
		status = "down"
	case healthy < len(rt.workers):
		status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(RingHealthResponse{
		Status:         status,
		UptimeMS:       float64(time.Since(rt.start)) / float64(time.Millisecond),
		Benchmarks:     append([]string(nil), rt.order...),
		Workers:        len(rt.workers),
		HealthyWorkers: healthy,
	})
}

// handleStats aggregates /v1/stats across the ring: each worker's own
// stats document is fetched concurrently (bounded by StatsTimeout) and
// reported per worker plus summed into the ring aggregate.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	rows := rt.fetchWorkerStats(r.Context())
	resp := RingStatsResponse{
		UptimeMS:       float64(time.Since(rt.start)) / float64(time.Millisecond),
		Workers:        len(rt.workers),
		HealthyWorkers: rt.healthyWorkers(),
		Forwarded:      rt.forwarded.Load(),
		BatchItems:     rt.batchItems.Load(),
		Failovers:      rt.failovers.Load(),
		Unroutable:     rt.unroutable.Load(),
		PerWorker:      rows,
		Aggregate:      aggregateRows(rows),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// fetchWorkerStats pulls every worker's /v1/stats concurrently. Rows
// come back in member (name) order regardless of response order, and a
// fetch failure marks the worker down just like a failed forward.
func (rt *Router) fetchWorkerStats(ctx context.Context) []WorkerRingStats {
	ctx, cancel := context.WithTimeout(ctx, rt.opts.StatsTimeout)
	defer cancel()
	rows := make([]WorkerRingStats, len(rt.workers))
	var wg sync.WaitGroup
	for i, ws := range rt.workers {
		wg.Add(1)
		go func(i int, ws *workerState) {
			defer wg.Done()
			row := WorkerRingStats{Name: ws.member.Name, URL: ws.member.URL}
			st, err := rt.fetchStats(ctx, ws)
			if err != nil {
				rt.markDown(ws, err)
				row.Error = err.Error()
			} else {
				rt.markUp(ws)
				row.Stats = st
			}
			row.Healthy = !ws.down.Load()
			rows[i] = row
		}(i, ws)
	}
	wg.Wait()
	return rows
}

func (rt *Router) fetchStats(ctx context.Context, ws *workerState) (*server.StatsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ws.member.URL+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats status %d", resp.StatusCode)
	}
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// aggregateRows sums serving and cache counters across the reachable
// workers' stats documents, folding all backends together. Backend
// names are visited in sorted order so any future per-backend
// breakdown stays deterministic.
func aggregateRows(rows []WorkerRingStats) RingAggregateStats {
	var agg RingAggregateStats
	for _, row := range rows {
		st := row.Stats
		if st == nil {
			continue
		}
		agg.Served += st.Served
		agg.Coalesced += st.Coalesced
		agg.Memoized += st.Memoized
		agg.Rejected += st.Rejected
		agg.Cancelled += st.Cancelled
		agg.Errors += st.Errors
		names := make([]string, 0, len(st.Backends))
		for name := range st.Backends {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			bs := st.Backends[name]
			agg.Entries += bs.Entries
			agg.Lookups += bs.Lookups
			agg.Hits += bs.Hits
			agg.Misses += bs.Misses
			agg.Evictions += bs.Evictions
			agg.FlipLookups += bs.FlipLookups
			agg.FlipHits += bs.FlipHits
			if bs.ResultMemo != nil {
				agg.MemoEntries += bs.ResultMemo.Entries
				agg.MemoLookups += bs.ResultMemo.Lookups
				agg.MemoHits += bs.ResultMemo.Hits
			}
		}
	}
	if agg.Lookups > 0 {
		agg.HitRate = float64(agg.Hits) / float64(agg.Lookups)
	}
	if agg.FlipLookups > 0 {
		agg.FlipHitRate = float64(agg.FlipHits) / float64(agg.FlipLookups)
	}
	if agg.MemoLookups > 0 {
		agg.MemoHitRate = float64(agg.MemoHits) / float64(agg.MemoLookups)
	}
	return agg
}

// probeLoop actively probes worker liveness until Close.
func (rt *Router) probeLoop(ctx context.Context, every time.Duration) {
	defer close(rt.probeDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.ProbeOnce(ctx)
		}
	}
}

// ProbeOnce health-checks every worker once (GET /v1/healthz, bounded
// by ProbeTimeout each) and updates the down flags. The active prober
// calls it on its interval; tests and daemons may call it directly for
// a deterministic health refresh.
func (rt *Router) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, ws := range rt.workers {
		wg.Add(1)
		go func(ws *workerState) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, rt.opts.ProbeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, ws.member.URL+"/v1/healthz", nil)
			if err != nil {
				rt.markDown(ws, err)
				return
			}
			resp, err := rt.opts.Client.Do(req)
			if err != nil {
				rt.markDown(ws, err)
				return
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				rt.markDown(ws, fmt.Errorf("healthz status %d", resp.StatusCode))
				return
			}
			rt.markUp(ws)
		}(ws)
	}
	wg.Wait()
}

func (rt *Router) writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(server.ErrorResponse{Error: err.Error()})
}

// Stats assembles the router's ring stats without HTTP (for daemons
// and tests); ctx bounds the worker stats fetches.
func (rt *Router) Stats(ctx context.Context) RingStatsResponse {
	rows := rt.fetchWorkerStats(ctx)
	return RingStatsResponse{
		UptimeMS:       float64(time.Since(rt.start)) / float64(time.Millisecond),
		Workers:        len(rt.workers),
		HealthyWorkers: rt.healthyWorkers(),
		Forwarded:      rt.forwarded.Load(),
		BatchItems:     rt.batchItems.Load(),
		Failovers:      rt.failovers.Load(),
		Unroutable:     rt.unroutable.Load(),
		PerWorker:      rows,
		Aggregate:      aggregateRows(rows),
	}
}

// uptimeSeconds backs the router uptime gauge.
func (rt *Router) uptimeSeconds() float64 { return time.Since(rt.start).Seconds() }

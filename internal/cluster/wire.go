package cluster

import (
	"certa/internal/server"
)

// The router's own wire types. Explanation traffic passes through the
// router byte-for-byte — workers produce the response bodies — so the
// only documents minted here are the ring-level health and stats
// surfaces.

// RingHealthResponse is the body of GET /v1/healthz on the router:
// ring occupancy rather than worker liveness detail (that lives in
// /v1/stats per_worker). Status is "ok" while every member is
// healthy, "degraded" when some are down, "down" when all are. Its
// serialized form is pinned by testdata/wire_golden.json
// (wire_golden_test.go; refresh with -update-golden).
type RingHealthResponse struct {
	Status         string   `json:"status"`
	UptimeMS       float64  `json:"uptime_ms"`
	Benchmarks     []string `json:"benchmarks"`
	Workers        int      `json:"workers"`
	HealthyWorkers int      `json:"healthy_workers"`
}

// WorkerRingStats is one worker's row in RingStatsResponse.PerWorker.
// Stats is the worker's own /v1/stats document, fetched at request
// time; Error replaces it when the fetch failed (which also reports
// the worker unhealthy).
type WorkerRingStats struct {
	Name    string                `json:"name"`
	URL     string                `json:"url"`
	Healthy bool                  `json:"healthy"`
	Error   string                `json:"error,omitempty"`
	Stats   *server.StatsResponse `json:"stats,omitempty"`
}

// RingAggregateStats sums the serving and cache counters across every
// reachable worker (all backends folded together): the whole-ring view
// of served traffic, coalescing, and cache effectiveness. Rates are
// recomputed from the summed counters, not averaged.
type RingAggregateStats struct {
	Served    int64 `json:"served"`
	Coalesced int64 `json:"coalesced"`
	Memoized  int64 `json:"memoized"`
	Rejected  int64 `json:"rejected"`
	Cancelled int64 `json:"cancelled"`
	Errors    int64 `json:"errors"`
	// Entries is the ring's aggregate cache footprint — the point of
	// sharding: it grows with the worker count while each worker's own
	// store stays within its capacity bound.
	Entries     int     `json:"entries"`
	Lookups     int     `json:"lookups"`
	Hits        int     `json:"hits"`
	Misses      int     `json:"misses"`
	Evictions   int     `json:"evictions,omitempty"`
	HitRate     float64 `json:"hit_rate"`
	FlipLookups int     `json:"flip_lookups"`
	FlipHits    int     `json:"flip_hits"`
	FlipHitRate float64 `json:"flip_hit_rate"`
	// The summed serving-layer result memos (see
	// server.ResultMemoStats); MemoEntries is the ring's aggregate
	// memoized-response footprint, which — like Entries — grows with
	// the worker count.
	MemoEntries int     `json:"memo_entries,omitempty"`
	MemoLookups int64   `json:"memo_lookups,omitempty"`
	MemoHits    int64   `json:"memo_hits,omitempty"`
	MemoHitRate float64 `json:"memo_hit_rate,omitempty"`
}

// RingStatsResponse is the body of GET /v1/stats on the router: the
// router's own forwarding counters, a per-worker row with each
// worker's full stats document, and the ring-wide aggregate. Its
// serialized form is pinned by testdata/wire_golden.json
// (wire_golden_test.go; refresh with -update-golden).
type RingStatsResponse struct {
	UptimeMS       float64 `json:"uptime_ms"`
	Workers        int     `json:"workers"`
	HealthyWorkers int     `json:"healthy_workers"`
	// Forwarded counts single-explain requests sent to workers
	// (failover retries included); BatchItems counts batch items fanned
	// out. Failovers counts forwards that fell through to a later
	// replica after a worker failure; Unroutable the requests and items
	// no reachable worker could serve (answered 502 / per-item error).
	Forwarded  int64 `json:"forwarded"`
	BatchItems int64 `json:"batch_items"`
	Failovers  int64 `json:"failovers"`
	Unroutable int64 `json:"unroutable"`
	// PerWorker rows are sorted by member name; the order never depends
	// on map iteration.
	PerWorker []WorkerRingStats  `json:"per_worker"`
	Aggregate RingAggregateStats `json:"aggregate"`
}

package cluster

import (
	"certa/internal/telemetry"
)

// The router's metric catalog: every counter the routing layer keeps,
// published as named series in Options.Metrics and scraped at the
// router's GET /v1/metrics. Worker-side engine series (cache rates,
// stage latencies, admission occupancy) stay on the workers' own
// /v1/metrics surfaces — a scraper walks the ring members for those,
// and the router's /v1/stats aggregate is the JSON rollup. Series
// names carry the certa_router_ prefix so a scrape of router + workers
// into one TSDB never collides.
const (
	metricRouterUptime        = "certa_router_uptime_seconds"
	metricRouterWorkers       = "certa_router_workers"
	metricRouterHealthy       = "certa_router_workers_healthy"
	metricRouterForwarded     = "certa_router_forwarded_total"
	metricRouterBatchItems    = "certa_router_batch_items_total"
	metricRouterFailovers     = "certa_router_failovers_total"
	metricRouterUnroutable    = "certa_router_unroutable_total"
	metricRouterWorkerHealthy = "certa_router_worker_healthy"
	metricRouterWorkerErrors  = "certa_router_worker_errors_total"
	metricRouterHTTPDuration  = "certa_router_request_duration_seconds"
)

// registerMetrics publishes the router's observable state. Called once
// from NewRouter, after the worker list is resolved.
func (rt *Router) registerMetrics() {
	m := rt.metrics
	m.GaugeFunc(metricRouterUptime, "Seconds since router construction.", nil, rt.uptimeSeconds)
	m.GaugeFunc(metricRouterWorkers, "Ring members configured.", nil,
		func() float64 { return float64(len(rt.workers)) })
	m.GaugeFunc(metricRouterHealthy, "Ring members currently considered healthy.", nil,
		func() float64 { return float64(rt.healthyWorkers()) })
	m.CounterFunc(metricRouterForwarded, "Explain requests forwarded to workers (failover retries included).", nil,
		func() float64 { return float64(rt.forwarded.Load()) })
	m.CounterFunc(metricRouterBatchItems, "Batch items fanned out across the ring.", nil,
		func() float64 { return float64(rt.batchItems.Load()) })
	m.CounterFunc(metricRouterFailovers, "Forwards that failed a worker and fell through to a later replica.", nil,
		func() float64 { return float64(rt.failovers.Load()) })
	m.CounterFunc(metricRouterUnroutable, "Requests and batch items no reachable worker could serve.", nil,
		func() float64 { return float64(rt.unroutable.Load()) })

	for _, ws := range rt.workers {
		ws := ws
		lbl := telemetry.Labels{"worker": ws.member.Name}
		m.GaugeFunc(metricRouterWorkerHealthy, "1 while the worker is considered healthy, 0 while down.", lbl,
			func() float64 {
				if ws.down.Load() {
					return 0
				}
				return 1
			})
		m.CounterFunc(metricRouterWorkerErrors, "Transport and probe failures against this worker.", lbl,
			func() float64 { return float64(ws.errors.Load()) })
	}

	rt.httpExplain = m.Histogram(metricRouterHTTPDuration,
		"Whole-router request latency, failover retries included.",
		telemetry.Labels{"endpoint": "/v1/explain"}, telemetry.LatencyBuckets)
	rt.httpBatch = m.Histogram(metricRouterHTTPDuration,
		"Whole-router request latency, failover retries included.",
		telemetry.Labels{"endpoint": "/v1/explain/batch"}, telemetry.LatencyBuckets)
}

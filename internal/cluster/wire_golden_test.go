package cluster

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"certa/internal/server"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestWireGolden pins the serialized form of the router's own wire
// documents — RingHealthResponse and RingStatsResponse with a healthy
// row, a failed-fetch row, and the populated aggregate. Explanation
// bodies are deliberately absent: the router relays worker bytes
// verbatim, so their schema is pinned by the server package's golden.
// Built from fixed values, the test asserts schema stability, not
// router behavior; refresh with -update-golden after a deliberate
// change. certa-lint's wiretag analyzer requires this file to be
// referenced from each type's doc comment.
func TestWireGolden(t *testing.T) {
	doc := struct {
		Health RingHealthResponse `json:"health"`
		Stats  RingStatsResponse  `json:"stats"`
	}{
		Health: RingHealthResponse{
			Status:         "degraded",
			UptimeMS:       1250,
			Benchmarks:     []string{"AB"},
			Workers:        2,
			HealthyWorkers: 1,
		},
		Stats: RingStatsResponse{
			UptimeMS:       1250,
			Workers:        2,
			HealthyWorkers: 1,
			Forwarded:      96,
			BatchItems:     64,
			Failovers:      3,
			Unroutable:     1,
			PerWorker: []WorkerRingStats{
				{
					Name:    "w0",
					URL:     "http://127.0.0.1:8081",
					Healthy: true,
					Stats: &server.StatsResponse{
						Worker:    "w0",
						UptimeMS:  1200,
						Served:    48,
						Coalesced: 8,
						Memoized:  16,
						Backends: map[string]server.BackendStats{
							"AB": {
								Model:       "deepmatcher",
								Requests:    56,
								Entries:     128,
								Lookups:     4096,
								Hits:        3072,
								Misses:      1024,
								Batches:     96,
								HitRate:     0.75,
								FlipLookups: 256,
								FlipHits:    128,
								FlipHitRate: 0.5,
								ResultMemo: &server.ResultMemoStats{
									Capacity: 16, Entries: 16, Lookups: 64, Hits: 16, HitRate: 0.25,
								},
							},
						},
					},
				},
				{
					Name:    "w1",
					URL:     "http://127.0.0.1:8082",
					Healthy: false,
					Error:   "Get \"http://127.0.0.1:8082/v1/stats\": connection refused",
				},
			},
			Aggregate: RingAggregateStats{
				Served:      48,
				Coalesced:   8,
				Memoized:    16,
				Entries:     128,
				Lookups:     4096,
				Hits:        3072,
				Misses:      1024,
				HitRate:     0.75,
				FlipLookups: 256,
				FlipHits:    128,
				FlipHitRate: 0.5,
				MemoEntries: 16,
				MemoLookups: 64,
				MemoHits:    16,
				MemoHitRate: 0.25,
			},
		},
	}
	got, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "wire_golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden after a deliberate schema change)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire schema drifted from %s (run with -update-golden after a deliberate schema change)\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// Package cluster scales the explanation service out: a thin HTTP
// router consistent-hash-shards the explanation keyspace across N
// certa-serve workers, so each worker's score cache, flip memo and
// embedding store stay hot for its slice of the keyspace.
//
// The shard key is the canonical pair-content key the score cache
// already stripes on (scorecache.Key), hashed with the frozen
// placement hash scorecache.ShardHash — router placement and
// worker-side caching can never disagree, because they are literally
// the same function over the same string.
//
// Three layers:
//
//   - Ring: a deterministic consistent-hash ring with virtual nodes
//     (NewRing). Membership is fixed at construction; every process
//     that builds a ring from the same member names and virtual-node
//     count computes identical placement, so routers, workers and
//     offline tools agree without coordination.
//   - Router: an http.Handler that forwards POST /v1/explain to the
//     key's owner (retrying the next replica when a worker is
//     unreachable), partitions POST /v1/explain/batch by shard and
//     fans out concurrently, merges index-aligned results, and
//     aggregates GET /v1/stats across the ring. Workers answer with
//     the bytes they computed; the router passes them through
//     verbatim, so routed responses are byte-identical to a direct
//     certa-serve response for the same request.
//   - Snapshot shipping: a joining worker warms up before taking
//     traffic by pulling a donor's GET /v1/snapshot stream
//     (FetchSnapshot) and installing only the keys the ring assigns
//     it (KeepOwned + scorecache.RestoreFunc). A truncated or
//     bit-flipped stream fails the snapshot format's CRC check and
//     the worker starts cold — never with a corrupt cache.
//
// Failure semantics: the router health-checks members passively (a
// failed forward marks the worker down, a successful one marks it up
// again) and optionally actively (Options.HealthEvery probes
// /v1/healthz). A down worker's shard is absorbed by the next replica
// on the ring until it returns; when no worker can serve a request
// the router answers 502 with the standard error body.
package cluster

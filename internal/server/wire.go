package server

import (
	"fmt"
	"strconv"
	"strings"

	"certa/internal/core"
	"certa/internal/record"
	"certa/internal/scorecache"
	"certa/internal/telemetry"
)

// The wire types of the HTTP API. certa-explain -json prints the same
// ExplainResponse document, so the CLI and the server share one schema,
// and the golden-file round-trip test at the repo root pins it.

// WireRecord is an inline record in a request body: the values of one
// record in the backend's schema order. Requests may address records by
// ID instead (left_id/right_id), which is the common case.
type WireRecord struct {
	ID     string   `json:"id,omitempty"`
	Values []string `json:"values"`
}

// ExplainRequest asks for one explanation. The pair is addressed in one
// of three ways, in precedence order: inline records (left+right),
// record IDs resolved in the backend's tables (left_id+right_id), or an
// index into the backend's registered pair list (pair_index).
type ExplainRequest struct {
	// Benchmark names the backend (dataset/model) to explain against.
	// Optional when the server hosts exactly one.
	Benchmark string `json:"benchmark,omitempty"`

	LeftID    string      `json:"left_id,omitempty"`
	RightID   string      `json:"right_id,omitempty"`
	PairIndex *int        `json:"pair_index,omitempty"`
	Left      *WireRecord `json:"left,omitempty"`
	Right     *WireRecord `json:"right,omitempty"`

	// DeadlineMS maps onto Options.Deadline: a soft per-explanation
	// wall-clock allowance that truncates to the best-so-far explanation
	// (diagnostics.truncated) instead of erroring. 0 = none.
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// CallBudget maps onto Options.CallBudget: a deterministic cap on
	// unique model calls. 0 = unlimited.
	CallBudget int `json:"call_budget,omitempty"`
	// AugmentBudget maps onto Options.AugmentBudget: the cap on
	// token-drop variants the augmented-support search may generate per
	// missing support. 0 = the backend's default (200).
	AugmentBudget int `json:"augment_budget,omitempty"`
	// TopK shapes the response: only the k most salient attributes and
	// at most k counterfactual examples are returned. 0 = everything.
	TopK int `json:"top_k,omitempty"`
	// LatticePrune maps onto Options.LatticePrune: the estimator mode
	// that stops exploring a lattice when a completed level's flip
	// fraction reaches the threshold. Omitted (or zero threshold) =
	// exact exploration. Pruned responses report the skipped work in
	// diagnostics.pruned_queries / diagnostics.prune_levels.
	LatticePrune *WirePrunePolicy `json:"lattice_prune,omitempty"`
}

// WirePrunePolicy is the request form of lattice.PrunePolicy. Its
// serialized form is pinned by testdata/wire_golden.json
// (wire_golden_test.go; refresh with -update-golden).
type WirePrunePolicy struct {
	// Threshold is the per-level flip fraction at which a lattice
	// counts as saturated and stops exploring; <= 0 disables pruning.
	Threshold float64 `json:"threshold"`
	// MinLevels is the number of lattice levels that must be fully
	// explored before pruning may trigger (0 = the engine default of 2).
	MinLevels int `json:"min_levels,omitempty"`
}

// ExplainResponse is the body of a successful explanation, and one
// element of a batch response (where Error marks per-item failures).
// Its serialized form is pinned by the golden fixture
// testdata/explain_response_golden.json at the repo root (wire_test.go;
// refresh deliberate schema changes with -update-golden).
type ExplainResponse struct {
	Benchmark string       `json:"benchmark"`
	PairKey   string       `json:"pair_key"`
	Result    *core.Result `json:"result,omitempty"`
	Error     string       `json:"error,omitempty"`
	// Trace is the per-stage wall-time span tree of this computation,
	// present only when the request asked for it (?debug=trace). Traced
	// requests bypass coalescing — wall times are per-computation, so a
	// shared body could not carry them — and are therefore a debugging
	// tool, not a production knob. The Result itself is byte-identical
	// with and without tracing.
	Trace *telemetry.WireSpan `json:"trace,omitempty"`
}

// BatchRequest asks for many explanations in one round trip. Items are
// admitted and coalesced individually — identical items share one
// computation — and per-item failures (including overload rejections)
// are reported in the matching response element.
type BatchRequest struct {
	Requests []ExplainRequest `json:"requests"`
}

// BatchResponse is index-aligned with BatchRequest.Requests. Its
// serialized form is pinned by testdata/wire_golden.json
// (wire_golden_test.go; refresh with -update-golden).
type BatchResponse struct {
	Responses []ExplainResponse `json:"responses"`
}

// ErrorResponse is the body of every non-200 response. Its serialized
// form is pinned by testdata/wire_golden.json (wire_golden_test.go).
type ErrorResponse struct {
	Error string `json:"error"`
}

// HealthResponse is the body of GET /v1/healthz. Its serialized form
// is pinned by testdata/wire_golden.json (wire_golden_test.go).
type HealthResponse struct {
	Status   string   `json:"status"`
	UptimeMS float64  `json:"uptime_ms"`
	Backends []string `json:"backends"`
}

// IndexStats reports one backend's candidate retrieval index in GET
// /v1/stats: the per-table token indexes built at server startup
// (summed over the two sources).
type IndexStats struct {
	// Records is the number of indexed records across both sources.
	Records int `json:"records"`
	// DistinctTokens is the combined inverted-index vocabulary size.
	DistinctTokens int `json:"distinct_tokens"`
	// BuildMS is the wall-clock index construction time in milliseconds.
	BuildMS float64 `json:"build_ms"`
}

// BackendStats reports one backend's shared score cache in GET
// /v1/stats.
type BackendStats struct {
	Model string `json:"model"`
	// Requests counts explanation requests routed to this backend
	// (coalesced joiners included); Errors the ones that failed after
	// routing (overload rejections and cancellations included).
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors,omitempty"`
	// Entries is the number of scores currently stored;
	// RestoredEntries how many of the initial ones came from a snapshot
	// (certa-serve -cache-file).
	Entries         int `json:"entries"`
	RestoredEntries int `json:"restored_entries,omitempty"`
	// The scorecache.ServiceStats counters: Misses is the number of
	// unique model invocations the whole serving run has paid.
	Lookups   int     `json:"lookups"`
	Hits      int     `json:"hits"`
	Misses    int     `json:"misses"`
	Batches   int     `json:"batches"`
	Evictions int     `json:"evictions,omitempty"`
	HitRate   float64 `json:"hit_rate"`
	// The cross-explanation flip-outcome memo (see
	// scorecache.ServiceStats): FlipHits counts lattice oracle questions
	// answered without a score lookup because another explanation already
	// settled the pair content's class. All zero when the memo is
	// disabled.
	FlipLookups int     `json:"flip_lookups"`
	FlipHits    int     `json:"flip_hits"`
	FlipHitRate float64 `json:"flip_hit_rate"`
	// Embedding reports the backend model's persistent embedding store
	// (absent for models that don't keep one).
	Embedding *EmbeddingStats `json:"embedding,omitempty"`
	// Index reports the backend's candidate retrieval index (absent
	// only when the backend was configured with unindexed scan sources).
	Index *IndexStats `json:"index,omitempty"`
	// ResultMemo reports the backend's serving-layer memo of rendered
	// response bodies (absent when ServerOptions.ResultMemo is 0).
	ResultMemo *ResultMemoStats `json:"result_memo,omitempty"`
}

// ResultMemoStats reports one backend's serving-layer result memo in
// GET /v1/stats: Hits are explanation requests answered by replaying a
// previously rendered byte-identical body, Entries the bodies held.
type ResultMemoStats struct {
	Capacity int     `json:"capacity"`
	Entries  int     `json:"entries"`
	Lookups  int64   `json:"lookups"`
	Hits     int64   `json:"hits"`
	HitRate  float64 `json:"hit_rate"`
}

// EmbeddingStats reports a backend model's matcher-lifetime embedding
// store in GET /v1/stats: Hits are texts served without re-embedding,
// Entries the vectors currently held.
type EmbeddingStats struct {
	Lookups   int     `json:"lookups"`
	Hits      int     `json:"hits"`
	Misses    int     `json:"misses"`
	Evictions int     `json:"evictions,omitempty"`
	Entries   int     `json:"entries"`
	HitRate   float64 `json:"hit_rate"`
}

// StatsResponse is the body of GET /v1/stats. Its serialized form —
// including every nested stats block — is pinned by
// testdata/wire_golden.json (wire_golden_test.go; refresh deliberate
// schema changes with -update-golden).
type StatsResponse struct {
	// Worker names this serving process (Options.Name) so a cluster
	// router can label the rows of its aggregated ring stats. Empty —
	// and omitted — for unnamed standalone servers.
	Worker   string  `json:"worker,omitempty"`
	UptimeMS float64 `json:"uptime_ms"`
	// Served counts completed explanation computations; Coalesced counts
	// requests answered by attaching to another request's in-flight
	// computation (so Served + Coalesced ≥ HTTP requests that returned
	// explanations, with equality when none were cancelled).
	Served    int64 `json:"served"`
	Coalesced int64 `json:"coalesced"`
	// Memoized counts requests answered from the result memo: repeats
	// of an already-answered deterministic request whose stored body
	// was replayed without admission or computation.
	Memoized int64 `json:"memoized"`
	// Rejected counts 429s from the admission controller, Cancelled
	// client disconnects that aborted a wait or computation, Errors
	// everything else that failed.
	Rejected  int64 `json:"rejected"`
	Cancelled int64 `json:"cancelled"`
	Errors    int64 `json:"errors"`
	// InFlight/Queued are the admission controller's instantaneous
	// occupancy; QueueHighWater the deepest the queue has been since
	// startup; EwmaLatencyMS its latency estimate (prices Retry-After).
	InFlight       int                     `json:"in_flight"`
	Queued         int                     `json:"queued"`
	QueueHighWater int                     `json:"queue_high_water"`
	EwmaLatencyMS  float64                 `json:"ewma_latency_ms"`
	Backends       map[string]BackendStats `json:"backends"`
}

// resolvePair materializes the request's pair against a backend.
func (b *backend) resolvePair(req *ExplainRequest) (record.Pair, error) {
	return ResolvePair(req, b.left, b.right, b.pairs)
}

// ResolvePair materializes a request's pair against a backend's source
// tables and registered pair list. Exported for the cluster router,
// which must resolve a request exactly the way the worker will — the
// canonical content key of the resolved pair is the shard key, so any
// divergence here would route requests to workers whose caches can
// never hit. The serving path itself goes through the same function.
func ResolvePair(req *ExplainRequest, left, right *record.Table, pairs []record.Pair) (record.Pair, error) {
	switch {
	case req.Left != nil || req.Right != nil:
		if req.Left == nil || req.Right == nil {
			return record.Pair{}, fmt.Errorf("inline pair needs both left and right records")
		}
		l, err := inlineRecord(req.Left, left.Schema, "left")
		if err != nil {
			return record.Pair{}, err
		}
		r, err := inlineRecord(req.Right, right.Schema, "right")
		if err != nil {
			return record.Pair{}, err
		}
		return record.Pair{Left: l, Right: r}, nil
	case req.LeftID != "" || req.RightID != "":
		if req.LeftID == "" || req.RightID == "" {
			return record.Pair{}, fmt.Errorf("need both left_id and right_id")
		}
		l, ok := left.Get(req.LeftID)
		if !ok {
			return record.Pair{}, fmt.Errorf("no record %q in source %s", req.LeftID, left.Schema.Name)
		}
		r, ok := right.Get(req.RightID)
		if !ok {
			return record.Pair{}, fmt.Errorf("no record %q in source %s", req.RightID, right.Schema.Name)
		}
		return record.Pair{Left: l, Right: r}, nil
	case req.PairIndex != nil:
		i := *req.PairIndex
		if i < 0 || i >= len(pairs) {
			return record.Pair{}, fmt.Errorf("pair_index %d out of range [0,%d)", i, len(pairs))
		}
		return pairs[i], nil
	}
	return record.Pair{}, fmt.Errorf("request addresses no pair (want left+right, left_id+right_id, or pair_index)")
}

// inlineRecord builds a record from request values under the backend's
// schema.
func inlineRecord(w *WireRecord, schema *record.Schema, side string) (*record.Record, error) {
	id := w.ID
	if id == "" {
		id = "inline-" + side
	}
	r, err := record.New(id, schema, w.Values...)
	if err != nil {
		return nil, fmt.Errorf("inline %s record: %w", side, err)
	}
	return r, nil
}

// knobs are the per-request engine options that participate in the
// coalescing key: requests are shared only when both the pair content
// and the options agree.
type knobs struct {
	deadlineMS     int
	callBudget     int
	augmentBudget  int
	topK           int
	pruneThreshold float64
	pruneMinLevels int
}

func (r *ExplainRequest) knobs() knobs {
	k := knobs{deadlineMS: r.DeadlineMS, callBudget: r.CallBudget, augmentBudget: r.AugmentBudget, topK: r.TopK}
	if r.LatticePrune != nil {
		k.pruneThreshold = r.LatticePrune.Threshold
		k.pruneMinLevels = r.LatticePrune.MinLevels
	}
	return k
}

// coalesceKey renders the identity of a computation: backend, anytime
// options, the addressed record IDs and the canonical pair content (the
// same key the score cache stripes on). The IDs participate because the
// shared response body embeds them (pair_key, record ids): two requests
// may share one body only when they would have received byte-identical
// bodies anyway. Same-content different-ID requests still share all
// their model calls through the score cache — coalescing is only the
// layer above.
func coalesceKey(backendName string, k knobs, p record.Pair) string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(len(backendName)))
	b.WriteByte('#')
	b.WriteString(backendName)
	b.WriteString("|d")
	b.WriteString(strconv.Itoa(k.deadlineMS))
	b.WriteString("|b")
	b.WriteString(strconv.Itoa(k.callBudget))
	b.WriteString("|a")
	b.WriteString(strconv.Itoa(k.augmentBudget))
	b.WriteString("|k")
	b.WriteString(strconv.Itoa(k.topK))
	b.WriteString("|pt")
	b.WriteString(strconv.FormatFloat(k.pruneThreshold, 'g', -1, 64))
	b.WriteString("|pm")
	b.WriteString(strconv.Itoa(k.pruneMinLevels))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(len(p.Left.ID)))
	b.WriteByte('#')
	b.WriteString(p.Left.ID)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(len(p.Right.ID)))
	b.WriteByte('#')
	b.WriteString(p.Right.ID)
	b.WriteByte('|')
	b.WriteString(scorecache.Key(p))
	return b.String()
}

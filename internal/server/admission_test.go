package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdmissionImmediateSlots(t *testing.T) {
	a := newAdmission(2, 2)
	ctx := context.Background()
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if inflight, queued, _, _ := a.snapshot(); inflight != 2 || queued != 0 {
		t.Fatalf("occupancy = %d/%d", inflight, queued)
	}
	a.release()
	a.release()
	if inflight, _, _, _ := a.snapshot(); inflight != 0 {
		t.Fatalf("inflight = %d after releases", inflight)
	}
}

func TestAdmissionFIFOOrder(t *testing.T) {
	a := newAdmission(1, 8)
	ctx := context.Background()
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}

	// Queue three waiters in a known order.
	const n = 3
	granted := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			if err := a.acquire(ctx); err != nil {
				t.Error(err)
				granted <- -1
				return
			}
			granted <- i
		}(i)
		waitFor(t, "waiter queued", func() bool {
			_, queued, _, _ := a.snapshot()
			return queued == i+1
		})
	}

	// Each release hands the slot to the oldest waiter.
	for want := 0; want < n; want++ {
		a.release()
		select {
		case got := <-granted:
			if got != want {
				t.Fatalf("slot granted to waiter %d, want %d (FIFO)", got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("release granted no waiter")
		}
	}
	a.release()
	if inflight, queued, _, _ := a.snapshot(); inflight != 0 || queued != 0 {
		t.Fatalf("occupancy = %d/%d after drain", inflight, queued)
	}
}

func TestAdmissionOverflowRejects(t *testing.T) {
	a := newAdmission(1, 1)
	ctx := context.Background()
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	go a.acquire(ctx) // fills the queue
	waitFor(t, "queue fill", func() bool {
		_, queued, _, _ := a.snapshot()
		return queued == 1
	})
	if err := a.acquire(ctx); !errors.Is(err, errOverloaded) {
		t.Fatalf("acquire past queue = %v, want errOverloaded", err)
	}
	if a.retryAfterSeconds() < 1 {
		t.Fatal("retryAfterSeconds < 1")
	}
	a.release() // hand to the queued waiter
	a.release()
	a.release()
}

func TestAdmissionCancelledWaiterIsSkipped(t *testing.T) {
	a := newAdmission(1, 8)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Waiter A will be cancelled; waiter B must then be first in line.
	ctxA, cancelA := context.WithCancel(context.Background())
	aErr := make(chan error, 1)
	go func() { aErr <- a.acquire(ctxA) }()
	waitFor(t, "A queued", func() bool { _, q, _, _ := a.snapshot(); return q == 1 })

	bGranted := make(chan struct{})
	go func() {
		if err := a.acquire(context.Background()); err != nil {
			t.Error(err)
		}
		close(bGranted)
	}()
	waitFor(t, "B queued", func() bool { _, q, _, _ := a.snapshot(); return q == 2 })

	cancelA()
	if err := <-aErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v", err)
	}

	a.release() // must skip abandoned A and grant B
	select {
	case <-bGranted:
	case <-time.After(5 * time.Second):
		t.Fatal("release did not skip the abandoned waiter")
	}
	a.release()
	if inflight, queued, _, _ := a.snapshot(); inflight != 0 || queued != 0 {
		t.Fatalf("occupancy = %d/%d after drain", inflight, queued)
	}
}

func TestAdmissionHandoffCancelRace(t *testing.T) {
	// A waiter whose context is cancelled in the same instant the slot is
	// handed to it must pass the slot on rather than strand it.
	for i := 0; i < 200; i++ {
		a := newAdmission(1, 8)
		if err := a.acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- a.acquire(ctx) }()
		waitFor(t, "queued", func() bool { _, q, _, _ := a.snapshot(); return q == 1 })
		go cancel()
		go a.release()
		err := <-done
		if err == nil {
			// The waiter won the race and owns the slot.
			a.release()
		}
		waitFor(t, "slot recovered", func() bool {
			inflight, queued, _, _ := a.snapshot()
			return inflight == 0 && queued == 0
		})
		cancel()
	}
}

func TestAdmissionAbandonedWaiterFreesQueueCapacity(t *testing.T) {
	// A cancelled waiter must leave the queue immediately: dead tickets
	// occupying capacity would 429 live clients while slots sit idle.
	a := newAdmission(1, 1)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- a.acquire(ctx) }()
	waitFor(t, "waiter queued", func() bool { _, q, _, _ := a.snapshot(); return q == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v", err)
	}
	if _, q, _, _ := a.snapshot(); q != 0 {
		t.Fatalf("queue reports %d waiters after abandonment", q)
	}
	// The freed capacity admits a live waiter instead of rejecting it.
	granted := make(chan error, 1)
	go func() { granted <- a.acquire(context.Background()) }()
	waitFor(t, "live waiter queued", func() bool { _, q, _, _ := a.snapshot(); return q == 1 })
	a.release()
	if err := <-granted; err != nil {
		t.Fatalf("live waiter rejected after abandonment freed the queue: %v", err)
	}
	a.release()
}

func TestAdmissionObservePricesRetryAfter(t *testing.T) {
	a := newAdmission(2, 4)
	a.observe(10 * time.Second)
	if got := a.retryAfterSeconds(); got < 5 {
		t.Fatalf("retryAfter = %ds after observing 10s latency on 2 slots", got)
	}
}

package server

import (
	"sync"
)

// resultMemo is the serving-layer explanation memo: a bounded LRU of
// rendered response bodies keyed by the coalescing key. Coalescing
// shares one computation's bytes among identical in-flight requests;
// the memo extends exactly that sharing across time, so a repeat of an
// already-answered request is served its byte-identical body without
// holding an admission slot or touching the engine. It is the layer
// that makes a sharded serving ring scale: each worker's memo holds
// the responses for its slice of the keyspace, and the ring's
// aggregate memo capacity grows with the worker count.
//
// Only deterministic computations are memoized: requests carrying a
// deadline_ms are excluded by the caller (their truncation point
// depends on the wall clock, so a replayed body could differ from a
// fresh one), as are traced (?debug=trace) requests, which bypass
// this path entirely. Everything else — including call_budget and
// lattice_prune modes, which truncate deterministically — replays
// exactly the bytes a fresh computation would produce.
type resultMemo struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*memoEntry
	// Intrusive doubly-linked LRU ring, most recent at head.next.
	head    memoEntry
	lookups int64
	hits    int64
}

type memoEntry struct {
	key        string
	body       []byte
	prev, next *memoEntry
}

// newResultMemo builds a memo bounded to capacity entries; capacity
// must be positive (a disabled memo is a nil *resultMemo).
func newResultMemo(capacity int) *resultMemo {
	m := &resultMemo{
		capacity: capacity,
		entries:  make(map[string]*memoEntry, capacity),
	}
	m.head.prev, m.head.next = &m.head, &m.head
	return m
}

func (m *resultMemo) unlink(e *memoEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (m *resultMemo) pushFront(e *memoEntry) {
	e.prev = &m.head
	e.next = m.head.next
	e.prev.next = e
	e.next.prev = e
}

// get returns the memoized body for key, refreshing its recency. A nil
// memo reports a miss without counting a lookup.
func (m *resultMemo) get(key string) ([]byte, bool) {
	if m == nil {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lookups++
	e, ok := m.entries[key]
	if !ok {
		return nil, false
	}
	m.hits++
	m.unlink(e)
	m.pushFront(e)
	return e.body, true
}

// put installs a freshly computed body, evicting the coldest entry
// past the capacity bound. Re-putting an existing key only refreshes
// recency: coalesced leaders and near-simultaneous repeats produce
// identical bytes, so the stored body never needs replacing.
func (m *resultMemo) put(key string, body []byte) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[key]; ok {
		m.unlink(e)
		m.pushFront(e)
		return
	}
	e := &memoEntry{key: key, body: body}
	m.entries[key] = e
	m.pushFront(e)
	if len(m.entries) > m.capacity {
		coldest := m.head.prev
		m.unlink(coldest)
		delete(m.entries, coldest.key)
	}
}

// stats snapshots the memo's counters.
func (m *resultMemo) stats() (lookups, hits int64, entries int) {
	if m == nil {
		return 0, 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lookups, m.hits, len(m.entries)
}

package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"certa/internal/telemetry"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestWireGolden pins the serialized form of every server wire type
// that is not already covered by the repo-root ExplainResponse golden:
// the ExplainRequest knob set (including the lattice_prune policy),
// BatchResponse, ErrorResponse, HealthResponse and StatsResponse with
// all nested stats blocks populated. The fixture is built from fixed
// values, so the test asserts schema stability (field names, omitempty
// decisions, nesting), not server behavior: adding, renaming or
// untagging a field fails here until the golden is deliberately
// refreshed with -update-golden. certa-lint's wiretag analyzer
// requires this file to be referenced from each type's doc comment.
func TestWireGolden(t *testing.T) {
	doc := struct {
		Request ExplainRequest `json:"request"`
		Batch   BatchResponse  `json:"batch"`
		Error   ErrorResponse  `json:"error"`
		Health  HealthResponse `json:"health"`
		Stats   StatsResponse  `json:"stats"`
	}{
		Request: ExplainRequest{
			Benchmark:  "AB",
			LeftID:     "l1",
			RightID:    "r1",
			DeadlineMS: 500,
			CallBudget: 250,
			TopK:       2,
			LatticePrune: &WirePrunePolicy{
				Threshold: 0.125,
				MinLevels: 2,
			},
		},
		Batch: BatchResponse{
			Responses: []ExplainResponse{
				{Benchmark: "AB", PairKey: "l1|r1",
					Trace: &telemetry.WireSpan{
						Name: "explain", DurationMS: 12.5,
						Children: []*telemetry.WireSpan{
							{Name: "triangles", StartMS: 0.25, DurationMS: 4, Items: 6},
							{Name: "counterfactuals", StartMS: 4.5, DurationMS: 8},
						},
					}},
				{Benchmark: "AB", PairKey: "", Error: "pair not found"},
			},
		},
		Error:  ErrorResponse{Error: "backend \"nope\" not found"},
		Health: HealthResponse{Status: "ok", UptimeMS: 1250, Backends: []string{"AB", "BA"}},
		Stats: StatsResponse{
			Worker:         "w0",
			UptimeMS:       1250,
			Served:         40,
			Coalesced:      8,
			Memoized:       12,
			Rejected:       2,
			Cancelled:      1,
			Errors:         1,
			InFlight:       3,
			Queued:         2,
			QueueHighWater: 5,
			EwmaLatencyMS:  17.5,
			Backends: map[string]BackendStats{
				"AB": {
					Model:           "deepmatcher",
					Requests:        48,
					Errors:          4,
					Entries:         128,
					RestoredEntries: 64,
					Lookups:         4096,
					Hits:            3072,
					Misses:          1024,
					Batches:         96,
					Evictions:       16,
					HitRate:         0.75,
					FlipLookups:     256,
					FlipHits:        128,
					FlipHitRate:     0.5,
					Embedding: &EmbeddingStats{
						Lookups: 2048, Hits: 1536, Misses: 512,
						Evictions: 8, Entries: 504, HitRate: 0.75,
					},
					Index: &IndexStats{Records: 2000, DistinctTokens: 5432, BuildMS: 3.25},
					ResultMemo: &ResultMemoStats{
						Capacity: 16, Entries: 16, Lookups: 48, Hits: 12, HitRate: 0.25,
					},
				},
			},
		},
	}
	got, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "wire_golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden after a deliberate schema change)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire schema drifted from %s (run with -update-golden after a deliberate schema change)\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

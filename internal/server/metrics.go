package server

import (
	"time"

	"certa/internal/telemetry"
)

// The server's metric catalog. Every counter the serving layers keep —
// and every stat the engine reports through side channels
// (scorecache.ServiceStats, embedding.StoreStats, index build stats) —
// is published as a named series in Options.Metrics and scraped at
// GET /v1/metrics. Counters that already live elsewhere are bridged
// with callback-backed series (CounterFunc/GaugeFunc) read at scrape
// time, so there is exactly one source of truth per number: the same
// values /v1/stats reports, in Prometheus text form.
const (
	metricUptime    = "certa_uptime_seconds"
	metricServed    = "certa_explanations_served_total"
	metricCoalesced = "certa_requests_coalesced_total"
	metricMemoized  = "certa_requests_memoized_total"
	metricRejected  = "certa_requests_rejected_total"
	metricCancelled = "certa_requests_cancelled_total"
	metricErrors    = "certa_request_errors_total"

	metricAdmInFlight  = "certa_admission_in_flight"
	metricAdmQueue     = "certa_admission_queue_depth"
	metricAdmHighWater = "certa_admission_queue_high_water"
	metricAdmEwma      = "certa_admission_ewma_latency_seconds"

	metricBackendRequests = "certa_backend_requests_total"
	metricBackendErrors   = "certa_backend_errors_total"

	metricCacheLookups   = "certa_score_cache_lookups_total"
	metricCacheHits      = "certa_score_cache_hits_total"
	metricCacheMisses    = "certa_score_cache_misses_total"
	metricCacheBatches   = "certa_score_cache_batches_total"
	metricCacheEvictions = "certa_score_cache_evictions_total"
	metricCacheEntries   = "certa_score_cache_entries"

	metricFlipLookups = "certa_flip_memo_lookups_total"
	metricFlipHits    = "certa_flip_memo_hits_total"

	metricMemoLookups = "certa_result_memo_lookups_total"
	metricMemoHits    = "certa_result_memo_hits_total"
	metricMemoEntries = "certa_result_memo_entries"

	metricEmbedLookups   = "certa_embedding_lookups_total"
	metricEmbedHits      = "certa_embedding_hits_total"
	metricEmbedMisses    = "certa_embedding_misses_total"
	metricEmbedEvictions = "certa_embedding_evictions_total"
	metricEmbedEntries   = "certa_embedding_entries"

	metricIndexRecords = "certa_index_records"
	metricIndexTokens  = "certa_index_distinct_tokens"
	metricIndexBuild   = "certa_index_build_seconds"

	metricExplainDuration = "certa_explain_duration_seconds"
	metricStageDuration   = "certa_stage_duration_seconds"
	metricHTTPDuration    = "certa_http_request_duration_seconds"
)

const helpStageDuration = "Per-computation wall time spent in one engine stage (from the explanation trace)."

// registerMetrics publishes the server's observable state into
// s.metrics. Called once from New, after the backends are resolved.
func (s *Server) registerMetrics() {
	m := s.metrics
	m.GaugeFunc(metricUptime, "Seconds since server construction.", nil,
		func() float64 { return time.Since(s.start).Seconds() })
	m.CounterFunc(metricServed, "Completed explanation computations.", nil,
		func() float64 { return float64(s.served.Load()) })
	m.CounterFunc(metricCoalesced, "Requests answered by attaching to another request's in-flight computation.", nil,
		func() float64 { return float64(s.coalesced.Load()) })
	m.CounterFunc(metricMemoized, "Requests answered by replaying a memoized response body.", nil,
		func() float64 { return float64(s.memoized.Load()) })
	m.CounterFunc(metricRejected, "Requests rejected with 429 by the admission controller.", nil,
		func() float64 { return float64(s.rejected.Load()) })
	m.CounterFunc(metricCancelled, "Requests whose client disconnected mid-wait or mid-computation.", nil,
		func() float64 { return float64(s.cancelled.Load()) })
	m.CounterFunc(metricErrors, "Requests that failed for any other reason.", nil,
		func() float64 { return float64(s.errored.Load()) })

	m.GaugeFunc(metricAdmInFlight, "Explanations computing right now.", nil, func() float64 {
		inflight, _, _, _ := s.adm.snapshot()
		return float64(inflight)
	})
	m.GaugeFunc(metricAdmQueue, "Explanations waiting for an in-flight slot.", nil, func() float64 {
		_, queued, _, _ := s.adm.snapshot()
		return float64(queued)
	})
	m.GaugeFunc(metricAdmHighWater, "Deepest the admission queue has been since startup.", nil, func() float64 {
		_, _, hw, _ := s.adm.snapshot()
		return float64(hw)
	})
	m.GaugeFunc(metricAdmEwma, "EWMA of per-explanation latency (prices Retry-After).", nil, func() float64 {
		_, _, _, ewma := s.adm.snapshot()
		return ewma / 1000 // the controller keeps milliseconds
	})

	s.httpExplain = m.Histogram(metricHTTPDuration,
		"Whole-handler request latency, admission wait and coalescing included.",
		telemetry.Labels{"endpoint": "/v1/explain"}, telemetry.LatencyBuckets)
	s.httpBatch = m.Histogram(metricHTTPDuration,
		"Whole-handler request latency, admission wait and coalescing included.",
		telemetry.Labels{"endpoint": "/v1/explain/batch"}, telemetry.LatencyBuckets)

	for _, name := range s.order {
		s.registerBackendMetrics(s.backends[name])
	}
}

// registerBackendMetrics publishes one backend's series, labeled
// {backend="name"}. Engine-side stats (score cache, flip memo,
// embedding store) are bridged from their existing side-channel
// structs at scrape time.
func (s *Server) registerBackendMetrics(b *backend) {
	m := s.metrics
	lbl := telemetry.Labels{"backend": b.name}

	m.CounterFunc(metricBackendRequests, "Explanation requests routed to this backend.", lbl,
		func() float64 { return float64(b.requests.Load()) })
	m.CounterFunc(metricBackendErrors, "Routed requests that failed (rejections and cancellations included).", lbl,
		func() float64 { return float64(b.errors.Load()) })
	b.latency = m.Histogram(metricExplainDuration,
		"Per-computation explanation latency, admission wait excluded.",
		lbl, telemetry.LatencyBuckets)

	m.CounterFunc(metricCacheLookups, "Score cache lookups.", lbl,
		func() float64 { return float64(b.svc.Stats().Lookups) })
	m.CounterFunc(metricCacheHits, "Score cache hits.", lbl,
		func() float64 { return float64(b.svc.Stats().Hits) })
	m.CounterFunc(metricCacheMisses, "Score cache misses (unique model invocations paid).", lbl,
		func() float64 { return float64(b.svc.Stats().Misses) })
	m.CounterFunc(metricCacheBatches, "Model forward batches issued by the score cache.", lbl,
		func() float64 { return float64(b.svc.Stats().Batches) })
	m.CounterFunc(metricCacheEvictions, "Score cache evictions.", lbl,
		func() float64 { return float64(b.svc.Stats().Evictions) })
	m.GaugeFunc(metricCacheEntries, "Scores currently stored in the cache.", lbl,
		func() float64 { return float64(b.svc.Len()) })

	m.CounterFunc(metricFlipLookups, "Flip-outcome memo lookups (lattice oracle questions).", lbl,
		func() float64 { return float64(b.svc.Stats().FlipLookups) })
	m.CounterFunc(metricFlipHits, "Lattice oracle questions answered from the cross-explanation flip memo.", lbl,
		func() float64 { return float64(b.svc.Stats().FlipHits) })

	if b.memo != nil {
		m.CounterFunc(metricMemoLookups, "Result memo lookups (deterministic explanation requests).", lbl,
			func() float64 { lookups, _, _ := b.memo.stats(); return float64(lookups) })
		m.CounterFunc(metricMemoHits, "Requests answered by replaying a memoized response body.", lbl,
			func() float64 { _, hits, _ := b.memo.stats(); return float64(hits) })
		m.GaugeFunc(metricMemoEntries, "Response bodies currently memoized.", lbl,
			func() float64 { _, _, entries := b.memo.stats(); return float64(entries) })
	}

	if es, ok := b.model.(embeddingStatser); ok {
		m.CounterFunc(metricEmbedLookups, "Embedding store lookups.", lbl,
			func() float64 { return float64(es.EmbeddingStats().Lookups) })
		m.CounterFunc(metricEmbedHits, "Texts served without re-embedding.", lbl,
			func() float64 { return float64(es.EmbeddingStats().Hits) })
		m.CounterFunc(metricEmbedMisses, "Embedding store misses.", lbl,
			func() float64 { return float64(es.EmbeddingStats().Misses) })
		m.CounterFunc(metricEmbedEvictions, "Embedding store evictions.", lbl,
			func() float64 { return float64(es.EmbeddingStats().Evictions) })
		m.GaugeFunc(metricEmbedEntries, "Vectors currently held by the embedding store.", lbl,
			func() float64 { return float64(es.EmbeddingStats().Entries) })
	}

	// The retrieval index is immutable after construction, so its stats
	// are plain gauges set once rather than scrape-time callbacks.
	if ist, ok := b.opts.Retrieval.Stats(); ok {
		m.Gauge(metricIndexRecords, "Records in the candidate retrieval index.", lbl).
			Set(float64(ist.Records))
		m.Gauge(metricIndexTokens, "Inverted-index vocabulary size.", lbl).
			Set(float64(ist.DistinctTokens))
		m.Gauge(metricIndexBuild, "Wall-clock index construction time.", lbl).
			Set(ist.BuildMS / 1000)
	}
}

// stageHist resolves the per-stage latency series for one (backend,
// stage). Registration is idempotent, so stages discovered at runtime
// (lattice/level3 appears only when a lattice reaches level 3) create
// their series on first observation.
func (s *Server) stageHist(backend, stage string) *telemetry.Histogram {
	return s.metrics.Histogram(metricStageDuration, helpStageDuration,
		telemetry.Labels{"backend": backend, "stage": stage}, telemetry.LatencyBuckets)
}

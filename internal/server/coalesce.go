package server

import (
	"context"
	"fmt"
	"sync"
)

// call is one in-flight coalesced computation. All requests for the same
// (pair, options) key attach to the same call and receive the same
// response bytes, computed once. refs counts the attached requests; when
// the last one abandons the wait (client disconnect), cancel aborts the
// computation's context — the explanation stops at its next scoring
// checkpoint, which is how a dropped connection propagates all the way
// into ExplainContext.
type call struct {
	done   chan struct{} // closed when body/err are valid
	cancel context.CancelFunc

	mu   sync.Mutex
	refs int

	body []byte // the marshaled response, shared byte-for-byte
	err  error
}

// detach drops one attached request; the last one out cancels the
// computation.
func (c *call) detach() {
	c.mu.Lock()
	c.refs--
	last := c.refs == 0
	c.mu.Unlock()
	if last {
		c.cancel()
	}
}

// coalescer deduplicates identical in-flight explanation requests
// (singleflight, keyed by backend + canonical pair content + anytime
// options) one layer above the score cache: where the shared
// scorecache.Service makes two concurrent explanations share their
// model calls, the coalescer makes two identical requests share the
// whole explanation — one lattice walk, one admission slot, one
// response marshaling.
type coalescer struct {
	mu    sync.Mutex
	calls map[string]*call
}

func newCoalescer() *coalescer {
	return &coalescer{calls: make(map[string]*call)}
}

// do returns the shared response for key, computing it at most once
// among concurrent callers. joined reports whether this caller attached
// to another request's in-flight computation. compute runs on its own
// goroutine under a context derived from base (the server's lifetime),
// cancelled when every attached request has gone away; a caller whose
// own ctx is cancelled detaches and returns ctx.Err() without waiting.
func (co *coalescer) do(ctx, base context.Context, key string, compute func(context.Context) ([]byte, error)) (body []byte, joined bool, err error) {
	co.mu.Lock()
	if c, ok := co.calls[key]; ok {
		c.mu.Lock()
		c.refs++
		c.mu.Unlock()
		co.mu.Unlock()
		return c.wait(ctx, true)
	}
	compCtx, cancel := context.WithCancel(base)
	c := &call{done: make(chan struct{}), cancel: cancel, refs: 1}
	co.calls[key] = c
	co.mu.Unlock()

	go func() {
		defer func() {
			// The computation goroutine is outside net/http's per-request
			// panic recovery; contain an engine panic to a failed call (a
			// 500 for its requesters) instead of crashing the daemon and
			// losing the unsnapshotted cache.
			if r := recover(); r != nil {
				c.body, c.err = nil, fmt.Errorf("explanation panicked: %v", r)
			}
			co.mu.Lock()
			delete(co.calls, key)
			co.mu.Unlock()
			close(c.done)
			cancel() // release the context's resources once the call settles
		}()
		c.body, c.err = compute(compCtx)
	}()
	return c.wait(ctx, false)
}

// wait blocks until the call settles or ctx is cancelled.
func (c *call) wait(ctx context.Context, joined bool) ([]byte, bool, error) {
	select {
	case <-c.done:
		return c.body, joined, c.err
	case <-ctx.Done():
		c.detach()
		return nil, joined, ctx.Err()
	}
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestResultMemoReplaysIdenticalBody: with the memo enabled, a repeat
// of an already-answered deterministic request is flagged memoized and
// replays the exact bytes of the first answer.
func TestResultMemoReplaysIdenticalBody(t *testing.T) {
	s := newTestServer(t, overlapModel{}, Options{ResultMemo: 8}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	req := ExplainRequest{LeftID: "l0", RightID: "r0"}
	resp1, body1 := postJSON(t, ts.URL+"/v1/explain", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Certa-Memoized"); got != "false" {
		t.Fatalf("X-Certa-Memoized = %q on a first request", got)
	}

	resp2, body2 := postJSON(t, ts.URL+"/v1/explain", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Certa-Memoized"); got != "true" {
		t.Fatalf("X-Certa-Memoized = %q on a repeat request", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("memoized body differs from the computed one:\n%s\n%s", body1, body2)
	}

	st := s.Stats()
	if st.Memoized != 1 {
		t.Fatalf("Stats.Memoized = %d, want 1", st.Memoized)
	}
	ms := st.Backends["toy"].ResultMemo
	if ms == nil {
		t.Fatal("BackendStats.ResultMemo missing with the memo enabled")
	}
	if ms.Capacity != 8 || ms.Lookups != 2 || ms.Hits != 1 || ms.Entries != 1 {
		t.Fatalf("memo stats = %+v, want capacity 8, 2 lookups, 1 hit, 1 entry", ms)
	}
	if ms.HitRate != 0.5 {
		t.Fatalf("memo hit rate = %v, want 0.5", ms.HitRate)
	}
}

// TestResultMemoKeyedByKnobs: requests that differ only in engine knobs
// memoize separately — a knob change must never replay another
// configuration's body.
func TestResultMemoKeyedByKnobs(t *testing.T) {
	s := newTestServer(t, overlapModel{}, Options{ResultMemo: 8}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, plain := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l0", RightID: "r0"})
	resp, topk := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l0", RightID: "r0", TopK: 1})
	if got := resp.Header.Get("X-Certa-Memoized"); got != "false" {
		t.Fatalf("X-Certa-Memoized = %q across a knob change", got)
	}
	if bytes.Equal(plain, topk) {
		t.Fatal("top_k=1 body identical to the unknobbed one — knob not in the memo key?")
	}
}

// TestResultMemoExcludesDeadlines: deadline-bearing requests are
// nondeterministic (their truncation point depends on the wall clock),
// so they are neither served from nor stored into the memo.
func TestResultMemoExcludesDeadlines(t *testing.T) {
	s := newTestServer(t, overlapModel{}, Options{ResultMemo: 8}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	req := ExplainRequest{LeftID: "l0", RightID: "r0", DeadlineMS: 60_000}
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/explain", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Certa-Memoized"); got != "false" {
			t.Fatalf("deadline request %d: X-Certa-Memoized = %q", i, got)
		}
	}
	if ms := s.Stats().Backends["toy"].ResultMemo; ms.Lookups != 0 || ms.Entries != 0 {
		t.Fatalf("deadline requests touched the memo: %+v", ms)
	}
}

// TestResultMemoTraceBypass: ?debug=trace recomputes with tracing
// enabled rather than replaying a stored body, and leaves the memo
// untouched.
func TestResultMemoTraceBypass(t *testing.T) {
	s := newTestServer(t, overlapModel{}, Options{ResultMemo: 8}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	req := ExplainRequest{LeftID: "l0", RightID: "r0"}
	postJSON(t, ts.URL+"/v1/explain", req)

	resp, body := postJSON(t, ts.URL+"/v1/explain?debug=trace", req)
	if got := resp.Header.Get("X-Certa-Memoized"); got != "false" {
		t.Fatalf("X-Certa-Memoized = %q on a traced request", got)
	}
	var out ExplainResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil {
		t.Fatal("traced request came back without a trace — replayed from the memo?")
	}
	if ms := s.Stats().Backends["toy"].ResultMemo; ms.Lookups != 1 {
		t.Fatalf("traced request consulted the memo: %+v", ms)
	}
}

// TestResultMemoDisabledByDefault: Options.ResultMemo zero means no
// memo — repeats recompute and /v1/stats omits the block.
func TestResultMemoDisabledByDefault(t *testing.T) {
	s := newTestServer(t, overlapModel{}, Options{}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	req := ExplainRequest{LeftID: "l0", RightID: "r0"}
	postJSON(t, ts.URL+"/v1/explain", req)
	resp, _ := postJSON(t, ts.URL+"/v1/explain", req)
	if got := resp.Header.Get("X-Certa-Memoized"); got != "false" {
		t.Fatalf("X-Certa-Memoized = %q with the memo disabled", got)
	}
	st := s.Stats()
	if st.Memoized != 0 {
		t.Fatalf("Stats.Memoized = %d with the memo disabled", st.Memoized)
	}
	if st.Backends["toy"].ResultMemo != nil {
		t.Fatal("BackendStats.ResultMemo present with the memo disabled")
	}
}

// TestResultMemoLRUBound: the memo never holds more than capacity
// bodies and evicts in least-recently-used order, recency refreshed by
// both hits and re-puts.
func TestResultMemoLRUBound(t *testing.T) {
	m := newResultMemo(2)
	m.put("a", []byte("A"))
	m.put("b", []byte("B"))
	if _, ok := m.get("a"); !ok { // a is now most recent
		t.Fatal("a missing before capacity was reached")
	}
	m.put("c", []byte("C")) // evicts b, the coldest
	if _, ok := m.get("b"); ok {
		t.Fatal("b survived past capacity")
	}
	if body, ok := m.get("a"); !ok || string(body) != "A" {
		t.Fatalf("a = %q, %v after eviction of b", body, ok)
	}
	m.put("a", []byte("ignored")) // re-put refreshes recency, keeps bytes
	m.put("d", []byte("D"))       // evicts c
	if _, ok := m.get("c"); ok {
		t.Fatal("c survived though a was refreshed ahead of it")
	}
	if body, ok := m.get("a"); !ok || string(body) != "A" {
		t.Fatalf("re-put replaced a's body: %q, %v", body, ok)
	}
	lookups, hits, entries := m.stats()
	if entries != 2 {
		t.Fatalf("entries = %d, want 2", entries)
	}
	if lookups != 5 || hits != 3 {
		t.Fatalf("lookups, hits = %d, %d, want 5, 3", lookups, hits)
	}
}

// TestResultMemoNilSafe: a disabled memo is a nil pointer; every method
// must tolerate it.
func TestResultMemoNilSafe(t *testing.T) {
	var m *resultMemo
	if _, ok := m.get("k"); ok {
		t.Fatal("nil memo reported a hit")
	}
	m.put("k", []byte("v"))
	if lookups, hits, entries := m.stats(); lookups != 0 || hits != 0 || entries != 0 {
		t.Fatal("nil memo reported nonzero stats")
	}
}

// TestResultMemoBatchItems: batch items share the memo with single
// requests — a batch repeating an answered pair replays its body.
func TestResultMemoBatchItems(t *testing.T) {
	s := newTestServer(t, overlapModel{}, Options{ResultMemo: 8}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, single := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l0", RightID: "r0"})

	resp, body := postJSON(t, ts.URL+"/v1/explain/batch", BatchRequest{
		Requests: []ExplainRequest{{LeftID: "l0", RightID: "r0"}, {LeftID: "l1", RightID: "r1"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	item0, err := json.Marshal(out.Responses[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(single), bytes.TrimSpace(item0)) {
		t.Fatalf("batch item differs from the memoized single body:\n%s\n%s", single, item0)
	}
	if got := s.Stats().Memoized; got != 1 {
		t.Fatalf("Stats.Memoized = %d after a batch repeat, want 1", got)
	}
}

// TestResultMemoConcurrentRepeats: hammering one pair from many
// goroutines with the memo enabled stays race-free and byte-stable
// (exercised under -race in CI).
func TestResultMemoConcurrentRepeats(t *testing.T) {
	s := newTestServer(t, overlapModel{}, Options{ResultMemo: 4}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, want := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l0", RightID: "r0"})
	post := func() ([]byte, error) {
		resp, err := http.Post(ts.URL+"/v1/explain", "application/json",
			bytes.NewReader([]byte(`{"left_id":"l0","right_id":"r0"}`)))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		if _, err := out.ReadFrom(resp.Body); err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %d: %s", resp.StatusCode, out.Bytes())
		}
		return out.Bytes(), nil
	}
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 4; i++ {
				got, err := post()
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(want, got) {
					errs <- fmt.Errorf("concurrent repeat diverged:\n%s\n%s", want, got)
					return
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

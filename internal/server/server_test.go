package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"certa/internal/core"
	"certa/internal/record"
	"certa/internal/scorecache"
)

// testSources builds two small product-like sources whose paired rows
// (l<i>, r<i>) share tokens, so a token-overlap model separates matches
// from non-matches and CERTA finds real triangles — no training needed.
func testSources(n int) (*record.Table, *record.Table) {
	schema := record.MustSchema("S", "name", "desc", "price")
	left := record.NewTable(schema)
	right := record.NewTable(schema)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("widget%d alpha%d", i, i%5)
		desc := fmt.Sprintf("desc%d common%d filler%d", i, i%3, i%7)
		price := fmt.Sprintf("%d", 10+i)
		left.MustAdd(record.MustNew(fmt.Sprintf("l%d", i), schema, name, desc, price))
		right.MustAdd(record.MustNew(fmt.Sprintf("r%d", i), schema, name+" extra", desc, price))
	}
	return left, right
}

// overlapModel scores by token Jaccard overlap — deterministic, cheap,
// and monotone enough for the lattice walk to flip predictions.
type overlapModel struct{}

func (overlapModel) Name() string { return "overlap" }

func (overlapModel) Score(p record.Pair) float64 {
	toks := func(r *record.Record) map[string]bool {
		out := make(map[string]bool)
		for _, v := range r.Values {
			for _, t := range strings.Fields(v) {
				out[t] = true
			}
		}
		return out
	}
	a, b := toks(p.Left), toks(p.Right)
	inter := 0
	for t := range a {
		if b[t] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// gatedModel blocks every scoring batch until the gate opens, so tests
// can hold N requests in flight deterministically.
type gatedModel struct {
	overlapModel
	gate chan struct{}
}

func (m *gatedModel) ScoreBatchContext(ctx context.Context, pairs []record.Pair) ([]float64, error) {
	select {
	case <-m.gate:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		out[i] = m.Score(p)
	}
	return out, nil
}

func (m *gatedModel) ScoreBatch(pairs []record.Pair) []float64 {
	out, err := m.ScoreBatchContext(context.Background(), pairs)
	if err != nil {
		panic(err)
	}
	return out
}

// newTestServer builds a single-backend server over the synthetic
// sources.
func newTestServer(t *testing.T, model interface {
	Name() string
	Score(record.Pair) float64
}, opts Options, svc *scorecache.Service) *Server {
	t.Helper()
	left, right := testSources(24)
	var pairs []record.Pair
	for i := 0; i < 4; i++ {
		pairs = append(pairs, record.Pair{Left: left.Records[i], Right: right.Records[i]})
	}
	s, err := New([]Backend{{
		Name: "toy", Left: left, Right: right, Model: model,
		Options: core.Options{Triangles: 8, Seed: 3},
		Pairs:   pairs,
		Service: svc,
	}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestExplainEndpoint(t *testing.T) {
	s := newTestServer(t, overlapModel{}, Options{}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l0", RightID: "r0"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out ExplainResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("undecodable body: %v\n%s", err, body)
	}
	if out.Benchmark != "toy" || out.PairKey != "l0|r0" {
		t.Fatalf("unexpected envelope: %+v", out)
	}
	if out.Result == nil || out.Result.Saliency == nil {
		t.Fatal("response has no explanation")
	}
	if out.Result.Diag.ModelCalls == 0 {
		t.Fatal("diagnostics report zero model calls")
	}
	if got := resp.Header.Get("X-Certa-Coalesced"); got != "false" {
		t.Fatalf("X-Certa-Coalesced = %q on an uncontended request", got)
	}

	// The same pair addressed by index answers identically (modulo the
	// now-warm cache diagnostics being equal — the pipeline is
	// deterministic and fully cached, so bodies match exactly).
	idx := 0
	resp2, body2 := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{PairIndex: &idx})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, body2)
	}
	if !bytes.Equal(body, body2) {
		t.Fatalf("pair_index body differs from left_id/right_id body:\n%s\n%s", body, body2)
	}
}

func TestExplainRequestValidation(t *testing.T) {
	s := newTestServer(t, overlapModel{}, Options{}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty", `{}`, http.StatusBadRequest},
		{"unknown benchmark", `{"benchmark":"nope","left_id":"l0","right_id":"r0"}`, http.StatusNotFound},
		{"unknown record", `{"left_id":"zzz","right_id":"r0"}`, http.StatusBadRequest},
		{"half ids", `{"left_id":"l0"}`, http.StatusBadRequest},
		{"index out of range", `{"pair_index":99}`, http.StatusBadRequest},
		{"unknown field", `{"left_id":"l0","right_id":"r0","bogus":1}`, http.StatusBadRequest},
		{"malformed json", `{`, http.StatusBadRequest},
		{"wrong value count", `{"left":{"values":["a"]},"right":{"values":["a","b","c"]}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/explain", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func TestOversizedBodyReturns413(t *testing.T) {
	s := newTestServer(t, overlapModel{}, Options{MaxBodyBytes: 64}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	big := `{"left_id":"l0","right_id":"r0","benchmark":"` + strings.Repeat("x", 128) + `"}`
	resp, err := http.Post(ts.URL+"/v1/explain", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestAmbiguousBackendReturns400(t *testing.T) {
	left, right := testSources(8)
	s, err := New([]Backend{
		{Name: "a", Left: left, Right: right, Model: overlapModel{}},
		{Name: "b", Left: left, Right: right, Model: overlapModel{}},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	// No benchmark named against two backends: a fixable request defect
	// (400), not a missing resource (404).
	resp, err := http.Post(ts.URL+"/v1/explain", "application/json",
		strings.NewReader(`{"left_id":"l0","right_id":"r0"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestInlinePairExplanation(t *testing.T) {
	s := newTestServer(t, overlapModel{}, Options{}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	req := ExplainRequest{
		Left:  &WireRecord{ID: "q1", Values: []string{"widget0 alpha0", "desc0 common0 filler0", "10"}},
		Right: &WireRecord{Values: []string{"widget0 alpha0 extra", "desc0 common0 filler0", "10"}},
	}
	resp, body := postJSON(t, ts.URL+"/v1/explain", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out ExplainResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Result == nil {
		t.Fatal("no result for inline pair")
	}
}

// TestCoalescingSharesOneComputation is the end-to-end acceptance test:
// N concurrent identical requests against a cold server run exactly one
// explanation computation and receive byte-identical JSON bodies.
func TestCoalescingSharesOneComputation(t *testing.T) {
	const n = 8
	gm := &gatedModel{gate: make(chan struct{})}
	s := newTestServer(t, gm, Options{MaxInFlight: 2}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	bodies := make([][]byte, n)
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l1", RightID: "r1"})
			statuses[i] = resp.StatusCode
			bodies[i] = body
		}(i)
	}

	// Wait until all n requests have attached to the single in-flight
	// call, then open the gate.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.coal.mu.Lock()
		refs := 0
		for _, c := range s.coal.calls {
			c.mu.Lock()
			refs += c.refs
			c.mu.Unlock()
		}
		calls := len(s.coal.calls)
		s.coal.mu.Unlock()
		if calls == 1 && refs == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("requests never coalesced: %d calls, %d refs", calls, refs)
		}
		time.Sleep(time.Millisecond)
	}
	close(gm.gate)
	wg.Wait()

	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs:\n%s\n%s", i, bodies[i], bodies[0])
		}
	}
	st := s.Stats()
	if st.Served != 1 {
		t.Fatalf("server ran %d computations for %d identical requests, want exactly 1", st.Served, n)
	}
	if st.Coalesced != n-1 {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, n-1)
	}
}

// TestSnapshotRestartServesWarm is the persistence half of the
// acceptance test: a server restarted from a snapshot answers the same
// request with shared-cache hits and zero model invocations, and the
// response body is byte-identical to the original server's.
func TestSnapshotRestartServesWarm(t *testing.T) {
	s1 := newTestServer(t, overlapModel{}, Options{}, nil)
	ts1 := httptest.NewServer(s1)
	defer ts1.Close()

	req := ExplainRequest{LeftID: "l2", RightID: "r2"}
	resp, coldBody := postJSON(t, ts1.URL+"/v1/explain", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold request: status %d: %s", resp.StatusCode, coldBody)
	}

	svc1, _ := s1.CacheService("toy")
	var snap bytes.Buffer
	if _, err := s1.Snapshot("toy", &snap); err != nil {
		t.Fatal(err)
	}
	if svc1.Stats().Misses == 0 {
		t.Fatal("cold run paid no model calls; snapshot test is vacuous")
	}

	// "Restart": a brand-new server whose service is restored from the
	// snapshot.
	restored := scorecache.NewService(overlapModel{}, scorecache.ServiceOptions{})
	if _, err := restored.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	s2 := newTestServer(t, overlapModel{}, Options{}, restored)
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()

	resp2, warmBody := postJSON(t, ts2.URL+"/v1/explain", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm request: status %d: %s", resp2.StatusCode, warmBody)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatalf("warm body differs from cold body:\n%s\n%s", coldBody, warmBody)
	}
	st := restored.Stats()
	if st.Hits == 0 {
		t.Fatal("restored service answered with zero shared-cache hits")
	}
	if st.Misses != 0 {
		t.Fatalf("restored service still invoked the model %d times", st.Misses)
	}
}

func TestAdmissionOverloadReturns429(t *testing.T) {
	gm := &gatedModel{gate: make(chan struct{})}
	s := newTestServer(t, gm, Options{MaxInFlight: 1, MaxQueue: 1}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Request 1 takes the slot (blocked at the gate), request 2 queues.
	results := make(chan int, 2)
	for i, pair := range [][2]string{{"l0", "r0"}, {"l1", "r1"}} {
		go func(l, r string) {
			resp, _ := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: l, RightID: r})
			results <- resp.StatusCode
		}(pair[0], pair[1])
		// Wait for the occupancy to reach this request before sending the
		// next, so the arrival order is deterministic.
		deadline := time.Now().Add(10 * time.Second)
		for {
			inflight, queued, _, _ := s.adm.snapshot()
			if inflight+queued == i+1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("admission never reached occupancy %d", i+1)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Request 3 finds slot and queue full: immediate 429 with Retry-After.
	resp, body := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l3", RightID: "r3"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(gm.gate)
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("queued request finished with status %d", code)
		}
	}
	if st := s.Stats(); st.Rejected != 1 || st.Served != 2 {
		t.Fatalf("stats = served %d, rejected %d; want 2, 1", st.Served, st.Rejected)
	}
}

func TestBatchEndpoint(t *testing.T) {
	s := newTestServer(t, overlapModel{}, Options{}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Two identical items (coalesce), one distinct, one invalid.
	req := BatchRequest{Requests: []ExplainRequest{
		{LeftID: "l0", RightID: "r0"},
		{LeftID: "l0", RightID: "r0"},
		{LeftID: "l1", RightID: "r1", DeadlineMS: 5000},
		{LeftID: "nope", RightID: "r0"},
	}}
	resp, body := postJSON(t, ts.URL+"/v1/explain/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Responses) != 4 {
		t.Fatalf("%d responses for 4 requests", len(out.Responses))
	}
	for i := 0; i < 3; i++ {
		if out.Responses[i].Error != "" || out.Responses[i].Result == nil {
			t.Fatalf("item %d failed: %+v", i, out.Responses[i])
		}
	}
	if out.Responses[0].PairKey != "l0|r0" || out.Responses[2].PairKey != "l1|r1" {
		t.Fatalf("responses misaligned: %+v", out.Responses)
	}
	if out.Responses[3].Error == "" {
		t.Fatal("invalid item reported no error")
	}
}

func TestCoalesceKeyRespectsIdentityAndOptions(t *testing.T) {
	left, right := testSources(4)
	p := record.Pair{Left: left.Records[0], Right: right.Records[0]}
	base := coalesceKey("toy", knobs{}, p)

	// Same content addressed under different record IDs must not share a
	// body: the response embeds pair_key and record ids.
	otherID := record.Pair{
		Left:  record.MustNew("elsewhere", p.Left.Schema, p.Left.Values...),
		Right: p.Right,
	}
	if coalesceKey("toy", knobs{}, otherID) == base {
		t.Fatal("different record IDs coalesced onto one response body")
	}
	// Different engine knobs compute different explanations.
	if coalesceKey("toy", knobs{callBudget: 10}, p) == base ||
		coalesceKey("toy", knobs{deadlineMS: 10}, p) == base ||
		coalesceKey("toy", knobs{augmentBudget: 10}, p) == base ||
		coalesceKey("toy", knobs{topK: 1}, p) == base ||
		coalesceKey("toy", knobs{pruneThreshold: 0.5}, p) == base ||
		coalesceKey("toy", knobs{pruneThreshold: 0.5, pruneMinLevels: 3}, p) ==
			coalesceKey("toy", knobs{pruneThreshold: 0.5}, p) {
		t.Fatal("different knobs coalesced onto one response body")
	}
	// The identical request does share.
	if coalesceKey("toy", knobs{}, p) != base {
		t.Fatal("identical requests produced different coalesce keys")
	}
}

// TestLatticePruneKnob exercises the lattice_prune request knob end to
// end: a pruned request must succeed, report the skipped questions in
// diagnostics, and ask no more lattice questions than the exact run of
// the same pair.
func TestLatticePruneKnob(t *testing.T) {
	s := newTestServer(t, overlapModel{}, Options{}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	exact, exactBody := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l0", RightID: "r0"})
	pruned, prunedBody := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{
		LeftID: "l0", RightID: "r0",
		LatticePrune: &WirePrunePolicy{Threshold: 0.25, MinLevels: 1},
	})
	if exact.StatusCode != 200 || pruned.StatusCode != 200 {
		t.Fatalf("statuses %d/%d: %s / %s", exact.StatusCode, pruned.StatusCode, exactBody, prunedBody)
	}
	var exactOut, prunedOut ExplainResponse
	if err := json.Unmarshal(exactBody, &exactOut); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(prunedBody, &prunedOut); err != nil {
		t.Fatal(err)
	}
	if exactOut.Result.Diag.PrunedQueries != 0 {
		t.Fatalf("exact request reported %d pruned queries", exactOut.Result.Diag.PrunedQueries)
	}
	if prunedOut.Result.Diag.PrunedQueries == 0 {
		t.Fatal("threshold-0.25 request pruned nothing; the knob did not reach the engine")
	}
	if prunedOut.Result.Diag.LatticeQueries > exactOut.Result.Diag.LatticeQueries {
		t.Fatalf("pruned run asked more questions (%d) than exact (%d)",
			prunedOut.Result.Diag.LatticeQueries, exactOut.Result.Diag.LatticeQueries)
	}
}

func TestTopKShapesResponse(t *testing.T) {
	s := newTestServer(t, overlapModel{}, Options{}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	full, fullBody := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l0", RightID: "r0"})
	shaped, shapedBody := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l0", RightID: "r0", TopK: 2})
	if full.StatusCode != 200 || shaped.StatusCode != 200 {
		t.Fatalf("statuses %d/%d", full.StatusCode, shaped.StatusCode)
	}
	var fullOut, shapedOut ExplainResponse
	if err := json.Unmarshal(fullBody, &fullOut); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(shapedBody, &shapedOut); err != nil {
		t.Fatal(err)
	}
	if len(fullOut.Result.Saliency.Scores) != 6 {
		t.Fatalf("full response has %d saliency entries, want 6", len(fullOut.Result.Saliency.Scores))
	}
	if len(shapedOut.Result.Saliency.Scores) != 2 {
		t.Fatalf("top_k=2 response has %d saliency entries", len(shapedOut.Result.Saliency.Scores))
	}
	if len(shapedOut.Result.Counterfactuals) > 2 {
		t.Fatalf("top_k=2 response has %d counterfactuals", len(shapedOut.Result.Counterfactuals))
	}
}

// panickyModel simulates an engine bug reachable from a request.
type panickyModel struct{ overlapModel }

func (panickyModel) ScoreBatch(pairs []record.Pair) []float64 {
	panic("injected model bug")
}

func TestComputationPanicIsContained(t *testing.T) {
	// The coalesced computation runs outside net/http's per-request
	// recovery; an engine panic must become that request's 500, not kill
	// the process (and with it every other request and the unsnapshotted
	// cache).
	s := newTestServer(t, panickyModel{}, Options{}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l0", RightID: "r0"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "panicked") {
		t.Fatalf("error body does not surface the panic: %s", body)
	}
	if st := s.Stats(); st.Errors != 1 {
		t.Fatalf("Errors = %d after a panicked computation", st.Errors)
	}
	// The server survived.
	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d after contained panic", hresp.StatusCode)
	}
}

func TestHealthzAndStats(t *testing.T) {
	s := newTestServer(t, overlapModel{}, Options{}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || len(health.Backends) != 1 || health.Backends[0] != "toy" {
		t.Fatalf("healthz = %+v", health)
	}

	postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l0", RightID: "r0"})

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Served != 1 {
		t.Fatalf("stats.Served = %d", stats.Served)
	}
	b, ok := stats.Backends["toy"]
	if !ok || b.Misses == 0 || b.Entries == 0 {
		t.Fatalf("backend stats = %+v", stats.Backends)
	}
	// The candidate retrieval index is built at server construction and
	// must be visible in the stats document.
	if b.Index == nil {
		t.Fatal("backend stats expose no candidate index section")
	}
	if b.Index.Records != 48 || b.Index.DistinctTokens == 0 || b.Index.BuildMS <= 0 {
		t.Fatalf("index stats = %+v, want 48 records, tokens > 0, build_ms > 0", b.Index)
	}
}

// TestDisableIndexBackendUsesScanSources pins the ablation wiring: a
// backend configured with DisableIndex must serve through scan sources
// — and therefore report no index section in its stats.
func TestDisableIndexBackendUsesScanSources(t *testing.T) {
	left, right := testSources(8)
	s, err := New([]Backend{{
		Name: "toy", Left: left, Right: right, Model: overlapModel{},
		Options: core.Options{Triangles: 4, Seed: 3, DisableIndex: true},
	}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l0", RightID: "r0"})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if b := s.Stats().Backends["toy"]; b.Index != nil {
		t.Fatalf("DisableIndex backend reports index stats %+v", *b.Index)
	}
}

// TestAugmentBudgetKnob checks the per-request augment_budget override
// reaches the engine: on a forced-augmentation SeedSearch backend (the
// blind shuffle needs many attempts, so the attempt budget genuinely
// binds) an absurdly small budget must strictly reduce the search work.
func TestAugmentBudgetKnob(t *testing.T) {
	left, right := testSources(24)
	s, err := New([]Backend{{
		Name: "toy", Left: left, Right: right, Model: overlapModel{},
		Options: core.Options{Triangles: 8, Seed: 3, ForceAugmentation: true, SeedSearch: true},
	}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, defBody := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l0", RightID: "r1"})
	if resp.StatusCode != 200 {
		t.Fatalf("default request: status %d: %s", resp.StatusCode, defBody)
	}
	resp, tinyBody := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l0", RightID: "r1", AugmentBudget: 1})
	if resp.StatusCode != 200 {
		t.Fatalf("tiny-budget request: status %d: %s", resp.StatusCode, tinyBody)
	}
	var def, tiny ExplainResponse
	if err := json.Unmarshal(defBody, &def); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(tinyBody, &tiny); err != nil {
		t.Fatal(err)
	}
	if tiny.Result.Diag.TriangleSearchCalls >= def.Result.Diag.TriangleSearchCalls {
		t.Fatalf("augment_budget=1 spent %d search calls, default spent %d — the knob did not reach the engine",
			tiny.Result.Diag.TriangleSearchCalls, def.Result.Diag.TriangleSearchCalls)
	}
}

// TestSnapshotEndpointStreamsRestorableCache: GET /v1/snapshot returns
// the score cache in the binary snapshot format, restorable into a
// fresh service over HTTP — the donor side of cluster warm bring-up.
// An unknown benchmark name is a 404 with the usual error body.
func TestSnapshotEndpointStreamsRestorableCache(t *testing.T) {
	s := newTestServer(t, overlapModel{}, Options{Name: "donor"}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	idx := 0
	if resp, body := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{PairIndex: &idx}); resp.StatusCode != 200 {
		t.Fatalf("warming request: status %d: %s", resp.StatusCode, body)
	}
	svc, _ := s.CacheService("toy")
	if svc.Len() == 0 {
		t.Fatal("nothing cached; snapshot endpoint test is vacuous")
	}

	resp, err := http.Get(ts.URL + "/v1/snapshot?benchmark=toy")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/snapshot: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("snapshot Content-Type = %q", ct)
	}
	if bk := resp.Header.Get("X-Certa-Backend"); bk != "toy" {
		t.Fatalf("X-Certa-Backend = %q, want %q", bk, "toy")
	}
	restored := scorecache.NewService(overlapModel{}, scorecache.ServiceOptions{})
	n, err := restored.Restore(resp.Body)
	if err != nil {
		t.Fatalf("restoring streamed snapshot: %v", err)
	}
	if n != svc.Len() {
		t.Fatalf("restored %d entries over HTTP, donor holds %d", n, svc.Len())
	}

	// Stats carry the worker name for ring aggregation.
	var st StatsResponse
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Worker != "donor" {
		t.Fatalf("stats.worker = %q, want %q", st.Worker, "donor")
	}

	badResp, err := http.Get(ts.URL + "/v1/snapshot?benchmark=nope")
	if err != nil {
		t.Fatal(err)
	}
	defer badResp.Body.Close()
	if badResp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown benchmark snapshot: status %d, want 404", badResp.StatusCode)
	}
}

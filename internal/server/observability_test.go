package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"certa/internal/telemetry"
)

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsEndpoint drives one explanation and asserts the scrape
// covers every series group the catalog promises: serving counters,
// admission gauges, per-backend cache/memo/index bridges, and the
// latency histograms fed by the per-computation trace.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, overlapModel{}, Options{}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l0", RightID: "r0"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	text := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		// Exact values: one request was served, none coalesced.
		`certa_explanations_served_total 1`,
		`certa_requests_coalesced_total 0`,
		`certa_backend_requests_total{backend="toy"} 1`,
		`certa_explain_duration_seconds_count{backend="toy"} 1`,
		`certa_http_request_duration_seconds_count{endpoint="/v1/explain"} 1`,
		// Presence: gauges and bridged engine-side counters.
		`certa_uptime_seconds `,
		`certa_admission_in_flight 0`,
		`certa_admission_queue_high_water 0`,
		`certa_score_cache_lookups_total{backend="toy"}`,
		`certa_flip_memo_lookups_total{backend="toy"}`,
		`certa_index_records{backend="toy"}`,
		// Stage histograms fed from the trace: the engine stages must
		// have produced series.
		`certa_stage_duration_seconds_count{backend="toy",stage="triangles"} 1`,
		`certa_stage_duration_seconds_count{backend="toy",stage="counterfactuals"} 1`,
		`certa_stage_duration_seconds_count{backend="toy",stage="model"}`,
		`# TYPE certa_explain_duration_seconds histogram`,
		`# TYPE certa_explanations_served_total counter`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape is missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", text)
	}
}

// TestDebugTraceKnob asserts ?debug=trace embeds the span tree and —
// the load-bearing half — that tracing never changes the Result: the
// traced and untraced result documents are byte-identical.
func TestDebugTraceKnob(t *testing.T) {
	s := newTestServer(t, overlapModel{}, Options{}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, plainBody := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l0", RightID: "r0"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, plainBody)
	}
	resp, tracedBody := postJSON(t, ts.URL+"/v1/explain?debug=trace", ExplainRequest{LeftID: "l0", RightID: "r0"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced status %d: %s", resp.StatusCode, tracedBody)
	}
	if resp.Header.Get("X-Certa-Request-Id") == "" {
		t.Error("no X-Certa-Request-Id header")
	}

	var plain, traced ExplainResponse
	if err := json.Unmarshal(plainBody, &plain); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(tracedBody, &traced); err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Error("untraced response carries a span tree")
	}
	if traced.Trace == nil {
		t.Fatal("?debug=trace response has no span tree")
	}
	if traced.Trace.Name != "explain" || traced.Trace.DurationMS <= 0 {
		t.Errorf("root span = %+v", traced.Trace)
	}
	stages := make(map[string]bool)
	var walk func(sp *telemetry.WireSpan)
	walk = func(sp *telemetry.WireSpan) {
		stages[sp.Name] = true
		for _, c := range sp.Children {
			walk(c)
		}
	}
	walk(traced.Trace)
	// The warm-cache stages: this is the pair's second explanation, so
	// model-call spans may be absent — the structural stages and the
	// memo lookups are always there.
	for _, want := range []string{"original_score", "triangles", "counterfactuals", "memo"} {
		if !stages[want] {
			t.Errorf("span tree has no %q span (got %v)", want, stages)
		}
	}

	// Byte-identity with tracing on: the trace rides outside the result.
	pr, err := json.Marshal(plain.Result)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := json.Marshal(traced.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pr, tr) {
		t.Errorf("traced result differs from untraced result:\n%s\n%s", pr, tr)
	}
}

// TestRequestLogging asserts Options.Logger receives one structured
// summary line per request, joined to the response by request ID and
// carrying the stage breakdown for computation leaders.
func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	s := newTestServer(t, overlapModel{}, Options{Logger: logger}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l0", RightID: "r0"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	reqID := resp.Header.Get("X-Certa-Request-Id")
	if reqID == "" {
		t.Fatal("no X-Certa-Request-Id header")
	}
	line := buf.String()
	for _, want := range []string{
		"msg=explain",
		"req_id=" + reqID,
		"backend=toy",
		"pair=l0|r0",
		"status=200",
		"coalesced=false",
		"stages=",
		"triangles=",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("log line is missing %q:\n%s", want, line)
		}
	}
}

package server

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"
)

// errOverloaded is returned by admission.acquire when both the in-flight
// limit and the queue are full; handlers translate it into 429 with a
// Retry-After estimate.
var errOverloaded = errors.New("server: overloaded (in-flight limit and queue full)")

// ticket is one queued computation waiting for an in-flight slot.
type ticket struct {
	ready chan struct{} // closed when a slot is handed to this ticket
}

// admission is the server's admission controller: at most max
// explanations compute concurrently, at most maxQueue more wait in a
// FIFO queue, and everything beyond that is rejected immediately so
// overload turns into fast 429s instead of unbounded latency. Slots are
// handed to queued tickets in arrival order (fair FIFO dispatch):
// release passes the slot directly to the head waiter, so a burst of
// arrivals cannot starve an early one.
//
// The controller also keeps an exponentially-weighted moving average of
// explanation latency, which prices the Retry-After hint on rejections.
type admission struct {
	mu       sync.Mutex
	max      int
	maxQueue int
	inflight int
	queue    []*ticket
	// highWater is the deepest the queue has ever been — the signal
	// (exported via /v1/stats and /v1/metrics) that MaxQueue is sized
	// too tight even when the instantaneous depth looks calm.
	highWater int
	ewmaMS    float64
}

// newAdmission builds the controller; callers pass already-defaulted
// bounds (Options.withDefaults), both ≥ 1.
func newAdmission(max, maxQueue int) *admission {
	return &admission{max: max, maxQueue: maxQueue}
}

// acquire blocks until an in-flight slot is granted, the queue overflows
// (errOverloaded) or ctx is cancelled (ctx.Err()). Callers that receive
// nil must call release exactly once.
func (a *admission) acquire(ctx context.Context) error {
	a.mu.Lock()
	if a.inflight < a.max {
		a.inflight++
		a.mu.Unlock()
		return nil
	}
	if len(a.queue) >= a.maxQueue {
		a.mu.Unlock()
		return errOverloaded
	}
	t := &ticket{ready: make(chan struct{})}
	a.queue = append(a.queue, t)
	if len(a.queue) > a.highWater {
		a.highWater = len(a.queue)
	}
	a.mu.Unlock()

	select {
	case <-t.ready:
		return nil
	case <-ctx.Done():
	}
	// Cancelled while queued — but release may have handed us the slot in
	// the same instant. Settle under the lock: if the slot arrived, pass
	// it on (or free it); otherwise leave the queue, so dead tickets
	// don't occupy capacity and cause spurious 429s.
	a.mu.Lock()
	select {
	case <-t.ready:
		a.releaseLocked()
		a.mu.Unlock()
		return ctx.Err()
	default:
	}
	for i, q := range a.queue {
		if q == t {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			break
		}
	}
	a.mu.Unlock()
	return ctx.Err()
}

// release returns an in-flight slot, handing it to the oldest live
// queued ticket if any.
func (a *admission) release() {
	a.mu.Lock()
	a.releaseLocked()
	a.mu.Unlock()
}

func (a *admission) releaseLocked() {
	// A cancelled waiter removes its own ticket under the lock, so every
	// queued ticket is live.
	if len(a.queue) > 0 {
		t := a.queue[0]
		a.queue = a.queue[1:]
		close(t.ready) // slot transfers; inflight count unchanged
		return
	}
	a.inflight--
}

// observe folds one completed explanation's latency into the EWMA.
func (a *admission) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	a.mu.Lock()
	if a.ewmaMS == 0 {
		a.ewmaMS = ms
	} else {
		const alpha = 0.2
		a.ewmaMS = alpha*ms + (1-alpha)*a.ewmaMS
	}
	a.mu.Unlock()
}

// retryAfterSeconds estimates how long a rejected client should back off:
// the time for the current queue (plus itself) to drain through the
// in-flight slots at the observed per-explanation latency, at least 1s.
func (a *admission) retryAfterSeconds() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	ewma := a.ewmaMS
	if ewma == 0 {
		ewma = 1000 // no completions observed yet; guess a second
	}
	secs := int(math.Ceil(float64(len(a.queue)+1) * ewma / float64(a.max) / 1000))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// snapshot reports the controller's instantaneous occupancy plus the
// queue-depth high-water mark.
func (a *admission) snapshot() (inflight, queued, highWater int, ewmaMS float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight, len(a.queue), a.highWater, a.ewmaMS
}

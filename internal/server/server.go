// Package server is the explanation-serving subsystem: an HTTP JSON API
// over the CERTA engine, built for the serving-scale deployment the
// batched pipeline (PR 1), the shared scoring service (PR 2) and the
// anytime budgets (PR 3) were preparing for.
//
// A Server hosts one or more backends — a (sources, model) pair with one
// long-lived shared scorecache.Service each — and exposes:
//
//	POST /v1/explain        one explanation (?debug=trace returns the span tree)
//	POST /v1/explain/batch  many, admitted and coalesced individually
//	GET  /v1/healthz        liveness
//	GET  /v1/stats          admission + coalescing + cache counters (JSON)
//	GET  /v1/snapshot       the score cache in snapshot format (cluster warm bring-up)
//	GET  /v1/metrics        the same state as Prometheus text exposition
//
// Three serving layers sit between the HTTP surface and the engine:
//
//   - Admission control: at most Options.MaxInFlight explanations
//     compute concurrently; at most Options.MaxQueue more wait in a fair
//     FIFO queue; beyond that requests are rejected with 429 and a
//     Retry-After priced from observed latency, so overload degrades
//     into fast rejections instead of unbounded queueing.
//   - Request coalescing: identical in-flight requests — same backend,
//     same canonical pair content, same anytime options — attach to one
//     computation and receive byte-identical response bodies
//     (singleflight one layer above the score cache, which already
//     deduplicates individual model calls).
//   - Cancellation propagation: a dropped client connection detaches
//     the request; when the last request interested in a computation
//     detaches, its context is cancelled and the explanation aborts at
//     the next scoring checkpoint. Per-request deadline_ms/call_budget
//     knobs map onto the anytime Options and truncate instead.
//
// Observability cuts across all three: every computation runs under a
// telemetry.Trace whose per-stage wall times feed the
// certa_stage_duration_seconds histograms and the structured request
// log (Options.Logger), and every ad-hoc counter the server keeps —
// admission occupancy, coalesce hits, score-cache and flip-memo rates,
// embedding-store hits, index build time — is published as a named
// series in Options.Metrics (internal/telemetry). Timing is strictly a
// side channel: it never reaches core.Diagnostics or any Result, so
// the byte-identity contracts hold with tracing on.
//
// Backends can be handed a scorecache.Service restored from a snapshot
// (Service.Restore), and the server's cache can be written back out with
// Server.Snapshot — the persistence path cmd/certa-serve wires to
// -cache-file so restarts serve warm.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"certa/internal/core"
	"certa/internal/embedding"
	"certa/internal/explain"
	"certa/internal/lattice"
	"certa/internal/neighborhood"
	"certa/internal/record"
	"certa/internal/scorecache"
	"certa/internal/telemetry"
	"certa/internal/workpool"
)

// Options tunes the serving layers.
type Options struct {
	// Name identifies this serving process in /v1/stats ("worker"). A
	// cluster router uses it to label per-worker rows in its aggregated
	// ring stats; standalone servers may leave it empty.
	Name string
	// MaxInFlight bounds concurrently computing explanations (default 4).
	MaxInFlight int
	// MaxQueue bounds explanations waiting for an in-flight slot
	// (default 16× MaxInFlight). Requests beyond it get 429.
	MaxQueue int
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Logger receives the structured request log: one summary line per
	// explanation request (request ID, backend, status, duration, and —
	// for the request that led the computation — the per-stage
	// breakdown). Nil discards log output.
	Logger *slog.Logger
	// Metrics is the registry backing GET /v1/metrics; the server
	// registers every series it publishes there at construction. Nil
	// gets a fresh private registry, so embedded servers (tests) never
	// collide; the daemons pass telemetry.Default to share one scrape
	// surface with their other instrumentation.
	Metrics *telemetry.Registry
	// ResultMemo bounds the per-backend memo of rendered response
	// bodies (entries; 0 disables). A repeat of an already-answered
	// deterministic request is served its byte-identical body from the
	// memo — coalescing extended across time — without an admission
	// slot or any engine work. Requests carrying deadline_ms are never
	// memoized (their truncation point is wall-clock dependent), and
	// ?debug=trace requests bypass the memo like they bypass
	// coalescing. In a sharded ring every worker holds the memo slice
	// for its shard of the keyspace, so aggregate memo capacity grows
	// with the worker count.
	ResultMemo int
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 16 * o.MaxInFlight
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	if o.Metrics == nil {
		o.Metrics = telemetry.NewRegistry()
	}
	return o
}

// Backend configures one served (sources, model) pair.
type Backend struct {
	// Name addresses the backend in requests ("benchmark" field).
	Name string
	// Left and Right are the two sources explanations draw support
	// records from.
	Left, Right *record.Table
	// Model is the classifier being explained.
	Model explain.Model
	// Options are the base explainer options (Triangles, Seed,
	// Parallelism...). Per-request knobs overlay CallBudget, Deadline,
	// AugmentBudget and LatticePrune; Shared is overwritten with the backend's
	// long-lived service. When Retrieval is nil, the backend builds its
	// candidate index at server construction and reports it in
	// /v1/stats.
	Options core.Options
	// Pairs optionally registers an addressable workload (pair_index
	// requests) — typically a benchmark's test split.
	Pairs []record.Pair
	// Service optionally injects a pre-built scoring service, e.g. one
	// restored from a snapshot. When nil a fresh service is created with
	// the backend's Parallelism.
	Service *scorecache.Service
	// RestoredEntries reports (for /v1/stats) how many entries Service
	// started with when it was restored from a snapshot.
	RestoredEntries int
}

// backend is the resolved runtime form.
type backend struct {
	name        string
	left, right *record.Table
	model       explain.Model
	opts        core.Options
	pairs       []record.Pair
	svc         *scorecache.Service
	restored    int
	// memo replays rendered response bodies for repeat deterministic
	// requests (nil when Options.ResultMemo is 0).
	memo *resultMemo

	// requests counts explanation requests routed to this backend
	// (coalesced joiners included); errors the ones that failed after
	// routing. Both feed /v1/stats and the certa_backend_*_total series.
	requests atomic.Int64
	errors   atomic.Int64
	// latency is the certa_explain_duration_seconds{backend=...} series:
	// per-computation latency, admission wait excluded.
	latency *telemetry.Histogram
}

// Server is the HTTP explanation-serving subsystem. It implements
// http.Handler; plug it into any http.Server.
type Server struct {
	opts     Options
	backends map[string]*backend
	order    []string
	adm      *admission
	coal     *coalescer
	mux      *http.ServeMux
	start    time.Time
	metrics  *telemetry.Registry
	logger   *slog.Logger
	reqSeq   atomic.Int64

	// httpExplain/httpBatch are the certa_http_request_duration_seconds
	// series: whole-handler latency including admission wait and
	// coalescing, one series per endpoint.
	httpExplain *telemetry.Histogram
	httpBatch   *telemetry.Histogram

	// lifetime is the server's base context: computations are derived
	// from it so Close aborts everything in flight.
	lifetime context.Context
	stop     context.CancelFunc

	served    atomic.Int64
	coalesced atomic.Int64
	memoized  atomic.Int64
	rejected  atomic.Int64
	cancelled atomic.Int64
	errored   atomic.Int64
}

// New builds a Server over the given backends.
func New(backends []Backend, opts Options) (*Server, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("server: no backends configured")
	}
	opts = opts.withDefaults()
	lifetime, stop := context.WithCancel(context.Background())
	s := &Server{
		opts:     opts,
		backends: make(map[string]*backend, len(backends)),
		adm:      newAdmission(opts.MaxInFlight, opts.MaxQueue),
		coal:     newCoalescer(),
		mux:      http.NewServeMux(),
		start:    time.Now(),
		metrics:  opts.Metrics,
		logger:   opts.Logger,
		lifetime: lifetime,
		stop:     stop,
	}
	for _, b := range backends {
		if b.Name == "" || b.Left == nil || b.Right == nil || b.Model == nil {
			stop()
			return nil, fmt.Errorf("server: backend %q needs a name, two sources and a model", b.Name)
		}
		if _, dup := s.backends[b.Name]; dup {
			stop()
			return nil, fmt.Errorf("server: duplicate backend %q", b.Name)
		}
		svc := b.Service
		if svc == nil {
			svc = scorecache.NewService(b.Model, scorecache.ServiceOptions{
				Parallelism: b.Options.Parallelism,
			})
		} else if svc.Name() != b.Model.Name() {
			stop()
			return nil, fmt.Errorf("server: backend %q service wraps model %q, not %q",
				b.Name, svc.Name(), b.Model.Name())
		}
		// The candidate retrieval index is part of backend startup: built
		// here once (unless the caller injected a shared one) so request
		// handling streams candidates from prebuilt postings instead of
		// re-tokenizing the sources per explanation. A backend configured
		// with the DisableIndex ablation gets scan sources, which also
		// keeps the index section out of its /v1/stats.
		bopts := b.Options
		if bopts.Retrieval == nil {
			if bopts.DisableIndex {
				bopts.Retrieval = neighborhood.NewScanSources(b.Left, b.Right)
			} else {
				bopts.Retrieval = neighborhood.NewSources(b.Left, b.Right)
			}
		}
		var memo *resultMemo
		if opts.ResultMemo > 0 {
			memo = newResultMemo(opts.ResultMemo)
		}
		s.backends[b.Name] = &backend{
			name: b.Name, left: b.Left, right: b.Right, model: b.Model,
			opts: bopts, pairs: b.Pairs, svc: svc, restored: b.RestoredEntries,
			memo: memo,
		}
		s.order = append(s.order, b.Name)
	}
	s.registerMetrics()
	s.mux.HandleFunc("POST /v1/explain", s.handleExplain)
	s.mux.HandleFunc("POST /v1/explain/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	s.mux.Handle("GET /v1/metrics", s.metrics.Handler())
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close aborts every in-flight computation. Call it after the HTTP
// server has drained (http.Server.Shutdown) — and before Snapshot, so
// the snapshot sees a quiescent store.
func (s *Server) Close() { s.stop() }

// Snapshot writes the named backend's score cache in the
// scorecache.Service binary snapshot format.
func (s *Server) Snapshot(name string, w io.Writer) (int, error) {
	b, ok := s.backends[name]
	if !ok {
		return 0, fmt.Errorf("server: no backend %q", name)
	}
	return b.svc.Snapshot(w)
}

// CacheService exposes the named backend's shared scoring service (for
// instrumentation and tests).
func (s *Server) CacheService(name string) (*scorecache.Service, bool) {
	b, ok := s.backends[name]
	if !ok {
		return nil, false
	}
	return b.svc, true
}

// resolveBackend picks the requested backend, defaulting when the server
// hosts exactly one. The status distinguishes a missing resource (an
// unknown name, 404) from a malformed request (an ambiguous empty name,
// 400).
func (s *Server) resolveBackend(name string) (*backend, int, error) {
	if name == "" {
		if len(s.order) == 1 {
			return s.backends[s.order[0]], 0, nil
		}
		return nil, http.StatusBadRequest,
			fmt.Errorf("request names no benchmark and the server hosts %d", len(s.order))
	}
	b, ok := s.backends[name]
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("unknown benchmark %q (hosting %v)", name, s.order)
	}
	return b, 0, nil
}

// serveOne runs one explanation request through the result memo,
// coalescing and admission, and returns the shared response bytes. tr
// is the computation's trace when this request led it (nil for memo
// hits and joiners, whose bytes were computed under another request's
// trace, and on error) — the handler folds it into the request log
// line. Deadline-bearing requests skip the memo in both directions:
// their truncation point depends on the wall clock, so neither may a
// stale body answer them nor may their body be replayed later.
func (s *Server) serveOne(ctx context.Context, b *backend, p record.Pair, k knobs, reqID string) (body []byte, joined, memoized bool, tr *telemetry.Trace, err error) {
	key := coalesceKey(b.name, k, p)
	deterministic := k.deadlineMS == 0
	if deterministic {
		if body, ok := b.memo.get(key); ok {
			s.memoized.Add(1)
			return body, false, true, nil, nil
		}
	}
	for {
		var led *telemetry.Trace
		body, joined, err = s.coal.do(ctx, s.lifetime, key, func(compCtx context.Context) ([]byte, error) {
			out, t, cerr := s.compute(compCtx, b, p, k, reqID, false)
			led = t
			return out, cerr
		})
		if joined && errors.Is(err, context.Canceled) && ctx.Err() == nil && s.lifetime.Err() == nil {
			// We attached to a computation whose every requester had
			// disconnected just before we arrived; its cancellation is not
			// ours. Re-issue — the key has been cleared, so this caller
			// leads a fresh computation. joined deliberately resets: what
			// this request reports is how its final attempt was answered.
			continue
		}
		if joined {
			s.coalesced.Add(1)
		}
		if err == nil {
			// Reading led is safe only once the computation has delivered a
			// result (happens-before via the coalescer's result channel). On
			// a cancelled wait the closure may still be running — leave tr
			// nil rather than race.
			tr = led
			if deterministic {
				b.memo.put(key, body)
			}
		}
		return body, joined, false, tr, err
	}
}

// compute runs the explanation under an admission slot and marshals the
// shared response body. Every computation runs under a fresh
// telemetry.Trace: its stage totals feed the per-stage latency
// histograms, and — when wantTree is set (?debug=trace) — the span
// tree rides the response. Tracing is a wall-clock side channel; the
// Result bytes are identical with and without it.
func (s *Server) compute(ctx context.Context, b *backend, p record.Pair, k knobs, reqID string, wantTree bool) ([]byte, *telemetry.Trace, error) {
	if err := s.adm.acquire(ctx); err != nil {
		return nil, nil, err
	}
	defer s.adm.release()

	opts := b.opts
	opts.Shared = b.svc
	if k.callBudget > 0 {
		opts.CallBudget = k.callBudget
	}
	if k.deadlineMS > 0 {
		opts.Deadline = time.Duration(k.deadlineMS) * time.Millisecond
	}
	if k.augmentBudget > 0 {
		opts.AugmentBudget = k.augmentBudget
	}
	if k.pruneThreshold > 0 {
		opts.LatticePrune = lattice.PrunePolicy{Threshold: k.pruneThreshold, MinLevels: k.pruneMinLevels}
	}
	tr := telemetry.New()
	tr.SetRequestID(reqID)
	start := time.Now()
	res, err := core.New(b.left, b.right, opts).ExplainContext(telemetry.WithTrace(ctx, tr), b.model, p)
	if err != nil {
		return nil, nil, err
	}
	elapsed := time.Since(start)
	tr.Root().End()
	s.adm.observe(elapsed)
	s.served.Add(1)
	b.latency.Observe(elapsed.Seconds())
	s.foldStages(b, tr)

	resp := ExplainResponse{
		Benchmark: b.name,
		PairKey:   p.Key(),
		Result:    shapeTopK(res, k.topK),
	}
	if wantTree {
		resp.Trace = tr.Tree()
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, nil, fmt.Errorf("marshaling response: %w", err)
	}
	return body, tr, nil
}

// foldStages folds one computation's trace into the per-stage latency
// histograms, iterating the sorted stage names so series are touched
// in a deterministic order.
func (s *Server) foldStages(b *backend, tr *telemetry.Trace) {
	stages := tr.Stages()
	for _, name := range telemetry.StageNames(stages) {
		s.stageHist(b.name, name).Observe(stages[name].Duration.Seconds())
	}
}

// shapeTopK trims the result to the k most salient attributes and at
// most k counterfactuals. The trim is deterministic (Saliency.Ranked
// breaks ties by attribute order), so coalesced and repeated requests
// still receive byte-identical documents.
func shapeTopK(res *core.Result, k int) *core.Result {
	if k <= 0 {
		return res
	}
	shaped := *res
	if res.Saliency != nil {
		top := res.Saliency.TopK(k)
		sal := *res.Saliency
		sal.Scores = make(map[record.AttrRef]float64, len(top))
		for _, ref := range top {
			sal.Scores[ref] = res.Saliency.Scores[ref]
		}
		shaped.Saliency = &sal
	}
	if len(shaped.Counterfactuals) > k {
		shaped.Counterfactuals = shaped.Counterfactuals[:k]
	}
	return &shaped
}

// handleExplain serves POST /v1/explain. With ?debug=trace the request
// bypasses coalescing (wall times are per-computation; a shared body
// could not carry them) but still holds an admission slot, and the
// response embeds the span tree.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	reqID := s.nextRequestID()
	w.Header().Set("X-Certa-Request-Id", reqID)
	var req ExplainRequest
	if status, err := s.decode(w, r, &req); err != nil {
		s.writeError(w, status, err)
		s.logExplain(reqID, req.Benchmark, "", status, false, time.Since(start), nil, err)
		return
	}
	b, status, err := s.resolveBackend(req.Benchmark)
	if err != nil {
		s.writeError(w, status, err)
		s.logExplain(reqID, req.Benchmark, "", status, false, time.Since(start), nil, err)
		return
	}
	p, err := b.resolvePair(&req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		s.logExplain(reqID, b.name, "", http.StatusBadRequest, false, time.Since(start), nil, err)
		return
	}
	b.requests.Add(1)
	var (
		body     []byte
		joined   bool
		memoized bool
		tr       *telemetry.Trace
	)
	if r.URL.Query().Get("debug") == "trace" {
		body, tr, err = s.compute(r.Context(), b, p, req.knobs(), reqID, true)
	} else {
		body, joined, memoized, tr, err = s.serveOne(r.Context(), b, p, req.knobs(), reqID)
	}
	elapsed := time.Since(start)
	s.httpExplain.Observe(elapsed.Seconds())
	if err != nil {
		b.errors.Add(1)
		status := s.writeServeError(w, r, err)
		s.logExplain(reqID, b.name, p.Key(), status, joined, elapsed, nil, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Certa-Coalesced", strconv.FormatBool(joined))
	h.Set("X-Certa-Memoized", strconv.FormatBool(memoized))
	h.Set("X-Certa-Duration-Ms", strconv.FormatInt(elapsed.Milliseconds(), 10))
	w.Write(body)
	s.logExplain(reqID, b.name, p.Key(), http.StatusOK, joined, elapsed, tr, nil)
}

// nextRequestID mints a process-unique request ID. IDs are sequential
// rather than random: the request log and span trees join on them, and
// a monotone sequence keeps interleaved log lines sortable.
func (s *Server) nextRequestID() string {
	return "r" + strconv.FormatInt(s.reqSeq.Add(1), 10)
}

// logExplain writes the one-line structured summary of one explanation
// request. The stage breakdown appears only when this request led the
// computation: joiners reused another request's bytes and have no
// trace of their own.
func (s *Server) logExplain(reqID, backend, pairKey string, status int, joined bool, d time.Duration, tr *telemetry.Trace, err error) {
	attrs := []any{
		"req_id", reqID,
		"backend", backend,
		"pair", pairKey,
		"status", status,
		"coalesced", joined,
		"duration_ms", float64(d) / float64(time.Millisecond),
	}
	if st := stageSummary(tr); st != "" {
		attrs = append(attrs, "stages", st)
	}
	if err != nil {
		attrs = append(attrs, "error", err.Error())
		s.logger.Warn("explain", attrs...)
		return
	}
	s.logger.Info("explain", attrs...)
}

// stageSummary renders a trace's stage totals as a compact
// deterministic "name=durations[/items]" list, sorted by stage name.
func stageSummary(tr *telemetry.Trace) string {
	if tr == nil {
		return ""
	}
	stages := tr.Stages()
	var b strings.Builder
	for _, name := range telemetry.StageNames(stages) {
		st := stages[name]
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.1fms", name, float64(st.Duration)/float64(time.Millisecond))
		if st.Items > 0 {
			fmt.Fprintf(&b, "/%d", st.Items)
		}
	}
	return b.String()
}

// handleBatch serves POST /v1/explain/batch: items fan out over a
// bounded worker pool (so a huge batch cannot spawn a goroutine per
// item), each through the same admission/coalescing path as a single
// request — identical items in one batch (or across batches) share one
// computation — and per-item failures, overload included, show up as
// per-item errors. Successful items reuse the computation's shared
// response bytes verbatim (json.RawMessage), which also keeps coalesced
// duplicates byte-identical by construction.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	reqID := s.nextRequestID()
	w.Header().Set("X-Certa-Request-Id", reqID)
	var req BatchRequest
	if status, err := s.decode(w, r, &req); err != nil {
		s.writeError(w, status, err)
		return
	}
	if len(req.Requests) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("batch has no requests"))
		return
	}
	n := len(req.Requests)
	responses := make([]json.RawMessage, n)
	var failed atomic.Int64
	itemError := func(i int, benchmark, pairKey string, msg string) {
		failed.Add(1)
		body, err := json.Marshal(ExplainResponse{Benchmark: benchmark, PairKey: pairKey, Error: msg})
		if err != nil {
			body = []byte(`{"error":"encoding item error"}`)
		}
		responses[i] = body
	}
	// Workers beyond the admission capacity would only pile up in its
	// queue (or be rejected), so that capacity bounds useful concurrency.
	// Item failures are reported in place and never returned, so
	// workpool's fail-fast path stays dormant and every item runs —
	// unless the client disconnects: the request context cancels
	// EachContext, which stops dispatching the remaining items instead
	// of pushing each of them through admission for a caller that is
	// gone (the severed-context bug certa-lint's ctxthread analyzer
	// flags).
	workers := s.opts.MaxInFlight + s.opts.MaxQueue
	workpool.EachContext(r.Context(), n, workers, func(ctx context.Context, i int) error {
		item := &req.Requests[i]
		b, _, err := s.resolveBackend(item.Benchmark)
		if err != nil {
			itemError(i, item.Benchmark, "", err.Error())
			return nil
		}
		p, err := b.resolvePair(item)
		if err != nil {
			itemError(i, b.name, "", err.Error())
			return nil
		}
		b.requests.Add(1)
		body, _, _, _, err := s.serveOne(ctx, b, p, item.knobs(), reqID+"."+strconv.Itoa(i))
		if err != nil {
			b.errors.Add(1)
			s.countServeError(err)
			itemError(i, b.name, p.Key(), err.Error())
			return nil
		}
		responses[i] = body
		return nil
	})
	elapsed := time.Since(start)
	s.httpBatch.Observe(elapsed.Seconds())
	s.logger.InfoContext(r.Context(), "batch",
		"req_id", reqID,
		"items", n,
		"failed", failed.Load(),
		"duration_ms", float64(elapsed)/float64(time.Millisecond))
	if r.Context().Err() != nil {
		return // client gone; nothing to write
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Responses []json.RawMessage `json:"responses"`
	}{responses})
}

// handleHealthz serves GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(HealthResponse{
		Status:   "ok",
		UptimeMS: float64(time.Since(s.start)) / float64(time.Millisecond),
		Backends: append([]string(nil), s.order...),
	})
}

// handleStats serves GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

// handleSnapshot serves GET /v1/snapshot?benchmark=NAME: the named
// backend's score cache streamed in the scorecache binary snapshot
// format (octet-stream). This is the donor side of the cluster's warm
// bring-up — a joining worker pulls it and restores the slice of keys
// the ring assigns it (scorecache.RestoreFunc) before taking traffic.
// Concurrent scoring may proceed while the snapshot streams; in-flight
// entries are simply skipped. The CRC trailer inside the format is the
// consumer's integrity check: if this stream dies mid-write the
// partial body fails the consumer's checksum and it starts cold.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	b, status, err := s.resolveBackend(r.URL.Query().Get("benchmark"))
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Certa-Backend", b.name)
	n, err := b.svc.Snapshot(w)
	if err != nil {
		// Headers are already gone, so there is no status to change;
		// the truncated body fails the consumer's CRC check.
		s.logger.WarnContext(r.Context(), "snapshot", "backend", b.name, "error", err.Error())
		return
	}
	s.logger.InfoContext(r.Context(), "snapshot", "backend", b.name, "entries", n)
}

// embeddingStatser is implemented by backend models that keep a
// matcher-lifetime embedding store (see embedding.Store).
type embeddingStatser interface {
	EmbeddingStats() embedding.StoreStats
}

// Stats assembles the server's counters.
func (s *Server) Stats() StatsResponse {
	inflight, queued, highWater, ewma := s.adm.snapshot()
	out := StatsResponse{
		Worker:         s.opts.Name,
		UptimeMS:       float64(time.Since(s.start)) / float64(time.Millisecond),
		Served:         s.served.Load(),
		Coalesced:      s.coalesced.Load(),
		Memoized:       s.memoized.Load(),
		Rejected:       s.rejected.Load(),
		Cancelled:      s.cancelled.Load(),
		Errors:         s.errored.Load(),
		InFlight:       inflight,
		Queued:         queued,
		QueueHighWater: highWater,
		EwmaLatencyMS:  ewma,
		Backends:       make(map[string]BackendStats, len(s.backends)),
	}
	for name, b := range s.backends {
		st := b.svc.Stats()
		bs := BackendStats{
			Model:           b.model.Name(),
			Requests:        b.requests.Load(),
			Errors:          b.errors.Load(),
			Entries:         b.svc.Len(),
			RestoredEntries: b.restored,
			Lookups:         st.Lookups,
			Hits:            st.Hits,
			Misses:          st.Misses,
			Batches:         st.Batches,
			Evictions:       st.Evictions,
			HitRate:         st.HitRate(),
			FlipLookups:     st.FlipLookups,
			FlipHits:        st.FlipHits,
			FlipHitRate:     st.FlipHitRate(),
		}
		if es, ok := b.model.(embeddingStatser); ok {
			est := es.EmbeddingStats()
			if est.Lookups > 0 || est.Entries > 0 {
				bs.Embedding = &EmbeddingStats{
					Lookups:   est.Lookups,
					Hits:      est.Hits,
					Misses:    est.Misses,
					Evictions: est.Evictions,
					Entries:   est.Entries,
					HitRate:   est.HitRate(),
				}
			}
		}
		if ist, ok := b.opts.Retrieval.Stats(); ok {
			bs.Index = &IndexStats{
				Records:        ist.Records,
				DistinctTokens: ist.DistinctTokens,
				BuildMS:        ist.BuildMS,
			}
		}
		if b.memo != nil {
			lookups, hits, entries := b.memo.stats()
			ms := &ResultMemoStats{
				Capacity: b.memo.capacity,
				Entries:  entries,
				Lookups:  lookups,
				Hits:     hits,
			}
			if lookups > 0 {
				ms.HitRate = float64(hits) / float64(lookups)
			}
			bs.ResultMemo = ms
		}
		out.Backends[name] = bs
	}
	return out
}

// decode reads a JSON request body strictly: unknown fields are
// rejected, so schema drift between client and server fails loudly. The
// returned status separates an oversized body (413 — split the batch)
// from malformed JSON (400 — don't retry).
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) (int, error) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("decoding request: %w", err)
	}
	return 0, nil
}

// countServeError classifies a serveOne failure into the stats counters.
func (s *Server) countServeError(err error) (status int) {
	switch {
	case errors.Is(err, errOverloaded):
		s.rejected.Add(1)
		return http.StatusTooManyRequests
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.cancelled.Add(1)
		return 499 // client closed request (nginx convention); nothing readable anyway
	default:
		s.errored.Add(1)
		return http.StatusInternalServerError
	}
}

// writeServeError reports a serveOne failure over HTTP, returning the
// status for the request log line.
func (s *Server) writeServeError(w http.ResponseWriter, r *http.Request, err error) int {
	status := s.countServeError(err)
	if r.Context().Err() != nil {
		return status // client gone; the status would never arrive
	}
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(s.adm.retryAfterSeconds()))
	}
	s.writeError(w, status, err)
	return status
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error()})
}

// Package server is the explanation-serving subsystem: an HTTP JSON API
// over the CERTA engine, built for the serving-scale deployment the
// batched pipeline (PR 1), the shared scoring service (PR 2) and the
// anytime budgets (PR 3) were preparing for.
//
// A Server hosts one or more backends — a (sources, model) pair with one
// long-lived shared scorecache.Service each — and exposes:
//
//	POST /v1/explain        one explanation
//	POST /v1/explain/batch  many, admitted and coalesced individually
//	GET  /v1/healthz        liveness
//	GET  /v1/stats          admission + coalescing + cache counters
//
// Three serving layers sit between the HTTP surface and the engine:
//
//   - Admission control: at most Options.MaxInFlight explanations
//     compute concurrently; at most Options.MaxQueue more wait in a fair
//     FIFO queue; beyond that requests are rejected with 429 and a
//     Retry-After priced from observed latency, so overload degrades
//     into fast rejections instead of unbounded queueing.
//   - Request coalescing: identical in-flight requests — same backend,
//     same canonical pair content, same anytime options — attach to one
//     computation and receive byte-identical response bodies
//     (singleflight one layer above the score cache, which already
//     deduplicates individual model calls).
//   - Cancellation propagation: a dropped client connection detaches
//     the request; when the last request interested in a computation
//     detaches, its context is cancelled and the explanation aborts at
//     the next scoring checkpoint. Per-request deadline_ms/call_budget
//     knobs map onto the anytime Options and truncate instead.
//
// Backends can be handed a scorecache.Service restored from a snapshot
// (Service.Restore), and the server's cache can be written back out with
// Server.Snapshot — the persistence path cmd/certa-serve wires to
// -cache-file so restarts serve warm.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"certa/internal/core"
	"certa/internal/embedding"
	"certa/internal/explain"
	"certa/internal/lattice"
	"certa/internal/neighborhood"
	"certa/internal/record"
	"certa/internal/scorecache"
	"certa/internal/workpool"
)

// Options tunes the serving layers.
type Options struct {
	// MaxInFlight bounds concurrently computing explanations (default 4).
	MaxInFlight int
	// MaxQueue bounds explanations waiting for an in-flight slot
	// (default 16× MaxInFlight). Requests beyond it get 429.
	MaxQueue int
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 16 * o.MaxInFlight
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	return o
}

// Backend configures one served (sources, model) pair.
type Backend struct {
	// Name addresses the backend in requests ("benchmark" field).
	Name string
	// Left and Right are the two sources explanations draw support
	// records from.
	Left, Right *record.Table
	// Model is the classifier being explained.
	Model explain.Model
	// Options are the base explainer options (Triangles, Seed,
	// Parallelism...). Per-request knobs overlay CallBudget, Deadline,
	// AugmentBudget and LatticePrune; Shared is overwritten with the backend's
	// long-lived service. When Retrieval is nil, the backend builds its
	// candidate index at server construction and reports it in
	// /v1/stats.
	Options core.Options
	// Pairs optionally registers an addressable workload (pair_index
	// requests) — typically a benchmark's test split.
	Pairs []record.Pair
	// Service optionally injects a pre-built scoring service, e.g. one
	// restored from a snapshot. When nil a fresh service is created with
	// the backend's Parallelism.
	Service *scorecache.Service
	// RestoredEntries reports (for /v1/stats) how many entries Service
	// started with when it was restored from a snapshot.
	RestoredEntries int
}

// backend is the resolved runtime form.
type backend struct {
	name        string
	left, right *record.Table
	model       explain.Model
	opts        core.Options
	pairs       []record.Pair
	svc         *scorecache.Service
	restored    int
}

// Server is the HTTP explanation-serving subsystem. It implements
// http.Handler; plug it into any http.Server.
type Server struct {
	opts     Options
	backends map[string]*backend
	order    []string
	adm      *admission
	coal     *coalescer
	mux      *http.ServeMux
	start    time.Time

	// lifetime is the server's base context: computations are derived
	// from it so Close aborts everything in flight.
	lifetime context.Context
	stop     context.CancelFunc

	served    atomic.Int64
	coalesced atomic.Int64
	rejected  atomic.Int64
	cancelled atomic.Int64
	errored   atomic.Int64
}

// New builds a Server over the given backends.
func New(backends []Backend, opts Options) (*Server, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("server: no backends configured")
	}
	opts = opts.withDefaults()
	lifetime, stop := context.WithCancel(context.Background())
	s := &Server{
		opts:     opts,
		backends: make(map[string]*backend, len(backends)),
		adm:      newAdmission(opts.MaxInFlight, opts.MaxQueue),
		coal:     newCoalescer(),
		mux:      http.NewServeMux(),
		start:    time.Now(),
		lifetime: lifetime,
		stop:     stop,
	}
	for _, b := range backends {
		if b.Name == "" || b.Left == nil || b.Right == nil || b.Model == nil {
			stop()
			return nil, fmt.Errorf("server: backend %q needs a name, two sources and a model", b.Name)
		}
		if _, dup := s.backends[b.Name]; dup {
			stop()
			return nil, fmt.Errorf("server: duplicate backend %q", b.Name)
		}
		svc := b.Service
		if svc == nil {
			svc = scorecache.NewService(b.Model, scorecache.ServiceOptions{
				Parallelism: b.Options.Parallelism,
			})
		} else if svc.Name() != b.Model.Name() {
			stop()
			return nil, fmt.Errorf("server: backend %q service wraps model %q, not %q",
				b.Name, svc.Name(), b.Model.Name())
		}
		// The candidate retrieval index is part of backend startup: built
		// here once (unless the caller injected a shared one) so request
		// handling streams candidates from prebuilt postings instead of
		// re-tokenizing the sources per explanation. A backend configured
		// with the DisableIndex ablation gets scan sources, which also
		// keeps the index section out of its /v1/stats.
		bopts := b.Options
		if bopts.Retrieval == nil {
			if bopts.DisableIndex {
				bopts.Retrieval = neighborhood.NewScanSources(b.Left, b.Right)
			} else {
				bopts.Retrieval = neighborhood.NewSources(b.Left, b.Right)
			}
		}
		s.backends[b.Name] = &backend{
			name: b.Name, left: b.Left, right: b.Right, model: b.Model,
			opts: bopts, pairs: b.Pairs, svc: svc, restored: b.RestoredEntries,
		}
		s.order = append(s.order, b.Name)
	}
	s.mux.HandleFunc("POST /v1/explain", s.handleExplain)
	s.mux.HandleFunc("POST /v1/explain/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close aborts every in-flight computation. Call it after the HTTP
// server has drained (http.Server.Shutdown) — and before Snapshot, so
// the snapshot sees a quiescent store.
func (s *Server) Close() { s.stop() }

// Snapshot writes the named backend's score cache in the
// scorecache.Service binary snapshot format.
func (s *Server) Snapshot(name string, w io.Writer) (int, error) {
	b, ok := s.backends[name]
	if !ok {
		return 0, fmt.Errorf("server: no backend %q", name)
	}
	return b.svc.Snapshot(w)
}

// CacheService exposes the named backend's shared scoring service (for
// instrumentation and tests).
func (s *Server) CacheService(name string) (*scorecache.Service, bool) {
	b, ok := s.backends[name]
	if !ok {
		return nil, false
	}
	return b.svc, true
}

// resolveBackend picks the requested backend, defaulting when the server
// hosts exactly one. The status distinguishes a missing resource (an
// unknown name, 404) from a malformed request (an ambiguous empty name,
// 400).
func (s *Server) resolveBackend(name string) (*backend, int, error) {
	if name == "" {
		if len(s.order) == 1 {
			return s.backends[s.order[0]], 0, nil
		}
		return nil, http.StatusBadRequest,
			fmt.Errorf("request names no benchmark and the server hosts %d", len(s.order))
	}
	b, ok := s.backends[name]
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("unknown benchmark %q (hosting %v)", name, s.order)
	}
	return b, 0, nil
}

// serveOne runs one explanation request through coalescing + admission
// and returns the shared response bytes.
func (s *Server) serveOne(ctx context.Context, b *backend, p record.Pair, k knobs) (body []byte, joined bool, err error) {
	key := coalesceKey(b.name, k, p)
	for {
		body, joined, err = s.coal.do(ctx, s.lifetime, key, func(compCtx context.Context) ([]byte, error) {
			return s.compute(compCtx, b, p, k)
		})
		if joined && errors.Is(err, context.Canceled) && ctx.Err() == nil && s.lifetime.Err() == nil {
			// We attached to a computation whose every requester had
			// disconnected just before we arrived; its cancellation is not
			// ours. Re-issue — the key has been cleared, so this caller
			// leads a fresh computation. joined deliberately resets: what
			// this request reports is how its final attempt was answered.
			continue
		}
		if joined {
			s.coalesced.Add(1)
		}
		return body, joined, err
	}
}

// compute runs the explanation under an admission slot and marshals the
// shared response body.
func (s *Server) compute(ctx context.Context, b *backend, p record.Pair, k knobs) ([]byte, error) {
	if err := s.adm.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.adm.release()

	opts := b.opts
	opts.Shared = b.svc
	if k.callBudget > 0 {
		opts.CallBudget = k.callBudget
	}
	if k.deadlineMS > 0 {
		opts.Deadline = time.Duration(k.deadlineMS) * time.Millisecond
	}
	if k.augmentBudget > 0 {
		opts.AugmentBudget = k.augmentBudget
	}
	if k.pruneThreshold > 0 {
		opts.LatticePrune = lattice.PrunePolicy{Threshold: k.pruneThreshold, MinLevels: k.pruneMinLevels}
	}
	start := time.Now()
	res, err := core.New(b.left, b.right, opts).ExplainContext(ctx, b.model, p)
	if err != nil {
		return nil, err
	}
	s.adm.observe(time.Since(start))
	s.served.Add(1)

	body, err := json.Marshal(ExplainResponse{
		Benchmark: b.name,
		PairKey:   p.Key(),
		Result:    shapeTopK(res, k.topK),
	})
	if err != nil {
		return nil, fmt.Errorf("marshaling response: %w", err)
	}
	return body, nil
}

// shapeTopK trims the result to the k most salient attributes and at
// most k counterfactuals. The trim is deterministic (Saliency.Ranked
// breaks ties by attribute order), so coalesced and repeated requests
// still receive byte-identical documents.
func shapeTopK(res *core.Result, k int) *core.Result {
	if k <= 0 {
		return res
	}
	shaped := *res
	if res.Saliency != nil {
		top := res.Saliency.TopK(k)
		sal := *res.Saliency
		sal.Scores = make(map[record.AttrRef]float64, len(top))
		for _, ref := range top {
			sal.Scores[ref] = res.Saliency.Scores[ref]
		}
		shaped.Saliency = &sal
	}
	if len(shaped.Counterfactuals) > k {
		shaped.Counterfactuals = shaped.Counterfactuals[:k]
	}
	return &shaped
}

// handleExplain serves POST /v1/explain.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if status, err := s.decode(w, r, &req); err != nil {
		s.writeError(w, status, err)
		return
	}
	b, status, err := s.resolveBackend(req.Benchmark)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	p, err := b.resolvePair(&req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	body, joined, err := s.serveOne(r.Context(), b, p, req.knobs())
	if err != nil {
		s.writeServeError(w, r, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Certa-Coalesced", strconv.FormatBool(joined))
	h.Set("X-Certa-Duration-Ms", strconv.FormatInt(time.Since(start).Milliseconds(), 10))
	w.Write(body)
}

// handleBatch serves POST /v1/explain/batch: items fan out over a
// bounded worker pool (so a huge batch cannot spawn a goroutine per
// item), each through the same admission/coalescing path as a single
// request — identical items in one batch (or across batches) share one
// computation — and per-item failures, overload included, show up as
// per-item errors. Successful items reuse the computation's shared
// response bytes verbatim (json.RawMessage), which also keeps coalesced
// duplicates byte-identical by construction.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if status, err := s.decode(w, r, &req); err != nil {
		s.writeError(w, status, err)
		return
	}
	if len(req.Requests) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("batch has no requests"))
		return
	}
	n := len(req.Requests)
	responses := make([]json.RawMessage, n)
	itemError := func(i int, benchmark, pairKey string, msg string) {
		body, err := json.Marshal(ExplainResponse{Benchmark: benchmark, PairKey: pairKey, Error: msg})
		if err != nil {
			body = []byte(`{"error":"encoding item error"}`)
		}
		responses[i] = body
	}
	// Workers beyond the admission capacity would only pile up in its
	// queue (or be rejected), so that capacity bounds useful concurrency.
	// Item failures are reported in place and never returned, so
	// workpool's fail-fast path stays dormant and every item runs —
	// unless the client disconnects: the request context cancels
	// EachContext, which stops dispatching the remaining items instead
	// of pushing each of them through admission for a caller that is
	// gone (the severed-context bug certa-lint's ctxthread analyzer
	// flags).
	workers := s.opts.MaxInFlight + s.opts.MaxQueue
	workpool.EachContext(r.Context(), n, workers, func(ctx context.Context, i int) error {
		item := &req.Requests[i]
		b, _, err := s.resolveBackend(item.Benchmark)
		if err != nil {
			itemError(i, item.Benchmark, "", err.Error())
			return nil
		}
		p, err := b.resolvePair(item)
		if err != nil {
			itemError(i, b.name, "", err.Error())
			return nil
		}
		body, _, err := s.serveOne(ctx, b, p, item.knobs())
		if err != nil {
			s.countServeError(err)
			itemError(i, b.name, p.Key(), err.Error())
			return nil
		}
		responses[i] = body
		return nil
	})
	if r.Context().Err() != nil {
		return // client gone; nothing to write
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Responses []json.RawMessage `json:"responses"`
	}{responses})
}

// handleHealthz serves GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(HealthResponse{
		Status:   "ok",
		UptimeMS: float64(time.Since(s.start)) / float64(time.Millisecond),
		Backends: append([]string(nil), s.order...),
	})
}

// handleStats serves GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

// Stats assembles the server's counters.
func (s *Server) Stats() StatsResponse {
	inflight, queued, ewma := s.adm.snapshot()
	out := StatsResponse{
		UptimeMS:      float64(time.Since(s.start)) / float64(time.Millisecond),
		Served:        s.served.Load(),
		Coalesced:     s.coalesced.Load(),
		Rejected:      s.rejected.Load(),
		Cancelled:     s.cancelled.Load(),
		Errors:        s.errored.Load(),
		InFlight:      inflight,
		Queued:        queued,
		EwmaLatencyMS: ewma,
		Backends:      make(map[string]BackendStats, len(s.backends)),
	}
	for name, b := range s.backends {
		st := b.svc.Stats()
		bs := BackendStats{
			Model:           b.model.Name(),
			Entries:         b.svc.Len(),
			RestoredEntries: b.restored,
			Lookups:         st.Lookups,
			Hits:            st.Hits,
			Misses:          st.Misses,
			Batches:         st.Batches,
			Evictions:       st.Evictions,
			HitRate:         st.HitRate(),
			FlipLookups:     st.FlipLookups,
			FlipHits:        st.FlipHits,
			FlipHitRate:     st.FlipHitRate(),
		}
		if es, ok := b.model.(interface {
			EmbeddingStats() embedding.StoreStats
		}); ok {
			est := es.EmbeddingStats()
			if est.Lookups > 0 || est.Entries > 0 {
				bs.Embedding = &EmbeddingStats{
					Lookups:   est.Lookups,
					Hits:      est.Hits,
					Misses:    est.Misses,
					Evictions: est.Evictions,
					Entries:   est.Entries,
					HitRate:   est.HitRate(),
				}
			}
		}
		if ist, ok := b.opts.Retrieval.Stats(); ok {
			bs.Index = &IndexStats{
				Records:        ist.Records,
				DistinctTokens: ist.DistinctTokens,
				BuildMS:        ist.BuildMS,
			}
		}
		out.Backends[name] = bs
	}
	return out
}

// decode reads a JSON request body strictly: unknown fields are
// rejected, so schema drift between client and server fails loudly. The
// returned status separates an oversized body (413 — split the batch)
// from malformed JSON (400 — don't retry).
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) (int, error) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("decoding request: %w", err)
	}
	return 0, nil
}

// countServeError classifies a serveOne failure into the stats counters.
func (s *Server) countServeError(err error) (status int) {
	switch {
	case errors.Is(err, errOverloaded):
		s.rejected.Add(1)
		return http.StatusTooManyRequests
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.cancelled.Add(1)
		return 499 // client closed request (nginx convention); nothing readable anyway
	default:
		s.errored.Add(1)
		return http.StatusInternalServerError
	}
}

// writeServeError reports a serveOne failure over HTTP.
func (s *Server) writeServeError(w http.ResponseWriter, r *http.Request, err error) {
	status := s.countServeError(err)
	if r.Context().Err() != nil {
		return // client gone; the status would never arrive
	}
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(s.adm.retryAfterSeconds()))
	}
	s.writeError(w, status, err)
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error()})
}

package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"certa/internal/record"
)

// stuckModel answers its first batch (the original-pair score) and then
// blocks every later batch until its context is cancelled — the shape of
// a hung downstream model. It records that cancellation reached it.
type stuckModel struct {
	overlapModel
	batches      atomic.Int64
	started      chan struct{} // closed when the first blocking batch begins
	startedOnce  sync.Once
	sawCancel    atomic.Bool
	unblockAfter atomic.Bool // when set, later batches score normally again
}

func (m *stuckModel) ScoreBatchContext(ctx context.Context, pairs []record.Pair) ([]float64, error) {
	if m.batches.Add(1) == 1 || m.unblockAfter.Load() {
		out := make([]float64, len(pairs))
		for i, p := range pairs {
			out[i] = m.Score(p)
		}
		return out, nil
	}
	m.startedOnce.Do(func() { close(m.started) })
	<-ctx.Done()
	m.sawCancel.Store(true)
	return nil, ctx.Err()
}

// TestClientDisconnectCancelsExplanation proves the cancellation chain:
// dropping the HTTP connection detaches the request, the coalesced
// computation's context is cancelled, the ExplainContext inside aborts
// at its next scoring call, the admission slot is returned, and no
// goroutine is left behind.
func TestClientDisconnectCancelsExplanation(t *testing.T) {
	sm := &stuckModel{started: make(chan struct{})}
	s := newTestServer(t, sm, Options{MaxInFlight: 2}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()

	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/explain",
		strings.NewReader(`{"left_id":"l0","right_id":"r0"}`))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// The explanation is now inside the model, blocked. Drop the client.
	select {
	case <-sm.started:
	case <-time.After(10 * time.Second):
		t.Fatal("explanation never reached the model")
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled request returned no error")
	}

	// The model's blocked call observes the cancellation...
	waitFor(t, "model cancellation", func() bool { return sm.sawCancel.Load() })
	// ...the server accounts the disconnect...
	waitFor(t, "cancelled counter", func() bool { return s.Stats().Cancelled == 1 })
	// ...the admission slot drains...
	waitFor(t, "admission drain", func() bool {
		inflight, queued, _ := s.adm.snapshot()
		return inflight == 0 && queued == 0
	})
	// ...the coalescing table empties...
	waitFor(t, "coalescer drain", func() bool {
		s.coal.mu.Lock()
		defer s.coal.mu.Unlock()
		return len(s.coal.calls) == 0
	})
	// ...and no goroutine leaks.
	client.CloseIdleConnections()
	waitFor(t, "goroutine count", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})

	// The server is still healthy: the same request, uncancelled, now
	// completes (the model unblocks).
	sm.unblockAfter.Store(true)
	resp, body := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l0", RightID: "r0"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel request: status %d: %s", resp.StatusCode, body)
	}
}

// TestDeadlineKnobTruncatesVisibly maps deadline_ms onto the anytime
// soft deadline: the response arrives with HTTP 200 and the early abort
// is visible in the diagnostics (truncated / truncated_by), not as an
// error.
func TestDeadlineKnobTruncatesVisibly(t *testing.T) {
	s := newTestServer(t, &sleepyModel{perBatch: 5 * time.Millisecond}, Options{}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l0", RightID: "r0", DeadlineMS: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out ExplainResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	d := out.Result.Diag
	if !d.Truncated || d.TruncatedBy != "deadline" {
		t.Fatalf("1ms-deadline explanation not visibly truncated: %+v", d)
	}
	if d.Completeness >= 1 {
		t.Fatalf("truncated explanation reports completeness %v", d.Completeness)
	}
}

// sleepyModel delays every batch so a short soft deadline reliably trips
// at the first checkpoint.
type sleepyModel struct {
	overlapModel
	perBatch time.Duration
}

func (m *sleepyModel) ScoreBatch(pairs []record.Pair) []float64 {
	time.Sleep(m.perBatch)
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		out[i] = m.Score(p)
	}
	return out
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"certa/internal/record"
)

// stuckModel answers its first batch (the original-pair score) and then
// blocks every later batch until its context is cancelled — the shape of
// a hung downstream model. It records that cancellation reached it.
type stuckModel struct {
	overlapModel
	batches      atomic.Int64
	started      chan struct{} // closed when the first blocking batch begins
	startedOnce  sync.Once
	sawCancel    atomic.Bool
	unblockAfter atomic.Bool // when set, later batches score normally again
}

func (m *stuckModel) ScoreBatchContext(ctx context.Context, pairs []record.Pair) ([]float64, error) {
	if m.batches.Add(1) == 1 || m.unblockAfter.Load() {
		out := make([]float64, len(pairs))
		for i, p := range pairs {
			out[i] = m.Score(p)
		}
		return out, nil
	}
	m.startedOnce.Do(func() { close(m.started) })
	<-ctx.Done()
	m.sawCancel.Store(true)
	return nil, ctx.Err()
}

// TestClientDisconnectCancelsExplanation proves the cancellation chain:
// dropping the HTTP connection detaches the request, the coalesced
// computation's context is cancelled, the ExplainContext inside aborts
// at its next scoring call, the admission slot is returned, and no
// goroutine is left behind.
func TestClientDisconnectCancelsExplanation(t *testing.T) {
	sm := &stuckModel{started: make(chan struct{})}
	s := newTestServer(t, sm, Options{MaxInFlight: 2}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()

	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/explain",
		strings.NewReader(`{"left_id":"l0","right_id":"r0"}`))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// The explanation is now inside the model, blocked. Drop the client.
	select {
	case <-sm.started:
	case <-time.After(10 * time.Second):
		t.Fatal("explanation never reached the model")
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled request returned no error")
	}

	// The model's blocked call observes the cancellation...
	waitFor(t, "model cancellation", func() bool { return sm.sawCancel.Load() })
	// ...the server accounts the disconnect...
	waitFor(t, "cancelled counter", func() bool { return s.Stats().Cancelled == 1 })
	// ...the admission slot drains...
	waitFor(t, "admission drain", func() bool {
		inflight, queued, _, _ := s.adm.snapshot()
		return inflight == 0 && queued == 0
	})
	// ...the coalescing table empties...
	waitFor(t, "coalescer drain", func() bool {
		s.coal.mu.Lock()
		defer s.coal.mu.Unlock()
		return len(s.coal.calls) == 0
	})
	// ...and no goroutine leaks.
	client.CloseIdleConnections()
	waitFor(t, "goroutine count", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})

	// The server is still healthy: the same request, uncancelled, now
	// completes (the model unblocks).
	sm.unblockAfter.Store(true)
	resp, body := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l0", RightID: "r0"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel request: status %d: %s", resp.StatusCode, body)
	}
}

// TestClientDisconnectStopsBatchDispatch is the regression test for the
// severed-context bug certa-lint's ctxthread analyzer surfaced in
// handleBatch: the handler held r.Context() but dispatched items through
// workpool.Each, so a disconnected client's remaining batch items were
// still pushed one by one through admission and the serve path (each
// failing individually against the dead context). With EachContext the
// disconnect stops dispatch: out of a 16-item batch stuck on its first
// explanations, only the items already handed to workers are ever
// accounted — the rest are never dispatched at all.
func TestClientDisconnectStopsBatchDispatch(t *testing.T) {
	sm := &stuckModel{started: make(chan struct{})}
	// MaxInFlight+MaxQueue bounds the batch worker pool: 2 workers here,
	// so after the disconnect at most the two in-flight items (plus the
	// two at the dispatch barrier) can reach the serve path.
	s := newTestServer(t, sm, Options{MaxInFlight: 1, MaxQueue: 1}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()

	const items = 16
	var breq BatchRequest
	for i := 0; i < items; i++ {
		breq.Requests = append(breq.Requests, ExplainRequest{
			LeftID:  "l" + strconv.Itoa(i),
			RightID: "r" + strconv.Itoa(i),
		})
	}
	data, err := json.Marshal(breq)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/explain/batch",
		strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// An item is inside the model, blocked. Drop the client.
	select {
	case <-sm.started:
	case <-time.After(10 * time.Second):
		t.Fatal("batch never reached the model")
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled batch request returned no error")
	}

	// Everything in flight unwinds...
	waitFor(t, "admission drain", func() bool {
		inflight, queued, _, _ := s.adm.snapshot()
		return inflight == 0 && queued == 0
	})
	// ...and the items that were never dispatched never show up in the
	// serve counters: with Each instead of EachContext every one of the
	// 16 items was pushed through the dead context and accounted (as a
	// cancellation each). Watch the counters until they go quiet — the
	// handler may still be unwinding — and judge the peak.
	accounted := func() int {
		st := s.Stats()
		return int(st.Served + st.Coalesced + st.Rejected + st.Cancelled + st.Errors)
	}
	last, stable := accounted(), 0
	for stable < 30 { // quiet for 300ms
		time.Sleep(10 * time.Millisecond)
		if now := accounted(); now != last {
			last, stable = now, 0
		} else {
			stable++
		}
	}
	if last >= items/2 {
		st := s.Stats()
		t.Fatalf("disconnected batch still accounted %d of %d items (served=%d coalesced=%d rejected=%d cancelled=%d errors=%d); dispatch was not stopped",
			last, items, st.Served, st.Coalesced, st.Rejected, st.Cancelled, st.Errors)
	}

	// The server is still healthy afterwards.
	sm.unblockAfter.Store(true)
	resp, body := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l0", RightID: "r0"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel request: status %d: %s", resp.StatusCode, body)
	}
}

// TestDeadlineKnobTruncatesVisibly maps deadline_ms onto the anytime
// soft deadline: the response arrives with HTTP 200 and the early abort
// is visible in the diagnostics (truncated / truncated_by), not as an
// error.
func TestDeadlineKnobTruncatesVisibly(t *testing.T) {
	s := newTestServer(t, &sleepyModel{perBatch: 5 * time.Millisecond}, Options{}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{LeftID: "l0", RightID: "r0", DeadlineMS: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out ExplainResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	d := out.Result.Diag
	if !d.Truncated || d.TruncatedBy != "deadline" {
		t.Fatalf("1ms-deadline explanation not visibly truncated: %+v", d)
	}
	if d.Completeness >= 1 {
		t.Fatalf("truncated explanation reports completeness %v", d.Completeness)
	}
}

// sleepyModel delays every batch so a short soft deadline reliably trips
// at the first checkpoint.
type sleepyModel struct {
	overlapModel
	perBatch time.Duration
}

func (m *sleepyModel) ScoreBatch(pairs []record.Pair) []float64 {
	time.Sleep(m.perBatch)
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		out[i] = m.Score(p)
	}
	return out
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Package scorecache is a fixture stub mirroring the real package's
// split: Service/ServiceStats are shared, schedule-dependent state;
// the per-explanation Scorer view is deterministic and sanctioned as
// a Diagnostics source.
package scorecache

type Service struct{ lookups int }

func (s *Service) Stats() ServiceStats { return ServiceStats{Lookups: s.lookups} }

func (s *Service) Len() int { return 0 }

type ServiceStats struct {
	Lookups  int
	FlipHits int
}

type Scorer struct{ hits, misses int }

func (s *Scorer) Stats() Stats { return Stats{Hits: s.hits, Misses: s.misses} }

type Stats struct {
	Hits   int
	Misses int
}

// Package core is a fixture stub: diagpure matches the Diagnostics
// type by import path and name, so this stub exercises the same
// matching as the real certa/internal/core.
package core

type Diagnostics struct {
	ModelCalls   int
	CacheHits    int
	FlipMemoHits int
}

// Package clean is diagpure's clean fixture: Diagnostics populated
// from the per-explanation Scorer view, shared Service state read by
// functions that never touch Diagnostics, and an empty literal.
package clean

import (
	"certa/internal/core"
	"certa/internal/scorecache"
)

// fromScorer is the sanctioned pattern (PR 6): the per-explanation
// view's counters are parallelism-deterministic.
func fromScorer(sc *scorecache.Scorer) core.Diagnostics {
	var d core.Diagnostics
	st := sc.Stats()
	d.CacheHits = st.Hits
	d.ModelCalls = st.Misses
	return d
}

// serviceView reads shared state but writes no Diagnostics.
func serviceView(svc *scorecache.Service) scorecache.ServiceStats {
	return svc.Stats()
}

// zeroValue constructs an empty Diagnostics next to a shared read: a
// zero literal carries no counters, so nothing schedule-dependent can
// leak through it.
func zeroValue(svc *scorecache.Service) core.Diagnostics {
	_ = svc.Len()
	return core.Diagnostics{}
}

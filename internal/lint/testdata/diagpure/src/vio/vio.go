// Package vio is diagpure's violating fixture: functions that
// populate core.Diagnostics from shared scorecache.Service state.
package vio

import (
	"certa/internal/core"
	"certa/internal/scorecache"
)

func build(svc *scorecache.Service) core.Diagnostics {
	var d core.Diagnostics
	d.CacheHits = svc.Stats().FlipHits // want `build writes core.Diagnostics while touching shared scorecache.ServiceStats.FlipHits`
	return d
}

func fromLiteral(svc *scorecache.Service) core.Diagnostics {
	n := svc.Len()
	return core.Diagnostics{ModelCalls: n} // want `fromLiteral writes core.Diagnostics while touching shared scorecache.Service.Len`
}

func increment(d *core.Diagnostics, st scorecache.ServiceStats) {
	if st.FlipHits > 0 {
		d.FlipMemoHits++ // want `increment writes core.Diagnostics while touching shared scorecache.ServiceStats.FlipHits`
	}
}

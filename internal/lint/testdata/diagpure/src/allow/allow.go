// Package allow is diagpure's suppression fixture.
package allow

import (
	"certa/internal/core"
	"certa/internal/scorecache"
)

// debugSnapshot deliberately mixes the two for a debug endpoint that
// documents its own schedule-dependence; the directive waives it.
func debugSnapshot(svc *scorecache.Service) core.Diagnostics {
	var d core.Diagnostics
	//lint:allow diagpure debug-only snapshot; endpoint documents that these counters are schedule-dependent
	d.CacheHits = svc.Stats().FlipHits
	return d
}

func missingReason(svc *scorecache.Service) core.Diagnostics {
	var d core.Diagnostics
	/* want "lint:allow diagpure directive requires a non-empty reason" */ //lint:allow diagpure
	d.CacheHits = svc.Stats().FlipHits                                     // want `missingReason writes core.Diagnostics while touching shared scorecache.ServiceStats.FlipHits`
	return d
}

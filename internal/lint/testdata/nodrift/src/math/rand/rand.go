// Package rand is a fixture stub: nodrift denies the package-level
// functions (shared, unseeded generator) but not methods on a seeded
// *Rand, so the stub provides both.
package rand

type Source interface{ Int63() int64 }

type Rand struct{ src Source }

func New(src Source) *Rand { return &Rand{src: src} }

func NewSource(seed int64) Source { return source(seed) }

type source int64

func (s source) Int63() int64 { return int64(s) }

func Float64() float64 { return 0 }

func Intn(n int) int { return 0 }

func Shuffle(n int, swap func(i, j int)) {}

func (r *Rand) Float64() float64 { return 0 }

func (r *Rand) Intn(n int) int { return 0 }

func (r *Rand) Shuffle(n int, swap func(i, j int)) {}

// Package time is a fixture stub: nodrift matches callees by import
// path and name, so a stub with the real path exercises the same
// matching as the standard library.
package time

type Time struct{}

type Duration int64

func Now() Time { return Time{} }

func Since(t Time) Duration { return 0 }

func Unix(sec, nsec int64) Time { return Time{} }

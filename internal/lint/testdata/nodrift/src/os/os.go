// Package os is a fixture stub for nodrift's environment-read checks.
package os

func Getenv(key string) string { return "" }

func LookupEnv(key string) (string, bool) { return "", false }

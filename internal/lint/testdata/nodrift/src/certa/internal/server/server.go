// Package server stands in for certa/internal/server, an allowlisted
// serving layer: clocks and environment reads are its job, so nodrift
// must stay silent here.
package server

import (
	"os"
	"time"
)

func requestClock() time.Time { return time.Now() }

func listenAddr() string { return os.Getenv("CERTA_ADDR") }

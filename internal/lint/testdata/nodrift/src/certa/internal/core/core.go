// Package core stands in for certa/internal/core, a deny-set package:
// nodrift must flag every environmental read here.
package core

import (
	"math/rand"
	"os"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time.Now reads the wall clock inside the deterministic scoring path`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since reads the wall clock inside the deterministic scoring path`
}

func fromEnv() string {
	return os.Getenv("CERTA_SEED") // want `os.Getenv reads the process environment inside the deterministic scoring path`
}

func globalRand() float64 {
	return rand.Float64() // want `rand.Float64 draws from the shared, unseeded generator inside the deterministic scoring path`
}

// seededRand is the sanctioned form: methods on a seeded *rand.Rand
// never match, so this stays silent.
func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// derivedTime constructs a Time from deterministic inputs — fine.
func derivedTime(sec int64) time.Time {
	return time.Unix(sec, 0)
}

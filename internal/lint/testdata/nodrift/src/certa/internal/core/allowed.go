package core

import "time"

// softDeadline mirrors the real anytime-deadline exception: the clock
// read is sanctioned by contract and waived with a reasoned directive.
func softDeadline() time.Time {
	//lint:allow nodrift the anytime deadline is wall-clock by contract (PR 3)
	return time.Now()
}

// trailing directive form on the flagged line itself.
func buildTelemetry(start time.Time) time.Duration {
	return time.Since(start) //lint:allow nodrift build-time telemetry; no Result depends on it
}

// missingReason shows a bare directive: it suppresses nothing and is
// itself reported.
func missingReason() time.Time {
	/* want "lint:allow nodrift directive requires a non-empty reason" */ //lint:allow nodrift
	return time.Now()                                                     // want `time.Now reads the wall clock inside the deterministic scoring path`
}

// Package a is maporder's violating fixture: map iterations that bake
// random order into a slice, a byte stream, and a float sum.
package a

type sink struct{}

func (s *sink) Write(p []byte) (int, error)       { return len(p), nil }
func (s *sink) WriteString(p string) (int, error) { return len(p), nil }

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside range over map`
	}
	return keys
}

func writeInLoop(m map[string]int, w *sink) {
	for k := range m {
		w.WriteString(k) // want `WriteString inside range over map writes bytes in random map order`
	}
}

func floatAccumulate(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation into "sum" inside range over map`
	}
	return sum
}

func accumulateIntoIndexed(m map[string]float64, sums []float64) {
	for _, v := range m {
		sums[0] += v // want `floating-point accumulation into "sums" inside range over map`
	}
}

// Package b is maporder's clean fixture: every map iteration restores
// determinism — append-then-sort, iteration over pre-sorted keys,
// order-free accumulators.
package b

import "sort"

type sink struct{}

func (s *sink) WriteString(p string) (int, error) { return len(p), nil }

// appendThenSort is the sanctioned idiom (scorecache.Snapshot).
func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// appendThenSortSlice sorts through sort.Slice with the accumulator as
// an argument of a nested comparison closure.
func appendThenSortSlice(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// writeSortedKeys iterates a slice, not the map, when writing.
func writeSortedKeys(m map[string]int, w *sink) {
	for _, k := range appendThenSort(m) {
		w.WriteString(k)
	}
}

// intCount and map-to-map copies are order-independent.
func orderFree(m map[string]int) (int, map[string]int) {
	n := 0
	out := make(map[string]int, len(m))
	for k, v := range m {
		n += v
		out[k] = v
	}
	return n, out
}

// localAccumulator appends to a slice declared inside the loop body:
// per-iteration state, no cross-iteration order.
func localAccumulator(m map[string][]string) int {
	total := 0
	for _, vs := range m {
		var local []string
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// Package c is maporder's suppression fixture: the same violations as
// package a, waived with a justified //lint:allow — and one directive
// with no reason, which suppresses nothing and is itself rejected.
package c

func integerValuedSum(m map[string]int) float64 {
	var sum float64
	for _, v := range m {
		//lint:allow maporder summing exact small integers; every order yields the same float
		sum += float64(v)
	}
	return sum
}

func trailingForm(m map[string]int) float64 {
	var sum float64
	for _, v := range m {
		sum += float64(v) //lint:allow maporder integer-valued sum is order-exact
	}
	return sum
}

func missingReason(m map[string]int) []string {
	var keys []string
	for k := range m {
		/* want "lint:allow maporder directive requires a non-empty reason" */ //lint:allow maporder
		keys = append(keys, k)                                                 // want `append to "keys" inside range over map`
	}
	return keys
}

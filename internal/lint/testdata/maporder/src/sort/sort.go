// Package sort is a fixture stub: maporder recognizes redeeming sort
// calls by the callee's package path, so a stub with the real import
// path exercises the same matching as the standard library.
package sort

func Slice(x any, less func(i, j int) bool) {}

func Strings(x []string) {}

func Ints(x []int) {}

// Package allow is ctxthread's suppression fixture.
package allow

import "context"

func Flush() error { return nil }

func FlushContext(ctx context.Context) error { return nil }

// shutdown deliberately detaches: the final flush must run even when
// the caller's context is already cancelled.
func shutdown(ctx context.Context) error {
	//lint:allow ctxthread shutdown flush must complete even after the caller's ctx is cancelled
	return Flush()
}

func missingReason(ctx context.Context) error {
	/* want "lint:allow ctxthread directive requires a non-empty reason" */ //lint:allow ctxthread
	return Flush()                                                          // want `Flush is called from context-bearing missingReason but has a context-aware sibling FlushContext`
}

// Package http is a fixture stub: ctxthread treats an *http.Request
// parameter as context-bearing (its Context method hands one out).
package http

import "context"

type Request struct{ ctx context.Context }

func (r *Request) Context() context.Context { return r.ctx }

type ResponseWriter interface {
	Write(p []byte) (int, error)
}

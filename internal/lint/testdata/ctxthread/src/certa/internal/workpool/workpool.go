// Package workpool is a fixture stub mirroring the real package's
// Each / EachContext pair.
package workpool

import "context"

func Each(n, workers int, fn func(i int) error) error { return nil }

func EachContext(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	return nil
}

// Package vio is ctxthread's violating fixture: context-bearing
// functions calling the non-context variant of an API that has one.
package vio

import (
	"context"
	"net/http"

	"certa/internal/workpool"
)

// Model has both variants, like core.Explain/ExplainContext.
type Model struct{}

func (m *Model) Score() float64 { return 0 }

func (m *Model) ScoreContext(ctx context.Context) float64 { return 0 }

func Run() error { return nil }

func RunContext(ctx context.Context) error { return nil }

func handler(w http.ResponseWriter, r *http.Request) {
	_ = workpool.Each(8, 2, func(i int) error { return nil }) // want `Each is called from context-bearing handler but has a context-aware sibling EachContext`
}

func scoreAll(ctx context.Context, m *Model) float64 {
	return m.Score() // want `Score is called from context-bearing scoreAll but has a context-aware sibling ScoreContext`
}

func driver(ctx context.Context) error {
	return Run() // want `Run is called from context-bearing driver but has a context-aware sibling RunContext`
}

// Package context is a fixture stub: ctxthread matches the Context
// type by import path and name.
package context

type Context interface {
	Done() <-chan struct{}
}

func Background() Context { return nil }

// Package clean is ctxthread's clean fixture: contexts threaded
// through, sibling-free calls, non-context-bearing callers, and the
// sanctioned adapter pattern.
package clean

import (
	"context"
	"net/http"

	"certa/internal/workpool"
)

type Model struct{}

func (m *Model) Score() float64 { return 0 }

func (m *Model) ScoreContext(ctx context.Context) float64 { return 0 }

// Plain has no context variant anywhere.
func Plain() int { return 0 }

// threaded calls the Context variants: nothing to flag.
func threaded(ctx context.Context, m *Model) float64 {
	_ = workpool.EachContext(ctx, 8, 2, func(ctx context.Context, i int) error { return nil })
	return m.ScoreContext(ctx)
}

// noSibling calls an API without a Context variant.
func noSibling(ctx context.Context) int { return Plain() }

// detached bears no context, so the non-context call is fine.
func detached(m *Model) float64 { return m.Score() }

// handler threads the request context on.
func handler(w http.ResponseWriter, r *http.Request) {
	_ = workpool.EachContext(r.Context(), 4, 2, func(ctx context.Context, i int) error { return nil })
}

// Work / WorkContext: the adapter pattern — the Context variant
// dispatching to the plain one after its own ctx bookkeeping — is the
// one sanctioned caller.
func Work() error { return nil }

func WorkContext(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return nil
	default:
	}
	return Work()
}

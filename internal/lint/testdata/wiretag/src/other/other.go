// Package other is outside the wire packages: even an untagged
// Response struct is silent here — the schema contract only covers
// certa and certa/internal/server.
package other

type LocalResponse struct {
	Name string
}

package server

// InfoResponse is pinned by testdata/info_golden.json. Legacy
// deliberately marshals under its Go name; the directive records why.
type InfoResponse struct {
	OK bool `json:"ok"`
	//lint:allow wiretag Legacy predates the tagging contract; v0 clients parse the Go-spelled name
	Legacy string
}

// StatusResponse is pinned by testdata/status_golden.json.
type StatusResponse struct {
	/* want "lint:allow wiretag directive requires a non-empty reason" */ //lint:allow wiretag
	Code int                                                              // want `exported field StatusResponse.Code of wire struct has no json tag`
}

// Package server stands in for certa/internal/server, a wire package:
// its exported structs form the HTTP schema.
package server

type BadResponse struct { // want `wire struct BadResponse has no golden-file reference`
	Name string // want `exported field BadResponse.Name of wire struct has no json tag`
	Hits int    // want `exported field BadResponse.Hits of wire struct has no json tag`
}

// Payload is wire-ish because it already has json-tagged fields; the
// untagged exported field is the accidental-schema-change case.
type Payload struct {
	A int    `json:"a"`
	B string // want `exported field Payload.B of wire struct has no json tag`
}

// PingResponse is fully tagged but cites no golden fixture.
type PingResponse struct { // want `wire struct PingResponse has no golden-file reference`
	OK bool `json:"ok"`
}

// helper is unexported: not part of the wire schema.
type helper struct {
	Name string
}

// Tuning is exported but not wire-ish (no tags, no Request/Response
// suffix): plain config structs stay untagged.
type Tuning struct {
	Workers int
}

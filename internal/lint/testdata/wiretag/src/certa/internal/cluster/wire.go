// Package cluster stands in for certa/internal/cluster, a wire
// package: the router mints its own ring health/stats documents, so
// their schema needs the same tag and golden-file discipline as the
// server's.
package cluster

// RingStatsResponse is fully tagged and cites its fixture in
// testdata/wire_golden.json: the clean case.
type RingStatsResponse struct {
	Workers   int   `json:"workers"`
	Forwarded int64 `json:"forwarded"`
}

type DriftResponse struct { // want `wire struct DriftResponse has no golden-file reference`
	Failovers int // want `exported field DriftResponse.Failovers of wire struct has no json tag`
}

// aggregate is unexported: not part of the wire schema.
type aggregate struct {
	Served int64
}

// Package certa stands in for the public package: its clean wire
// structs must produce no findings.
package certa

// ExplainRequest is the fully tagged request shape.
type ExplainRequest struct {
	LeftID  string `json:"left_id"`
	RightID string `json:"right_id"`
	debug   bool
}

// ExplainResponse is pinned by testdata/explain_response_golden.json;
// json:"-" keeps Internal off the wire deliberately.
type ExplainResponse struct {
	Score    float64 `json:"score"`
	Internal string  `json:"-"`
}

// BatchResponse is pinned by testdata/wire_golden.json.
type BatchResponse struct {
	ExplainResponse
	Items []ExplainResponse `json:"items"`
}

package maporder_test

import (
	"path/filepath"
	"testing"

	"certa/internal/lint/analysistest"
	"certa/internal/lint/maporder"
)

// TestMapOrder covers the violating fixture (a), the clean idioms
// including append-then-sort (b), and suppression: a reasoned
// //lint:allow silences the finding, a reasonless one suppresses
// nothing and is rejected (c).
func TestMapOrder(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata", "maporder"), maporder.Analyzer, "a", "b", "c")
}

// Package maporder defines an analyzer enforcing the repo's
// determinism contract around Go map iteration: explanation results,
// serialized artifacts and hashes must be byte-identical run to run
// (see TestIndexedScanEquivalence and the PR 1 parallelism
// byte-identity tests), and `range` over a map is the one language
// construct whose order changes on every run.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"certa/internal/lint/analysis"
)

// Analyzer flags map iterations whose bodies accumulate ordered output
// — appending to a slice declared outside the loop, writing to an
// io.Writer or hash, or accumulating a floating-point sum — unless the
// accumulated slice is deterministically sorted afterwards in the same
// function (the append-then-sort idiom used by scorecache.Snapshot and
// blocking.CandidatesFor).
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: `flags range-over-map loops that produce ordered output without a deterministic sort

Results, snapshots and saliency orderings must be byte-identical at any
parallelism and across runs. Iterating a map while appending to an
outer slice, writing bytes, or summing floats bakes the runtime's
random map order into the output. Either iterate a sorted key slice,
or append inside the loop and sort the slice immediately after
(scorecache.Snapshot is the reference idiom). Float sums additionally
reorder rounding error; integer-valued sums that are provably exact can
be waived with //lint:allow maporder <reason>.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		// Visit every function body (declarations and literals); each
		// body is scanned independently so a redeeming sort is searched
		// for in the same function that runs the loop.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkBody(pass, body)
			}
			return true
		})
	}
	return nil, nil
}

// checkBody scans one function body (excluding nested function
// literals, which are visited separately) for map-range loops.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	walkSkippingFuncLits(body, func(n ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return
		}
		checkMapRange(pass, body, rng)
	})
}

func checkMapRange(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	walkSkippingFuncLits(rng.Body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return
			}
			obj := rootObject(info, st.Lhs[0])
			if obj == nil || declaredWithin(obj, rng) {
				return
			}
			if st.Tok == token.ASSIGN || st.Tok == token.DEFINE {
				// s = append(s, ...) accumulating into an outer slice.
				if call, ok := st.Rhs[0].(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
					if !sortedAfter(pass, funcBody, rng, obj) {
						pass.Reportf(st.Pos(),
							"append to %q inside range over map bakes random map order into the slice; sort it after the loop or iterate sorted keys", obj.Name())
					}
				}
				return
			}
			// x += ... / x -= ... on a float accumulator: map order
			// reorders the rounding error of the sum.
			if st.Tok == token.ADD_ASSIGN || st.Tok == token.SUB_ASSIGN || st.Tok == token.MUL_ASSIGN || st.Tok == token.QUO_ASSIGN {
				if tv, ok := info.Types[st.Lhs[0]]; ok && isFloat(tv.Type) {
					pass.Reportf(st.Pos(),
						"floating-point accumulation into %q inside range over map makes the rounding order nondeterministic; iterate sorted keys", obj.Name())
				}
			}
		case *ast.CallExpr:
			if name, ok := writerCall(info, st); ok {
				pass.Reportf(st.Pos(),
					"%s inside range over map writes bytes in random map order; iterate sorted keys (append-then-sort, see scorecache.Snapshot)", name)
			}
		}
	})
}

// rootObject resolves the outermost identifier of an assignable
// expression (x, x.f, x[i]) to its object.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj.Pos() != token.NoPos && n.Pos() <= obj.Pos() && obj.Pos() < n.End()
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// writerCall reports whether call feeds bytes to a writer or hash:
// fmt.Fprint*, io.WriteString, or any method named Write/WriteString/
// WriteByte/WriteRune (io.Writer, bufio.Writer, strings.Builder,
// hash.Hash all share these names).
func writerCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return "", false
	}
	if fn.Signature().Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return fn.Name(), true
		}
		return "", false
	}
	if fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln":
			return "fmt." + fn.Name(), true
		}
	case "io":
		if fn.Name() == "WriteString" {
			return "io.WriteString", true
		}
	}
	return "", false
}

// sortedAfter reports whether, after the range loop, the enclosing
// function calls a sort/slices function with obj among its arguments —
// the append-then-sort idiom that restores determinism.
func sortedAfter(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentions(pass.TypesInfo, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func mentions(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// walkSkippingFuncLits visits every node under root except the bodies
// of nested function literals (each function body is analyzed in its
// own right).
func walkSkippingFuncLits(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil || n == root {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		fn(n)
		return true
	})
}

// Package analysistest runs a certa-lint analyzer over GOPATH-style
// fixture trees and checks its findings against `// want` comments,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A fixture tree lives under <testdata>/src/<import/path>/*.go. Imports
// are resolved inside the tree first, so fixtures depend on small local
// stubs of the packages the analyzers match by import path ("context",
// "certa/internal/core", ...) instead of typechecking the real standard
// library — the analyzers only ever look at import paths and names, so
// a stub with the right path exercises exactly the same matching logic
// as the real package while keeping `go test ./internal/lint/...`
// hermetic and fast.
//
// Expectations: a comment `// want "re1" "re2"` on a fixture line
// demands one finding per quoted regexp on that line (any analyzer);
// lines without a want comment demand silence. Findings are checked
// after //lint:allow suppression, through the same analysis.Run entry
// point the vettool uses, so a suppressed fixture asserts the directive
// machinery itself.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"certa/internal/lint/analysis"
)

// Run analyzes each fixture package (an import path under dir/src)
// with a and asserts its findings against the fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	ld := &loader{
		srcroot: filepath.Join(dir, "src"),
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*loaded),
	}
	for _, path := range pkgpaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Errorf("loading fixture package %s: %v", path, err)
			continue
		}
		findings, err := analysis.Run(ld.fset, pkg.files, pkg.pkg, pkg.info, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		check(t, ld.fset, pkg.files, findings)
	}
}

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader typechecks fixture packages, resolving imports inside the
// fixture tree so stubs shadow the real standard library.
type loader struct {
	srcroot string
	fset    *token.FileSet
	pkgs    map[string]*loaded
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	p, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return p.pkg, nil
}

func (l *loader) load(path string) (*loaded, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return p, nil
	}
	l.pkgs[path] = nil // cycle marker

	dir := filepath.Join(l.srcroot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q: %w (fixtures must stub every import under testdata/src)", path, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture package %q: no .go files", path)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{Importer: l}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &loaded{pkg: pkg, files: files, info: info}
	l.pkgs[path] = p
	return p, nil
}

// wantRe extracts the quoted regexps of a want comment: interpreted
// ("...") or raw (backquoted) string literals, the latter for patterns
// that themselves contain double quotes.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

func check(t *testing.T, fset *token.FileSet, files []*ast.File, findings []analysis.Finding) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The block form `/* want "..." */` exists for lines whose
				// line-comment slot is already taken — e.g. asserting the
				// rejection of a reasonless //lint:allow on its own line.
				var text string
				var ok bool
				if strings.HasPrefix(c.Text, "/*") {
					inner := strings.TrimSuffix(strings.TrimPrefix(c.Text, "/*"), "*/")
					text, ok = strings.CutPrefix(strings.TrimSpace(inner), "want ")
				} else {
					text, ok = strings.CutPrefix(c.Text, "// want ")
				}
				if !ok {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, q := range wantRe.FindAllString(text, -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", posn, q, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", posn, pat, err)
						continue
					}
					k := key{posn.Filename, posn.Line}
					wants[k] = append(wants[k], &expectation{re: re})
				}
			}
		}
	}

	for _, f := range findings {
		posn := fset.Position(f.Pos)
		k := key{posn.Filename, posn.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s [%s]", posn, f.Message, f.Analyzer)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, w.re)
			}
		}
	}
}

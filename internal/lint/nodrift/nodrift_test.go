package nodrift_test

import (
	"path/filepath"
	"testing"

	"certa/internal/lint/analysistest"
	"certa/internal/lint/nodrift"
)

// TestNoDrift covers the deny-set package (certa/internal/core stub):
// clock, environment and global-rand reads are flagged, seeded
// *rand.Rand methods are not, reasoned directives suppress and a
// reasonless one is rejected — and the allowlisted serving layer
// (certa/internal/server stub) where the same calls are silent.
func TestNoDrift(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata", "nodrift"), nodrift.Analyzer,
		"certa/internal/core", "certa/internal/server")
}

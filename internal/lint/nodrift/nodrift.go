// Package nodrift defines an analyzer keeping environmental
// nondeterminism — wall clocks, the global math/rand generator,
// process environment — out of the deterministic scoring path.
//
// The repo's contract (PR 1, gated by the parallelism byte-identity
// tests) is that Explain/ExploreMany/ScoreBatch produce byte-identical
// Results for the same inputs: every random choice is derived from
// Options.Seed and every truncation decision from deterministic call
// accounting. Whole-program reachability needs cross-package facts, so
// this analyzer enforces the contract at package granularity: every
// package that computes results (anything reachable from
// core.Explain, lattice.ExploreMany or the ScoreBatch stack) is in the
// deny set, while the serving and tooling layers (internal/server,
// internal/debugserve, internal/eval, cmd/*) stay free to read clocks
// and the environment. The sanctioned in-path exceptions — the
// anytime-deadline clock reads in internal/core/anytime.go and
// wall-clock telemetry such as index build times — carry
// //lint:allow nodrift directives with their justification.
package nodrift

import (
	"go/ast"
	"go/types"

	"certa/internal/lint/analysis"
)

// Analyzer flags time.Now/Since/Until, os.Getenv-style environment
// reads, and global math/rand functions inside the deterministic
// scoring packages.
var Analyzer = &analysis.Analyzer{
	Name: "nodrift",
	Doc: `forbids wall clocks, global math/rand and environment reads in the deterministic scoring path

Explanations must be byte-identical for the same inputs at any
parallelism. time.Now, the shared math/rand generator and os.Getenv
smuggle run-to-run state into scoring. Use a seeded *rand.Rand
(Options.Seed), thread deadlines in from the serving layer, and read
configuration in cmd/*. Sanctioned uses (the anytime-deadline clock,
build-time telemetry) carry //lint:allow nodrift <reason>.`,
	Run: run,
}

// deterministicPackages is the deny set: every package whose code runs
// while a Result is being computed. internal/server, internal/
// debugserve and cmd/* are deliberately absent — they are the
// allowlisted serving layers the contract routes clocks through.
var deterministicPackages = map[string]bool{
	"certa":                       true,
	"certa/internal/baselines":    true,
	"certa/internal/blocking":     true,
	"certa/internal/core":         true,
	"certa/internal/dataset":      true,
	"certa/internal/embedding":    true,
	"certa/internal/explain":      true,
	"certa/internal/lattice":      true,
	"certa/internal/lime":         true,
	"certa/internal/linmodel":     true,
	"certa/internal/matchers":     true,
	"certa/internal/metrics":      true,
	"certa/internal/neighborhood": true,
	"certa/internal/nn":           true,
	"certa/internal/record":       true,
	"certa/internal/scorecache":   true,
	"certa/internal/shap":         true,
	"certa/internal/strutil":      true,
	"certa/internal/vector":       true,
	"certa/internal/workpool":     true,
	// telemetry is instrumented *into* the scoring path, so it joins the
	// deny set: all of its span timing must flow through the one waived
	// clock read behind telemetry.Clock (clock.go), not ad-hoc time.Now
	// calls.
	"certa/internal/telemetry": true,
}

// denied maps package path -> package-level function names that leak
// environmental state. Methods (e.g. (*rand.Rand).Intn, which is
// seeded and fine) never match: only the package-level globals do.
var denied = map[string]map[string]string{
	"time": {
		"Now":   "reads the wall clock",
		"Since": "reads the wall clock",
		"Until": "reads the wall clock",
	},
	"os": {
		"Getenv":    "reads the process environment",
		"LookupEnv": "reads the process environment",
		"Environ":   "reads the process environment",
	},
	"math/rand": {
		"Int": "", "Intn": "", "Int31": "", "Int31n": "", "Int63": "", "Int63n": "",
		"Uint32": "", "Uint64": "", "Float32": "", "Float64": "",
		"ExpFloat64": "", "NormFloat64": "", "Perm": "", "Shuffle": "", "Seed": "", "Read": "",
	},
	"math/rand/v2": {
		"Int": "", "IntN": "", "Int32": "", "Int32N": "", "Int64": "", "Int64N": "",
		"Uint": "", "UintN": "", "Uint32": "", "Uint32N": "", "Uint64": "", "Uint64N": "",
		"Float32": "", "Float64": "", "ExpFloat64": "", "NormFloat64": "", "Perm": "", "Shuffle": "", "N": "",
	},
}

func run(pass *analysis.Pass) (any, error) {
	if !deterministicPackages[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Signature().Recv() != nil {
				return true
			}
			names, ok := denied[fn.Pkg().Path()]
			if !ok {
				return true
			}
			why, ok := names[fn.Name()]
			if !ok {
				return true
			}
			if why == "" {
				why = "draws from the shared, unseeded generator"
			}
			pass.Reportf(call.Pos(),
				"%s.%s %s inside the deterministic scoring path; derive it from Options.Seed or thread it in from the serving layer (or //lint:allow nodrift <reason>)",
				fn.Pkg().Name(), fn.Name(), why)
			return true
		})
	}
	return nil, nil
}

package diagpure_test

import (
	"path/filepath"
	"testing"

	"certa/internal/lint/analysistest"
	"certa/internal/lint/diagpure"
)

// TestDiagPure covers Diagnostics-from-Service violations (vio), the
// sanctioned Scorer-view population and write-free Service reads
// (clean), and directive suppression plus empty-reason rejection
// (allow).
func TestDiagPure(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata", "diagpure"), diagpure.Analyzer,
		"vio", "clean", "allow")
}

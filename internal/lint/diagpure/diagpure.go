// Package diagpure defines an analyzer keeping core.Diagnostics
// schedule-independent.
//
// Diagnostics is part of the explanation Result and the wire schema:
// PR 1's contract (re-affirmed by PR 3's budget accounting and PR 6's
// flip memo) is that every counter in it is byte-identical at any
// Parallelism. The shared scorecache.Service, by contrast, aggregates
// counters across concurrently running explanations — ServiceStats
// explicitly documents that its flip counters depend on scheduling.
// PR 6 dodged exactly this bug class by keeping FlipHits in
// ServiceStats instead of Diagnostics; this analyzer makes that
// decision a checked contract: no function may both populate
// Diagnostics and read shared Service state.
package diagpure

import (
	"go/ast"
	"go/token"

	"certa/internal/lint/analysis"
)

const (
	corePath       = "certa/internal/core"
	scorecachePath = "certa/internal/scorecache"
)

// Analyzer flags functions that write core.Diagnostics fields (or
// construct a Diagnostics literal) while also touching shared
// scorecache.Service / ServiceStats state. Per-explanation Scorer
// views are exempt: their private hit/miss accounting is
// parallelism-deterministic by design and is the sanctioned source for
// Diagnostics counters.
var Analyzer = &analysis.Analyzer{
	Name: "diagpure",
	Doc: `forbids populating core.Diagnostics from shared scorecache.Service state

Diagnostics counters must be identical at any Parallelism; shared
Service/ServiceStats counters depend on which explanation got scheduled
first. Populate Diagnostics only from the per-explanation Scorer view,
and surface shared-service counters through ServiceStats and /v1/stats
(the FlipHits split PR 6 established).`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			check(pass, fn)
		}
	}
	return nil, nil
}

func check(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	var diagWrites []token.Pos
	var sharedTouch token.Pos
	sharedWhat := ""

	recordDiagWrite := func(e ast.Expr) {
		if sel, ok := e.(*ast.SelectorExpr); ok {
			if tv, ok := info.Types[sel.X]; ok && analysis.IsNamed(tv.Type, corePath, "Diagnostics") {
				diagWrites = append(diagWrites, e.Pos())
			}
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				recordDiagWrite(lhs)
			}
		case *ast.IncDecStmt:
			recordDiagWrite(x.X)
		case *ast.CompositeLit:
			if tv, ok := info.Types[x]; ok && analysis.IsNamed(tv.Type, corePath, "Diagnostics") && len(x.Elts) > 0 {
				diagWrites = append(diagWrites, x.Pos())
			}
		case *ast.SelectorExpr:
			// Any method call or field read on the shared Service, or a
			// field read of aggregate ServiceStats, counts as touching
			// schedule-dependent state.
			if tv, ok := info.Types[x.X]; ok && sharedTouch == token.NoPos {
				if analysis.IsNamed(tv.Type, scorecachePath, "Service") {
					sharedTouch, sharedWhat = x.Pos(), "scorecache.Service."+x.Sel.Name
				} else if analysis.IsNamed(tv.Type, scorecachePath, "ServiceStats") {
					sharedTouch, sharedWhat = x.Pos(), "scorecache.ServiceStats."+x.Sel.Name
				}
			}
		}
		return true
	})

	if sharedTouch == token.NoPos {
		return
	}
	for _, pos := range diagWrites {
		pass.Reportf(pos,
			"%s writes core.Diagnostics while touching shared %s; shared-service counters are schedule-dependent and must stay out of Diagnostics (use the per-explanation Scorer view, report shared counters via ServiceStats)",
			fn.Name.Name, sharedWhat)
	}
}

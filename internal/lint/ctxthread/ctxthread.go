// Package ctxthread defines an analyzer that keeps context threading
// intact: once a function has a context.Context (or an *http.Request
// carrying one), calling the non-context variant of an API that has
// one silently drops cancellation and anytime budgets on the floor —
// the exact failure mode PR 3 built ExplainContext / ScoreBatchContext
// / EachContext to prevent.
package ctxthread

import (
	"go/ast"
	"go/types"

	"certa/internal/lint/analysis"
)

// Analyzer flags calls to a function or method X from a
// context-bearing function when an X + "Context" sibling exists (same
// package scope or same method set) whose first parameter is a
// context.Context.
var Analyzer = &analysis.Analyzer{
	Name: "ctxthread",
	Doc: `flags calls to non-context API variants from context-bearing functions

A function holding a context.Context (or an *http.Request) that calls
ScoreBatch/Each/Explain instead of the Context variant severs the
cancellation and call-budget chain PR 3 threaded through the scoring
stack: client disconnects and deadlines stop propagating. Call the
*Context sibling and pass the ctx. Deliberate detachment (e.g. an
adapter's fallback path) is waived with //lint:allow ctxthread
<reason>; the adapter X-Context-calls-X pattern itself is recognized
and never flagged.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !bearsContext(pass.TypesInfo, fn) {
				continue
			}
			checkCalls(pass, fn)
		}
	}
	return nil, nil
}

// bearsContext reports whether fn can reach a context: a
// context.Context parameter or an *http.Request (whose Context method
// hands one out).
func bearsContext(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			continue
		}
		if isContext(tv.Type) || analysis.IsNamed(tv.Type, "net/http", "Request") {
			return true
		}
	}
	return false
}

func isContext(t types.Type) bool {
	return analysis.IsNamed(t, "context", "Context")
}

func checkCalls(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch e := call.Fun.(type) {
		case *ast.Ident:
			id = e
		case *ast.SelectorExpr:
			id = e.Sel
		default:
			return true
		}
		callee, ok := info.ObjectOf(id).(*types.Func)
		if !ok || callee.Pkg() == nil {
			return true
		}
		name := callee.Name()
		if len(name) >= len("Context") && name[len(name)-len("Context"):] == "Context" {
			return true
		}
		// The adapter pattern — XContext dispatching to X after doing
		// the ctx bookkeeping itself — is the one sanctioned caller.
		if fn.Name.Name == name+"Context" {
			return true
		}
		variant := contextVariant(callee)
		if variant == nil {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s is called from context-bearing %s but has a context-aware sibling %s; call it and thread the ctx so cancellation and budgets propagate",
			name, fn.Name.Name, variant.Name())
		return true
	})
}

// contextVariant finds a sibling of callee named <name>Context whose
// first parameter is a context.Context: in the same package scope for
// functions, in the receiver's method set for methods.
func contextVariant(callee *types.Func) *types.Func {
	name := callee.Name() + "Context"
	sig := callee.Signature()
	var obj types.Object
	if recv := sig.Recv(); recv != nil {
		obj, _, _ = types.LookupFieldOrMethod(recv.Type(), true, callee.Pkg(), name)
	} else {
		obj = callee.Pkg().Scope().Lookup(name)
	}
	v, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	vsig := v.Signature()
	if vsig.Params().Len() == 0 || !isContext(vsig.Params().At(0).Type()) {
		return nil
	}
	return v
}

package ctxthread_test

import (
	"path/filepath"
	"testing"

	"certa/internal/lint/analysistest"
	"certa/internal/lint/ctxthread"
)

// TestCtxThread covers non-context calls from ctx-bearing functions
// and http handlers (vio), threaded/sibling-free/adapter cases
// (clean), and directive suppression plus empty-reason rejection
// (allow).
func TestCtxThread(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata", "ctxthread"), ctxthread.Analyzer,
		"vio", "clean", "allow")
}

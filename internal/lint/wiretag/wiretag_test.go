package wiretag_test

import (
	"path/filepath"
	"testing"

	"certa/internal/lint/analysistest"
	"certa/internal/lint/wiretag"
)

// TestWireTag covers untagged wire fields and golden-less Response
// types in the server stub (including a reasoned field-level waiver
// and an empty-reason rejection), the cluster stub's router-minted
// documents, the fully clean public-package fixture, and a non-wire
// package where everything is silent.
func TestWireTag(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata", "wiretag"), wiretag.Analyzer,
		"certa/internal/server", "certa/internal/cluster", "certa", "other")
}

// Package wiretag defines an analyzer guarding the wire schema's
// stability. PR 4 froze the HTTP API's JSON shape behind explicit
// struct tags and a golden-file round-trip test; an exported field
// added without a tag silently ships a Go-spelled name to every
// client, and a new top-level response type without a golden file has
// no drift detector at all. This analyzer turns both into vet
// failures.
package wiretag

import (
	"go/ast"
	"reflect"
	"regexp"
	"strconv"
	"strings"

	"certa/internal/lint/analysis"
)

// wirePackages are the packages whose exported structs form the HTTP
// wire schema: the server's request/response/stats types, the cluster
// router's ring health/stats documents, and any wire struct declared
// in the public certa package.
var wirePackages = map[string]bool{
	"certa":                  true,
	"certa/internal/server":  true,
	"certa/internal/cluster": true,
}

// goldenRef matches a reference to a golden fixture file in a doc
// comment, e.g. "testdata/explain_response_golden.json".
var goldenRef = regexp.MustCompile(`testdata/[^\s"]+\.json`)

// Analyzer enforces, inside the wire packages: (1) every exported
// field of a wire struct (a struct named *Request/*Response, or one
// that already has json-tagged fields) carries an explicit json tag;
// (2) every top-level *Response struct's doc comment names the golden
// fixture (testdata/*.json) that pins its serialized form.
var Analyzer = &analysis.Analyzer{
	Name: "wiretag",
	Doc: `requires explicit json tags and a golden-file reference on wire structs

The HTTP schema (PR 4) is a compatibility contract: clients parse the
exact bytes. An untagged exported field marshals under its Go name and
changes the schema by accident; a response type without a golden
fixture has no test standing between a refactor and every downstream
client. Tag every exported field (use json:"-" to keep one off the
wire deliberately) and reference the golden file in the response
type's doc comment.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !wirePackages[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				checkStruct(pass, ts.Name.Name, st, doc)
			}
		}
	}
	return nil, nil
}

func checkStruct(pass *analysis.Pass, name string, st *ast.StructType, doc *ast.CommentGroup) {
	wireish := strings.HasSuffix(name, "Request") || strings.HasSuffix(name, "Response")
	if !wireish {
		for _, field := range st.Fields.List {
			if _, ok := jsonTag(field); ok {
				wireish = true
				break
			}
		}
	}
	if !wireish {
		return
	}

	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			continue // embedded: its own declaration is checked
		}
		_, tagged := jsonTag(field)
		for _, fname := range field.Names {
			if !fname.IsExported() {
				continue
			}
			if !tagged {
				pass.Reportf(fname.Pos(),
					"exported field %s.%s of wire struct has no json tag; the wire name must be chosen explicitly (json:\"...\" or json:\"-\")", name, fname.Name)
			}
		}
	}

	if strings.HasSuffix(name, "Response") {
		if doc == nil || !goldenRef.MatchString(doc.Text()) {
			pass.Reportf(st.Pos(),
				"wire struct %s has no golden-file reference; cite the fixture (testdata/*.json) pinning its schema in the type's doc comment", name)
		}
	}
}

// jsonTag returns the json struct tag of field, if present.
func jsonTag(field *ast.Field) (string, bool) {
	if field.Tag == nil {
		return "", false
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return "", false
	}
	return reflect.StructTag(raw).Lookup("json")
}

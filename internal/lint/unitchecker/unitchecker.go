// Package unitchecker makes a suite of analyzers runnable as a
// `go vet -vettool` program. It speaks the cmd/go vet protocol:
//
//   - `certa-lint -V=full` prints a version line that hashes the
//     binary, so the go command's build cache keys vet results on the
//     tool's exact contents;
//   - `certa-lint -flags` prints the JSON flag descriptions the go
//     command uses to validate command-line analyzer selection;
//   - `certa-lint [-<analyzer>...] <unit>.cfg` analyzes one package:
//     the .cfg file (written by cmd/go) names the Go sources, maps
//     every import to the compiler's export-data file in the build
//     cache, and names the .vetx facts file the tool must write.
//
// Like the x/tools original this reads dependency types from gc export
// data via go/importer, so analysis of a package never re-typechecks
// its dependencies from source. Unlike the original it has no facts to
// exchange, so dependency units (VetxOnly) are satisfied with an empty
// facts file and skipped — `go vet ./...` only pays for the packages
// it names.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"certa/internal/lint/analysis"
)

// Config is the JSON schema of the .cfg file cmd/go hands a vettool
// for each package unit. Field names and meaning match the go
// command's (and x/tools unitchecker's) definition; fields this driver
// does not consume are kept so decoding stays strict about nothing and
// future go versions remain compatible.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool built from the given
// analyzers. It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (go vet passes -V=full for cache keying)")
	flagsFlag := fs.Bool("flags", false, "print the tool's flag descriptions as JSON and exit")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as JSON on stdout instead of text on stderr")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		enabled[a.Name] = fs.Bool(a.Name, false, doc)
	}
	fs.Parse(os.Args[1:])

	if *versionFlag != "" {
		printVersion(progname)
		os.Exit(0)
	}
	if *flagsFlag {
		printFlags(analyzers)
		os.Exit(0)
	}

	// cmd/go semantics: naming any analyzer runs only the named ones;
	// naming none runs them all.
	var selected []*analysis.Analyzer
	any := false
	for _, a := range analyzers {
		if *enabled[a.Name] {
			any = true
			selected = append(selected, a)
		}
	}
	if !any {
		selected = analyzers
	}

	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, `%[1]s: invoke via "go vet -vettool=$(which %[1]s) ./..." (direct use requires a cmd/go-generated .cfg argument)`+"\n", progname)
		os.Exit(1)
	}
	os.Exit(run(args[0], selected, *jsonFlag))
}

// printVersion emits the `name version ...` line cmd/go hashes into
// its action IDs. Including a digest of the executable means editing
// an analyzer invalidates cached vet results, exactly like x/tools.
func printVersion(progname string) {
	data, err := os.ReadFile(os.Args[0])
	if err != nil {
		// Still print a well-formed line; the go command only needs
		// the "name version ..." shape.
		fmt.Printf("%s version devel certa-lint\n", progname)
		return
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, sha256.Sum256(data))
}

type flagDesc struct {
	Name  string
	Bool  bool
	Usage string
}

func printFlags(analyzers []*analysis.Analyzer) {
	descs := []flagDesc{{Name: "V", Bool: false, Usage: "print version and exit"}}
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		descs = append(descs, flagDesc{Name: a.Name, Bool: true, Usage: doc})
	}
	data, err := json.Marshal(descs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

func run(cfgFile string, analyzers []*analysis.Analyzer, asJSON bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "certa-lint: %v\n", err)
		return 1
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "certa-lint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// Dependency units exist only to provide facts to their importers.
	// certa-lint is facts-free, so an empty .vetx satisfies the build
	// graph and the (possibly large) dependency is never typechecked.
	if cfg.VetxOnly {
		if err := writeVetx(cfg.VetxOutput); err != nil {
			fmt.Fprintf(os.Stderr, "certa-lint: %v\n", err)
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "certa-lint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(&cfg, fset, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "certa-lint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	findings, err := analysis.Run(fset, files, pkg, info, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "certa-lint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	// The facts file must exist even when diagnostics are reported,
	// otherwise cmd/go records a cache miss for every importer.
	if err := writeVetx(cfg.VetxOutput); err != nil {
		fmt.Fprintf(os.Stderr, "certa-lint: %v\n", err)
		return 1
	}

	if len(findings) == 0 {
		return 0
	}
	if asJSON {
		printJSON(cfg.ID, fset, findings)
		return 0 // mirror x/tools: -json reports findings as data, not failure
	}
	wd, _ := os.Getwd()
	for _, f := range findings {
		posn := fset.Position(f.Pos)
		name := posn.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", name, posn.Line, posn.Column, f.Message, f.Analyzer)
	}
	return 2
}

func printJSON(id string, fset *token.FileSet, findings []analysis.Finding) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]jsonDiag)
	for _, f := range findings {
		byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], jsonDiag{
			Posn:    fset.Position(f.Pos).String(),
			Message: f.Message,
		})
	}
	out := map[string]map[string][]jsonDiag{id: byAnalyzer}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	enc.Encode(out)
}

func writeVetx(path string) error {
	if path == "" {
		return nil
	}
	return os.WriteFile(path, []byte("certa-lint: no facts\n"), 0666)
}

// typecheck loads the unit's dependency types from the gc export-data
// files cmd/go listed in the config and typechecks the unit's sources.
func typecheck(cfg *Config, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		if actual, ok := cfg.ImportMap[path]; ok {
			path = actual
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	tcfg := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parse(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestParseDirectives(t *testing.T) {
	fset, files := parse(t, `package p

//lint:allow maporder keys are attribute names; order restored by Ranked()
var a int

//lint:allow nodrift
var b int

//lint:allowother not a directive at all
var c int

var d int //lint:allow ctxthread	tab-separated   reason preserved
`)
	ds := ParseDirectives(fset, files)
	if len(ds) != 3 {
		t.Fatalf("got %d directives, want 3: %+v", len(ds), ds)
	}
	if ds[0].Analyzer != "maporder" || ds[0].Reason != "keys are attribute names; order restored by Ranked()" || ds[0].Line != 3 {
		t.Errorf("directive 0 = %+v", ds[0])
	}
	if ds[1].Analyzer != "nodrift" || ds[1].Reason != "" {
		t.Errorf("reasonless directive = %+v; want empty Reason for rejection", ds[1])
	}
	if ds[2].Analyzer != "ctxthread" || ds[2].Reason != "tab-separated reason preserved" {
		t.Errorf("trailing directive = %+v", ds[2])
	}
}

// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects
// one type-checked package through a Pass and reports Diagnostics.
//
// The build container for this repository has no module proxy access
// and an empty module cache, so the canonical x/tools dependency cannot
// be pinned in go.mod. This package keeps the same shape (Analyzer,
// Pass, Diagnostic, pass.Reportf) so the certa-lint analyzers can be
// ported to the real framework by swapping one import when the
// dependency becomes available; until then the repo stays std-lib only.
// What is deliberately NOT reimplemented: facts (cross-package
// analysis), sub-analyzer requirements, and suggested fixes — the
// certa-lint contracts are all expressible per package.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one source-level contract checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph contract statement shown by
	// `certa-lint help`.
	Doc string

	// Run inspects the package and reports findings via pass.Report.
	// The returned value is unused (kept for x/tools signature
	// compatibility).
	Run func(*Pass) (any, error)
}

// A Pass is the interface between the driver and one Analyzer applied
// to one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver applies //lint:allow
	// suppression after the fact, so analyzers always report.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding tied to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a Diagnostic attributed to the analyzer that produced
// it, after suppression filtering.
type Finding struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. The certa-lint contracts govern shipped code; tests routinely
// (and harmlessly) range over maps, stub clocks, and call the
// non-context variants directly.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// Deref removes any pointer indirections from t.
func Deref(t types.Type) types.Type {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// IsNamed reports whether t (after removing pointers and aliases) is
// the named type pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n, ok := Deref(types.Unalias(t)).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// Run applies every analyzer to the package, filters the findings
// through the //lint:allow directives found in the files, validates
// those directives, and returns the surviving findings ordered by
// position. This is the single entry point shared by the vettool
// driver (cmd/certa-lint via internal/lint/unitchecker) and the
// analysistest harness, so suppression behaves identically under
// `go vet` and under `go test`.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d Diagnostic) {
				findings = append(findings, Finding{Analyzer: a.Name, Pos: d.Pos, Message: d.Message})
			},
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	directives := ParseDirectives(fset, files)

	// An allow directive covers its own line (trailing comment) and the
	// line below it (standalone comment above the flagged statement).
	type key struct {
		file     string
		line     int
		analyzer string
	}
	allowed := make(map[key]bool)
	for _, d := range directives {
		if !known[d.Analyzer] || d.Reason == "" {
			continue
		}
		allowed[key{d.File, d.Line, d.Analyzer}] = true
		allowed[key{d.File, d.Line + 1, d.Analyzer}] = true
	}

	kept := findings[:0]
	for _, f := range findings {
		posn := fset.Position(f.Pos)
		if allowed[key{posn.Filename, posn.Line, f.Analyzer}] {
			continue
		}
		kept = append(kept, f)
	}
	findings = kept

	// A directive without a reason never suppresses anything and is
	// itself a finding: the whole point of //lint:allow is that every
	// waived invariant carries its justification in the source.
	for _, d := range directives {
		if !known[d.Analyzer] {
			continue
		}
		if d.Reason == "" {
			findings = append(findings, Finding{
				Analyzer: d.Analyzer,
				Pos:      d.Pos,
				Message:  fmt.Sprintf("//lint:allow %s directive requires a non-empty reason", d.Analyzer),
			})
		}
	}

	sortFindings(fset, findings)
	return findings, nil
}

func sortFindings(fset *token.FileSet, fs []Finding) {
	// Order by file position, then analyzer name, for stable output.
	less := func(a, b Finding) bool {
		pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		if pa.Line != pb.Line {
			return pa.Line < pb.Line
		}
		if pa.Column != pb.Column {
			return pa.Column < pb.Column
		}
		return a.Analyzer < b.Analyzer
	}
	// Insertion sort: finding lists are tiny.
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && less(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces a suppression comment:
//
//	//lint:allow <analyzer> <reason...>
//
// The directive waives <analyzer>'s findings on the directive's own
// line (trailing-comment form) or on the line immediately below it
// (standalone-comment form). The reason is mandatory: a reasonless
// directive suppresses nothing and is reported as a finding itself,
// so every waived invariant is justified where it is waived.
const directivePrefix = "//lint:allow"

// A Directive is one parsed //lint:allow comment.
type Directive struct {
	// Analyzer is the name of the analyzer being waived.
	Analyzer string
	// Reason is the justification; empty means the directive is
	// malformed and must be rejected.
	Reason string
	// File and Line locate the directive comment itself.
	File string
	Line int
	Pos  token.Pos
}

// ParseDirectives extracts every //lint:allow directive from the
// files' comments. Malformed directives (no analyzer name at all) are
// represented with an empty Analyzer and skipped by the driver; a
// directive naming an analyzer but giving no reason is returned with
// Reason == "" so the driver can reject it.
func ParseDirectives(fset *token.FileSet, files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := c.Text[len(directivePrefix):]
				// Require a separator so "//lint:allowother" is not a directive.
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				fields := strings.Fields(rest)
				d := Directive{Pos: c.Pos()}
				posn := fset.Position(c.Pos())
				d.File, d.Line = posn.Filename, posn.Line
				if len(fields) > 0 {
					d.Analyzer = fields[0]
				}
				if len(fields) > 1 {
					d.Reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

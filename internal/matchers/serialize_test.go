package matchers

import (
	"math"
	"testing"
)

func TestModelSerializationRoundtrip(t *testing.T) {
	b, models := testBenchmark(t)
	for kind, m := range models {
		data, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		var back Model
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if back.Kind() != kind {
			t.Errorf("kind lost: %s vs %s", back.Kind(), kind)
		}
		// Scores must be bit-identical across the roundtrip.
		for _, p := range b.Test[:20] {
			want := m.Score(p.Pair)
			got := back.Score(p.Pair)
			if math.Abs(want-got) > 1e-15 {
				t.Fatalf("%s: score drift %v vs %v on %s", kind, got, want, p.Key())
			}
		}
	}
}

func TestModelUnmarshalGarbage(t *testing.T) {
	var m Model
	if err := m.UnmarshalBinary([]byte("not a model")); err == nil {
		t.Error("garbage should fail to decode")
	}
}

package matchers

import (
	"testing"

	"certa/internal/dataset"
	"certa/internal/record"
)

// TestScoreBatchMatchesScore checks the batch path is bit-identical to
// scalar scoring for every architecture, including batches dominated by
// pairs sharing a record (the embedding-memo path).
func TestScoreBatchMatchesScore(t *testing.T) {
	b := dataset.MustGenerate("AB", dataset.Options{Seed: 3, MaxRecords: 60, MaxMatches: 30})
	for _, kind := range []Kind{DeepER, DeepMatcher, Ditto, SVM} {
		m, err := Train(kind, b, Config{Seed: 3, Epochs: 5})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		var pairs []record.Pair
		for _, lp := range b.Test {
			pairs = append(pairs, lp.Pair)
		}
		// Shared-record batch: one pivot against many rights.
		pivot := b.Test[0].Pair.Left
		for _, lp := range b.Test[:min(8, len(b.Test))] {
			pairs = append(pairs, record.Pair{Left: pivot, Right: lp.Pair.Right})
		}
		got := m.ScoreBatch(pairs)
		if len(got) != len(pairs) {
			t.Fatalf("%s: %d scores for %d pairs", kind, len(got), len(pairs))
		}
		for i, p := range pairs {
			if want := m.Score(p); got[i] != want {
				t.Errorf("%s: pair %d batch score %v != scalar %v", kind, i, got[i], want)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package matchers

import (
	"testing"

	"certa/internal/dataset"
	"certa/internal/record"
)

// TestScoreBatchMatchesScore checks the batch path is bit-identical to
// scalar scoring for every architecture, including batches dominated by
// pairs sharing a record (the embedding-memo path).
func TestScoreBatchMatchesScore(t *testing.T) {
	b := dataset.MustGenerate("AB", dataset.Options{Seed: 3, MaxRecords: 60, MaxMatches: 30})
	for _, kind := range []Kind{DeepER, DeepMatcher, Ditto, SVM} {
		m, err := Train(kind, b, Config{Seed: 3, Epochs: 5})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		var pairs []record.Pair
		for _, lp := range b.Test {
			pairs = append(pairs, lp.Pair)
		}
		// Shared-record batch: one pivot against many rights.
		pivot := b.Test[0].Pair.Left
		for _, lp := range b.Test[:min(8, len(b.Test))] {
			pairs = append(pairs, record.Pair{Left: pivot, Right: lp.Pair.Right})
		}
		got := m.ScoreBatch(pairs)
		if len(got) != len(pairs) {
			t.Fatalf("%s: %d scores for %d pairs", kind, len(got), len(pairs))
		}
		for i, p := range pairs {
			if want := m.Score(p); got[i] != want {
				t.Errorf("%s: pair %d batch score %v != scalar %v", kind, i, got[i], want)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestEmbeddingStorePersistsAcrossBatches: the matcher-owned embedding
// store must keep serving texts seen in earlier batches (the per-batch
// memo it replaced forgot everything between calls), so a repeated batch
// is all hits and adds no entries.
func TestEmbeddingStorePersistsAcrossBatches(t *testing.T) {
	b := dataset.MustGenerate("AB", dataset.Options{Seed: 5, MaxRecords: 40, MaxMatches: 20})
	m, err := Train(DeepMatcher, b, Config{Seed: 5, Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	var pairs []record.Pair
	for _, lp := range b.Test[:min(6, len(b.Test))] {
		pairs = append(pairs, lp.Pair)
	}
	first := m.ScoreBatch(pairs)
	st1 := m.EmbeddingStats()
	if st1.Entries == 0 {
		t.Fatal("embedding store empty after scoring; store not wired into ScoreBatch")
	}
	second := m.ScoreBatch(pairs)
	st2 := m.EmbeddingStats()
	if st2.Entries != st1.Entries {
		t.Fatalf("repeat batch grew the store: %d -> %d entries", st1.Entries, st2.Entries)
	}
	if st2.Misses != st1.Misses {
		t.Fatalf("repeat batch recomputed embeddings: misses %d -> %d", st1.Misses, st2.Misses)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("pair %d: repeat score %v != first %v", i, second[i], first[i])
		}
	}
}

// Package matchers implements the three deep-learning ER systems whose
// predictions the paper explains — DeepER, DeepMatcher and Ditto — plus a
// classic linear (SVM-style) baseline. The PyTorch originals are
// substituted by Go feed-forward networks over architecture-specific
// featurizations that preserve each system's character:
//
//   - DeepER sees the pair at *record level* (whole-record distributed
//     representations; attribute boundaries blurred);
//   - DeepMatcher sees *attribute-level* similarity summaries;
//   - Ditto sees a *serialized token sequence* with injected column
//     markers and domain knowledge (number normalization), plus
//     train-time data augmentation — and is the strongest of the three.
//
// See DESIGN.md §1 for the substitution rationale. All trained models are
// pure and safe for concurrent Score calls.
package matchers

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"certa/internal/dataset"
	"certa/internal/embedding"
	"certa/internal/nn"
	"certa/internal/record"
	"certa/internal/telemetry"
)

// Matcher is a black-box ER classifier: Score returns the matching
// probability of a pair in [0,1]; a score above 0.5 means Match.
type Matcher interface {
	Name() string
	Score(p record.Pair) float64
}

// IsMatch applies the paper's decision threshold (score > 0.5).
func IsMatch(m Matcher, p record.Pair) bool { return m.Score(p) > 0.5 }

// Kind selects one of the implemented ER systems.
type Kind string

// The implemented ER systems.
const (
	DeepER      Kind = "DeepER"
	DeepMatcher Kind = "DeepMatcher"
	Ditto       Kind = "Ditto"
	SVM         Kind = "SVM"
)

// Kinds lists the three DL systems evaluated in the paper, in table
// order.
func Kinds() []Kind { return []Kind{DeepER, DeepMatcher, Ditto} }

// Model is a trained ER matcher.
type Model struct {
	kind  Kind
	feat  featurizer
	net   *nn.Network
	store *embedding.Store // persistent text-embedding cache; nil only mid-construction
}

// Name implements Matcher.
func (m *Model) Name() string { return string(m.kind) }

// Kind returns which system this model implements.
func (m *Model) Kind() Kind { return m.kind }

// initCaches attaches the matcher-lifetime caches: the persistent
// embedding store (every distinct attribute/record text embeds once per
// model lifetime instead of once per batch) and, for DeepMatcher-style
// featurizers, the attribute-block memo. Both cache pure functions, so
// scores are bit-identical with or without them. cacheSize bounds the
// embedding store's entry count (0 = unbounded).
func (m *Model) initCaches(cacheSize int) {
	m.store = embedding.NewStore(m.feat.embedder(), embedding.StoreOptions{Capacity: cacheSize})
	if dm, ok := m.feat.(*deepMatcherFeat); ok {
		dm.memo = newBlockMemo()
	}
}

// text returns the embedding function scoring should use: the persistent
// store when attached, the bare embedder otherwise.
func (m *Model) text() textFunc {
	if m.store != nil {
		return m.store.Text
	}
	return m.feat.embedder().Text
}

// EmbeddingStats reports the persistent embedding store's activity
// (zero-valued when the store is absent).
func (m *Model) EmbeddingStats() embedding.StoreStats {
	if m.store == nil {
		return embedding.StoreStats{}
	}
	return m.store.Stats()
}

// ForwardBench times this model's trained network on synthetic feature
// rows: the pre-batching per-row path (one layer-output allocation chain
// per row) against the batched arena kernel, returning nanoseconds per
// row for each. The rows have the model's real feature dimension, so
// the probe exercises exactly the architecture the workload scores; the
// values are deterministic, so repeated probes are comparable.
func (m *Model) ForwardBench(rows, iters int) (baselineNS, batchNS float64) {
	dim := m.feat.dim()
	flat := make([]float64, rows*dim)
	rng := rand.New(rand.NewSource(1))
	for i := range flat {
		flat[i] = rng.Float64()
	}
	//lint:allow nodrift ForwardBench measures kernel wall time for certa-bench telemetry; no Result depends on it
	start := time.Now()
	for it := 0; it < iters; it++ {
		for r := 0; r < rows; r++ {
			m.net.PredictBaseline(flat[r*dim:][:dim])
		}
	}
	//lint:allow nodrift benchmark timing readout, telemetry only
	baselineNS = float64(time.Since(start).Nanoseconds()) / float64(rows*iters)
	//lint:allow nodrift benchmark timing restart, telemetry only
	start = time.Now()
	for it := 0; it < iters; it++ {
		m.net.PredictBatchFlat(flat, rows)
	}
	//lint:allow nodrift benchmark timing readout, telemetry only
	batchNS = float64(time.Since(start).Nanoseconds()) / float64(rows*iters)
	return baselineNS, batchNS
}

// featBufPool recycles the flat featurization planes of Score and
// ScoreBatch so steady-state scoring allocates nothing but the result.
var featBufPool = sync.Pool{New: func() any { return new([]float64) }}

// Score implements Matcher. It is concurrency-safe and, in steady state,
// allocation-free: features are written into a pooled buffer and the
// forward pass runs through the nn package's pooled batch engine.
func (m *Model) Score(p record.Pair) float64 {
	bp := featBufPool.Get().(*[]float64)
	buf := m.feat.appendFeatures((*bp)[:0], p, m.text())
	s := m.net.Predict(buf)
	*bp = buf[:0]
	featBufPool.Put(bp)
	return s
}

// ScoreBatch scores many pairs in one call (the explain.BatchModel
// capability): the batch is featurized straight into one pooled flat
// plane — each distinct text resolved through the persistent embedding
// store — and a single blocked forward pass produces the scores.
// Index-aligned with pairs and bit-identical to per-pair Score calls.
func (m *Model) ScoreBatch(pairs []record.Pair) []float64 {
	out, _ := m.ScoreBatchContext(context.Background(), pairs) // background ctx: never errs
	return out
}

// ScoreBatchContext implements explain.ContextModel natively: the
// batch observes ctx once up front (the same granularity the generic
// adapter would give it) and the two kernel stages — featurization and
// the blocked forward pass — are recorded as telemetry spans when a
// trace rides ctx. Span timing is an observability side channel; the
// scores stay bit-identical to ScoreBatch and per-pair Score calls.
func (m *Model) ScoreBatchContext(ctx context.Context, pairs []record.Pair) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(pairs) == 0 {
		return make([]float64, 0), nil
	}
	bp := featBufPool.Get().(*[]float64)
	flat := (*bp)[:0]
	text := m.text()
	sp := telemetry.StartLeaf(ctx, "featurize")
	for _, p := range pairs {
		flat = m.feat.appendFeatures(flat, p, text)
	}
	sp.AddItems(len(pairs))
	sp.End()
	sp = telemetry.StartLeaf(ctx, "forward")
	out := m.net.PredictBatchFlat(flat, len(pairs))
	sp.AddItems(len(pairs))
	sp.End()
	*bp = flat[:0]
	featBufPool.Put(bp)
	return out, nil
}

// Config tunes training.
type Config struct {
	// Seed drives weight init, shuffling and augmentation.
	Seed int64
	// EmbeddingDim sets the hashed-embedding dimensionality (default 24).
	EmbeddingDim int
	// Epochs caps training passes (default per-kind).
	Epochs int
	// EmbeddingCacheSize bounds the trained model's persistent
	// text-embedding store (0 = unbounded). Embeddings are cheap to
	// recompute, so a bound only matters for very-high-cardinality
	// deployments.
	EmbeddingCacheSize int
}

func (c Config) withDefaults() Config {
	if c.EmbeddingDim == 0 {
		c.EmbeddingDim = 24
	}
	return c
}

// Train fits a matcher of the requested kind on the benchmark's train
// split, early-stopping on the validation split.
func Train(kind Kind, b *dataset.Benchmark, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	feat, arch, err := newFeaturizer(kind, b, cfg)
	if err != nil {
		return nil, err
	}

	// The model owns its caches from the start, so featurizing the
	// training data warms the embedding store with the corpus texts.
	m := &Model{kind: kind, feat: feat}
	m.initCaches(cfg.EmbeddingCacheSize)
	text := m.text()

	train := b.Train
	// Ditto's data augmentation: extra copies of training pairs with one
	// random attribute blanked, teaching robustness to missing values.
	if kind == Ditto {
		train = augmentPairs(train, cfg.Seed)
	}

	x := make([][]float64, len(train))
	y := make([]float64, len(train))
	for i, p := range train {
		x[i] = feat.appendFeatures(nil, p.Pair, text)
		y[i] = label(p.Match)
	}
	vx := make([][]float64, len(b.Valid))
	vy := make([]float64, len(b.Valid))
	for i, p := range b.Valid {
		vx[i] = feat.appendFeatures(nil, p.Pair, text)
		vy[i] = label(p.Match)
	}

	rng := rand.New(rand.NewSource(cfg.Seed*31 + int64(hashKind(kind))))
	net := nn.NewMLP(feat.dim(), arch.hidden, arch.dropout, rng)
	tc := nn.TrainConfig{
		Epochs:       arch.epochs,
		BatchSize:    16,
		LearningRate: arch.lr,
		L2:           1e-4,
		Patience:     10,
		Seed:         cfg.Seed + 7,
	}
	if cfg.Epochs > 0 {
		tc.Epochs = cfg.Epochs
	}
	if _, err := net.Train(x, y, vx, vy, tc); err != nil {
		return nil, fmt.Errorf("matchers: training %s on %s: %w", kind, b.Spec.Code, err)
	}
	m.net = net
	return m, nil
}

// MustTrain is Train that panics on error, for tests and examples.
func MustTrain(kind Kind, b *dataset.Benchmark, cfg Config) *Model {
	m, err := Train(kind, b, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// TrainAll trains the three DL systems of the paper on one benchmark.
func TrainAll(b *dataset.Benchmark, cfg Config) (map[Kind]*Model, error) {
	out := make(map[Kind]*Model, 3)
	for _, k := range Kinds() {
		m, err := Train(k, b, cfg)
		if err != nil {
			return nil, err
		}
		out[k] = m
	}
	return out, nil
}

// arch bundles per-kind network hyperparameters.
type arch struct {
	hidden  []int
	dropout float64
	lr      float64
	epochs  int
}

func archFor(kind Kind) arch {
	switch kind {
	case DeepER:
		return arch{hidden: []int{32}, lr: 0.01, epochs: 60}
	case DeepMatcher:
		return arch{hidden: []int{36, 18}, lr: 0.01, epochs: 80}
	case Ditto:
		return arch{hidden: []int{48, 24}, dropout: 0.1, lr: 0.008, epochs: 100}
	case SVM:
		return arch{hidden: nil, lr: 0.05, epochs: 60} // linear model
	}
	panic(fmt.Sprintf("matchers: unknown kind %q", kind))
}

// augmentPairs appends one blank-an-attribute copy per training pair.
func augmentPairs(pairs []record.LabeledPair, seed int64) []record.LabeledPair {
	rng := rand.New(rand.NewSource(seed*17 + 3))
	out := append([]record.LabeledPair(nil), pairs...)
	for _, p := range pairs {
		refs := p.AttrRefs()
		ref := refs[rng.Intn(len(refs))]
		aug := p.Pair.WithValue(ref, "NaN")
		out = append(out, record.LabeledPair{Pair: aug, Match: p.Match})
	}
	return out
}

// label applies light label smoothing (ε=0.1). Hard 0/1 targets on
// separable synthetic data drive the logits to saturation, which makes
// every score ≈0 or ≈1; smoothing keeps the models calibrated the way
// real DL matchers on noisy benchmark data are, so that perturbing a
// single attribute can move a prediction across the decision boundary.
func label(match bool) float64 {
	if match {
		return 0.95
	}
	return 0.05
}

func hashKind(k Kind) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(k); i++ {
		h ^= uint32(k[i])
		h *= 16777619
	}
	return h
}

// Accuracy computes classification accuracy of a matcher on labeled
// pairs.
func Accuracy(m Matcher, pairs []record.LabeledPair) float64 {
	if len(pairs) == 0 {
		return 0
	}
	ok := 0
	for _, p := range pairs {
		if IsMatch(m, p.Pair) == p.Match {
			ok++
		}
	}
	return float64(ok) / float64(len(pairs))
}

// F1 computes the F1 score of a matcher on labeled pairs (the model
// performance measure used by the Faithfulness metric).
func F1(m Matcher, pairs []record.LabeledPair) float64 {
	tp, fp, fn := 0, 0, 0
	for _, p := range pairs {
		pred := IsMatch(m, p.Pair)
		switch {
		case pred && p.Match:
			tp++
		case pred && !p.Match:
			fp++
		case !pred && p.Match:
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	prec := float64(tp) / float64(tp+fp)
	rec := float64(tp) / float64(tp+fn)
	return 2 * prec * rec / (prec + rec)
}

// ScoreFunc adapts a plain function to the Matcher interface, letting
// users plug arbitrary classifiers into the explainers (see
// examples/custommodel).
type ScoreFunc struct {
	// ModelName is reported by Name().
	ModelName string
	// Fn computes the matching score.
	Fn func(p record.Pair) float64
}

// Name implements Matcher.
func (s ScoreFunc) Name() string { return s.ModelName }

// Score implements Matcher. Plain score functions ride the batched
// pipeline through explain.ScoreBatch's automatic adaptation.
func (s ScoreFunc) Score(p record.Pair) float64 { return s.Fn(p) }

// Package matchers implements the three deep-learning ER systems whose
// predictions the paper explains — DeepER, DeepMatcher and Ditto — plus a
// classic linear (SVM-style) baseline. The PyTorch originals are
// substituted by Go feed-forward networks over architecture-specific
// featurizations that preserve each system's character:
//
//   - DeepER sees the pair at *record level* (whole-record distributed
//     representations; attribute boundaries blurred);
//   - DeepMatcher sees *attribute-level* similarity summaries;
//   - Ditto sees a *serialized token sequence* with injected column
//     markers and domain knowledge (number normalization), plus
//     train-time data augmentation — and is the strongest of the three.
//
// See DESIGN.md §1 for the substitution rationale. All trained models are
// pure and safe for concurrent Score calls.
package matchers

import (
	"fmt"
	"math/rand"

	"certa/internal/dataset"
	"certa/internal/nn"
	"certa/internal/record"
)

// Matcher is a black-box ER classifier: Score returns the matching
// probability of a pair in [0,1]; a score above 0.5 means Match.
type Matcher interface {
	Name() string
	Score(p record.Pair) float64
}

// IsMatch applies the paper's decision threshold (score > 0.5).
func IsMatch(m Matcher, p record.Pair) bool { return m.Score(p) > 0.5 }

// Kind selects one of the implemented ER systems.
type Kind string

// The implemented ER systems.
const (
	DeepER      Kind = "DeepER"
	DeepMatcher Kind = "DeepMatcher"
	Ditto       Kind = "Ditto"
	SVM         Kind = "SVM"
)

// Kinds lists the three DL systems evaluated in the paper, in table
// order.
func Kinds() []Kind { return []Kind{DeepER, DeepMatcher, Ditto} }

// Model is a trained ER matcher.
type Model struct {
	kind Kind
	feat featurizer
	net  *nn.Network
}

// Name implements Matcher.
func (m *Model) Name() string { return string(m.kind) }

// Kind returns which system this model implements.
func (m *Model) Kind() Kind { return m.kind }

// Score implements Matcher. It is pure and concurrency-safe.
func (m *Model) Score(p record.Pair) float64 {
	return m.net.Predict(m.feat.features(p))
}

// ScoreBatch scores many pairs in one call (the explain.BatchModel
// capability): the whole batch is featurized with a shared embedding
// memo, so pairs that share a record — the dominant pattern in
// perturbation batches — embed each distinct string once, then a single
// batched forward pass produces the scores. Index-aligned with pairs and
// bit-identical to per-pair Score calls.
func (m *Model) ScoreBatch(pairs []record.Pair) []float64 {
	return m.net.PredictBatch(m.feat.featuresBatch(pairs))
}

// Config tunes training.
type Config struct {
	// Seed drives weight init, shuffling and augmentation.
	Seed int64
	// EmbeddingDim sets the hashed-embedding dimensionality (default 24).
	EmbeddingDim int
	// Epochs caps training passes (default per-kind).
	Epochs int
}

func (c Config) withDefaults() Config {
	if c.EmbeddingDim == 0 {
		c.EmbeddingDim = 24
	}
	return c
}

// Train fits a matcher of the requested kind on the benchmark's train
// split, early-stopping on the validation split.
func Train(kind Kind, b *dataset.Benchmark, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	feat, arch, err := newFeaturizer(kind, b, cfg)
	if err != nil {
		return nil, err
	}

	train := b.Train
	// Ditto's data augmentation: extra copies of training pairs with one
	// random attribute blanked, teaching robustness to missing values.
	if kind == Ditto {
		train = augmentPairs(train, cfg.Seed)
	}

	x := make([][]float64, len(train))
	y := make([]float64, len(train))
	for i, p := range train {
		x[i] = feat.features(p.Pair)
		y[i] = label(p.Match)
	}
	vx := make([][]float64, len(b.Valid))
	vy := make([]float64, len(b.Valid))
	for i, p := range b.Valid {
		vx[i] = feat.features(p.Pair)
		vy[i] = label(p.Match)
	}

	rng := rand.New(rand.NewSource(cfg.Seed*31 + int64(hashKind(kind))))
	net := nn.NewMLP(feat.dim(), arch.hidden, arch.dropout, rng)
	tc := nn.TrainConfig{
		Epochs:       arch.epochs,
		BatchSize:    16,
		LearningRate: arch.lr,
		L2:           1e-4,
		Patience:     10,
		Seed:         cfg.Seed + 7,
	}
	if cfg.Epochs > 0 {
		tc.Epochs = cfg.Epochs
	}
	if _, err := net.Train(x, y, vx, vy, tc); err != nil {
		return nil, fmt.Errorf("matchers: training %s on %s: %w", kind, b.Spec.Code, err)
	}
	return &Model{kind: kind, feat: feat, net: net}, nil
}

// MustTrain is Train that panics on error, for tests and examples.
func MustTrain(kind Kind, b *dataset.Benchmark, cfg Config) *Model {
	m, err := Train(kind, b, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// TrainAll trains the three DL systems of the paper on one benchmark.
func TrainAll(b *dataset.Benchmark, cfg Config) (map[Kind]*Model, error) {
	out := make(map[Kind]*Model, 3)
	for _, k := range Kinds() {
		m, err := Train(k, b, cfg)
		if err != nil {
			return nil, err
		}
		out[k] = m
	}
	return out, nil
}

// arch bundles per-kind network hyperparameters.
type arch struct {
	hidden  []int
	dropout float64
	lr      float64
	epochs  int
}

func archFor(kind Kind) arch {
	switch kind {
	case DeepER:
		return arch{hidden: []int{32}, lr: 0.01, epochs: 60}
	case DeepMatcher:
		return arch{hidden: []int{36, 18}, lr: 0.01, epochs: 80}
	case Ditto:
		return arch{hidden: []int{48, 24}, dropout: 0.1, lr: 0.008, epochs: 100}
	case SVM:
		return arch{hidden: nil, lr: 0.05, epochs: 60} // linear model
	}
	panic(fmt.Sprintf("matchers: unknown kind %q", kind))
}

// augmentPairs appends one blank-an-attribute copy per training pair.
func augmentPairs(pairs []record.LabeledPair, seed int64) []record.LabeledPair {
	rng := rand.New(rand.NewSource(seed*17 + 3))
	out := append([]record.LabeledPair(nil), pairs...)
	for _, p := range pairs {
		refs := p.AttrRefs()
		ref := refs[rng.Intn(len(refs))]
		aug := p.Pair.WithValue(ref, "NaN")
		out = append(out, record.LabeledPair{Pair: aug, Match: p.Match})
	}
	return out
}

// label applies light label smoothing (ε=0.1). Hard 0/1 targets on
// separable synthetic data drive the logits to saturation, which makes
// every score ≈0 or ≈1; smoothing keeps the models calibrated the way
// real DL matchers on noisy benchmark data are, so that perturbing a
// single attribute can move a prediction across the decision boundary.
func label(match bool) float64 {
	if match {
		return 0.95
	}
	return 0.05
}

func hashKind(k Kind) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(k); i++ {
		h ^= uint32(k[i])
		h *= 16777619
	}
	return h
}

// Accuracy computes classification accuracy of a matcher on labeled
// pairs.
func Accuracy(m Matcher, pairs []record.LabeledPair) float64 {
	if len(pairs) == 0 {
		return 0
	}
	ok := 0
	for _, p := range pairs {
		if IsMatch(m, p.Pair) == p.Match {
			ok++
		}
	}
	return float64(ok) / float64(len(pairs))
}

// F1 computes the F1 score of a matcher on labeled pairs (the model
// performance measure used by the Faithfulness metric).
func F1(m Matcher, pairs []record.LabeledPair) float64 {
	tp, fp, fn := 0, 0, 0
	for _, p := range pairs {
		pred := IsMatch(m, p.Pair)
		switch {
		case pred && p.Match:
			tp++
		case pred && !p.Match:
			fp++
		case !pred && p.Match:
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	prec := float64(tp) / float64(tp+fp)
	rec := float64(tp) / float64(tp+fn)
	return 2 * prec * rec / (prec + rec)
}

// ScoreFunc adapts a plain function to the Matcher interface, letting
// users plug arbitrary classifiers into the explainers (see
// examples/custommodel).
type ScoreFunc struct {
	// ModelName is reported by Name().
	ModelName string
	// Fn computes the matching score.
	Fn func(p record.Pair) float64
}

// Name implements Matcher.
func (s ScoreFunc) Name() string { return s.ModelName }

// Score implements Matcher. Plain score functions ride the batched
// pipeline through explain.ScoreBatch's automatic adaptation.
func (s ScoreFunc) Score(p record.Pair) float64 { return s.Fn(p) }

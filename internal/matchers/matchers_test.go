package matchers

import (
	"sync"
	"sync/atomic"
	"testing"

	"certa/internal/dataset"
	"certa/internal/record"
)

// trainBench caches one small benchmark + models across tests.
var (
	benchOnce sync.Once
	benchAB   *dataset.Benchmark
	modelsAB  map[Kind]*Model
)

func testBenchmark(t testing.TB) (*dataset.Benchmark, map[Kind]*Model) {
	benchOnce.Do(func() {
		benchAB = dataset.MustGenerate("AB", dataset.Options{Seed: 42, MaxRecords: 120, MaxMatches: 60})
		var err error
		modelsAB, err = TrainAll(benchAB, Config{Seed: 1})
		if err != nil {
			panic(err)
		}
	})
	return benchAB, modelsAB
}

func TestTrainAllReachUsefulF1(t *testing.T) {
	b, models := testBenchmark(t)
	for kind, m := range models {
		f1 := F1(m, b.Test)
		t.Logf("%s F1 on AB test = %.3f", kind, f1)
		if f1 < 0.6 {
			t.Errorf("%s F1 = %.3f, want >= 0.6 (models must be usable for explanation studies)", kind, f1)
		}
	}
}

func TestDittoIsStrongest(t *testing.T) {
	b, models := testBenchmark(t)
	ditto := F1(models[Ditto], b.Test)
	deeper := F1(models[DeepER], b.Test)
	// The paper's ordering: Ditto is the strongest system. Allow a small
	// tolerance since these are small synthetic benchmarks.
	if ditto+0.05 < deeper {
		t.Errorf("Ditto F1 %.3f should not trail DeepER %.3f by more than 0.05", ditto, deeper)
	}
}

func TestScoreRangeAndDeterminism(t *testing.T) {
	b, models := testBenchmark(t)
	for kind, m := range models {
		for _, p := range b.Test[:10] {
			s1 := m.Score(p.Pair)
			s2 := m.Score(p.Pair)
			if s1 != s2 {
				t.Fatalf("%s: Score not deterministic", kind)
			}
			if s1 < 0 || s1 > 1 {
				t.Fatalf("%s: score %v out of [0,1]", kind, s1)
			}
		}
	}
}

func TestScoreConcurrentSafe(t *testing.T) {
	b, models := testBenchmark(t)
	m := models[Ditto]
	want := m.Score(b.Test[0].Pair)
	var wg sync.WaitGroup
	var mismatches atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := m.Score(b.Test[0].Pair); got != want {
					mismatches.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := mismatches.Load(); n > 0 {
		t.Errorf("concurrent Score calls produced %d mismatching results", n)
	}
}

func TestScoreSensitiveToAttributeCopy(t *testing.T) {
	// The core premise of CERTA's perturbations: copying attribute
	// values from a matching record into a non-matching one must move
	// the score toward match. Verify the mechanism works on our models.
	b, models := testBenchmark(t)
	for kind, m := range models {
		moved := 0
		tested := 0
		for _, p := range b.Test {
			if !p.Match {
				continue
			}
			if m.Score(p.Pair) <= 0.5 {
				continue // need a predicted match
			}
			// Build a non-match by pairing a random left record, then
			// copy all left attributes from the matching left record.
			other := b.Left.Records[0]
			if other.ID == p.Left.ID {
				other = b.Left.Records[1]
			}
			nonMatch := record.Pair{Left: other, Right: p.Right}
			base := m.Score(nonMatch)
			perturbed := nonMatch
			for _, a := range p.Left.Schema.Attrs {
				perturbed = perturbed.WithRecord(record.Left,
					perturbed.Left.WithValue(a, p.Left.Value(a)))
			}
			after := m.Score(perturbed)
			tested++
			if after > base {
				moved++
			}
			if tested >= 15 {
				break
			}
		}
		if tested == 0 {
			t.Fatalf("%s: no testable pairs", kind)
		}
		if moved*2 < tested {
			t.Errorf("%s: copying matching values raised score on only %d/%d pairs", kind, moved, tested)
		}
	}
}

func TestTrainSVMBaseline(t *testing.T) {
	b, _ := testBenchmark(t)
	m, err := Train(SVM, b, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if f1 := F1(m, b.Test); f1 < 0.5 {
		t.Errorf("SVM baseline F1 = %.3f, want >= 0.5", f1)
	}
}

func TestScoreFuncAdapter(t *testing.T) {
	m := ScoreFunc{ModelName: "const", Fn: func(record.Pair) float64 { return 0.7 }}
	if m.Name() != "const" {
		t.Error("Name wrong")
	}
	b, _ := testBenchmark(t)
	if !IsMatch(m, b.Test[0].Pair) {
		t.Error("score 0.7 should be a match")
	}
}

func TestAccuracyAndF1Edges(t *testing.T) {
	never := ScoreFunc{ModelName: "never", Fn: func(record.Pair) float64 { return 0 }}
	b, _ := testBenchmark(t)
	if F1(never, b.Test) != 0 {
		t.Error("F1 of never-matcher should be 0")
	}
	if Accuracy(never, nil) != 0 {
		t.Error("Accuracy on empty set should be 0")
	}
	always := ScoreFunc{ModelName: "always", Fn: func(record.Pair) float64 { return 1 }}
	f1 := F1(always, b.Test)
	if f1 <= 0 || f1 > 1 {
		t.Errorf("F1 of always-matcher = %v", f1)
	}
}

func TestDittoRobustToDirtyData(t *testing.T) {
	// On a dirty benchmark, Ditto's alignment-free features should keep
	// it competitive; DeepMatcher's strict attribute alignment suffers.
	dirty := dataset.MustGenerate("DDA", dataset.Options{Seed: 9, MaxRecords: 120, MaxMatches: 60})
	ditto := MustTrain(Ditto, dirty, Config{Seed: 2})
	dm := MustTrain(DeepMatcher, dirty, Config{Seed: 2})
	f1Ditto, f1DM := F1(ditto, dirty.Test), F1(dm, dirty.Test)
	t.Logf("dirty DDA: Ditto %.3f, DeepMatcher %.3f", f1Ditto, f1DM)
	if f1Ditto < 0.5 {
		t.Errorf("Ditto on dirty data F1 = %.3f, want >= 0.5", f1Ditto)
	}
}

func TestUnknownKind(t *testing.T) {
	b, _ := testBenchmark(t)
	if _, err := Train(Kind("nope"), b, Config{}); err == nil {
		t.Error("unknown kind should error")
	}
}

func BenchmarkScoreDitto(b *testing.B) {
	bench, models := testBenchmark(b)
	m := models[Ditto]
	p := bench.Test[0].Pair
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Score(p)
	}
}

func BenchmarkTrainDeepMatcher(b *testing.B) {
	bench, _ := testBenchmark(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(DeepMatcher, bench, Config{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

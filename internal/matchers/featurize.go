package matchers

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"certa/internal/dataset"
	"certa/internal/embedding"
	"certa/internal/record"
	"certa/internal/strutil"
)

// featurizer converts a record pair into the fixed-width input vector of
// one model architecture. appendFeatures writes exactly dim() values
// onto dst and returns the extended slice, so batch callers featurize
// straight into one flat plane for the batched forward pass without
// per-row allocations. Featurizers are idempotent: internal memo state
// (the DeepMatcher attribute-block memo) only caches pure functions of
// the inputs.
type featurizer interface {
	appendFeatures(dst []float64, p record.Pair, text textFunc) []float64
	dim() int
	embedder() *embedding.Embedder
}

// textFunc embeds a text: either embedding.Embedder.Text directly or the
// matcher's persistent embedding.Store. Returned vectors are read-only.
type textFunc func(s string) []float64

// newFeaturizer builds the featurizer and network architecture for a
// model kind, fitting the shared embedder on the benchmark corpus.
func newFeaturizer(kind Kind, b *dataset.Benchmark, cfg Config) (featurizer, arch, error) {
	emb := embedding.New(cfg.EmbeddingDim)
	var corpus []string
	for _, r := range b.Left.Records {
		corpus = append(corpus, r.Text())
	}
	for _, r := range b.Right.Records {
		corpus = append(corpus, r.Text())
	}
	emb.Fit(corpus)

	attrs := alignedAttrs(b.Left.Schema, b.Right.Schema)
	switch kind {
	case DeepER:
		return &deepERFeat{emb: emb}, archFor(kind), nil
	case DeepMatcher, SVM:
		return &deepMatcherFeat{emb: emb, attrs: attrs}, archFor(kind), nil
	case Ditto:
		return &dittoFeat{emb: emb, attrs: attrs}, archFor(kind), nil
	}
	return nil, arch{}, fmt.Errorf("matchers: unknown kind %q", kind)
}

// alignedAttrs pairs attributes by name; attributes present on only one
// side are dropped (the twelve benchmarks share schemas on both sides).
func alignedAttrs(l, r *record.Schema) []string {
	var out []string
	for _, a := range l.Attrs {
		if r.AttrIndex(a) >= 0 {
			out = append(out, a)
		}
	}
	return out
}

// --- DeepER: record-level distributed representations -------------------

// deepERFeat embeds each record as one IDF-weighted vector and feeds the
// element-wise absolute difference and Hadamard product to the network —
// the classic "distributed representations of tuples" recipe. Attribute
// boundaries are invisible to the model.
type deepERFeat struct {
	emb *embedding.Embedder
}

func (f *deepERFeat) dim() int { return 2*f.emb.Dim + 2 }

func (f *deepERFeat) embedder() *embedding.Embedder { return f.emb }

func (f *deepERFeat) appendFeatures(dst []float64, p record.Pair, text textFunc) []float64 {
	lt, rt := p.Left.Text(), p.Right.Text()
	le := text(lt)
	re := text(rt)
	// Extend dst by the two blocks (appending the inputs reuses the batch
	// plane's capacity without a zero-filled temp), then let the
	// element-wise SIMD kernel overwrite them: diff block first, Hadamard
	// block second, bit-identical to the scalar loops it replaced.
	d := len(le)
	base := len(dst)
	dst = append(dst, le...)
	dst = append(dst, re...)
	embedding.AbsDiffMul(dst[base:base+d], dst[base+d:base+2*d], le, re)
	jac := 0.0
	if lt != "" && rt != "" {
		jac = strutil.Jaccard(lt, rt)
	}
	return append(dst, embedding.Cosine(le, re), jac)
}

// --- DeepMatcher: attribute-level similarity summaries --------------------

// deepMatcherFeat computes a block of similarity features per aligned
// attribute (the "attribute summarization" of the Hybrid model): the
// model sees exactly which attribute agrees or disagrees. When a memo is
// attached (Model.initCaches), each distinct value pair's block —
// embedding cosine plus four string similarities, including an O(n²)
// edit distance — is computed once per matcher lifetime: perturbed pairs
// recombine a small set of attribute values, so lattice workloads hit
// the memo almost every time.
type deepMatcherFeat struct {
	emb   *embedding.Embedder
	attrs []string
	memo  *blockMemo
}

const dmBlock = 7

func (f *deepMatcherFeat) dim() int { return dmBlock * len(f.attrs) }

func (f *deepMatcherFeat) embedder() *embedding.Embedder { return f.emb }

func (f *deepMatcherFeat) appendFeatures(dst []float64, p record.Pair, text textFunc) []float64 {
	for _, a := range f.attrs {
		lv, rv := p.Left.Value(a), p.Right.Value(a)
		if f.memo != nil {
			blk := f.memo.get(lv, rv, text)
			dst = append(dst, blk[:]...)
		} else {
			dst = appendAttrBlock(dst, text, lv, rv)
		}
	}
	return dst
}

// blockMemo caches DeepMatcher attribute blocks by value pair. attrBlock
// is a pure function of (lv, rv) — text embeds deterministically — so
// memoized blocks are bit-identical to recomputed ones. Striped locks
// keep concurrent explanations out of each other's way.
type blockMemo struct {
	shards [16]blockShard
}

type blockShard struct {
	mu sync.RWMutex
	m  map[string][dmBlock]float64
}

func newBlockMemo() *blockMemo {
	bm := &blockMemo{}
	for i := range bm.shards {
		bm.shards[i].m = make(map[string][dmBlock]float64)
	}
	return bm
}

// blockKey frames the value pair unambiguously (length prefix, so value
// contents cannot collide across the boundary).
func blockKey(lv, rv string) string {
	return strconv.Itoa(len(lv)) + ":" + lv + rv
}

func (bm *blockMemo) get(lv, rv string, text textFunc) [dmBlock]float64 {
	key := blockKey(lv, rv)
	sh := &bm.shards[fnvHash(key)&15]
	sh.mu.RLock()
	blk, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		return blk
	}
	// Compute outside the lock; racing duplicates produce identical
	// bytes, so last-writer-wins is benign.
	var out [dmBlock]float64
	appendAttrBlock(out[:0], text, lv, rv)
	sh.mu.Lock()
	sh.m[key] = out
	sh.mu.Unlock()
	return out
}

func fnvHash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// appendAttrBlock appends the per-attribute feature block shared by
// DeepMatcher and Ditto. A missing value on either side zeroes every
// similarity feature: the absence of evidence is not evidence of
// similarity (real DL matchers learn exactly this from their embedding
// of empty strings), and the missing-value indicators carry what signal
// remains.
//
// Each value is tokenized and sorted once; Jaccard, containment and
// number overlap are computed from the shared sorted slices (pooled, so
// steady state allocates nothing beyond the normalized strings). All
// three reduce to the same integer counts as the string-based measures,
// so the block is bit-identical to appendAttrBlockRef — the property
// test TestAttrBlockMatchesReference gates this.
func appendAttrBlock(dst []float64, text textFunc, lv, rv string) []float64 {
	lm, rm := strutil.IsMissing(lv), strutil.IsMissing(rv)
	if lm || rm {
		bothMissing, oneMissing := 0.0, 1.0
		if lm && rm {
			bothMissing, oneMissing = 1.0, 0.0
		}
		return append(dst, 0, 0, 0, 0, 0, bothMissing, oneMissing)
	}
	sc := tokScratchPool.Get().(*tokScratch)
	la := strutil.AppendTokens(sc.a[:0], lv)
	ra := strutil.AppendTokens(sc.b[:0], rv)
	strutil.SortTokens(la)
	strutil.SortTokens(ra)
	dst = append(dst,
		embedding.Cosine(text(lv), text(rv)),
		strutil.JaccardSortedTokens(la, ra),
		strutil.LevenshteinSimilarity(truncateForLev(lv), truncateForLev(rv)),
		strutil.ContainmentSortedTokens(la, ra),
		strutil.NumberOverlapSortedTokens(la, ra),
		0,
		0,
	)
	sc.a, sc.b = la, ra
	tokScratchPool.Put(sc)
	return dst
}

// appendAttrBlockRef is the pre-optimization reference: each similarity
// re-tokenizes its inputs independently. Kept as the bit-identity oracle
// for the tokenize-once path and as the "before" side of the
// featurization benchmark.
func appendAttrBlockRef(dst []float64, text textFunc, lv, rv string) []float64 {
	lm, rm := strutil.IsMissing(lv), strutil.IsMissing(rv)
	if lm || rm {
		bothMissing, oneMissing := 0.0, 1.0
		if lm && rm {
			bothMissing, oneMissing = 1.0, 0.0
		}
		return append(dst, 0, 0, 0, 0, 0, bothMissing, oneMissing)
	}
	return append(dst,
		embedding.Cosine(text(lv), text(rv)),
		strutil.Jaccard(lv, rv),
		strutil.LevenshteinSimilarity(truncateForLev(lv), truncateForLev(rv)),
		strutil.ContainmentSimilarity(lv, rv),
		strutil.NumberOverlap(lv, rv),
		0,
		0,
	)
}

// AttrBlock and AttrBlockRef expose the two attribute-block paths for
// the featurization benchmark (cmd/certa-bench reports ns/op for both).
func AttrBlock(dst []float64, text func(string) []float64, lv, rv string) []float64 {
	return appendAttrBlock(dst, text, lv, rv)
}

// AttrBlockRef is the pre-optimization baseline counterpart of AttrBlock.
func AttrBlockRef(dst []float64, text func(string) []float64, lv, rv string) []float64 {
	return appendAttrBlockRef(dst, text, lv, rv)
}

// tokScratch pools the per-call token slices of appendAttrBlock.
type tokScratch struct{ a, b []string }

var tokScratchPool = sync.Pool{New: func() any { return &tokScratch{} }}

// truncateForLev caps value length so edit distance stays cheap on long
// descriptions.
func truncateForLev(s string) string {
	const maxLen = 64
	if len(s) <= maxLen {
		return s
	}
	return s[:maxLen]
}

// --- Ditto: serialized sequences with injected knowledge -----------------

// dittoFeat serializes both records into Ditto's "[COL] a [VAL] v" token
// sequence and derives sequence-level evidence: IDF-weighted token
// overlap (a stand-in for cross-attention), trigram similarity (subword
// robustness), injected domain knowledge (number overlap), and
// alignment-free cross-attribute matching that tolerates the dirty
// benchmarks' displaced values.
type dittoFeat struct {
	emb   *embedding.Embedder
	attrs []string
}

func (f *dittoFeat) dim() int { return 11 }

func (f *dittoFeat) embedder() *embedding.Embedder { return f.emb }

// serialize renders a record as Ditto's flat token sequence.
func serialize(r *record.Record) string {
	var b strings.Builder
	for i, a := range r.Schema.Attrs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString("col " + strutil.Normalize(a) + " val ")
		v := r.Values[i]
		if strutil.IsMissing(v) {
			b.WriteString("")
		} else {
			b.WriteString(strutil.Normalize(v))
		}
	}
	return b.String()
}

func (f *dittoFeat) appendFeatures(dst []float64, p record.Pair, text textFunc) []float64 {
	lt, rt := p.Left.Text(), p.Right.Text()
	if lt == "" || rt == "" {
		// An all-missing record carries no evidence; only the emptiness
		// indicators fire.
		for i := 0; i < f.dim()-2; i++ {
			dst = append(dst, 0)
		}
		return append(dst, boolF(lt == ""), boolF(rt == ""))
	}
	ls, rs := serialize(p.Left), serialize(p.Right)

	// IDF-weighted token overlap: Σ idf(shared) / Σ idf(all left)
	// in both directions — a cheap analogue of attention mass landing on
	// aligned tokens. Tokens are summed in sorted order so float
	// accumulation is deterministic.
	lSet, rSet := strutil.TokenSet(lt), strutil.TokenSet(rt)
	var sharedW, lW, rW float64
	for _, tok := range sortedTokens(lSet) {
		w := f.emb.IDF(tok)
		lW += w
		if _, ok := rSet[tok]; ok {
			sharedW += w
		}
	}
	for _, tok := range sortedTokens(rSet) {
		rW += f.emb.IDF(tok)
	}
	overlapL, overlapR := 0.0, 0.0
	if lW > 0 {
		overlapL = sharedW / lW
	}
	if rW > 0 {
		overlapR = sharedW / rW
	}

	// Alignment-free cross-attribute similarity: each left attribute
	// matched against its best right attribute (handles displaced
	// values in the dirty benchmarks).
	var crossSum float64
	var crossCount int
	for _, la := range f.attrs {
		lv := p.Left.Value(la)
		if strutil.IsMissing(lv) {
			continue
		}
		best := 0.0
		for _, ra := range f.attrs {
			rv := p.Right.Value(ra)
			if strutil.IsMissing(rv) {
				continue
			}
			if s := strutil.ContainmentSimilarity(lv, rv); s > best {
				best = s
			}
		}
		crossSum += best
		crossCount++
	}
	cross := 0.0
	if crossCount > 0 {
		cross = crossSum / float64(crossCount)
	}

	lenL, lenR := float64(len(strutil.Tokenize(lt))), float64(len(strutil.Tokenize(rt)))
	lenRatio := 0.0
	if lenL > 0 && lenR > 0 {
		lenRatio = minF(lenL, lenR) / maxF(lenL, lenR)
	}

	// Injected domain knowledge: overlap of numeric tokens (model
	// numbers, prices). Numbers on both sides are compared; numbers on
	// neither side are neutral; numbers on exactly one side are weak
	// negative evidence.
	num := 0.5
	ln, rn := strutil.NumericTokens(lt), strutil.NumericTokens(rt)
	switch {
	case len(ln) > 0 && len(rn) > 0:
		num = strutil.NumberOverlap(lt, rt)
	case len(ln) != len(rn):
		num = 0.25
	}

	return append(dst,
		overlapL,
		overlapR,
		strutil.Jaccard(ls, rs),
		strutil.TrigramJaccard(truncateForLev(lt), truncateForLev(rt)),
		strutil.ContainmentSimilarity(lt, rt),
		num,
		embedding.Cosine(text(lt), text(rt)),
		cross,
		lenRatio,
		boolF(lenL == 0),
		boolF(lenR == 0),
	)
}

func sortedTokens(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

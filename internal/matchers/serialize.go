package matchers

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"certa/internal/embedding"
	"certa/internal/nn"
)

// modelState is the gob-serializable view of a trained Model: the kind
// reconstructs the featurizer code path, the embedder carries the fitted
// IDF table, attrs the aligned-attribute list, and net the trained
// weights.
type modelState struct {
	Kind     string
	Embedder []byte
	Attrs    []string
	Net      []byte
}

// MarshalBinary serializes a trained matcher so it can be stored and
// reloaded without retraining (e.g. by cmd/certa-train).
func (m *Model) MarshalBinary() ([]byte, error) {
	st := modelState{Kind: string(m.kind)}

	emb := m.feat.embedder()
	switch f := m.feat.(type) {
	case *deepERFeat:
	case *deepMatcherFeat:
		st.Attrs = f.attrs
	case *dittoFeat:
		st.Attrs = f.attrs
	default:
		return nil, fmt.Errorf("matchers: cannot serialize featurizer %T", m.feat)
	}
	embBytes, err := emb.MarshalBinary()
	if err != nil {
		return nil, err
	}
	st.Embedder = embBytes

	netBytes, err := m.net.MarshalBinary()
	if err != nil {
		return nil, err
	}
	st.Net = netBytes

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("matchers: encoding model: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a matcher serialized by MarshalBinary.
func (m *Model) UnmarshalBinary(data []byte) error {
	var st modelState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("matchers: decoding model: %w", err)
	}
	emb := embedding.New(1)
	if err := emb.UnmarshalBinary(st.Embedder); err != nil {
		return err
	}
	var net nn.Network
	if err := net.UnmarshalBinary(st.Net); err != nil {
		return err
	}

	kind := Kind(st.Kind)
	var feat featurizer
	switch kind {
	case DeepER:
		feat = &deepERFeat{emb: emb}
	case DeepMatcher, SVM:
		feat = &deepMatcherFeat{emb: emb, attrs: st.Attrs}
	case Ditto:
		feat = &dittoFeat{emb: emb, attrs: st.Attrs}
	default:
		return fmt.Errorf("matchers: decoded unknown kind %q", st.Kind)
	}
	m.kind = kind
	m.feat = feat
	m.net = &net
	// Restored models get fresh matcher-lifetime caches (the store holds
	// derived data only, so nothing is serialized).
	m.initCaches(0)
	return nil
}

package matchers

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"certa/internal/embedding"
)

// blockTestText is a deterministic stand-in embedder for the block
// tests: hash-seeded vectors, like the real one, without a corpus fit.
// Embeddings are memoized, mirroring the production path where text()
// is the persistent embedding store, so the benchmark isolates the
// similarity computations rather than re-embedding per call.
func blockTestText() textFunc {
	emb := embedding.New(16)
	emb.Fit([]string{"sony dcr trv27 minidv handycam", "canon zr60 digital camcorder 3.99"})
	memo := make(map[string][]float64)
	return func(s string) []float64 {
		if v, ok := memo[s]; ok {
			return v
		}
		v := emb.Text(s)
		memo[s] = v
		return v
	}
}

// TestAttrBlockMatchesReference gates the tokenize-once rewrite: for
// adversarial value pairs (missing markers, unicode, duplicate tokens,
// numbers, punctuation) the production block must equal the reference
// block bit for bit in every position.
func TestAttrBlockMatchesReference(t *testing.T) {
	text := blockTestText()
	values := []string{
		"", "NaN", "null", "None", "nan",
		"Sony DCR-TRV27", "sony dcr-trv27", "sony sony sony", "dcr trv27 1,000 $3.99",
		"é accents Ünicode", "3.99", "a b a b a", strings.Repeat("long value ", 12),
		"  spaced   out  ", "\tcontrol\x01chars", "1 2 3 4 5", "5 4 3 2 1",
	}
	rng := rand.New(rand.NewSource(9))
	check := func(lv, rv string) {
		t.Helper()
		got := appendAttrBlock(nil, text, lv, rv)
		want := appendAttrBlockRef(nil, text, lv, rv)
		if len(got) != dmBlock || len(want) != dmBlock {
			t.Fatalf("block(%q, %q): lengths %d/%d, want %d", lv, rv, len(got), len(want), dmBlock)
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("block(%q, %q)[%d] = %v, want %v", lv, rv, i, got[i], want[i])
			}
		}
	}
	for _, lv := range values {
		for _, rv := range values {
			check(lv, rv)
		}
	}
	for trial := 0; trial < 300; trial++ {
		check(values[rng.Intn(len(values))], values[rng.Intn(len(values))])
	}
}

// BenchmarkAttrBlock reports the before/after cost of one attribute
// block on a representative product-title pair; certa-bench reruns the
// same comparison for the BENCH_explain.json "pruning" section.
func BenchmarkAttrBlock(b *testing.B) {
	text := blockTestText()
	lv := "Sony DCR-TRV27 MiniDV Handycam Camcorder w/ 2.5\" LCD"
	rv := "sony dcr trv27 minidv digital handycam camcorder 690 usd"
	dst := make([]float64, 0, dmBlock)
	b.Run("tokenize-once", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = appendAttrBlock(dst[:0], text, lv, rv)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = appendAttrBlockRef(dst[:0], text, lv, rv)
		}
	})
}

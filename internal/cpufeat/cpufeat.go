// Package cpufeat centralizes runtime CPU feature detection for the
// hand-written SIMD kernels (internal/nn's dense forward pass,
// internal/embedding's cosine accumulator). Detection runs once at
// process start; packages gate their assembly paths on the exported
// flags and fall back to pure Go otherwise, so builds and tests behave
// identically on machines without the instructions.
package cpufeat

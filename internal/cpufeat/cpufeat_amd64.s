//go:build amd64

#include "textflag.h"

// func cpuHasAVX() bool
//
// CPUID leaf 1: ECX bit 28 = AVX, bit 27 = OSXSAVE. When both are set,
// XGETBV(0) must report that the OS saves XMM and YMM state (XCR0 bits
// 1 and 2) before AVX instructions are safe to execute.
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL	$1, AX
	CPUID
	MOVL	CX, BX
	ANDL	$0x18000000, BX	// OSXSAVE | AVX
	CMPL	BX, $0x18000000
	JNE	noavx
	MOVL	$0, CX
	XGETBV
	ANDL	$6, AX		// XCR0: SSE | YMM state
	CMPL	AX, $6
	JNE	noavx
	MOVB	$1, ret+0(FP)
	RET
noavx:
	MOVB	$0, ret+0(FP)
	RET

//go:build !amd64

package cpufeat

// AVX is always false off amd64; every kernel user takes its pure-Go
// fallback.
const AVX = false

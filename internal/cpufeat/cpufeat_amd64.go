//go:build amd64

package cpufeat

// cpuHasAVX reports whether the CPU and OS support AVX (CPUID feature
// flags plus XGETBV confirmation that the OS saves YMM state).
// Implemented in cpufeat_amd64.s.
func cpuHasAVX() bool

// AVX reports AVX support, detected once at process start.
var AVX = cpuHasAVX()

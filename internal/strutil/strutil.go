// Package strutil provides string and token utilities shared across the
// certa codebase: tokenization, normalization, similarity measures and
// n-gram extraction.
//
// All functions are deterministic and allocation-conscious; they are used
// in the hot path of both the ER matchers and the explanation methods.
package strutil

import (
	"sort"
	"strings"
	"unicode"
)

// NaN is the canonical representation of a missing attribute value, kept
// textual to match the benchmark CSV conventions ("NaN" cells in the
// DeepMatcher datasets).
const NaN = "NaN"

// IsMissing reports whether a raw attribute value denotes a missing value.
func IsMissing(s string) bool {
	switch strings.TrimSpace(s) {
	case "", NaN, "nan", "null", "NULL", "None":
		return true
	}
	return false
}

// Normalize lower-cases s and collapses runs of whitespace into single
// spaces. Punctuation is kept (product names such as "dav-is50 / b" carry
// signal in the benchmarks), but control characters are dropped.
func Normalize(s string) string {
	if normalizedASCII(s) {
		// Already in canonical form: the slow path below would rebuild the
		// identical string byte for byte, so return the input unallocated.
		// Most benchmark values normalize once and then flow through the
		// featurizers repeatedly in canonical form.
		return s
	}
	return normalizeSlow(s)
}

// normalizedASCII reports whether s is already exactly what normalizeSlow
// would produce: lowercase ASCII, no control bytes, single interior
// spaces, no leading or trailing space.
func normalizedASCII(s string) bool {
	prevSpace := true // reject a leading space
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == ' ':
			if prevSpace {
				return false
			}
			prevSpace = true
		case c < 0x21 || c == 0x7f || c >= 0x80 || (c >= 'A' && c <= 'Z'):
			// Control bytes, uppercase, and any non-ASCII byte (which may
			// begin a multi-byte rune needing lowering or collapsing) take
			// the slow path.
			return false
		default:
			prevSpace = false
		}
	}
	return !prevSpace || len(s) == 0 // reject a trailing space
}

// normalizeSlow is the rune-correct reference implementation; the fast
// path above must agree with it on every input
// (TestNormalizeFastPathMatchesReference).
func normalizeSlow(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	space := true // suppress leading spaces
	for _, r := range s {
		switch {
		case unicode.IsSpace(r):
			if !space {
				b.WriteByte(' ')
				space = true
			}
		case unicode.IsControl(r):
			continue
		default:
			b.WriteRune(unicode.ToLower(r))
			space = false
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// Tokenize splits s into whitespace-separated tokens after normalization.
// Missing values tokenize to nil.
func Tokenize(s string) []string {
	if IsMissing(s) {
		return nil
	}
	n := Normalize(s)
	if n == "" {
		return nil
	}
	return strings.Fields(n)
}

// JoinTokens is the inverse of Tokenize for round-tripping perturbed
// values back into attribute strings.
func JoinTokens(tokens []string) string {
	if len(tokens) == 0 {
		return NaN
	}
	return strings.Join(tokens, " ")
}

// TokenSet returns the set of distinct tokens of s.
func TokenSet(s string) map[string]struct{} {
	toks := Tokenize(s)
	set := make(map[string]struct{}, len(toks))
	for _, t := range toks {
		set[t] = struct{}{}
	}
	return set
}

// DistinctTokens returns the distinct tokens of s in sorted order: the
// deterministic-iteration counterpart of TokenSet, used by code that
// accumulates floating-point weights per token (inverted-index builds,
// IDF sums) and must not depend on map iteration order.
func DistinctTokens(s string) []string {
	toks := Tokenize(s)
	if len(toks) == 0 {
		return nil
	}
	sort.Strings(toks)
	out := toks[:1]
	for _, t := range toks[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// SetJaccard is Jaccard similarity over pre-built token sets, for
// callers that tokenize once and compare many times. Two empty sets are
// considered identical (similarity 1), matching Jaccard on empty texts.
func SetJaccard(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for t := range a {
		if _, ok := b[t]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Jaccard computes the Jaccard similarity of the token sets of a and b.
// Two missing values are considered identical (similarity 1); a missing
// value against a present one scores 0.
func Jaccard(a, b string) float64 {
	am, bm := IsMissing(a), IsMissing(b)
	if am && bm {
		return 1
	}
	if am || bm {
		return 0
	}
	sa, sb := TokenSet(a), TokenSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// OverlapCoefficient computes |A∩B| / min(|A|,|B|) over token sets, a
// similarity that is robust to one value being a strict subset of the
// other (common between terse and verbose product titles).
func OverlapCoefficient(a, b string) float64 {
	am, bm := IsMissing(a), IsMissing(b)
	if am && bm {
		return 1
	}
	if am || bm {
		return 0
	}
	sa, sb := TokenSet(a), TokenSet(b)
	if len(sa) == 0 || len(sb) == 0 {
		if len(sa) == len(sb) {
			return 1
		}
		return 0
	}
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	m := len(sa)
	if len(sb) < m {
		m = len(sb)
	}
	return float64(inter) / float64(m)
}

// LevenshteinDistance returns the edit distance between a and b with unit
// costs. It runs in O(len(a)*len(b)) time and O(min) space. All-ASCII
// inputs take a byte-indexed path with stack-allocated DP rows (the
// featurize hot path truncates values to 64 bytes, so that path never
// allocates); the distance is identical because ASCII bytes and runes
// correspond one to one (TestLevenshteinASCIIMatchesReference).
func LevenshteinDistance(a, b string) int {
	if asciiOnly(a) && asciiOnly(b) {
		return levenshteinASCII(a, b)
	}
	return levenshteinRunes(a, b)
}

func asciiOnly(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

func levenshteinASCII(a, b string) int {
	// A shared prefix or suffix never participates in an optimal unit-cost
	// edit script; stripping it is exact and collapses the DP for the
	// near-identical strings perturbation workloads compare.
	for len(a) > 0 && len(b) > 0 && a[0] == b[0] {
		a, b = a[1:], b[1:]
	}
	for len(a) > 0 && len(b) > 0 && a[len(a)-1] == b[len(b)-1] {
		a, b = a[:len(a)-1], b[:len(b)-1]
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	var stack [2][72]int
	var prev, cur []int
	if len(b)+1 <= len(stack[0]) {
		prev, cur = stack[0][:len(b)+1], stack[1][:len(b)+1]
	} else {
		prev, cur = make([]int, len(b)+1), make([]int, len(b)+1)
	}
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1 // deletion
			if v := cur[j-1] + 1; v < m {
				m = v // insertion
			}
			if v := prev[j-1] + cost; v < m {
				m = v // substitution
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// levenshteinRunes is the rune-correct reference implementation.
func levenshteinRunes(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			m := prev[j] + 1 // deletion
			if v := cur[j-1] + 1; v < m {
				m = v // insertion
			}
			if v := prev[j-1] + cost; v < m {
				m = v // substitution
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinSimilarity maps edit distance into [0,1]:
// 1 - dist/max(len). Missing-vs-missing is 1, missing-vs-present is 0.
func LevenshteinSimilarity(a, b string) float64 {
	am, bm := IsMissing(a), IsMissing(b)
	if am && bm {
		return 1
	}
	if am || bm {
		return 0
	}
	na, nb := Normalize(a), Normalize(b)
	la, lb := len([]rune(na)), len([]rune(nb))
	if la == 0 && lb == 0 {
		return 1
	}
	m := la
	if lb > m {
		m = lb
	}
	return 1 - float64(LevenshteinDistance(na, nb))/float64(m)
}

// NGrams returns the character n-grams of the normalized input. Values
// shorter than n yield a single gram with the whole string.
func NGrams(s string, n int) []string {
	if n <= 0 {
		return nil
	}
	norm := Normalize(s)
	runes := []rune(norm)
	if len(runes) == 0 {
		return nil
	}
	if len(runes) <= n {
		return []string{string(runes)}
	}
	grams := make([]string, 0, len(runes)-n+1)
	for i := 0; i+n <= len(runes); i++ {
		grams = append(grams, string(runes[i:i+n]))
	}
	return grams
}

// TrigramJaccard is the Jaccard similarity of 3-gram sets, a softer
// measure than token Jaccard that tolerates typos.
func TrigramJaccard(a, b string) float64 {
	am, bm := IsMissing(a), IsMissing(b)
	if am && bm {
		return 1
	}
	if am || bm {
		return 0
	}
	ga, gb := NGrams(a, 3), NGrams(b, 3)
	sa := make(map[string]struct{}, len(ga))
	for _, g := range ga {
		sa[g] = struct{}{}
	}
	sb := make(map[string]struct{}, len(gb))
	for _, g := range gb {
		sb[g] = struct{}{}
	}
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for g := range sa {
		if _, ok := sb[g]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// ContainmentSimilarity measures how much of the shorter token sequence
// is contained (as tokens, order-free) in the longer one.
func ContainmentSimilarity(a, b string) float64 {
	ta, tb := Tokenize(a), Tokenize(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	short, long := ta, tb
	if len(tb) < len(ta) {
		short, long = tb, ta
	}
	set := make(map[string]int, len(long))
	for _, t := range long {
		set[t]++
	}
	hit := 0
	for _, t := range short {
		if set[t] > 0 {
			set[t]--
			hit++
		}
	}
	return float64(hit) / float64(len(short))
}

// NumericTokens extracts tokens that parse as plain numbers (model
// numbers, prices, years). Used by the Ditto-style matcher for its
// "domain knowledge injection".
func NumericTokens(s string) []string {
	var out []string
	for _, t := range Tokenize(s) {
		if isNumericToken(t) {
			out = append(out, t)
		}
	}
	return out
}

func isNumericToken(t string) bool {
	digits := 0
	for _, r := range t {
		switch {
		case r >= '0' && r <= '9':
			digits++
		case r == '.' || r == ',' || r == '$':
		default:
			return false
		}
	}
	return digits > 0
}

// NumberOverlap computes Jaccard similarity restricted to numeric tokens,
// which carry disproportionate signal for product matching (model numbers
// and prices).
func NumberOverlap(a, b string) float64 {
	na, nb := NumericTokens(a), NumericTokens(b)
	if len(na) == 0 && len(nb) == 0 {
		return 1
	}
	if len(na) == 0 || len(nb) == 0 {
		return 0
	}
	sa := make(map[string]struct{}, len(na))
	for _, t := range na {
		sa[t] = struct{}{}
	}
	sb := make(map[string]struct{}, len(nb))
	for _, t := range nb {
		sb[t] = struct{}{}
	}
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	return float64(inter) / float64(union)
}

// PrefixTokens returns the first k tokens of s joined back into a string,
// used by the data-augmentation scheme of CERTA (§3.3 of the paper).
func PrefixTokens(s string, k int) string {
	toks := Tokenize(s)
	if k < 0 {
		k = 0
	}
	if k > len(toks) {
		k = len(toks)
	}
	return JoinTokens(toks[:k])
}

// SuffixTokens returns the last k tokens of s joined back into a string.
func SuffixTokens(s string, k int) string {
	toks := Tokenize(s)
	if k < 0 {
		k = 0
	}
	if k > len(toks) {
		k = len(toks)
	}
	return JoinTokens(toks[len(toks)-k:])
}

// DropFirstTokens removes the first k tokens (the paper's "drop first-k"
// augmentation operator).
func DropFirstTokens(s string, k int) string {
	toks := Tokenize(s)
	if k < 0 {
		k = 0
	}
	if k >= len(toks) {
		return NaN
	}
	return JoinTokens(toks[k:])
}

// DropLastTokens removes the last k tokens (the paper's "drop last-k"
// augmentation operator).
func DropLastTokens(s string, k int) string {
	toks := Tokenize(s)
	if k < 0 {
		k = 0
	}
	if k >= len(toks) {
		return NaN
	}
	return JoinTokens(toks[:len(toks)-k])
}

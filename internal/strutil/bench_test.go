package strutil

import "testing"

var benchA = "sony bravia theater black micro system davis50b 5.1-channel surround sound dvd home theater"
var benchB = "sony bravia dav-is50 / b home theater system dvd player 5.1 speakers 1 disc progressive scan"

func BenchmarkJaccard(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Jaccard(benchA, benchB)
	}
}

func BenchmarkTrigramJaccard(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TrigramJaccard(benchA[:64], benchB[:64])
	}
}

func BenchmarkLevenshteinDistance(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LevenshteinDistance(benchA[:64], benchB[:64])
	}
}

func BenchmarkTokenize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(benchA)
	}
}

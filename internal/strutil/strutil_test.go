package strutil

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestIsMissing(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want bool
	}{
		{"", true},
		{"   ", true},
		{"NaN", true},
		{"nan", true},
		{"null", true},
		{"None", true},
		{"0", false},
		{"sony", false},
		{" nan trailing", false},
	} {
		if got := IsMissing(tc.in); got != tc.want {
			t.Errorf("IsMissing(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"  Sony   BRAVIA  ", "sony bravia"},
		{"a\tb\nc", "a b c"},
		{"", ""},
		{"UPPER", "upper"},
		{"dav-is50 / b", "dav-is50 / b"},
	} {
		if got := Normalize(tc.in); got != tc.want {
			t.Errorf("Normalize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTokenizeAndJoin(t *testing.T) {
	toks := Tokenize("  Sony  Bravia theater ")
	if len(toks) != 3 || toks[0] != "sony" || toks[2] != "theater" {
		t.Fatalf("Tokenize = %v", toks)
	}
	if got := JoinTokens(toks); got != "sony bravia theater" {
		t.Errorf("JoinTokens = %q", got)
	}
	if Tokenize("NaN") != nil {
		t.Error("Tokenize(NaN) should be nil")
	}
	if JoinTokens(nil) != NaN {
		t.Error("JoinTokens(nil) should be NaN")
	}
}

func TestJaccard(t *testing.T) {
	for _, tc := range []struct {
		a, b string
		want float64
	}{
		{"a b c", "a b c", 1},
		{"a b", "c d", 0},
		{"a b c d", "a b", 0.5},
		{"NaN", "NaN", 1},
		{"NaN", "a", 0},
		{"a", "NaN", 0},
	} {
		if got := Jaccard(tc.a, tc.b); !almostEq(got, tc.want) {
			t.Errorf("Jaccard(%q,%q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestJaccardProperties(t *testing.T) {
	// Symmetry and range on arbitrary inputs.
	f := func(a, b string) bool {
		x, y := Jaccard(a, b), Jaccard(b, a)
		return almostEq(x, y) && x >= 0 && x <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Identity.
	g := func(a string) bool {
		return almostEq(Jaccard(a, a), 1)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestOverlapCoefficient(t *testing.T) {
	if got := OverlapCoefficient("a b", "a b c d"); !almostEq(got, 1) {
		t.Errorf("subset overlap = %v, want 1", got)
	}
	if got := OverlapCoefficient("a x", "a b c d"); !almostEq(got, 0.5) {
		t.Errorf("half overlap = %v, want 0.5", got)
	}
	if got := OverlapCoefficient("NaN", "NaN"); !almostEq(got, 1) {
		t.Errorf("missing-vs-missing = %v", got)
	}
}

func TestLevenshteinDistance(t *testing.T) {
	for _, tc := range []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
	} {
		if got := LevenshteinDistance(tc.a, tc.b); got != tc.want {
			t.Errorf("Lev(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	sym := func(a, b string) bool {
		return LevenshteinDistance(a, b) == LevenshteinDistance(b, a)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error("symmetry:", err)
	}
	ident := func(a string) bool { return LevenshteinDistance(a, a) == 0 }
	if err := quick.Check(ident, nil); err != nil {
		t.Error("identity:", err)
	}
	// Triangle inequality on short strings (cost guard via config).
	tri := func(a, b, c string) bool {
		if len(a) > 30 || len(b) > 30 || len(c) > 30 {
			return true
		}
		ab := LevenshteinDistance(a, b)
		bc := LevenshteinDistance(b, c)
		ac := LevenshteinDistance(a, c)
		return ac <= ab+bc
	}
	if err := quick.Check(tri, &quick.Config{MaxCount: 200}); err != nil {
		t.Error("triangle:", err)
	}
}

func TestLevenshteinSimilarity(t *testing.T) {
	if got := LevenshteinSimilarity("abc", "abc"); !almostEq(got, 1) {
		t.Errorf("identical = %v", got)
	}
	if got := LevenshteinSimilarity("NaN", "abc"); !almostEq(got, 0) {
		t.Errorf("missing-vs-present = %v", got)
	}
	got := LevenshteinSimilarity("abcd", "abce")
	if !almostEq(got, 0.75) {
		t.Errorf("one edit of four = %v, want 0.75", got)
	}
}

func TestNGrams(t *testing.T) {
	grams := NGrams("abcd", 3)
	if len(grams) != 2 || grams[0] != "abc" || grams[1] != "bcd" {
		t.Errorf("NGrams = %v", grams)
	}
	if g := NGrams("ab", 3); len(g) != 1 || g[0] != "ab" {
		t.Errorf("short NGrams = %v", g)
	}
	if NGrams("", 3) != nil {
		t.Error("empty NGrams should be nil")
	}
	if NGrams("abc", 0) != nil {
		t.Error("n=0 NGrams should be nil")
	}
}

func TestTrigramJaccard(t *testing.T) {
	if got := TrigramJaccard("sony bravia", "sony bravia"); !almostEq(got, 1) {
		t.Errorf("identical = %v", got)
	}
	// A single typo should retain high trigram similarity.
	got := TrigramJaccard("television", "televsion")
	if got < 0.4 {
		t.Errorf("typo trigram sim = %v, want fairly high", got)
	}
	if tok := Jaccard("television", "televsion"); tok != 0 {
		t.Errorf("token jaccard of typo pair = %v, want 0 (motivates trigram)", tok)
	}
}

func TestContainmentSimilarity(t *testing.T) {
	if got := ContainmentSimilarity("sony bravia", "sony bravia theater black micro"); !almostEq(got, 1) {
		t.Errorf("contained = %v, want 1", got)
	}
	if got := ContainmentSimilarity("a b", "c d"); !almostEq(got, 0) {
		t.Errorf("disjoint = %v, want 0", got)
	}
	// Duplicate tokens must not double count.
	if got := ContainmentSimilarity("a a", "a b c"); !almostEq(got, 0.5) {
		t.Errorf("dup tokens = %v, want 0.5", got)
	}
}

func TestNumericTokens(t *testing.T) {
	got := NumericTokens("sony kdl-19m4000 19 ' lcd tv $379.72 model 4000")
	want := []string{"19", "$379.72", "4000"}
	if len(got) != len(want) {
		t.Fatalf("NumericTokens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("NumericTokens[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestNumberOverlap(t *testing.T) {
	if got := NumberOverlap("tv 4000", "tv model 4000"); !almostEq(got, 1) {
		t.Errorf("same numbers = %v", got)
	}
	if got := NumberOverlap("tv 4000", "tv 5000"); !almostEq(got, 0) {
		t.Errorf("different numbers = %v", got)
	}
	if got := NumberOverlap("no numbers", "none here"); !almostEq(got, 1) {
		t.Errorf("no numbers = %v, want neutral 1", got)
	}
}

func TestDropTokens(t *testing.T) {
	s := "a b c d"
	if got := DropFirstTokens(s, 1); got != "b c d" {
		t.Errorf("DropFirstTokens = %q", got)
	}
	if got := DropLastTokens(s, 2); got != "a b" {
		t.Errorf("DropLastTokens = %q", got)
	}
	if got := DropFirstTokens(s, 4); got != NaN {
		t.Errorf("drop all = %q, want NaN", got)
	}
	if got := DropLastTokens(s, 99); got != NaN {
		t.Errorf("drop beyond = %q, want NaN", got)
	}
	if got := PrefixTokens(s, 2); got != "a b" {
		t.Errorf("PrefixTokens = %q", got)
	}
	if got := SuffixTokens(s, 3); got != "b c d" {
		t.Errorf("SuffixTokens = %q", got)
	}
}

func TestDropTokensProperty(t *testing.T) {
	// Dropping first k then counting equals max(n-k, 0) tokens, and the
	// result is always a suffix of the original token stream.
	f := func(raw string, k uint8) bool {
		toks := Tokenize(raw)
		kk := int(k % 8)
		out := DropFirstTokens(raw, kk)
		outToks := Tokenize(out)
		wantLen := len(toks) - kk
		if wantLen < 0 {
			wantLen = 0
		}
		if len(outToks) != wantLen {
			return false
		}
		return strings.HasSuffix(JoinTokens(toks), JoinTokens(outToks)) || wantLen == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistinctTokens(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"beta alpha beta ALPHA", []string{"alpha", "beta"}},
		{"NaN", nil},
		{"", nil},
		{"one", []string{"one"}},
	}
	for _, c := range cases {
		got := DistinctTokens(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("DistinctTokens(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("DistinctTokens(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestDistinctTokensMatchesTokenSet(t *testing.T) {
	// DistinctTokens is exactly TokenSet's contents in sorted order.
	f := func(raw string) bool {
		set := TokenSet(raw)
		toks := DistinctTokens(raw)
		if len(toks) != len(set) {
			return false
		}
		for i, tok := range toks {
			if _, ok := set[tok]; !ok {
				return false
			}
			if i > 0 && toks[i-1] >= tok {
				return false // unsorted or duplicated
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetJaccardMatchesJaccard(t *testing.T) {
	// On non-missing inputs, SetJaccard over TokenSet equals Jaccard on
	// the raw strings.
	pairs := [][2]string{
		{"alpha beta", "beta gamma"},
		{"a b c", "a b c"},
		{"x", "y"},
		{"", ""},
		{"alpha", ""},
	}
	for _, p := range pairs {
		got := SetJaccard(TokenSet(p[0]), TokenSet(p[1]))
		var want float64
		if IsMissing(p[0]) || IsMissing(p[1]) {
			// Jaccard short-circuits on missing values; SetJaccard sees
			// only the (empty) sets. Compare against the set semantics.
			if len(TokenSet(p[0])) == 0 && len(TokenSet(p[1])) == 0 {
				want = 1
			}
			if got != want {
				t.Errorf("SetJaccard(%q, %q) = %v, want %v", p[0], p[1], got, want)
			}
			continue
		}
		want = Jaccard(p[0], p[1])
		if got != want {
			t.Errorf("SetJaccard(%q, %q) = %v, want Jaccard %v", p[0], p[1], got, want)
		}
	}
}

package strutil

import (
	"math/rand"
	"strings"
	"testing"
)

// fuzzyStrings generates adversarial inputs for the fast-path property
// tests: mixed case, unicode, control bytes, whitespace runs, numbers
// and boundary shapes.
func fuzzyStrings(rng *rand.Rand, n int) []string {
	pieces := []string{
		"", " ", "  ", "\t", "\n", "a", "B", "é", "É", "日本", "ß", "ℵ",
		"x1-2", "$3.99", "1,000", "NaN", "null", "sony", "SONY", "\x01", "\x7f",
		" ", "İ", "ǅ", strings.Repeat("q", 70), strings.Repeat("W ", 40),
	}
	out := make([]string, n)
	for i := range out {
		var b strings.Builder
		for k := rng.Intn(6); k >= 0; k-- {
			b.WriteString(pieces[rng.Intn(len(pieces))])
		}
		out[i] = b.String()
	}
	return out
}

// TestNormalizeFastPathMatchesReference: Normalize must agree with the
// rune-correct slow path on every input — when the fast path fires it
// returns the input, so this also proves the fast-path predicate only
// accepts already-canonical strings.
func TestNormalizeFastPathMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, s := range fuzzyStrings(rng, 2000) {
		if got, want := Normalize(s), normalizeSlow(s); got != want {
			t.Fatalf("Normalize(%q) = %q, want %q", s, got, want)
		}
	}
	// Canonical strings must take the allocation-free path.
	for _, s := range []string{"", "abc", "a b c", "sony dcr-trv27 minidv", "$3.99 x1-2"} {
		if !normalizedASCII(s) {
			t.Fatalf("normalizedASCII(%q) = false, want true", s)
		}
	}
	for _, s := range []string{" a", "a ", "a  b", "A", "é", "a\tb", "\x01", "a\x7f"} {
		if normalizedASCII(s) {
			t.Fatalf("normalizedASCII(%q) = true, want false", s)
		}
	}
}

// TestLevenshteinASCIIMatchesReference: the byte-indexed DP must equal
// the rune DP on all-ASCII inputs of any length (stack and heap rows).
func TestLevenshteinASCIIMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	alphabet := "ab 1-x."
	randASCII := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		return b.String()
	}
	for trial := 0; trial < 500; trial++ {
		a := randASCII(rng.Intn(90)) // crosses the 72-entry stack-row bound
		b := randASCII(rng.Intn(90))
		if got, want := levenshteinASCII(a, b), levenshteinRunes(a, b); got != want {
			t.Fatalf("levenshteinASCII(%q, %q) = %d, want %d", a, b, got, want)
		}
	}
	// Unicode inputs must still route through the rune DP: "é" is one
	// rune but two bytes, so a byte DP would differ.
	if got := LevenshteinDistance("é", "e"); got != 1 {
		t.Fatalf("LevenshteinDistance(é, e) = %d, want 1", got)
	}
}

// TestSortedSimsMatchStringSims: the sorted-token similarity functions
// must reproduce the string-based measures bit for bit on non-missing
// inputs, with AppendTokens+SortTokens as the tokenization.
func TestSortedSimsMatchStringSims(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inputs := fuzzyStrings(rng, 400)
	for trial := 0; trial < 400; trial++ {
		a := inputs[rng.Intn(len(inputs))]
		b := inputs[rng.Intn(len(inputs))]
		if IsMissing(a) || IsMissing(b) {
			continue
		}
		ta := AppendTokens(nil, a)
		tb := AppendTokens(nil, b)
		SortTokens(ta)
		SortTokens(tb)
		if got, want := JaccardSortedTokens(ta, tb), Jaccard(a, b); got != want {
			t.Fatalf("JaccardSortedTokens(%q, %q) = %v, want %v", a, b, got, want)
		}
		if got, want := ContainmentSortedTokens(ta, tb), ContainmentSimilarity(a, b); got != want {
			t.Fatalf("ContainmentSortedTokens(%q, %q) = %v, want %v", a, b, got, want)
		}
		if got, want := NumberOverlapSortedTokens(ta, tb), NumberOverlap(a, b); got != want {
			t.Fatalf("NumberOverlapSortedTokens(%q, %q) = %v, want %v", a, b, got, want)
		}
	}
}

// TestAppendTokensMatchesTokenize: AppendTokens is Tokenize with a
// caller-owned buffer.
func TestAppendTokensMatchesTokenize(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	buf := make([]string, 0, 8)
	for _, s := range fuzzyStrings(rng, 1000) {
		buf = AppendTokens(buf[:0], s)
		want := Tokenize(s)
		if len(buf) != len(want) {
			t.Fatalf("AppendTokens(%q) = %q, want %q", s, buf, want)
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("AppendTokens(%q) = %q, want %q", s, buf, want)
			}
		}
	}
}

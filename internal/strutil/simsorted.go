package strutil

import "sort"

// The *SortedTokens functions compute the attribute-block similarities
// from pre-tokenized, pre-sorted token slices, so a hot caller (the
// DeepMatcher featurizer) tokenizes and sorts each value once and shares
// the work across Jaccard, containment and number overlap instead of
// re-tokenizing per measure. Every function reduces to the same integer
// intersection/union counts as its string-based counterpart, and a
// ratio of equal integers is the same float64 — the results are
// bit-identical (TestSortedSimsMatchStringSims).
//
// Inputs are the full token slices (duplicates included), sorted
// ascending; the distinct-set measures deduplicate during their merge
// walk. Passing unsorted slices silently computes the wrong answer —
// callers own the sort.Strings call.

// AppendTokens appends the tokens of s to dst and returns the extended
// slice: Tokenize for callers that pool their token buffers. Missing
// values append nothing.
func AppendTokens(dst []string, s string) []string {
	if IsMissing(s) {
		return dst
	}
	n := Normalize(s)
	// Normalize emits single ASCII spaces only, so a byte scan splits
	// exactly like strings.Fields; tokens are substrings of n (no
	// per-token allocation).
	start := -1
	for i := 0; i < len(n); i++ {
		if n[i] == ' ' {
			if start >= 0 {
				dst = append(dst, n[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		dst = append(dst, n[start:])
	}
	return dst
}

// SortTokens sorts a token slice in place — the explicit counterpart of
// the ordering contract above.
func SortTokens(toks []string) { sort.Strings(toks) }

// JaccardSortedTokens is Jaccard over the distinct-token sets of two
// sorted token slices. Matches Jaccard(a, b) for non-missing inputs
// whose token slices these are.
func JaccardSortedTokens(a, b []string) float64 {
	da, db, inter := 0, 0, 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			t := a[i]
			inter++
			da++
			db++
			for i < len(a) && a[i] == t {
				i++
			}
			for j < len(b) && b[j] == t {
				j++
			}
		case a[i] < b[j]:
			t := a[i]
			da++
			for i < len(a) && a[i] == t {
				i++
			}
		default:
			t := b[j]
			db++
			for j < len(b) && b[j] == t {
				j++
			}
		}
	}
	for i < len(a) {
		t := a[i]
		da++
		for i < len(a) && a[i] == t {
			i++
		}
	}
	for j < len(b) {
		t := b[j]
		db++
		for j < len(b) && b[j] == t {
			j++
		}
	}
	union := da + db - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// ContainmentSortedTokens mirrors ContainmentSimilarity: the multiset
// intersection over the shorter slice's length. The shorter side is
// chosen exactly as the string version chooses it (ties keep a).
func ContainmentSortedTokens(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	short, long := a, b
	if len(b) < len(a) {
		short, long = b, a
	}
	// Multiset intersection Σ_t min(count_short, count_long) via merge.
	hit := 0
	i, j := 0, 0
	for i < len(short) && j < len(long) {
		switch {
		case short[i] == long[j]:
			hit++
			i++
			j++
		case short[i] < long[j]:
			i++
		default:
			j++
		}
	}
	return float64(hit) / float64(len(short))
}

// NumberOverlapSortedTokens mirrors NumberOverlap: Jaccard over the
// distinct numeric tokens of each slice.
func NumberOverlapSortedTokens(a, b []string) float64 {
	da, db, inter := 0, 0, 0
	i, j := nextNumeric(a, 0), nextNumeric(b, 0)
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			t := a[i]
			inter++
			da++
			db++
			for i < len(a) && a[i] == t {
				i++
			}
			for j < len(b) && b[j] == t {
				j++
			}
		case a[i] < b[j]:
			t := a[i]
			da++
			for i < len(a) && a[i] == t {
				i++
			}
		default:
			t := b[j]
			db++
			for j < len(b) && b[j] == t {
				j++
			}
		}
		i, j = nextNumeric(a, i), nextNumeric(b, j)
	}
	for i < len(a) {
		t := a[i]
		da++
		for i < len(a) && a[i] == t {
			i++
		}
		i = nextNumeric(a, i)
	}
	for j < len(b) {
		t := b[j]
		db++
		for j < len(b) && b[j] == t {
			j++
		}
		j = nextNumeric(b, j)
	}
	if da == 0 && db == 0 {
		return 1
	}
	if da == 0 || db == 0 {
		return 0
	}
	return float64(inter) / float64(da+db-inter)
}

func nextNumeric(s []string, k int) int {
	for k < len(s) && !isNumericToken(s[k]) {
		k++
	}
	return k
}

package vector

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDotNormAxpy(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Norm([]float64{3, 4}); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	y := []float64{1, 1, 1}
	Axpy(2, a, y)
	if y[0] != 3 || y[1] != 5 || y[2] != 7 {
		t.Errorf("Axpy = %v", y)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot should panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAddSubScaleMean(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	if s := Add(a, b); s[0] != 4 || s[1] != 7 {
		t.Errorf("Add = %v", s)
	}
	if d := Sub(b, a); d[0] != 2 || d[1] != 3 {
		t.Errorf("Sub = %v", d)
	}
	c := []float64{2, 4}
	Scale(0.5, c)
	if c[0] != 1 || c[1] != 2 {
		t.Errorf("Scale = %v", c)
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if got := CosineSimilarity([]float64{1, 0}, []float64{1, 0}); !approx(got, 1, 1e-12) {
		t.Errorf("parallel = %v", got)
	}
	if got := CosineSimilarity([]float64{1, 0}, []float64{0, 1}); !approx(got, 0, 1e-12) {
		t.Errorf("orthogonal = %v", got)
	}
	if got := CosineSimilarity([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Errorf("zero vector = %v", got)
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); !approx(got, 0.5, 1e-12) {
		t.Errorf("Sigmoid(0) = %v", got)
	}
	if got := Sigmoid(1000); !approx(got, 1, 1e-12) {
		t.Errorf("Sigmoid(+inf-ish) = %v", got)
	}
	if got := Sigmoid(-1000); !approx(got, 0, 1e-12) {
		t.Errorf("Sigmoid(-inf-ish) = %v", got)
	}
	// Symmetry property: s(-x) = 1 - s(x).
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return approx(Sigmoid(-x), 1-Sigmoid(x), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 2)
	m.Set(1, 1, 3)
	if m.At(0, 2) != 2 || m.At(1, 1) != 3 {
		t.Error("Set/At roundtrip failed")
	}
	v := m.MulVec([]float64{1, 1, 1})
	if v[0] != 3 || v[1] != 3 {
		t.Errorf("MulVec = %v", v)
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 0) != 2 || tr.At(1, 1) != 3 {
		t.Error("Transpose wrong")
	}
}

func TestMatrixMul(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	b := NewMatrix(2, 2)
	copy(b.Data, []float64{5, 6, 7, 8})
	c := a.Mul(b)
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if c.Data[i] != w {
			t.Errorf("Mul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	// A = [[4,2],[2,3]], b = [2,1] -> x = [0.5, 0].
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{4, 2, 2, 3})
	x, err := CholeskySolve(a, []float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 0.5, 1e-9) || !approx(x[1], 0, 1e-9) {
		t.Errorf("solution = %v", x)
	}
}

func TestCholeskySolveRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(8)
		// Build SPD as GᵀG + I.
		g := NewMatrix(n, n)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		a := g.Transpose().Mul(g)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := CholeskySolve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if !approx(got[i], want[i], 1e-6) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestCholeskySolveSingular(t *testing.T) {
	a := NewMatrix(2, 2) // all zeros: singular even with jitter? jitter makes it PD.
	// A strongly indefinite matrix cannot be fixed by tiny jitter.
	copy(a.Data, []float64{0, 1, 1, 0})
	if _, err := CholeskySolve(a, []float64{1, 1}); err == nil {
		t.Error("expected error for indefinite matrix")
	}
}

func TestCholeskySolveShapeErrors(t *testing.T) {
	if _, err := CholeskySolve(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Error("expected error for non-square matrix")
	}
	if _, err := CholeskySolve(NewMatrix(2, 2), []float64{1}); err == nil {
		t.Error("expected error for b length mismatch")
	}
}

func TestWeightedRidgeRecoversLine(t *testing.T) {
	// y = 3x + 1 with intercept column; ridge with tiny lambda should
	// recover the coefficients closely.
	n := 50
	x := NewMatrix(n, 2)
	y := make([]float64, n)
	w := make([]float64, n)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		xi := rng.Float64()*10 - 5
		x.Set(i, 0, xi)
		x.Set(i, 1, 1)
		y[i] = 3*xi + 1
		w[i] = 1
	}
	beta, err := WeightedRidge(x, y, w, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(beta[0], 3, 1e-3) || !approx(beta[1], 1, 1e-3) {
		t.Errorf("beta = %v, want [3 1]", beta)
	}
}

func TestWeightedRidgeHonorsWeights(t *testing.T) {
	// Two clusters with conflicting slopes; weights select the first.
	x := NewMatrix(4, 1)
	x.Data = []float64{1, 2, 1, 2}
	y := []float64{2, 4, -2, -4} // slope +2 vs slope -2
	wPos := []float64{1, 1, 0, 0}
	beta, err := WeightedRidge(x, y, wPos, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(beta[0], 2, 1e-4) {
		t.Errorf("weighted slope = %v, want 2", beta[0])
	}
}

func TestWeightedRidgeShapeError(t *testing.T) {
	if _, err := WeightedRidge(NewMatrix(2, 1), []float64{1}, []float64{1, 1}, 0.1); err == nil {
		t.Error("expected shape error")
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax(nil) != -1 {
		t.Error("ArgMax(nil) should be -1")
	}
	if ArgMax([]float64{1, 5, 2}) != 1 {
		t.Error("ArgMax wrong")
	}
	if ArgMax([]float64{3, 3, 3}) != 0 {
		t.Error("ArgMax tie should pick first")
	}
}

func TestTrapezoid(t *testing.T) {
	// Area under y = x on [0,1] is 0.5.
	xs := []float64{0, 0.5, 1}
	ys := []float64{0, 0.5, 1}
	if got := Trapezoid(xs, ys); !approx(got, 0.5, 1e-12) {
		t.Errorf("Trapezoid = %v", got)
	}
	// Constant function.
	if got := Trapezoid([]float64{0, 2}, []float64{3, 3}); !approx(got, 6, 1e-12) {
		t.Errorf("Trapezoid const = %v", got)
	}
}

// Package vector implements the small amount of dense linear algebra the
// project needs: vector arithmetic, matrices in row-major layout, a
// Cholesky-based symmetric positive-definite solver (used by the weighted
// ridge regressions inside LIME and Kernel SHAP), and numerically stable
// scalar nonlinearities.
//
// The package is deliberately minimal — no BLAS, no panics on the hot
// path beyond shape mismatches, everything float64.
package vector

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned by solvers when the system matrix is singular
// or not positive definite beyond repair.
var ErrSingular = errors.New("vector: matrix is singular or not positive definite")

// Dot returns the inner product of a and b. It panics if lengths differ,
// since that is always a programming error.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vector: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of a.
func Norm(a []float64) float64 {
	return math.Sqrt(Dot(a, a))
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vector: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add returns a+b as a new slice.
func Add(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vector: Add length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a-b as a new slice.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vector: Sub length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Mean returns the arithmetic mean of a, or 0 for an empty slice.
func Mean(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	var s float64
	for _, v := range a {
		s += v
	}
	return s / float64(len(a))
}

// CosineSimilarity returns the cosine of the angle between a and b, or 0
// if either has zero norm.
func CosineSimilarity(a, b []float64) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Sigmoid computes the logistic function with guards against overflow.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("vector: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// MulVec computes m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("vector: MulVec shape mismatch: %dx%d times %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Mul returns m·n.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("vector: Mul shape mismatch %dx%d times %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewMatrix(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			nrow := n.Row(k)
			for j, nv := range nrow {
				orow[j] += mv * nv
			}
		}
	}
	return out
}

// CholeskySolve solves A·x = b for symmetric positive-definite A,
// destroying neither input. If the factorization hits a non-positive
// pivot it retries with progressively larger diagonal jitter before
// giving up with ErrSingular — the ridge systems we solve are sometimes
// barely PD when perturbation samples coincide.
func CholeskySolve(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("vector: CholeskySolve needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if a.Rows != len(b) {
		return nil, fmt.Errorf("vector: CholeskySolve shape mismatch %dx%d vs b length %d", a.Rows, a.Cols, len(b))
	}
	n := a.Rows
	for _, jitter := range []float64{0, 1e-10, 1e-8, 1e-6, 1e-4} {
		l, ok := cholesky(a, jitter)
		if !ok {
			continue
		}
		// Forward substitution: L·y = b.
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			s := b[i]
			for k := 0; k < i; k++ {
				s -= l.At(i, k) * y[k]
			}
			y[i] = s / l.At(i, i)
		}
		// Back substitution: Lᵀ·x = y.
		x := make([]float64, n)
		for i := n - 1; i >= 0; i-- {
			s := y[i]
			for k := i + 1; k < n; k++ {
				s -= l.At(k, i) * x[k]
			}
			x[i] = s / l.At(i, i)
		}
		return x, nil
	}
	return nil, ErrSingular
}

// cholesky computes the lower-triangular factor of a+jitter·I, reporting
// failure instead of producing NaNs.
func cholesky(a *Matrix, jitter float64) (*Matrix, bool) {
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			if i == j {
				s += jitter
			}
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return nil, false
				}
				l.Set(i, j, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, true
}

// WeightedRidge solves the weighted ridge regression
//
//	argmin_beta  Σ_i w_i (y_i - x_i·beta)² + lambda‖beta‖²
//
// where X is n×d (rows are samples). An intercept column, if wanted, must
// already be part of X. Returns the d coefficients.
func WeightedRidge(x *Matrix, y, w []float64, lambda float64) ([]float64, error) {
	n, d := x.Rows, x.Cols
	if len(y) != n || len(w) != n {
		return nil, fmt.Errorf("vector: WeightedRidge shape mismatch: X %dx%d, y %d, w %d", n, d, len(y), len(w))
	}
	// Normal equations: (XᵀWX + λI) beta = XᵀWy.
	xtx := NewMatrix(d, d)
	xty := make([]float64, d)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		wi := w[i]
		if wi == 0 {
			continue
		}
		for a := 0; a < d; a++ {
			va := wi * row[a]
			if va == 0 {
				continue
			}
			xty[a] += va * y[i]
			base := a * d
			for b := 0; b < d; b++ {
				xtx.Data[base+b] += va * row[b]
			}
		}
	}
	for a := 0; a < d; a++ {
		xtx.Data[a*d+a] += lambda
	}
	return CholeskySolve(xtx, xty)
}

// ArgMax returns the index of the maximum element, or -1 for empty input.
func ArgMax(a []float64) int {
	if len(a) == 0 {
		return -1
	}
	best := 0
	for i, v := range a {
		if v > a[best] {
			best = i
		}
	}
	return best
}

// Trapezoid computes the area under the curve given by points (xs, ys)
// using the trapezoidal rule. The xs must be sorted ascending.
func Trapezoid(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("vector: Trapezoid length mismatch")
	}
	var area float64
	for i := 1; i < len(xs); i++ {
		area += (xs[i] - xs[i-1]) * (ys[i] + ys[i-1]) / 2
	}
	return area
}
